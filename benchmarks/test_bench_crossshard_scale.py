"""Cross-shard pool-group benchmark: spanning topologies at >=100k VMs.

The paper's pool-scope sensitivity (Figure 4) reaches 16-64-socket pools
that physically span chassis and racks; this benchmark replays a multi-shard
fleet whose pool groups span cluster boundaries (``PoolTopology.spanning``)
through the merged cross-shard event loop and asserts that

* the degenerate per-shard topology reproduces the classic shardwise
  ``FleetSimulator.run`` savings and per-shard peaks **identically** (the
  topology path is a generalisation, not an approximation),
* the spanning replay covers >=100k VMs with at least one group spanning
  shards, produces computable fleet-owned savings, and sustains a sane
  throughput, and
* the emitted ``BENCH_crossshard_scale.json`` report carries the numbers.

Replays run serially in-process: the cross-shard loop interleaves every
shard's events by timestamp, which is the point of the exercise.
"""

import time

import pytest

from _bench_report import emit_report, pick
from repro.cluster.fleet import FleetSimulator, PoolTopology, pond_policy_factory
from repro.cluster.tracegen import TraceGenConfig
from repro.core.prediction.combined import CombinedOperatingPoint

N_SHARDS = pick(4, 2)
N_SERVERS_PER_SHARD = pick(50, 12)
MIN_TOTAL_VMS = pick(100_000, 1_500)
DURATION_DAYS = pick(3.5, 0.5)
MIN_VMS_PER_S = pick(100_000, 2_000)
POOL_SIZE_SOCKETS = 16
#: Timed replays per path; each path's time is the min (interleaved runs
#: damp the +-30% single-shot noise a shared host shows).
TIMING_REPS = pick(5, 2)

OPERATING_POINT = CombinedOperatingPoint(
    fp_percent=1.5, op_percent=2.0, li_percent=30.0, um_percent=22.0
)


@pytest.fixture(scope="module")
def fleet_and_traces():
    base = TraceGenConfig(
        cluster_id="crossshard",
        n_servers=N_SERVERS_PER_SHARD,
        duration_days=DURATION_DAYS,
        mean_lifetime_hours=2.0,
        target_core_utilization=0.85,
        seed=42,
    )
    fleet = FleetSimulator.sharded(N_SHARDS, base, pool_size_sockets=POOL_SIZE_SOCKETS)
    start = time.perf_counter()
    traces = fleet.generate_traces()
    elapsed = time.perf_counter() - start
    total = sum(len(t) for t in traces)
    print(f"\ngenerated {total:,} VMs across {N_SHARDS} shards "
          f"({N_SHARDS * N_SERVERS_PER_SHARD} servers) in {elapsed:.1f}s")
    assert total >= MIN_TOTAL_VMS
    return base, fleet, traces


def test_bench_crossshard_spanning_groups_at_scale(fleet_and_traces):
    base, legacy_fleet, traces = fleet_and_traces
    factory = pond_policy_factory(OPERATING_POINT, seed=3)
    total_vms = sum(len(t) for t in traces)
    sockets = base.server_config.sockets
    shard_sizes = [N_SERVERS_PER_SHARD] * N_SHARDS

    # Pool-independent baselines, shared by every run below.
    baselines = legacy_fleet.compute_baselines(traces)

    per_shard = PoolTopology.per_shard(shard_sizes, sockets, POOL_SIZE_SOCKETS)
    degenerate_fleet = FleetSimulator.sharded(
        N_SHARDS, base, pool_topology=per_shard
    )
    spanning = PoolTopology.spanning(shard_sizes, sockets, POOL_SIZE_SOCKETS)
    assert len(spanning.spanning_group_ids) >= 1
    spanning_fleet = FleetSimulator.sharded(
        N_SHARDS, base, pool_topology=spanning
    )

    # Interleaved min-of-N timing: one rep runs all three paths back to
    # back, so a noise spike on the host hits them alike and the per-path
    # min stays comparable.  Replays are deterministic, so keeping the
    # last rep's results is exact.
    legacy_times, degenerate_times, spanning_times = [], [], []
    legacy = degenerate = result = None
    for _ in range(TIMING_REPS):
        # classic shardwise path (the reference)
        start = time.perf_counter()
        legacy = legacy_fleet.run(factory, traces=traces, baselines=baselines)
        legacy_times.append(time.perf_counter() - start)
        # degenerate topology through the merged cross-shard loop
        start = time.perf_counter()
        degenerate = degenerate_fleet.run(factory, traces=traces,
                                          baselines=baselines)
        degenerate_times.append(time.perf_counter() - start)
        # spanning topology: groups cross cluster boundaries
        start = time.perf_counter()
        result = spanning_fleet.run(factory, traces=traces,
                                    baselines=baselines)
        spanning_times.append(time.perf_counter() - start)
    legacy_seconds = min(legacy_times)
    degenerate_seconds = min(degenerate_times)
    spanning_seconds = min(spanning_times)
    vms_per_s = total_vms / spanning_seconds
    events_per_s = 2 * total_vms / spanning_seconds

    # Identical savings output, shard for shard: the topology engine is a
    # generalisation of the shardwise path, not an approximation of it.
    assert degenerate.savings == legacy.savings
    assert degenerate.placed_vms == legacy.placed_vms
    assert degenerate.rejected_vms == legacy.rejected_vms
    for got, ref in zip(degenerate.shards, legacy.shards):
        assert got.result.server_peak_local_gb == ref.result.server_peak_local_gb
        assert got.result.pool_peak_gb == ref.result.pool_peak_gb

    assert result.placed_vms + result.rejected_vms == total_vms
    assert set(result.fleet_pool_peak_gb) == set(range(spanning.n_groups))
    assert result.required_pool_dram_gb > 0.0
    savings = result.savings  # fleet-owned pool requirement is computable

    print(f"\n{'path':<12} {'seconds':>9} {'VMs/s':>12} {'savings %':>10}")
    for name, seconds, res in (
        ("shardwise", legacy_seconds, legacy),
        ("degenerate", degenerate_seconds, degenerate),
        ("spanning", spanning_seconds, result),
    ):
        print(f"{name:<12} {seconds:>9.2f} {total_vms / seconds:>12,.0f} "
              f"{res.savings.savings_percent:>10.2f}")
    print(f"spanning groups: {spanning.spanning_group_ids} of "
          f"{spanning.n_groups} total")

    emit_report("crossshard_scale", {
        "n_vms": total_vms,
        "n_shards": N_SHARDS,
        "n_servers": N_SHARDS * N_SERVERS_PER_SHARD,
        "pool_size_sockets": POOL_SIZE_SOCKETS,
        "n_groups": spanning.n_groups,
        "n_spanning_groups": len(spanning.spanning_group_ids),
        "timing_reps": TIMING_REPS,
        "legacy_seconds": legacy_seconds,
        "degenerate_seconds": degenerate_seconds,
        "spanning_seconds": spanning_seconds,
        "vms_per_s": vms_per_s,
        "vms_per_s_floor": MIN_VMS_PER_S,
        "events_per_s": events_per_s,
        "events_per_s_floor": 2 * MIN_VMS_PER_S,
        "degenerate_savings_percent": degenerate.savings.savings_percent,
        "spanning_savings_percent": savings.savings_percent,
    })
    assert vms_per_s >= MIN_VMS_PER_S, (
        f"cross-shard replay sustained only {vms_per_s:,.0f} VMs/s "
        f"(required >= {MIN_VMS_PER_S:,})"
    )


def test_bench_crossshard_capacity_search_smoke(fleet_and_traces):
    """Spanning capacity search completes and provisions fleet groups.

    Kept at reduced size inside the benchmark module (the search replays
    the fleet ~10 times); the full differential coverage lives in
    tests/test_pool_topology.py.
    """
    base, _fleet, traces = fleet_and_traces
    small = [t for t in traces[:2]]
    shard_sizes = [N_SERVERS_PER_SHARD] * 2
    spanning = PoolTopology.spanning(
        shard_sizes, base.server_config.sockets, POOL_SIZE_SOCKETS
    )
    configs = [
        cfg for cfg in FleetSimulator.sharded(N_SHARDS, base).shard_configs[:2]
    ]
    fleet = FleetSimulator(configs, pool_topology=spanning)
    search = fleet.capacity_search(
        pond_policy_factory(OPERATING_POINT, seed=3),
        traces=small, search_steps=pick(4, 2),
    )
    assert search.pool_topology is spanning
    assert set(search.pool_capacity_gb_by_group) == set(range(spanning.n_groups))
    assert search.savings.required_total_dram_gb > 0.0
    print(f"\nspanning capacity search: baseline {search.baseline_per_server_gb:.0f} "
          f"GB/server -> pooled {search.pooled_per_server_gb:.0f} GB/server, "
          f"savings {search.savings.savings_percent:.2f}%")

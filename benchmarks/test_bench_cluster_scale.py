"""Scale benchmarks for the cluster replay hot path and the capacity search.

The paper's evaluation replays traces with "millions of per-VM
arrival/departure events" at second accuracy (Sections 3.1 and 6.1).  This
module replays a >=270,000-VM synthetic trace against 500 servers and asserts
the three performance claims the placement stack makes:

* the indexed candidate structure produces *identical* placement decisions
  to the legacy O(n_servers) linear scan and is at least 5x faster (both on
  the object engine, where the linear scan lives),
* the struct-of-arrays placement engine (``engine="array"``) produces
  *identical* results to the object engine and is at least 2x faster on the
  capacity-probe replay (the memory-tight constrained replay that the
  dimensioning search runs ~11 times per evaluation -- the single hottest
  workload in the repo), and
* the parallel capacity search (``max_workers``) returns *identical*
  ``PoolSavings`` to the sequential search and, given enough cores, is at
  least 1.5x faster end to end.

The linear scan is deliberately run once on the full trace (roughly a
minute) so the recorded baseline is an honest full-scale measurement, not an
extrapolation.  Timing uses ``time.perf_counter`` directly instead of the
pytest-benchmark fixture because a calibrated multi-round run of the linear
baseline would take tens of minutes; the engine comparison takes the min of
two interleaved runs per engine to damp machine noise.

``BENCH_SMOKE=1`` shrinks the trace and relaxes the floors (see
``_bench_report.py``); every test emits a machine-readable
``BENCH_*.json`` report.
"""

import os
import time

import pytest

from _bench_report import emit_report, pick, smoke_mode
from repro.cluster.fleet import FleetSimulator, pond_policy_factory
from repro.cluster.server import ServerConfig
from repro.cluster.simulator import ClusterSimulator
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator
from repro.core.prediction.combined import CombinedOperatingPoint

N_SERVERS = pick(500, 60)
MIN_VMS = pick(270_000, 3_000)
DURATION_DAYS = pick(3.6, 0.5)
MIN_LINEAR_SPEEDUP = pick(5.0, 2.0)
MIN_ARRAY_SPEEDUP = pick(2.0, 1.3)
MIN_EVENTS_PER_S = pick(200_000, 20_000)
#: The capacity-probe replay provisions servers memory-tight (the regime the
#: dimensioning search's lower bisection candidates probe).
PROBE_DRAM_PER_SOCKET_GB = 112.0

OPERATING_POINT = CombinedOperatingPoint(
    fp_percent=1.5, op_percent=2.0, li_percent=30.0, um_percent=22.0
)


@pytest.fixture(scope="module")
def scale_trace():
    config = TraceGenConfig(
        cluster_id="scale",
        n_servers=N_SERVERS,
        duration_days=DURATION_DAYS,
        mean_lifetime_hours=2.0,
        target_core_utilization=0.96,
        seed=42,
    )
    start = time.perf_counter()
    trace = TraceGenerator(config).generate_bulk()
    elapsed = time.perf_counter() - start
    # Warm the cached columnar view: every replay consumes it, so building
    # it once here keeps the timed runs comparable across engines.
    trace.columns()
    print(f"\ngenerated {len(trace):,} VMs for {N_SERVERS} servers "
          f"in {elapsed:.1f}s (bulk path)")
    assert len(trace) >= MIN_VMS
    return trace


def run_once(trace, strategy="indexed", engine=None, server_config=None):
    simulator = ClusterSimulator(
        n_servers=N_SERVERS,
        server_config=server_config,
        sample_interval_s=3600.0,
        scheduler_strategy=strategy,
        engine=engine,
    )
    start = time.perf_counter()
    result = simulator.run(trace)
    return result, time.perf_counter() - start


def assert_identical(a, b):
    """Same VM -> server assignment, rejections, peaks, and time series."""
    assert a.placements == b.placements
    assert a.rejected_vms == b.rejected_vms
    assert a.server_peak_local_gb == b.server_peak_local_gb
    assert a.server_peak_total_gb == b.server_peak_total_gb
    assert (a.sample_buffer.rows() == b.sample_buffer.rows()).all()


def test_bench_indexed_matches_linear_and_is_5x_faster(scale_trace):
    """Both strategies on the object engine, where the linear scan lives."""
    indexed_result, indexed_s = run_once(scale_trace, "indexed", engine="object")
    linear_result, linear_s = run_once(scale_trace, "linear", engine="object")

    n_events = 2 * len(scale_trace)
    print(f"\n{'strategy':<10} {'seconds':>9} {'events/s':>12} "
          f"{'placed':>9} {'rejected':>9}")
    for name, result, elapsed in (
        ("indexed", indexed_result, indexed_s),
        ("linear", linear_result, linear_s),
    ):
        print(f"{name:<10} {elapsed:>9.2f} {n_events / elapsed:>12,.0f} "
              f"{result.placed_vms:>9,} {result.rejected_vms:>9,}")
    speedup = linear_s / indexed_s
    print(f"speedup: {speedup:.1f}x")

    assert_identical(indexed_result, linear_result)
    emit_report("cluster_scale_indexed_vs_linear", {
        "n_vms": len(scale_trace),
        "n_servers": N_SERVERS,
        "indexed_seconds": indexed_s,
        "linear_seconds": linear_s,
        "speedup": speedup,
        "speedup_floor": MIN_LINEAR_SPEEDUP,
    })
    assert speedup >= MIN_LINEAR_SPEEDUP, (
        f"indexed scheduler only {speedup:.1f}x faster than the linear scan "
        f"(required >= {MIN_LINEAR_SPEEDUP}x)"
    )


def test_bench_array_engine_2x_object_on_capacity_probe(scale_trace):
    """Array engine >= 2x the object engine on the capacity-probe replay.

    The workload is the memory-constrained uniform-DRAM replay the
    dimensioning search's binary search probes repeatedly; both engines
    replay it with placement recording on, and the outputs are asserted
    byte-identical.  Each engine is timed twice (interleaved) and the min
    is used, damping the machine noise a single run is exposed to.
    """
    probe_config = ServerConfig(
        name="capacity-probe",
        dram_per_socket_gb=PROBE_DRAM_PER_SOCKET_GB,
    )
    array_times, object_times = [], []
    array_result = object_result = None
    for _ in range(2):
        array_result, elapsed = run_once(
            scale_trace, engine="array", server_config=probe_config
        )
        array_times.append(elapsed)
        object_result, elapsed = run_once(
            scale_trace, engine="object", server_config=probe_config
        )
        object_times.append(elapsed)

    array_s, object_s = min(array_times), min(object_times)
    n_events = 2 * len(scale_trace)
    print(f"\n{'engine':<10} {'seconds':>9} {'events/s':>12} "
          f"{'placed':>9} {'rejected':>9}")
    for name, result, elapsed in (
        ("array", array_result, array_s),
        ("object", object_result, object_s),
    ):
        print(f"{name:<10} {elapsed:>9.2f} {n_events / elapsed:>12,.0f} "
              f"{result.placed_vms:>9,} {result.rejected_vms:>9,}")
    speedup = object_s / array_s
    print(f"speedup: {speedup:.1f}x")

    assert_identical(array_result, object_result)
    assert array_result.pool_peak_gb == object_result.pool_peak_gb
    emit_report("cluster_scale_array_vs_object", {
        "n_vms": len(scale_trace),
        "n_servers": N_SERVERS,
        "probe_dram_per_socket_gb": PROBE_DRAM_PER_SOCKET_GB,
        "array_seconds": array_s,
        "object_seconds": object_s,
        "speedup": speedup,
        "speedup_floor": MIN_ARRAY_SPEEDUP,
    })
    assert speedup >= MIN_ARRAY_SPEEDUP, (
        f"array engine only {speedup:.1f}x faster than the object engine "
        f"(required >= {MIN_ARRAY_SPEEDUP}x)"
    )


def test_bench_indexed_throughput_floor(scale_trace):
    """The default (array-engine) hot path must stay above the events/s floor.

    Min of three runs: single-shot timings on a shared host wobble by
    +-30%, which would make a floor near the measured throughput flaky.
    """
    result = None
    times = []
    for _ in range(3):
        result, elapsed = run_once(scale_trace)
        times.append(elapsed)
    elapsed = min(times)
    events_per_s = 2 * len(scale_trace) / elapsed
    print(f"\narray-engine throughput: {events_per_s:,.0f} events/s "
          f"({elapsed:.2f}s best of {len(times)} for "
          f"{2 * len(scale_trace):,} events)")
    emit_report("cluster_scale_throughput", {
        "n_vms": len(scale_trace),
        "n_servers": N_SERVERS,
        "seconds": elapsed,
        "events_per_s": events_per_s,
        "events_per_s_floor": MIN_EVENTS_PER_S,
    })
    assert result.placed_vms > 0
    assert events_per_s >= MIN_EVENTS_PER_S


# -- parallel capacity search ----------------------------------------------------------

CAP_N_SHARDS = pick(4, 2)
CAP_SERVERS_PER_SHARD = pick(50, 16)
CAP_DURATION_DAYS = pick(1.2, 0.4)
CAP_SEARCH_STEPS = pick(5, 3)
MIN_PARALLEL_SPEEDUP = 1.5


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="parallel capacity-search probes need at least 2 CPUs",
)
def test_bench_parallel_capacity_search_1_5x_sequential():
    """Parallel probes >= 1.5x the sequential capacity search, same savings.

    Both searches run on the same fleet (shard traces pregenerated once, so
    only the probe execution differs); the parallel side uses speculative
    bisection on a process pool (DESIGN.md section 7).  The speedup floor is
    enforced with >= 4 CPUs (with fewer, the pool cannot overlap enough
    probes to guarantee it; equality is asserted regardless).
    """
    workers = min(4, os.cpu_count() or 1)
    base = TraceGenConfig(
        cluster_id="capacity",
        n_servers=CAP_SERVERS_PER_SHARD,
        duration_days=CAP_DURATION_DAYS,
        mean_lifetime_hours=2.0,
        target_core_utilization=0.9,
        seed=17,
    )
    factory = pond_policy_factory(OPERATING_POINT, seed=3)
    sequential_fleet = FleetSimulator.sharded(
        CAP_N_SHARDS, base, pool_size_sockets=16
    )
    parallel_fleet = FleetSimulator.sharded(
        CAP_N_SHARDS, base, pool_size_sockets=16, max_workers=workers
    )
    traces = sequential_fleet.generate_traces()
    total_vms = sum(len(t) for t in traces)

    start = time.perf_counter()
    sequential = sequential_fleet.capacity_search(
        factory, traces=traces, search_steps=CAP_SEARCH_STEPS
    )
    sequential_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = parallel_fleet.capacity_search(
        factory, traces=traces, search_steps=CAP_SEARCH_STEPS
    )
    parallel_s = time.perf_counter() - start

    speedup = sequential_s / parallel_s
    print(f"\ncapacity search over {total_vms:,} VMs x {CAP_N_SHARDS} shards: "
          f"sequential {sequential_s:.2f}s, parallel {parallel_s:.2f}s "
          f"({workers} workers, {speedup:.2f}x)")

    # Identical PoolSavings and dimensioning: parallelism changes when
    # probes run, never what the search concludes.
    assert parallel.savings == sequential.savings
    assert parallel.baseline_per_server_gb == sequential.baseline_per_server_gb
    assert parallel.pooled_per_server_gb == sequential.pooled_per_server_gb
    assert parallel.per_shard_pool_capacity_gb \
        == sequential.per_shard_pool_capacity_gb
    assert parallel.rejection_budget == sequential.rejection_budget

    emit_report("capacity_search_parallel", {
        "n_vms": total_vms,
        "n_shards": CAP_N_SHARDS,
        "workers": workers,
        "search_steps": CAP_SEARCH_STEPS,
        "sequential_seconds": sequential_s,
        "parallel_seconds": parallel_s,
        "speedup": speedup,
        "speedup_floor": MIN_PARALLEL_SPEEDUP,
        "savings_percent": parallel.savings.savings_percent,
    })
    if smoke_mode() or (os.cpu_count() or 1) < 4:
        pytest.skip(
            f"parallel == sequential verified; speedup floor needs >= 4 CPUs "
            f"at full scale (measured {speedup:.2f}x with {workers} workers)"
        )
    assert speedup >= MIN_PARALLEL_SPEEDUP, (
        f"parallel capacity search only {speedup:.2f}x faster than "
        f"sequential (required >= {MIN_PARALLEL_SPEEDUP}x)"
    )

"""Scale benchmark: indexed vs. linear-scan scheduling on a 200k+-VM trace.

The paper's evaluation replays traces with "millions of per-VM
arrival/departure events" at second accuracy (Sections 3.1 and 6.1).  This
benchmark replays a >=200,000-VM synthetic trace against 500 servers with
both scheduler strategies and asserts that

* the indexed candidate structure produces *identical* placement decisions to
  the legacy O(n_servers) linear scan, and
* the indexed hot path is at least 5x faster end to end.

The linear scan is deliberately run once on the full trace (roughly a minute)
so the recorded baseline is an honest full-scale measurement, not an
extrapolation.  Timing uses ``time.perf_counter`` directly instead of the
pytest-benchmark fixture because a calibrated multi-round run of the linear
baseline would take tens of minutes.
"""

import time

import pytest

from repro.cluster.simulator import ClusterSimulator
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator

N_SERVERS = 500
MIN_VMS = 200_000
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def scale_trace():
    config = TraceGenConfig(
        cluster_id="scale",
        n_servers=N_SERVERS,
        duration_days=3.6,
        mean_lifetime_hours=2.0,
        target_core_utilization=0.85,
        seed=42,
    )
    start = time.perf_counter()
    trace = TraceGenerator(config).generate_bulk()
    elapsed = time.perf_counter() - start
    print(f"\ngenerated {len(trace):,} VMs for {N_SERVERS} servers "
          f"in {elapsed:.1f}s (bulk path)")
    assert len(trace) >= MIN_VMS
    return trace


def run_once(trace, strategy):
    simulator = ClusterSimulator(
        n_servers=N_SERVERS,
        sample_interval_s=3600.0,
        scheduler_strategy=strategy,
    )
    start = time.perf_counter()
    result = simulator.run(trace)
    return result, time.perf_counter() - start


def test_bench_indexed_matches_linear_and_is_5x_faster(scale_trace):
    indexed_result, indexed_s = run_once(scale_trace, "indexed")
    linear_result, linear_s = run_once(scale_trace, "linear")

    n_events = 2 * len(scale_trace)
    print(f"\n{'strategy':<10} {'seconds':>9} {'events/s':>12} "
          f"{'placed':>9} {'rejected':>9}")
    for name, result, elapsed in (
        ("indexed", indexed_result, indexed_s),
        ("linear", linear_result, linear_s),
    ):
        print(f"{name:<10} {elapsed:>9.2f} {n_events / elapsed:>12,.0f} "
              f"{result.placed_vms:>9,} {result.rejected_vms:>9,}")
    speedup = linear_s / indexed_s
    print(f"speedup: {speedup:.1f}x")

    # Identical decisions: same VM -> server assignment for every placed VM,
    # same rejections, same peaks, same time series.
    assert indexed_result.placements == linear_result.placements
    assert indexed_result.rejected_vms == linear_result.rejected_vms
    assert indexed_result.server_peak_local_gb == linear_result.server_peak_local_gb
    assert (indexed_result.sample_buffer.rows()
            == linear_result.sample_buffer.rows()).all()

    assert speedup >= MIN_SPEEDUP, (
        f"indexed scheduler only {speedup:.1f}x faster than the linear scan "
        f"(required >= {MIN_SPEEDUP}x)"
    )


def test_bench_indexed_throughput_floor(scale_trace):
    """The indexed hot path must stay above 50k events/s end to end."""
    result, elapsed = run_once(scale_trace, "indexed")
    events_per_s = 2 * len(scale_trace) / elapsed
    print(f"\nindexed throughput: {events_per_s:,.0f} events/s "
          f"({elapsed:.2f}s for {2 * len(scale_trace):,} events)")
    assert result.placed_vms > 0
    assert events_per_s >= 50_000

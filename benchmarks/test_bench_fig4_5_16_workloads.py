"""Benchmarks regenerating Figures 4/5 (slowdowns) and Figure 16 (spill study)."""

import pytest

from repro.experiments.fig4_5_sensitivity import (
    format_sensitivity_summary,
    run_sensitivity_study,
    slowdown_cdf,
)
from repro.experiments.fig16_spill import format_spill_table, run_spill_study
from repro.workloads.catalog import build_catalog


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(seed=7)


@pytest.mark.benchmark(group="fig4-5-sensitivity")
def test_bench_fig4_workload_slowdowns(benchmark, catalog):
    study = benchmark(run_sensitivity_study, catalog=catalog)
    print()
    print(format_sensitivity_summary(study))
    buckets = study.bucket_fractions("182")
    assert buckets["below_5_percent"] > buckets["above_25_percent"]


@pytest.mark.benchmark(group="fig4-5-sensitivity")
def test_bench_fig5_slowdown_cdf(benchmark, catalog):
    study = run_sensitivity_study(catalog=catalog)
    grid, cdf = benchmark(slowdown_cdf, study.slowdowns_222)
    assert cdf[-1] == pytest.approx(1.0)


@pytest.mark.benchmark(group="fig16-spill")
def test_bench_fig16_spill_study(benchmark, catalog):
    study = benchmark(run_spill_study, catalog=catalog)
    print()
    print(format_spill_table(study))
    assert study.distribution_stats(100.0)["median"] >= study.distribution_stats(10.0)["median"]

"""Fault-injection benchmark: EMC failures inside the replay hot path.

The fault-injection subsystem (``repro.cluster.faults``, DESIGN.md
section 11) rides inside the merged event pump, so its cost and its
byte-identity promise both need pinning at benchmark scale:

* the **faulted** replay (seeded ``FaultSchedule``, full degradation
  ladder) sustains a sane VMs/s rate with a recorded floor,
* an **empty** schedule -- which still routes the replay through the
  fault-aware loop -- stays byte-identical to the static replay at
  >=100k VMs (the differential contract the test suite locks down at
  small scale holds at benchmark scale too),
* a seeded faulted replay re-run is **bit-identical** (``as_dict``
  canonical forms), and
* the emitted ``BENCH_fault_injection.json`` report carries the numbers,
  including the full ladder accounting (migrated/live-migrated/killed).

Replays run serially in-process with interleaved min-of-N timing.
"""

import time

import numpy as np
import pytest

from _bench_report import check_perf_floors, emit_report, pick, validate_report
from repro.cluster import ClusterSimulator, TraceGenerator, TraceGenConfig
from repro.cluster.faults import FaultSchedule
from repro.core.policies import StaticFractionPolicy

N_SERVERS = pick(200, 16)
DURATION_DAYS = pick(3.5, 0.5)
MIN_TOTAL_VMS = pick(100_000, 500)
MIN_VMS_PER_S = pick(15_000, 500)
POOL_SIZE_SOCKETS = 16
POOL_CAPACITY_GB_PER_GROUP = 2000.0
STATIC_FRACTION = 0.3
MTBF_S = pick(6.0, 2.0) * 3600.0
REPAIR_DELAY_S = 2.0 * 3600.0
FAULT_SEED = 9
#: Timed runs per path; each path's time is the min (interleaved runs damp
#: the +-30% single-shot noise a shared host shows).
TIMING_REPS = pick(3, 2)


@pytest.fixture(scope="module")
def trace_and_policy():
    cfg = TraceGenConfig(
        cluster_id="fault-injection",
        n_servers=N_SERVERS,
        duration_days=DURATION_DAYS,
        mean_lifetime_hours=2.0,
        target_core_utilization=0.85,
        seed=42,
    )
    start = time.perf_counter()
    trace = TraceGenerator(cfg).generate_bulk()
    gen_seconds = time.perf_counter() - start
    print(f"\ngenerated {len(trace):,} VMs in {gen_seconds:.1f}s")
    assert len(trace) >= MIN_TOTAL_VMS
    return trace, StaticFractionPolicy(fraction=STATIC_FRACTION)


def make_simulator():
    return ClusterSimulator(
        n_servers=N_SERVERS,
        pool_size_sockets=POOL_SIZE_SOCKETS,
        pool_capacity_gb_per_group=POOL_CAPACITY_GB_PER_GROUP,
        constrain_memory=True,
        sample_interval_s=3600.0,
        record_placements=False,
    )


def make_schedule():
    sockets = TraceGenConfig().server_config.sockets
    n_groups = N_SERVERS // max(1, POOL_SIZE_SOCKETS // sockets)
    return FaultSchedule.seeded(
        groups=range(n_groups),
        horizon_s=DURATION_DAYS * 86400.0,
        mean_time_between_failures_s=MTBF_S,
        repair_delay_s=REPAIR_DELAY_S,
        seed=FAULT_SEED,
    )


def test_bench_fault_injection_at_scale(trace_and_policy):
    trace, policy = trace_and_policy
    n_vms = len(trace)
    schedule = make_schedule()
    assert schedule.events, "seeded schedule must fire at benchmark scale"

    # Interleaved min-of-N timing: one rep runs every path back to back, so
    # a noise spike on the host hits them alike.  Replays are
    # deterministic, so keeping the last rep's results is exact.
    static_times, empty_times, faulted_times, rerun_times = [], [], [], []
    static = empty = faulted = rerun = None
    for _ in range(TIMING_REPS):
        start = time.perf_counter()
        static = make_simulator().run(trace, policy)
        static_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        empty = make_simulator().run(trace, policy, faults=FaultSchedule())
        empty_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        faulted = make_simulator().run(trace, policy, faults=schedule)
        faulted_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        rerun = make_simulator().run(trace, policy, faults=schedule)
        rerun_times.append(time.perf_counter() - start)

    static_seconds = min(static_times)
    empty_seconds = min(empty_times)
    faulted_seconds = min(faulted_times)
    vms_per_s = n_vms / faulted_seconds

    # Empty-schedule replay is byte-identical to the static replay: the
    # fault-aware loop must not perturb the fault-free path.
    assert np.array_equal(static.sample_buffer.rows(),
                          empty.sample_buffer.rows())
    assert static.server_peak_local_gb == empty.server_peak_local_gb
    assert static.server_peak_total_gb == empty.server_peak_total_gb
    assert static.pool_peak_gb == empty.pool_peak_gb
    assert static.placed_vms == empty.placed_vms
    assert static.rejected_vms == empty.rejected_vms
    assert empty.fault_stats.n_fail_events == 0
    assert empty.fault_stats.vms_affected == 0

    # Seeded faulted replays are bit-reproducible.
    assert faulted.fault_stats.as_dict() == rerun.fault_stats.as_dict()
    assert np.array_equal(faulted.sample_buffer.rows(),
                          rerun.sample_buffer.rows())

    stats = faulted.fault_stats
    assert stats.n_fail_events > 0
    assert stats.vms_affected > 0
    assert stats.vms_affected >= (stats.vms_migrated_local
                                  + stats.vms_live_migrated
                                  + stats.vms_killed)
    assert 0.0 <= stats.survival_rate <= 1.0
    assert len(stats.killed_vm_ids) == stats.vms_killed

    print(f"\n{'path':<20} {'seconds':>9} {'VMs/s':>14}")
    print(f"{'static replay':<20} {static_seconds:>9.2f} "
          f"{n_vms / static_seconds:>14,.0f}")
    print(f"{'faults (empty)':<20} {empty_seconds:>9.2f} "
          f"{n_vms / empty_seconds:>14,.0f}")
    print(f"{'faults (seeded)':<20} {faulted_seconds:>9.2f} "
          f"{vms_per_s:>14,.0f}")
    print(f"faults: {stats.n_fail_events} fail / {stats.n_repair_events} "
          f"repair events; ladder: {stats.vms_migrated_local} local, "
          f"{stats.vms_live_migrated} live-migrated, {stats.vms_killed} "
          f"killed of {stats.vms_affected} affected "
          f"(survival {stats.survival_rate:.3f}, "
          f"{stats.stranded_gb:,.0f} GB stranded)")

    report_path = emit_report("fault_injection", {
        "n_vms": n_vms,
        "n_servers": N_SERVERS,
        "pool_size_sockets": POOL_SIZE_SOCKETS,
        "pool_capacity_gb_per_group": POOL_CAPACITY_GB_PER_GROUP,
        "mtbf_s": MTBF_S,
        "repair_delay_s": REPAIR_DELAY_S,
        "fault_seed": FAULT_SEED,
        "timing_reps": TIMING_REPS,
        "static_seconds": static_seconds,
        "empty_schedule_seconds": empty_seconds,
        "faulted_seconds": faulted_seconds,
        "vms_per_s": vms_per_s,
        "vms_per_s_floor": MIN_VMS_PER_S,
        "n_fail_events": stats.n_fail_events,
        "n_repair_events": stats.n_repair_events,
        "vms_affected": stats.vms_affected,
        "vms_migrated_local": stats.vms_migrated_local,
        "vms_live_migrated": stats.vms_live_migrated,
        "vms_killed": stats.vms_killed,
        "stranded_gb": stats.stranded_gb,
        "killed_gb": stats.killed_gb,
        "survival_rate": stats.survival_rate,
        "mean_recovery_latency_s": stats.mean_recovery_latency_s,
    })
    # The report must round-trip the schema and floor checks CI enforces.
    check_perf_floors(validate_report(report_path), name="fault_injection")
    assert vms_per_s >= MIN_VMS_PER_S, (
        f"faulted replay sustained only {vms_per_s:,.0f} VMs/s "
        f"(required >= {MIN_VMS_PER_S:,})"
    )


def test_bench_failure_domain_study_smoke():
    """The experiment entry point end to end at reduced sweep size."""
    from repro.experiments.fig_failure_domains import (
        format_failure_domain_table,
        run_failure_domain_study,
    )

    study = run_failure_domain_study(
        n_servers=pick(10, 6),
        duration_days=pick(1.0, 0.4),
        pool_sizes=(8,),
        mtbf_hours=(4.0,),
    )
    assert len(study.rows) == 2  # per_shard + spanning
    for row in study.rows:
        assert row.n_fail_events > 0
        assert 0.0 <= row.survival_rate <= 1.0
    table = format_failure_domain_table(study)
    assert "survival" in table
    print("\n" + table)

"""Benchmarks regenerating Figure 2 (stranding) and Figure 3 (pool-size sweep).

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark prints the
regenerated table so the numbers can be compared against the paper (see
EXPERIMENTS.md for the recorded comparison).
"""

import pytest

from repro.experiments.fig2_stranding import (
    format_stranding_table,
    run_rack_timeseries,
    run_stranding_study,
)
from repro.experiments.fig3_pool_size import format_pool_size_table, run_pool_size_study


@pytest.mark.benchmark(group="fig2-stranding")
def test_bench_fig2a_stranding_vs_utilization(benchmark):
    study = benchmark(
        run_stranding_study, n_clusters=6, n_servers=10, duration_days=1.5, seed=5
    )
    print()
    print(format_stranding_table(study))
    means = [b.mean_stranded_percent for b in study.buckets]
    assert means[-1] >= means[0]


@pytest.mark.benchmark(group="fig2-stranding")
def test_bench_fig2b_stranding_over_time(benchmark):
    series = benchmark(
        run_rack_timeseries, n_racks=4, n_servers=8, duration_days=3.0,
        shift_day=1.5, seed=9,
    )
    assert len(series) == 4


@pytest.mark.benchmark(group="fig3-pool-size")
def test_bench_fig3_pool_size_sweep(benchmark):
    study = benchmark(
        run_pool_size_study, n_servers=24, duration_days=1.5,
        pool_sizes=(2, 8, 16, 32), seed=13,
    )
    print()
    print(format_pool_size_table(study))
    for fraction in study.fractions:
        assert (study.required_dram_percent(fraction, 32)
                <= study.required_dram_percent(fraction, 2) + 0.5)

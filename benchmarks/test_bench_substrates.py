"""Micro-benchmarks for the substrates: ML models, simulator, and control plane.

These are not paper figures; they track the performance of the building blocks
so regressions in the heavy dependencies (tree building, trace replay, slice
management) are visible.
"""

import numpy as np
import pytest

from repro.cluster.simulator import ClusterSimulator
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator
from repro.core.control_plane.pool_manager import PoolManager
from repro.cxl.emc import EMCDevice
from repro.hypervisor.host import Host
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbm import QuantileGradientBoostingRegressor


@pytest.mark.benchmark(group="substrate-ml")
def test_bench_random_forest_training(benchmark):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(400, 7))
    y = ((X[:, 0] + X[:, 3]) > 0).astype(int)
    forest = benchmark(
        lambda: RandomForestClassifier(n_estimators=20, max_depth=6, random_state=0).fit(X, y)
    )
    assert forest.score(X, y) > 0.85


@pytest.mark.benchmark(group="substrate-ml")
def test_bench_quantile_gbm_training(benchmark):
    rng = np.random.default_rng(1)
    X = rng.uniform(size=(500, 10))
    y = X[:, 0] * 0.5 + rng.normal(0, 0.05, size=500)
    model = benchmark(
        lambda: QuantileGradientBoostingRegressor(
            alpha=0.05, n_estimators=30, max_depth=3, min_samples_leaf=20, random_state=0
        ).fit(X, y)
    )
    assert np.isfinite(model.predict(X)).all()


@pytest.mark.benchmark(group="substrate-simulator")
def test_bench_cluster_trace_replay(benchmark):
    cfg = TraceGenConfig(cluster_id="bench", n_servers=16, duration_days=1.0,
                         target_core_utilization=0.85, seed=99)
    trace = TraceGenerator(cfg).generate()
    simulator = ClusterSimulator(n_servers=16, sample_interval_s=3600.0)
    result = benchmark(simulator.run, trace)
    assert result.placed_vms > 0


@pytest.mark.benchmark(group="substrate-control-plane")
def test_bench_pool_manager_slice_churn(benchmark):
    def churn():
        emc = EMCDevice("bench-emc", capacity_gb=512, n_ports=8)
        manager = PoolManager(emc)
        hosts = [Host(f"bench-h{i}", total_cores=48, local_memory_gb=384.0)
                 for i in range(4)]
        for host in hosts:
            manager.register_host(host)
        for i in range(200):
            host = hosts[i % 4]
            manager.add_capacity(host.host_id, 4)
            manager.queue_release(host.host_id, 4)
            manager.process_releases()
        return manager

    manager = benchmark(churn)
    assert manager.unassigned_pool_gb == 512

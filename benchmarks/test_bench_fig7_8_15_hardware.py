"""Benchmarks regenerating Figures 7/8 (latency) and Figure 15 (zNUMA traffic)."""

import pytest

from repro.experiments.fig7_8_latency import format_latency_table, run_latency_study
from repro.experiments.fig15_znuma import format_znuma_table, run_znuma_study
from repro.experiments.offlining import format_offlining_table, run_offlining_study


@pytest.mark.benchmark(group="fig7-8-latency")
def test_bench_fig7_8_latency_model(benchmark):
    study = benchmark(run_latency_study)
    print()
    print(format_latency_table(study))
    assert study.pond_ns(8) == pytest.approx(155.0)
    assert study.pond_ns(16) == pytest.approx(180.0)


@pytest.mark.benchmark(group="fig15-znuma")
def test_bench_fig15_znuma_traffic(benchmark):
    results = benchmark(run_znuma_study)
    print()
    print(format_znuma_table(results))
    assert all(r.znuma_traffic_percent < 1.0 for r in results)


@pytest.mark.benchmark(group="finding10-offlining")
def test_bench_finding10_offlining_speeds(benchmark):
    study = benchmark(run_offlining_study, n_vm_cycles=200, seed=81)
    print()
    print(format_offlining_table(study))
    assert study.total_offlined_gb > 0

"""Benchmark regenerating Figure 21 (end-to-end DRAM savings) plus ablations."""

import pytest

from repro.cluster.pool import PoolDimensioner, fixed_fraction_policy
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator
from repro.experiments.fig21_end_to_end import (
    format_end_to_end_table,
    run_end_to_end_study,
)


@pytest.mark.benchmark(group="fig21-end-to-end")
def test_bench_fig21_dram_savings(benchmark):
    study = benchmark(
        run_end_to_end_study, n_servers=32, duration_days=1.5,
        pool_sizes=(2, 8, 16, 32), seed=61,
    )
    print()
    print(format_end_to_end_table(study))
    assert (study.savings_percent("pond_182", 16)
            >= study.savings_percent("static_15pct", 16))


@pytest.mark.benchmark(group="ablation-provisioning")
def test_bench_ablation_provisioning_methodology(benchmark):
    """Ablation: peak-observation provisioning vs constrained capacity search.

    DESIGN.md calls out the provisioning-model choice; this benchmark compares
    the default (uniform peak observation) with the capacity-search mode on the
    same trace and the same fixed-fraction policy.
    """
    cfg = TraceGenConfig(cluster_id="ablation", n_servers=12, duration_days=1.0,
                         target_core_utilization=0.85, seed=77)
    trace = TraceGenerator(cfg).generate()
    dimensioner = PoolDimensioner(n_servers=12, search_steps=5)
    policy = fixed_fraction_policy(0.3)

    def run_both():
        peak = dimensioner.evaluate(trace, 16, policy)
        search = dimensioner.evaluate_capacity_search(trace, 16, policy)
        return peak, search

    peak, search = benchmark(run_both)
    print()
    print("Provisioning ablation (30% fixed pool fraction, 16-socket pool):")
    print(f"  peak-observation: {peak.required_dram_percent:.1f}% of baseline DRAM")
    print(f"  capacity-search:  {search.required_dram_percent:.1f}% of baseline DRAM")
    assert peak.required_dram_percent > 0
    assert search.required_dram_percent > 0


@pytest.mark.benchmark(group="ablation-pool-fraction")
def test_bench_ablation_pool_fraction_sweep(benchmark):
    """Ablation: DRAM savings as the fixed pool fraction grows (0-50 %).

    A 24-server cluster gives three 8-server pool groups; smaller clusters can
    show negative savings because a single group's worst-case peak dominates.
    """
    cfg = TraceGenConfig(cluster_id="fraction-sweep", n_servers=24, duration_days=1.0,
                         target_core_utilization=0.85, seed=78)
    trace = TraceGenerator(cfg).generate()
    dimensioner = PoolDimensioner(n_servers=24)

    def sweep():
        return {
            fraction: dimensioner.evaluate(trace, 16, fixed_fraction_policy(fraction))
            for fraction in (0.0, 0.1, 0.3, 0.5)
        }

    results = benchmark(sweep)
    print()
    for fraction, savings in results.items():
        print(f"  {int(fraction * 100):>3d}% pool fraction -> "
              f"{savings.required_dram_percent:.1f}% of baseline DRAM")
    assert (results[0.5].required_dram_percent
            <= results[0.1].required_dram_percent + 1.0)

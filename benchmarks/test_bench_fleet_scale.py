"""Fleet-scale benchmark: batch policy engine vs per-VM callbacks at 1M VMs.

The paper's end-to-end evaluation replays ~100 production clusters' traces
(Section 6.1); this benchmark replays a >=1,000,000-VM synthetic workload
sharded across >=8 independent clusters through the ``FleetSimulator`` and
asserts that

* the vectorized ``decide_batch`` path produces *identical* DRAM-savings
  output to the legacy per-VM-callback path (same per-server peaks, same
  per-group pool peaks, shard for shard), and
* the batch path is at least 3x faster end to end than calling back into
  Python for every VM, and
* the merged ``FleetResult`` savings equal the sum of its shards'
  single-cluster results (sharding is exact, not approximate).

Shards run serially in-process so the timing compares the two policy paths
and nothing else.  Timing uses the per-shard ``run_seconds`` recorded by the
fleet runner (pooled replay only; trace generation and the no-pooling
baseline replay are excluded from both sides).
"""

import time

import pytest

from _bench_report import emit_report, pick
from repro.cluster.fleet import FleetSimulator, pond_policy_factory
from repro.cluster.tracegen import TraceGenConfig
from repro.core.prediction.combined import CombinedOperatingPoint

N_SHARDS = pick(8, 2)
N_SERVERS_PER_SHARD = pick(150, 40)
MIN_TOTAL_VMS = pick(1_000_000, 10_000)
MIN_SPEEDUP = pick(3.0, 2.0)
DURATION_DAYS = pick(5.3, 0.8)
MIN_VMS_PER_S = pick(50_000, 20_000)
POOL_SIZE_SOCKETS = 16

OPERATING_POINT = CombinedOperatingPoint(
    fp_percent=1.5, op_percent=2.0, li_percent=30.0, um_percent=22.0
)


@pytest.fixture(scope="module")
def fleet_and_traces():
    base = TraceGenConfig(
        cluster_id="mega",
        n_servers=N_SERVERS_PER_SHARD,
        duration_days=DURATION_DAYS,
        mean_lifetime_hours=2.0,
        target_core_utilization=0.85,
        seed=42,
    )
    fleet = FleetSimulator.sharded(
        N_SHARDS, base,
        pool_size_sockets=POOL_SIZE_SOCKETS,
        constrain_memory=False,
        sample_interval_s=3600.0,
    )
    start = time.perf_counter()
    traces = fleet.generate_traces()
    elapsed = time.perf_counter() - start
    total = sum(len(t) for t in traces)
    print(f"\ngenerated {total:,} VMs across {N_SHARDS} shards "
          f"({N_SHARDS * N_SERVERS_PER_SHARD} servers) in {elapsed:.1f}s")
    assert total >= MIN_TOTAL_VMS
    return fleet, traces


def test_bench_fleet_batch_policies_beat_callbacks_3x(fleet_and_traces):
    fleet, traces = fleet_and_traces
    factory = pond_policy_factory(OPERATING_POINT, seed=3)

    batch = fleet.run(factory, traces=traces, batch=True, compute_baseline=True)
    callback = fleet.run(factory, traces=traces, batch=False,
                         compute_baseline=False)

    total_vms = batch.n_vms
    print(f"\n{'path':<10} {'seconds':>9} {'VMs/s':>12} "
          f"{'placed':>10} {'mispred %':>10}")
    for name, result in (("batch", batch), ("callback", callback)):
        seconds = result.total_run_seconds
        print(f"{name:<10} {seconds:>9.2f} {total_vms / seconds:>12,.0f} "
              f"{result.placed_vms:>10,} "
              f"{result.policy_stats.misprediction_percent:>10.2f}")
    speedup = callback.total_run_seconds / batch.total_run_seconds
    print(f"speedup: {speedup:.1f}x  "
          f"(fleet savings: {batch.savings.savings_percent:.1f}% DRAM)")

    # Identical DRAM-savings output, shard for shard: the batch engine is a
    # pure acceleration, not an approximation.
    assert callback.placed_vms == batch.placed_vms
    assert callback.rejected_vms == batch.rejected_vms
    for shard_batch, shard_callback in zip(batch.shards, callback.shards):
        assert shard_batch.result.server_peak_local_gb \
            == shard_callback.result.server_peak_local_gb
        assert shard_batch.result.pool_peak_gb == shard_callback.result.pool_peak_gb
        assert shard_batch.required_local_dram_gb \
            == shard_callback.required_local_dram_gb
        assert shard_batch.required_pool_dram_gb \
            == shard_callback.required_pool_dram_gb
    assert callback.policy_stats.n_mispredictions \
        == batch.policy_stats.n_mispredictions

    # FleetResult savings are exactly the sum of the shards' single-cluster
    # savings components.
    savings = batch.savings
    assert savings.baseline_dram_gb == pytest.approx(
        sum(s.savings.baseline_dram_gb for s in batch.shards), rel=1e-12
    )
    assert savings.required_local_dram_gb == pytest.approx(
        sum(s.savings.required_local_dram_gb for s in batch.shards), rel=1e-12
    )
    assert savings.required_pool_dram_gb == pytest.approx(
        sum(s.savings.required_pool_dram_gb for s in batch.shards), rel=1e-12
    )
    assert savings.savings_percent > 0.0

    emit_report("fleet_scale_batch_vs_callback", {
        "n_vms": total_vms,
        "n_shards": N_SHARDS,
        "batch_seconds": batch.total_run_seconds,
        "callback_seconds": callback.total_run_seconds,
        "speedup": speedup,
        "speedup_floor": MIN_SPEEDUP,
        "savings_percent": savings.savings_percent,
    })
    assert speedup >= MIN_SPEEDUP, (
        f"batch policy path only {speedup:.1f}x faster than per-VM callbacks "
        f"(required >= {MIN_SPEEDUP}x)"
    )


def test_bench_fleet_batch_throughput_floor(fleet_and_traces):
    """The batch path must sustain >=50k VMs/s of pooled replay.

    (Typical throughput is 2-3x this; the floor leaves headroom for a loaded
    machine so only a real hot-path regression trips it.)
    """
    fleet, traces = fleet_and_traces
    factory = pond_policy_factory(OPERATING_POINT, seed=3)
    result = fleet.run(factory, traces=traces, batch=True,
                       compute_baseline=False)
    vms_per_s = result.n_vms / result.total_run_seconds
    print(f"\nbatch fleet throughput: {vms_per_s:,.0f} VMs/s "
          f"({result.total_run_seconds:.2f}s for {result.n_vms:,} VMs)")
    emit_report("fleet_scale_throughput", {
        "n_vms": result.n_vms,
        "n_shards": N_SHARDS,
        "seconds": result.total_run_seconds,
        "vms_per_s": vms_per_s,
        "vms_per_s_floor": MIN_VMS_PER_S,
    })
    assert result.placed_vms > 0
    assert vms_per_s >= MIN_VMS_PER_S

"""Streaming-scale benchmark: million-VM fleet replay without materialised traces.

The streaming trace layer (DESIGN.md section 4) exists so fleet studies can
replay arbitrarily long traces with peak trace memory bounded by one
generation window plus one chunk, instead of the whole trace.  This benchmark
replays a >=1,000,000-VM fleet (8 shards) both ways and asserts that

* the streamed replay's traced peak memory is a small fraction of what the
  materialised path allocates just to *hold* the pregenerated shard traces
  (the comparison is conservative: the materialised side is measured during
  generation only, excluding its replay overhead), and
* the two paths produce **identical** savings output -- placed/rejected
  counts, per-shard uniform local and pool DRAM requirements (the policy-
  dependent savings components), and policy misprediction counts.

``tracemalloc`` is used with a 1-frame stack to keep tracing overhead low;
both measured phases run in-process and serially so the peaks are comparable.
"""

import tracemalloc

import pytest

from _bench_report import emit_report, pick
from repro.cluster.fleet import FleetSimulator, pond_policy_factory
from repro.cluster.tracegen import TraceGenConfig
from repro.core.prediction.combined import CombinedOperatingPoint

N_SHARDS = pick(8, 2)
N_SERVERS_PER_SHARD = pick(150, 40)
MIN_TOTAL_VMS = pick(1_000_000, 10_000)
DURATION_DAYS = pick(5.3, 0.8)
STREAM_CHUNK_SIZE = pick(8192, 1024)
#: Streamed peak must come in at least this many times below materialised
#: (fixed interpreter overheads shrink the ratio at smoke scale).
MIN_MEMORY_RATIO = pick(4.0, 1.3)

OPERATING_POINT = CombinedOperatingPoint(
    fp_percent=1.5, op_percent=2.0, li_percent=30.0, um_percent=22.0
)


def fleet_base_config():
    return TraceGenConfig(
        cluster_id="stream-mega",
        n_servers=N_SERVERS_PER_SHARD,
        duration_days=DURATION_DAYS,
        mean_lifetime_hours=2.0,
        target_core_utilization=0.85,
        seed=42,
    )


def traced_peak_mb(fn):
    """Run ``fn`` under tracemalloc, return (result, peak in MiB)."""
    tracemalloc.start(1)
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak / (1024.0 * 1024.0)


def test_bench_streamed_fleet_replay_bounds_memory():
    base = fleet_base_config()
    fleet_kwargs = dict(
        pool_size_sockets=16, constrain_memory=False, sample_interval_s=3600.0
    )
    factory = pond_policy_factory(OPERATING_POINT, seed=3)

    # Materialised path, phase 1 (traced): generate and hold every shard
    # trace -- the O(trace) allocation streaming exists to avoid.
    materialised_fleet = FleetSimulator.sharded(N_SHARDS, base, **fleet_kwargs)
    traces, materialised_peak_mb = traced_peak_mb(
        materialised_fleet.generate_traces
    )
    total_vms = sum(len(t) for t in traces)
    print(f"\nmaterialised: {total_vms:,} VMs across {N_SHARDS} shards, "
          f"peak {materialised_peak_mb:,.0f} MiB during generation")
    assert total_vms >= MIN_TOTAL_VMS

    # Materialised path, phase 2 (untraced): the replay itself, for the
    # savings comparison.
    materialised = materialised_fleet.run(
        factory, traces=traces, compute_baseline=False
    )

    # Streamed path (traced end to end): generation windows and replay are
    # interleaved; no shard trace ever exists in full.
    del traces
    streamed_fleet = FleetSimulator.sharded(
        N_SHARDS, base, stream_chunk_size=STREAM_CHUNK_SIZE, **fleet_kwargs
    )
    streamed, streamed_peak_mb = traced_peak_mb(
        lambda: streamed_fleet.run(factory, compute_baseline=False)
    )
    ratio = materialised_peak_mb / streamed_peak_mb
    print(f"streamed:     {streamed.n_vms:,} VMs replayed, peak "
          f"{streamed_peak_mb:,.0f} MiB end to end ({ratio:.1f}x below "
          f"materialised, chunk={STREAM_CHUNK_SIZE})")
    assert streamed.n_vms == total_vms

    # Identical savings output, shard for shard: streaming is a pure memory
    # optimisation, not an approximation.  (The baseline replay is policy-
    # independent and shares the same replay machinery, so the uniform local
    # and pool requirements compared here are the full savings numerator.)
    assert streamed.placed_vms == materialised.placed_vms
    assert streamed.rejected_vms == materialised.rejected_vms
    for shard_streamed, shard_materialised in zip(
        streamed.shards, materialised.shards
    ):
        assert shard_streamed.required_local_dram_gb \
            == shard_materialised.required_local_dram_gb
        assert shard_streamed.required_pool_dram_gb \
            == shard_materialised.required_pool_dram_gb
        assert shard_streamed.result.pool_peak_gb \
            == shard_materialised.result.pool_peak_gb
    assert streamed.policy_stats.n_mispredictions \
        == materialised.policy_stats.n_mispredictions

    emit_report("stream_scale_memory", {
        "n_vms": total_vms,
        "n_shards": N_SHARDS,
        "stream_chunk_size": STREAM_CHUNK_SIZE,
        "materialised_peak_mib": materialised_peak_mb,
        "streamed_peak_mib": streamed_peak_mb,
        "memory_ratio": ratio,
        "memory_ratio_floor": MIN_MEMORY_RATIO,
    })
    assert ratio >= MIN_MEMORY_RATIO, (
        f"streamed replay peaked at {streamed_peak_mb:,.0f} MiB, only "
        f"{ratio:.1f}x below the materialised path's "
        f"{materialised_peak_mb:,.0f} MiB (required >= {MIN_MEMORY_RATIO}x)"
    )

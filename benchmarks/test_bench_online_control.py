"""Online control-loop benchmark: prediction-driven replay at >=100k VMs.

The paper's production system is a closed loop: scheduling-time ML predicts
each VM's zNUMA split, and a QoS monitor mitigates mispredictions by moving
pool memory back to local DRAM (Sections 4.3-4.4).  This benchmark drives
that loop at fleet scale on the array engine and asserts that

* the trained :class:`~repro.core.policies.PredictionPolicy` sustains a
  sane vectorized inference rate (``predictions_per_s`` with a recorded
  floor -- the GBM + forest predict path is the per-arrival hot loop of the
  online scheduler),
* the online replay (``online=OnlineControlConfig(...)``) covers >=100k VMs
  with mitigation enabled and sustains a sane event-loop throughput,
* with mitigation disabled (threshold ``inf``) the online loop is
  **byte-identical** to the static replay of the same policy (the
  differential contract the test suite locks down at small scale holds at
  benchmark scale too), and
* the emitted ``BENCH_online_control.json`` report carries the numbers,
  including the modelled mitigation-latency accounting.

Replays run serially in-process; the prediction timing isolates
``decide_batch`` (pure model inference) from replay bookkeeping.
"""

import time

import numpy as np
import pytest

from _bench_report import check_perf_floors, emit_report, pick, validate_report
from repro.cluster import ClusterSimulator, TraceGenerator, TraceGenConfig
from repro.core.control_plane.online import OnlineControlConfig
from repro.core.policies import PredictionPolicy

N_SERVERS = pick(200, 16)
DURATION_DAYS = pick(3.5, 0.5)
MIN_TOTAL_VMS = pick(100_000, 500)
MIN_PREDICTIONS_PER_S = pick(50_000, 2_000)
MIN_VMS_PER_S = pick(15_000, 500)
POOL_SIZE_SOCKETS = 16
QOS_THRESHOLD_PERCENT = 5.0
MIGRATION_COST_S_PER_GB = 0.2
#: Timed runs per path; each path's time is the min (interleaved runs damp
#: the +-30% single-shot noise a shared host shows).
TIMING_REPS = pick(3, 2)


@pytest.fixture(scope="module")
def trace_and_policy():
    cfg = TraceGenConfig(
        cluster_id="online-control",
        n_servers=N_SERVERS,
        duration_days=DURATION_DAYS,
        mean_lifetime_hours=2.0,
        target_core_utilization=0.85,
        seed=42,
    )
    start = time.perf_counter()
    trace = TraceGenerator(cfg).generate_bulk()
    gen_seconds = time.perf_counter() - start
    start = time.perf_counter()
    policy = PredictionPolicy.train(seed=3)
    train_seconds = time.perf_counter() - start
    print(f"\ngenerated {len(trace):,} VMs in {gen_seconds:.1f}s, "
          f"trained models in {train_seconds:.1f}s")
    assert len(trace) >= MIN_TOTAL_VMS
    return trace, policy


def test_bench_online_control_loop_at_scale(trace_and_policy):
    trace, policy = trace_and_policy
    n_vms = len(trace)

    def simulator():
        return ClusterSimulator(
            n_servers=N_SERVERS,
            pool_size_sockets=POOL_SIZE_SOCKETS,
            constrain_memory=False,
            sample_interval_s=3600.0,
            record_placements=False,
        )

    online_config = OnlineControlConfig(
        qos_threshold_percent=QOS_THRESHOLD_PERCENT,
        migration_cost_s_per_gb=MIGRATION_COST_S_PER_GB,
    )
    disabled_config = OnlineControlConfig(
        qos_threshold_percent=float("inf"),
        migration_cost_s_per_gb=MIGRATION_COST_S_PER_GB,
    )

    # Interleaved min-of-N timing: one rep runs every path back to back, so
    # a noise spike on the host hits them alike.  Replays and predictions
    # are deterministic, so keeping the last rep's results is exact.
    predict_times, static_times, online_times, disabled_times = [], [], [], []
    static = online = disabled = None
    for _ in range(TIMING_REPS):
        # vectorized model inference alone (the online scheduler's hot path)
        start = time.perf_counter()
        allocations = policy.decide_batch(trace)
        predict_times.append(time.perf_counter() - start)
        # static reference replay (inlined array loop)
        start = time.perf_counter()
        static = simulator().run(trace, policy)
        static_times.append(time.perf_counter() - start)
        # online replay, mitigation enabled
        start = time.perf_counter()
        online = simulator().run(trace, policy, online=online_config)
        online_times.append(time.perf_counter() - start)
        # online replay, mitigation disabled (the differential contract)
        start = time.perf_counter()
        disabled = simulator().run(trace, policy, online=disabled_config)
        disabled_times.append(time.perf_counter() - start)
    assert allocations.shape == (n_vms,)

    predict_seconds = min(predict_times)
    static_seconds = min(static_times)
    online_seconds = min(online_times)
    disabled_seconds = min(disabled_times)
    predictions_per_s = n_vms / predict_seconds
    vms_per_s = n_vms / online_seconds

    # Mitigation-disabled online replay is byte-identical to the static
    # replay: same sample rows, same peaks, same counters.
    assert np.array_equal(static.sample_buffer.rows(),
                          disabled.sample_buffer.rows())
    assert static.server_peak_local_gb == disabled.server_peak_local_gb
    assert static.server_peak_total_gb == disabled.server_peak_total_gb
    assert static.pool_peak_gb == disabled.pool_peak_gb
    assert static.placed_vms == disabled.placed_vms
    assert static.rejected_vms == disabled.rejected_vms
    assert disabled.online_stats.n_mitigations == 0
    assert disabled.online_stats.n_ticks == 0

    stats = online.online_stats
    assert stats.n_ticks > 0
    assert stats.n_mitigations > 0
    assert stats.migrated_gb > 0.0
    assert len(stats.mitigated_vm_ids) == stats.n_mitigations
    # Every mitigated VM came from the placed population.
    assert stats.n_mitigations <= static.placed_vms

    print(f"\n{'path':<18} {'seconds':>9} {'per-second':>14}")
    print(f"{'predict (batch)':<18} {predict_seconds:>9.2f} "
          f"{predictions_per_s:>14,.0f}")
    print(f"{'static replay':<18} {static_seconds:>9.2f} "
          f"{n_vms / static_seconds:>14,.0f}")
    print(f"{'online (enabled)':<18} {online_seconds:>9.2f} {vms_per_s:>14,.0f}")
    print(f"{'online (disabled)':<18} {disabled_seconds:>9.2f} "
          f"{n_vms / disabled_seconds:>14,.0f}")
    print(f"mitigations: {stats.n_mitigations} "
          f"({stats.migrated_gb:,.0f} GB pool->local, "
          f"{stats.mean_mitigation_s:.2f} s modelled each, "
          f"{stats.n_failed_mitigations} deferred over {stats.n_ticks} ticks)")

    report_path = emit_report("online_control", {
        "n_vms": n_vms,
        "n_servers": N_SERVERS,
        "pool_size_sockets": POOL_SIZE_SOCKETS,
        "qos_threshold_percent": QOS_THRESHOLD_PERCENT,
        "migration_cost_s_per_gb": MIGRATION_COST_S_PER_GB,
        "timing_reps": TIMING_REPS,
        "predict_seconds": predict_seconds,
        "static_seconds": static_seconds,
        "online_seconds": online_seconds,
        "disabled_seconds": disabled_seconds,
        "predictions_per_s": predictions_per_s,
        "predictions_per_s_floor": MIN_PREDICTIONS_PER_S,
        "vms_per_s": vms_per_s,
        "vms_per_s_floor": MIN_VMS_PER_S,
        "n_ticks": stats.n_ticks,
        "n_checks": stats.n_checks,
        "n_mitigations": stats.n_mitigations,
        "n_failed_mitigations": stats.n_failed_mitigations,
        "migrated_gb": stats.migrated_gb,
        "migration_time_s": stats.migration_time_s,
        "mean_mitigation_s": stats.mean_mitigation_s,
    })
    # The report must round-trip the schema and floor checks CI enforces.
    check_perf_floors(validate_report(report_path), name="online_control")
    assert predictions_per_s >= MIN_PREDICTIONS_PER_S, (
        f"prediction path sustained only {predictions_per_s:,.0f} "
        f"predictions/s (required >= {MIN_PREDICTIONS_PER_S:,})"
    )
    assert vms_per_s >= MIN_VMS_PER_S, (
        f"online replay sustained only {vms_per_s:,.0f} VMs/s "
        f"(required >= {MIN_VMS_PER_S:,})"
    )


def test_bench_online_fig21_smoke(trace_and_policy):
    """``fig21(mode="online")`` end to end at reduced grid size.

    The full-scale coverage is the loop benchmark above; this pins the
    experiment entry point (prediction factory row, online stats table) at
    a size fit for the smoke job.
    """
    from repro.experiments.fig21_end_to_end import (
        format_end_to_end_table,
        run_end_to_end_study,
    )

    study = run_end_to_end_study(
        n_servers=pick(32, 8),
        duration_days=pick(1.0, 0.25),
        pool_sizes=(POOL_SIZE_SOCKETS,),
        mode="online",
        qos_threshold_percent=QOS_THRESHOLD_PERCENT,
        stream_chunk_size=None,
    )
    assert "prediction" in study.savings
    assert study.online_stats is not None
    assert set(study.online_stats) == set(study.savings)
    table = format_end_to_end_table(study)
    assert "mitigations" in table
    print("\n" + table)

"""Benchmarks regenerating Figures 17-20 (the prediction models)."""

import pytest

from repro.experiments.fig17_latency_model import (
    format_latency_model_table,
    run_latency_model_study,
)
from repro.experiments.fig18_19_untouched import (
    build_untouched_dataset,
    format_untouched_model_table,
    run_production_timeline,
    run_untouched_model_study,
)
from repro.experiments.fig20_combined import format_combined_table, run_combined_model_study
from repro.experiments.untouched_distribution import (
    format_untouched_distribution,
    run_untouched_distribution,
)
from repro.workloads.catalog import build_catalog
from repro.workloads.sensitivity import SCENARIO_182, SCENARIO_222


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(seed=7)


@pytest.mark.benchmark(group="fig17-latency-model")
def test_bench_fig17_latency_insensitivity_model(benchmark, catalog):
    study = benchmark(
        run_latency_model_study, catalog=catalog, samples_per_workload=2, seed=31
    )
    print()
    print(format_latency_model_table(study))
    assert study.insensitive_at_2pct_fp["RandomForest"] > \
        study.insensitive_at_2pct_fp["Memory-bound"]


@pytest.mark.benchmark(group="fig18-untouched-model")
def test_bench_fig18_untouched_memory_model(benchmark):
    dataset = build_untouched_dataset(n_vms=800, seed=41)
    study = benchmark(run_untouched_model_study, dataset=dataset, n_estimators=40, seed=43)
    print()
    print(format_untouched_model_table(study))
    assert study.accuracy_gain > 1.0


@pytest.mark.benchmark(group="fig19-production-timeline")
def test_bench_fig19_production_timeline(benchmark):
    timeline = benchmark(run_production_timeline, n_days=5, vms_per_day=120, seed=47)
    print()
    print("Figure 19 -- day / untouched% / OP%:")
    for day, avg, op in zip(timeline.days, timeline.average_untouched_percent,
                            timeline.overprediction_percent):
        print(f"  day {int(day)}: {avg:.1f}% untouched, {op:.1f}% overpredictions")
    assert len(timeline.days) == 4


@pytest.mark.benchmark(group="fig20-combined-model")
def test_bench_fig20_combined_model(benchmark, catalog):
    study = benchmark(
        run_combined_model_study, scenario=SCENARIO_182, catalog=catalog,
        error_budgets=(0.0, 1.0, 2.0, 4.0, 6.0), seed=51,
    )
    print()
    print(format_combined_table([study]))
    assert study.pool_dram_at_misprediction(2.0) > 10.0


@pytest.mark.benchmark(group="section3-2-untouched-distribution")
def test_bench_untouched_memory_distribution(benchmark):
    study = benchmark(run_untouched_distribution, n_clusters=5, vms_per_cluster=400, seed=71)
    print()
    print(format_untouched_distribution(study))
    assert 30.0 <= study.fleet_percentile(50) <= 70.0

"""Shared helpers for the scale benchmarks: machine-readable reports + smoke mode.

Every scale benchmark emits a ``BENCH_<name>.json`` file (timings, speedup
ratios, peak memory) so the perf trajectory can be tracked across PRs by
diffing artifacts instead of scraping assertion messages.  Reports land next
to this file by default; set ``BENCH_REPORT_DIR`` to redirect them (CI
uploads them as artifacts).

``BENCH_SMOKE=1`` switches the benchmarks to reduced scale with relaxed
speedup floors: small enough for a per-PR CI job, still asserting the same
*shape* of result (identical outputs, speedup above a floor) so hot-path
regressions surface before the full-scale run ever executes.

The validation side (report schema, recorded perf floors) lives in
:mod:`repro.analysis.perf_floors` -- shared with the ``python -m
repro.analysis perf-floors`` subcommand -- and is re-exported here so the
benchmark scripts keep one import surface.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

try:
    from repro.analysis.perf_floors import (
        REQUIRED_REPORT_FIELDS,
        check_perf_floors,
        validate_report,
    )
except ImportError:  # invoked without PYTHONPATH=src: resolve the repo layout
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.analysis.perf_floors import (
        REQUIRED_REPORT_FIELDS,
        check_perf_floors,
        validate_report,
    )

__all__ = ["smoke_mode", "pick", "emit_report", "REQUIRED_REPORT_FIELDS",
           "validate_report", "check_perf_floors"]


def smoke_mode() -> bool:
    """True when the reduced-scale CI smoke mode is requested."""
    return os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def pick(full, smoke):
    """Pick the full-scale or smoke-scale value for a benchmark constant."""
    return smoke if smoke_mode() else full


def emit_report(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` (machine-readable benchmark outcome).

    ``payload`` should carry plain scalars: seconds, speedup ratios, sizes,
    peak MiB.  Standard metadata (mode, timestamp, python/platform, cpu
    count) is added so reports from different runs are comparable.
    """
    report = {
        "benchmark": name,
        "smoke": smoke_mode(),
        "unix_time": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        **payload,
    }
    out_dir = Path(os.environ.get("BENCH_REPORT_DIR", Path(__file__).parent))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path

"""Shared helpers for the scale benchmarks: machine-readable reports + smoke mode.

Every scale benchmark emits a ``BENCH_<name>.json`` file (timings, speedup
ratios, peak memory) so the perf trajectory can be tracked across PRs by
diffing artifacts instead of scraping assertion messages.  Reports land next
to this file by default; set ``BENCH_REPORT_DIR`` to redirect them (CI
uploads them as artifacts).

``BENCH_SMOKE=1`` switches the benchmarks to reduced scale with relaxed
speedup floors: small enough for a per-PR CI job, still asserting the same
*shape* of result (identical outputs, speedup above a floor) so hot-path
regressions surface before the full-scale run ever executes.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

__all__ = ["smoke_mode", "pick", "emit_report", "REQUIRED_REPORT_FIELDS",
           "validate_report", "check_perf_floors"]

#: Metadata fields :func:`emit_report` promises in every ``BENCH_*.json``;
#: the CI bench-smoke job schema-checks every emitted report against this
#: list (plus ``benchmark`` matching the file name).
REQUIRED_REPORT_FIELDS = (
    "benchmark",
    "smoke",
    "unix_time",
    "python",
    "platform",
    "cpu_count",
)


def validate_report(path) -> dict:
    """Load one ``BENCH_*.json`` and check the emit_report schema.

    Returns the parsed report; raises ``ValueError`` naming the file and the
    missing/mismatched field otherwise.  Used by the CI schema check so the
    promise stays enforced, not aspirational.
    """
    path = Path(path)
    report = json.loads(path.read_text())
    missing = [f for f in REQUIRED_REPORT_FIELDS if f not in report]
    if missing:
        raise ValueError(f"{path.name}: missing required fields {missing}")
    expected_name = path.stem[len("BENCH_"):]
    if report["benchmark"] != expected_name:
        raise ValueError(
            f"{path.name}: benchmark field {report['benchmark']!r} does not "
            f"match file name ({expected_name!r})"
        )
    return report


def check_perf_floors(report: dict, name: str = "report") -> list:
    """Check every ``<metric>_floor`` pair a ``BENCH_*.json`` report carries.

    The benchmarks record each perf floor they assert right next to the
    measured value (``events_per_s`` / ``events_per_s_floor``, ``speedup``
    / ``speedup_floor``, ...).  Floors are uniformly *minimums*: the
    metric must be ``>=`` its floor.  This re-checks the recorded pairs so
    the CI bench-smoke job catches a report that was emitted before its
    benchmark's floor assertion fired, or one edited out of step with its
    measurement.

    Returns the list of ``(metric, value, floor)`` tuples checked (may be
    empty: not every report asserts a floor); raises ``ValueError`` naming
    the report and the offending field on a missing metric, a
    non-numeric pair, or a floor violation.
    """
    checked = []
    for key in sorted(report):
        if not key.endswith("_floor"):
            continue
        metric = key[: -len("_floor")]
        if metric not in report:
            raise ValueError(
                f"{name}: {key} present but metric {metric!r} missing"
            )
        value, floor = report[metric], report[key]
        if not isinstance(value, (int, float)) or not isinstance(
                floor, (int, float)):
            raise ValueError(
                f"{name}: {metric}/{key} must be numeric, got "
                f"{value!r} / {floor!r}"
            )
        if value < floor:
            raise ValueError(
                f"{name}: {metric}={value:g} below recorded floor "
                f"{key}={floor:g}"
            )
        checked.append((metric, value, floor))
    return checked


def smoke_mode() -> bool:
    """True when the reduced-scale CI smoke mode is requested."""
    return os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def pick(full, smoke):
    """Pick the full-scale or smoke-scale value for a benchmark constant."""
    return smoke if smoke_mode() else full


def emit_report(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` (machine-readable benchmark outcome).

    ``payload`` should carry plain scalars: seconds, speedup ratios, sizes,
    peak MiB.  Standard metadata (mode, timestamp, python/platform, cpu
    count) is added so reports from different runs are comparable.
    """
    report = {
        "benchmark": name,
        "smoke": smoke_mode(),
        "unix_time": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        **payload,
    }
    out_dir = Path(os.environ.get("BENCH_REPORT_DIR", Path(__file__).parent))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path

#!/usr/bin/env python
"""Thin shim: the fault-determinism check moved into ``repro.analysis``.

``python -m repro.analysis determinism`` is the front door now (the replay
set and constants live in :mod:`repro.analysis.determinism`); this script
stays so existing CI invocations and muscle memory keep working, with
byte-identical stdout.
"""

import sys
from pathlib import Path

try:
    from repro.analysis.determinism import main
except ImportError:  # invoked without PYTHONPATH=src: resolve the repo layout
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.analysis.determinism import main

if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Print canonical fault-impact stats for a fixed set of seeded replays.

CI runs this script twice with different ``PYTHONHASHSEED`` values and
diffs the outputs: seeded fault injection must be hash-seed independent
(DESIGN.md section 11).  The script covers every replay path that can
carry a :class:`~repro.cluster.faults.FaultSchedule`:

* a single-cluster array replay,
* cross-shard replays on both topologies (per-shard and spanning, with
  the shard sizes chosen so spanning groups cross the shard seam),
* a fleet run, serial vs process-pool (shardwise ``for_shard`` routing).

Output is canonical JSON (sorted keys) on stdout, one object per line,
so ``diff`` of two runs is meaningful.  Exits non-zero if the serial and
process-pool fleets disagree with each other within the same process.
"""

import json
import sys

from repro.cluster import ClusterSimulator, TraceGenConfig, TraceGenerator
from repro.cluster.faults import FaultSchedule
from repro.cluster.fleet import FleetSimulator, static_policy_factory
from repro.cluster.pool_topology import PoolTopology, replay_crossshard
from repro.cluster.server import ServerConfig
from repro.core.policies import StaticFractionPolicy

N_SERVERS = 10
DURATION_DAYS = 0.5
POOL_CAPACITY_GB_PER_GROUP = 300.0
SEED = 21

SERVER_CONFIG = ServerConfig(
    name="fault-determinism", sockets=2, cores_per_socket=24,
    dram_per_socket_gb=48.0,
)


def make_config(index):
    return TraceGenConfig(
        cluster_id=f"det-{index:02d}", n_servers=N_SERVERS,
        duration_days=DURATION_DAYS, mean_lifetime_hours=4.0,
        target_core_utilization=0.95, seed=SEED + index,
        server_config=SERVER_CONFIG,
    )


def make_schedule(n_groups, shard=0):
    return FaultSchedule.seeded(
        groups=range(n_groups),
        horizon_s=DURATION_DAYS * 86400.0,
        mean_time_between_failures_s=3.0 * 3600.0,
        repair_delay_s=3600.0,
        seed=SEED,
        shard=shard,
        migration_retry_budget=1,
    )


def emit(label, stats):
    print(json.dumps({"replay": label, "stats": stats.as_dict()},
                     sort_keys=True))


def main():
    traces = [TraceGenerator(make_config(i)).generate_bulk()
              for i in range(2)]
    policy = StaticFractionPolicy(fraction=0.6, seed=SEED)

    # Single-cluster array replay.
    sim = ClusterSimulator(
        n_servers=N_SERVERS, pool_size_sockets=8,
        pool_capacity_gb_per_group=POOL_CAPACITY_GB_PER_GROUP,
        constrain_memory=True, sample_interval_s=3600.0,
        server_config=SERVER_CONFIG,
    )
    n_groups = -(-N_SERVERS * SERVER_CONFIG.sockets // 8)  # ceil
    single = sim.run(traces[0], policy, faults=make_schedule(n_groups))
    emit("single_cluster", single.fault_stats)

    # Cross-shard replays, both topologies.  N_SERVERS=10 with pool size 8
    # (4 servers/group) leaves spanning group 2 straddling the shard seam.
    shard_sizes = [N_SERVERS, N_SERVERS]
    configs = [SERVER_CONFIG, SERVER_CONFIG]
    policies = [StaticFractionPolicy(fraction=0.6, seed=SEED)
                for _ in range(2)]
    for scope in ("per_shard", "spanning"):
        topology = getattr(PoolTopology, scope)(
            shard_sizes, SERVER_CONFIG.sockets, 8
        )
        results, _ = replay_crossshard(
            traces, policies, shard_sizes, configs, topology,
            POOL_CAPACITY_GB_PER_GROUP, True, 3600.0,
            faults=make_schedule(topology.n_groups),
        )
        for shard, result in enumerate(results):
            emit(f"crossshard_{scope}_shard{shard}", result.fault_stats)

    # Fleet, serial vs process pool: shardwise for_shard routing.
    events = []
    for shard in range(2):
        events.extend(make_schedule(2, shard=shard).events)
    schedule = FaultSchedule(events=tuple(events), migration_retry_budget=1)
    fleet_stats = []
    for workers in (None, 2):
        fleet = FleetSimulator(
            shard_configs=[make_config(i) for i in range(2)],
            pool_size_sockets=8,
            pool_capacity_gb_per_group=POOL_CAPACITY_GB_PER_GROUP,
            constrain_memory=True,
            max_workers=workers,
        )
        with fleet:
            result = fleet.run(
                static_policy_factory(fraction=0.6, seed=SEED),
                compute_baseline=False, faults=schedule,
            )
        fleet_stats.append(result.fault_stats.as_dict())
        label = "serial" if workers is None else f"pool{workers}"
        emit(f"fleet_{label}", result.fault_stats)
    if fleet_stats[0] != fleet_stats[1]:
        print("FAIL: serial and process-pool fleets disagree",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Quickstart: the Pond pipeline on a single host, end to end.

This example walks through the paper's core workflow at the smallest useful
scale:

1. build the CXL pool hardware (an EMC) and a host,
2. train Pond's two prediction models on synthetic telemetry,
3. schedule a handful of VMs through the Pond scheduler (zNUMA sizing,
   slice onlining),
4. run the QoS monitor and mitigate a deliberately mispredicted VM.

Run with ``python examples/quickstart.py``.
"""

import numpy as np

from repro.core.config import PondConfig
from repro.core.control_plane.mitigation import MitigationManager
from repro.core.control_plane.pool_manager import PoolManager
from repro.core.control_plane.qos_monitor import QoSMonitor, QoSVerdict
from repro.core.control_plane.scheduler import PondScheduler
from repro.core.prediction.latency_model import LatencyInsensitivityModel
from repro.core.prediction.untouched_model import UntouchedMemoryPredictor
from repro.cxl.emc import EMCDevice
from repro.cxl.latency import LatencyModel
from repro.experiments.fig18_19_untouched import build_untouched_dataset
from repro.hypervisor.host import Host
from repro.hypervisor.vm import VMRequest
from repro.workloads.catalog import build_catalog
from repro.workloads.generator import PMUFeatureGenerator
from repro.workloads.sensitivity import SCENARIO_182, slowdown_under_spill


def main() -> None:
    config = PondConfig(pdm_percent=5.0, tail_percentage=98.0, pool_size_sockets=16)
    print("=== Pond quickstart ===")
    print(f"PDM = {config.pdm_percent}%  TP = {config.tail_percentage}%  "
          f"pool = {config.pool_size_sockets} sockets")

    # 1. Hardware: latency of the chosen pool size, one EMC, one host.
    latency = LatencyModel()
    pool_ns = latency.pond_pool(config.pool_size_sockets).total_ns
    print(f"pool access latency: {pool_ns:.0f} ns "
          f"({latency.pond_pool(config.pool_size_sockets).percent_of_local():.0f}% of local)")
    emc = EMCDevice("emc-0", capacity_gb=512, n_ports=16)
    host = Host("host-0", total_cores=48, local_memory_gb=384.0, pool_latency_ns=pool_ns)
    pool_manager = PoolManager(emc)
    pool_manager.register_host(host)

    # 2. Train the prediction models on synthetic offline runs.
    catalog = build_catalog(seed=7)
    generator = PMUFeatureGenerator(seed=1)
    training = generator.training_set(catalog, SCENARIO_182, samples_per_workload=2)
    latency_model = LatencyInsensitivityModel(pdm_percent=config.pdm_percent,
                                              n_estimators=30, random_state=1)
    latency_model.fit(training.features, training.slowdowns)
    latency_model.calibrate_threshold(training.features, training.slowdowns,
                                      fp_target_percent=2.0)
    dataset = build_untouched_dataset(n_vms=600, seed=1)
    untouched_model = UntouchedMemoryPredictor(quantile=0.05, n_estimators=40,
                                               random_state=1)
    untouched_model.fit(dataset.metadata_rows, dataset.untouched_fractions)
    print(f"trained on {len(training)} offline runs and {len(dataset)} VM histories")

    # 3. Schedule VMs through the Figure 13 decision tree.
    rng = np.random.default_rng(2)
    workloads = {w.name: w for w in catalog}
    chosen = list(workloads)[:6]
    vm_workload = {}

    def insensitivity_predictor(request: VMRequest):
        workload = vm_workload[request.vm_id]
        features = generator.feature_vector(workload, rng).reshape(1, -1)
        return bool(latency_model.predict_insensitive(features)[0])

    def untouched_predictor(request: VMRequest) -> float:
        row = {
            "memory_gb": request.memory_gb, "cores": request.cores,
            "vm_family": request.vm_type, "guest_os": request.guest_os,
            "region": request.region,
            "history_percentiles": list(np.full(5, 0.4)),
        }
        return untouched_model.predict_znuma_gb(row, request.memory_gb)

    scheduler = PondScheduler(config, pool_manager, insensitivity_predictor,
                              untouched_predictor)
    placed = []
    print("\n--- scheduling decisions ---")
    for i, name in enumerate(chosen):
        request = VMRequest.create(cores=4, memory_gb=32.0, workload_name=name)
        vm_workload[request.vm_id] = workloads[name]
        vm = scheduler.schedule(request, host, start_time_s=float(i))
        decision = scheduler.decisions[request.vm_id]
        kind = ("fully pool-backed" if decision.fully_pool_backed
                else "zNUMA" if decision.uses_pool else "all local")
        print(f"  {name:<22} -> local {vm.local_memory_gb:5.1f} GB, "
              f"pool {vm.pool_memory_gb:5.1f} GB  ({kind})")
        placed.append(vm)

    # 4. Simulate guest behaviour, monitor QoS, and mitigate if needed.
    for vm in placed:
        touched = vm.total_memory_gb * float(rng.uniform(0.4, 1.0))
        vm.record_touch(touched)

    def slowdown_estimator(vm):
        workload = vm_workload[vm.vm_id]
        spill = min(1.0, vm.spilled_gb / max(vm.touched_memory_gb, 1e-9))
        return slowdown_under_spill(workload, SCENARIO_182, spill)

    monitor = QoSMonitor(config, slowdown_estimator)
    mitigator = MitigationManager()
    print("\n--- QoS monitoring ---")
    for vm in placed:
        decision = monitor.check_vm(vm)
        line = f"  {vm_workload[vm.vm_id].name:<22} {decision.verdict.value:<16} " \
               f"spill {decision.spilled_gb:4.1f} GB  est. slowdown " \
               f"{decision.estimated_slowdown_percent:4.1f}%"
        print(line)
        if decision.verdict is QoSVerdict.MITIGATE:
            record = mitigator.mitigate(host, vm.vm_id)
            print(f"    -> mitigated via {record.method} in {record.duration_s * 1000:.0f} ms")

    print("\npool slices assigned to host:", pool_manager.host_pool_gb(host.host_id), "GB")
    print("unassigned pool capacity:   ", pool_manager.unassigned_pool_gb, "GB")
    print("done.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Datacenter stranding study (paper Section 3.1, Figures 2 and 3).

Simulates a fleet of clusters with different utilisation levels, reports how
much DRAM is stranded as core allocation grows, and then estimates how much
DRAM a CXL pool of different sizes would save under fixed pool fractions.

Run with ``python examples/stranding_study.py [--quick]``.
"""

import argparse

from repro.experiments.fig2_stranding import (
    format_stranding_table,
    run_rack_timeseries,
    run_stranding_study,
)
from repro.experiments.fig3_pool_size import format_pool_size_table, run_pool_size_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="use a smaller fleet for a faster run")
    args = parser.parse_args()

    n_clusters = 6 if args.quick else 16
    n_servers = 12 if args.quick else 32
    duration = 2.0 if args.quick else 6.0

    print("=== stranding vs scheduled cores (Figure 2a) ===")
    study = run_stranding_study(n_clusters=n_clusters, n_servers=n_servers,
                                duration_days=duration, seed=5)
    print(format_stranding_table(study))

    print("\n=== stranding over time with a workload shift (Figure 2b) ===")
    series = run_rack_timeseries(n_racks=4, n_servers=max(8, n_servers // 2),
                                 duration_days=max(4.0, duration), shift_day=duration / 2,
                                 seed=9)
    for rack, (days, values) in series.items():
        shape = " ".join(f"{v:4.1f}" for v in values[:: max(1, len(values) // 8)])
        print(f"  {rack}: stranded% by day -> {shape}")

    print("\n=== DRAM needed vs pool size (Figure 3) ===")
    pool_study = run_pool_size_study(n_servers=n_servers, duration_days=duration, seed=13)
    print(format_pool_size_table(pool_study))
    best = min(
        (pool_study.required_dram_percent(f, s), f, s)
        for f in pool_study.fractions for s in pool_study.pool_sizes
    )
    print(f"\nbest configuration: {int(best[1] * 100)}% pool fraction on a "
          f"{best[2]}-socket pool -> {100 - best[0]:.1f}% DRAM savings")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""End-to-end DRAM savings: Pond vs a static pooling strawman (Figure 21).

Trains Pond's prediction models, solves the Eq.(1) trade-off for the
configured PDM/TP, and replays a synthetic cluster trace to compare the DRAM
that must be provisioned under Pond, under a static 15 % policy, and without
pooling.

Run with ``python examples/pond_vs_static_savings.py [--quick]``.
"""

import argparse

from repro.core.config import PondConfig
from repro.experiments.fig20_combined import run_combined_model_study
from repro.experiments.fig21_end_to_end import (
    format_end_to_end_table,
    run_end_to_end_study,
)
from repro.workloads.catalog import build_catalog
from repro.workloads.sensitivity import SCENARIO_182, SCENARIO_222


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller cluster and models")
    args = parser.parse_args()

    config = PondConfig(pdm_percent=5.0, tail_percentage=98.0)
    catalog = build_catalog(seed=7)

    print("=== solving the combined model (Figure 20) ===")
    operating_points = {}
    for label, scenario in (("182", SCENARIO_182), ("222", SCENARIO_222)):
        study = run_combined_model_study(scenario=scenario, catalog=catalog, seed=51)
        point = study.operating_point_at_2pct
        operating_points[label] = point
        print(f"  {scenario.name}: LI={point.li_percent:.1f}%  UM={point.um_percent:.1f}%  "
              f"pool DRAM={point.pool_dram_percent:.1f}%  "
              f"mispredictions={point.scheduling_misprediction_percent:.2f}%")

    print("\n=== end-to-end savings (Figure 21) ===")
    study = run_end_to_end_study(
        config=config,
        n_servers=16 if args.quick else 32,
        duration_days=1.0 if args.quick else 2.5,
        operating_points=operating_points,
        seed=61,
    )
    print(format_end_to_end_table(study))

    for pool_size in (16, 32):
        if pool_size in study.pool_sizes:
            pond = study.savings_percent("pond_182", pool_size)
            static = study.savings_percent("static_15pct", pool_size)
            print(f"\nat a {pool_size}-socket pool: Pond saves {pond:.1f}% of DRAM "
                  f"vs {static:.1f}% for the static strawman")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""zNUMA lab study: workload sensitivity and spill behaviour (Figures 4, 5, 15, 16).

Reproduces the lab-side characterisation: how the 158 workloads react to CXL
latency, how a correctly sized zNUMA node keeps pool traffic negligible, and
what happens when the untouched-memory prediction is wrong and the working
set spills onto the pool.

Run with ``python examples/znuma_sensitivity_lab.py``.
"""

from repro.experiments.fig4_5_sensitivity import (
    format_sensitivity_summary,
    run_sensitivity_study,
    slowdown_cdf,
)
from repro.experiments.fig15_znuma import format_znuma_table, run_znuma_study
from repro.experiments.fig16_spill import format_spill_table, run_spill_study
from repro.workloads.catalog import build_catalog


def main() -> None:
    catalog = build_catalog(seed=7)

    print("=== workload sensitivity to CXL latency (Figures 4/5) ===")
    study = run_sensitivity_study(catalog=catalog)
    print(format_sensitivity_summary(study))

    grid, cdf = slowdown_cdf(study.slowdowns_182)
    for target in (1.0, 5.0, 25.0):
        index = int((grid <= target).sum()) - 1
        print(f"  CDF at {target:>4.0f}% slowdown (182% latency): {cdf[index]:.2f}")

    print("\n=== zNUMA traffic with correct predictions (Figure 15) ===")
    print(format_znuma_table(run_znuma_study()))

    print("\n=== slowdown when the working set spills (Figure 16) ===")
    print(format_spill_table(run_spill_study(catalog=catalog)))

    print("\nInterpretation: a correctly sized zNUMA node behaves like all-local "
          "memory, while overpredicted untouched memory causes slowdowns that "
          "grow with the spilled fraction -- the reason Pond pairs its predictions "
          "with a QoS monitor and mitigation path.")


if __name__ == "__main__":
    main()

"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` falls back to the legacy setup.py
code path when PEP-517 wheel building is unavailable (this offline environment
has setuptools but not wheel).  All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` falls back to the legacy setup.py
code path when PEP-517 wheel building is unavailable (this offline environment
has setuptools but not wheel).
"""

from setuptools import find_packages, setup

setup(
    name="pond-repro",
    version="0.1.0",
    description="Reproduction of Pond: CXL-Based Memory Pooling Systems for Cloud Platforms",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    # The simulator, trace generator, and ML stack all import numpy.
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            # Front door for the determinism/pickle/contract lint suite
            # (same as `python -m repro.analysis`).
            "repro-lint = repro.analysis.cli:main",
        ],
    },
)

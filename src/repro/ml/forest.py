"""Random forests built on the CART trees in :mod:`repro.ml.tree`.

Pond's latency-insensitivity model is "a simple random forest (RandomForest)
from Scikit-learn" (paper Section 5).  This module supplies a drop-in
equivalent: bootstrap sampling of training rows, per-split feature
subsampling, and soft-vote aggregation of the per-tree class probabilities.
A regressor variant is included because several ablation benchmarks compare
forest-based regression against the gradient-boosted model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = ["RandomForestClassifier", "RandomForestRegressor"]


class _BaseForest:
    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        random_state: Optional[int] = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.estimators_: list = []

    def _make_tree(self, seed: int):
        raise NotImplementedError

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have mismatched lengths")
        rng = np.random.default_rng(self.random_state)
        self.estimators_ = []
        self._pre_fit(y)
        n = X.shape[0]
        for i in range(self.n_estimators):
            seed = int(rng.integers(0, 2**31 - 1))
            tree = self._make_tree(seed)
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
                tree.fit(X[idx], y[idx])
            else:
                tree.fit(X, y)
            self.estimators_.append(tree)
        return self

    def _pre_fit(self, y: np.ndarray) -> None:
        """Hook for subclasses to record target metadata before fitting."""

    def _check_fitted(self) -> None:
        if not self.estimators_:
            raise RuntimeError("this forest has not been fitted yet")


class RandomForestClassifier(_BaseForest):
    """Bootstrap-aggregated CART classifier with soft voting.

    ``predict_proba`` averages the class-frequency estimates of every tree's
    reached leaf, which gives the smooth scores the paper needs to sweep the
    false-positive-rate / insensitive-fraction trade-off (Figure 17).
    """

    def _pre_fit(self, y: np.ndarray) -> None:
        self.classes_ = np.unique(y)
        self.n_classes_ = len(self.classes_)

    def _make_tree(self, seed: int) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=seed,
        )

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        proba = np.zeros((X.shape[0], self.n_classes_))
        for tree in self.estimators_:
            tree_proba = tree.predict_proba(X)
            # Align the tree's class ordering with the forest's ordering; a
            # bootstrap sample can miss classes entirely.
            for j, cls in enumerate(tree.classes_):
                k = int(np.searchsorted(self.classes_, cls))
                proba[:, k] += tree_proba[:, j]
        proba /= len(self.estimators_)
        return proba

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X, y) -> float:
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))


class RandomForestRegressor(_BaseForest):
    """Bootstrap-aggregated CART regressor (mean of per-tree predictions)."""

    def _make_tree(self, seed: int) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=seed,
        )

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        preds = np.zeros(X.shape[0])
        for tree in self.estimators_:
            preds += tree.predict(X)
        return preds / len(self.estimators_)

    def score(self, X, y) -> float:
        """Coefficient of determination (R^2)."""
        y = np.asarray(y, dtype=float)
        pred = self.predict(X)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - np.mean(y)) ** 2))
        if ss_tot == 0.0:
            return 0.0 if ss_res > 0 else 1.0
        return 1.0 - ss_res / ss_tot

"""Gradient-boosted regression trees, including quantile (pinball) regression.

The paper's untouched-memory model is a "gradient boosted regression model
(GBM) from LightGBM [that] makes a quantile regression prediction with a
configurable target percentile" (Section 5).  This module implements the
required functionality directly:

* :class:`GradientBoostingRegressor` -- standard least-squares boosting with
  shrinkage and optional row subsampling.
* :class:`QuantileGradientBoostingRegressor` -- boosting on the pinball loss.
  Each stage fits a regression tree to the loss gradient and then re-labels
  the leaves with the in-leaf residual quantile, the same leaf-refinement
  LightGBM performs for quantile objectives.  Predicting a *low* quantile of
  untouched memory (e.g. the 10th percentile) is exactly how Pond keeps its
  overprediction rate below the configured target.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.tree import DecisionTreeRegressor, TreeNode

__all__ = ["GradientBoostingRegressor", "QuantileGradientBoostingRegressor"]


def _assign_leaves(tree: DecisionTreeRegressor, X: np.ndarray) -> np.ndarray:
    """Return, for every row of ``X``, the id() of the leaf node it reaches."""
    leaf_ids = np.empty(X.shape[0], dtype=np.int64)
    for i, row in enumerate(X):
        node = tree.root_
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        leaf_ids[i] = id(node)
    return leaf_ids


def _iter_leaves(node: TreeNode):
    if node.is_leaf:
        yield node
    else:
        yield from _iter_leaves(node.left)
        yield from _iter_leaves(node.right)


class GradientBoostingRegressor:
    """Least-squares gradient boosting with shrinkage and subsampling."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        random_state: Optional[int] = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state
        self.estimators_: list = []
        self.init_: float = 0.0

    # -- loss hooks ----------------------------------------------------------
    def _initial_prediction(self, y: np.ndarray) -> float:
        return float(np.mean(y))

    def _negative_gradient(self, y: np.ndarray, pred: np.ndarray) -> np.ndarray:
        return y - pred

    def _leaf_update(self, residuals: np.ndarray) -> float:
        return float(np.mean(residuals))

    # -- training ------------------------------------------------------------
    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have mismatched lengths")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self.random_state)
        self.init_ = self._initial_prediction(y)
        pred = np.full(y.shape, self.init_)
        self.estimators_ = []
        n = X.shape[0]
        for _ in range(self.n_estimators):
            grad = self._negative_gradient(y, pred)
            if self.subsample < 1.0:
                m = max(1, int(round(self.subsample * n)))
                idx = rng.choice(n, size=m, replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], grad[idx])
            # Re-label leaves with the loss-specific optimal update computed on
            # the *true* residuals (LightGBM-style leaf refinement).
            leaf_of_row = _assign_leaves(tree, X)
            residual = y - pred
            for leaf in _iter_leaves(tree.root_):
                mask = leaf_of_row == id(leaf)  # repro: noqa DET002 -- leaf ids captured and compared within one fit pass; the tree keeps every leaf alive
                if mask.any():
                    leaf.value = np.array([self._leaf_update(residual[mask])])  # repro: noqa DET002 -- mask is the boolean array from the comparison above, not an address key
            tree._flat = None  # leaf refinement invalidates the flattened form
            update = tree.predict(X)
            pred = pred + self.learning_rate * update
            self.estimators_.append(tree)
        return self

    def predict(self, X) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("this model has not been fitted yet")
        X = np.asarray(X, dtype=float)
        pred = np.full(X.shape[0], self.init_)
        for tree in self.estimators_:
            pred = pred + self.learning_rate * tree.predict(X)
        return pred

    def staged_predict(self, X):
        """Yield predictions after each boosting stage (for learning curves)."""
        if not self.estimators_:
            raise RuntimeError("this model has not been fitted yet")
        X = np.asarray(X, dtype=float)
        pred = np.full(X.shape[0], self.init_)
        for tree in self.estimators_:
            pred = pred + self.learning_rate * tree.predict(X)
            yield pred.copy()


class QuantileGradientBoostingRegressor(GradientBoostingRegressor):
    """Gradient boosting on the pinball loss for a configurable quantile.

    ``alpha`` is the target quantile in (0, 1).  Pond uses a low quantile
    (e.g. 0.05-0.20) so that the predicted untouched memory is *exceeded* by
    the true untouched memory for most VMs, keeping overpredictions rare.
    """

    def __init__(
        self,
        alpha: float = 0.1,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        random_state: Optional[int] = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        super().__init__(
            n_estimators=n_estimators,
            learning_rate=learning_rate,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            subsample=subsample,
            random_state=random_state,
        )
        self.alpha = alpha

    def _initial_prediction(self, y: np.ndarray) -> float:
        return float(np.quantile(y, self.alpha))

    def _negative_gradient(self, y: np.ndarray, pred: np.ndarray) -> np.ndarray:
        # Negative gradient of the pinball loss: alpha where under-predicted,
        # alpha - 1 where over-predicted.
        return np.where(y > pred, self.alpha, self.alpha - 1.0)

    def _leaf_update(self, residuals: np.ndarray) -> float:
        return float(np.quantile(residuals, self.alpha))

"""CART decision trees (classification and regression).

These trees are the building blocks for the random forest used by Pond's
latency-insensitivity model and for the gradient-boosted regressor used by the
untouched-memory model.  They implement the classic CART algorithm:

* binary splits on a single feature threshold,
* greedy selection of the split that maximises impurity reduction
  (Gini impurity for classification, variance for regression),
* optional feature subsampling at every split (``max_features``), which is the
  ingredient random forests rely on for decorrelation.

The implementation is vectorised with numpy where it matters (candidate-split
scanning is done on sorted columns with cumulative statistics) so that the
test-suite and the benchmark harness run in seconds, not minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "TreeNode",
]


@dataclass
class TreeNode:
    """A single node of a fitted CART tree.

    Leaves have ``feature is None``; internal nodes route samples with
    ``x[feature] <= threshold`` to ``left`` and the rest to ``right``.
    ``value`` holds the class-probability vector (classification) or the mean
    target (regression) of the training samples that reached the node.
    """

    value: np.ndarray
    n_samples: int
    impurity: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def node_count(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + self.left.node_count() + self.right.node_count()

    def max_depth(self) -> int:
        if self.is_leaf:
            return self.depth
        return max(self.left.max_depth(), self.right.max_depth())


def _resolve_max_features(max_features, n_features: int) -> int:
    """Translate the ``max_features`` option into an integer column count."""
    if max_features is None:
        return n_features
    if isinstance(max_features, str):
        if max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if max_features == "log2":
            return max(1, int(np.log2(n_features)) if n_features > 1 else 1)
        raise ValueError(f"unknown max_features option: {max_features!r}")
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ValueError("float max_features must be in (0, 1]")
        return max(1, int(round(max_features * n_features)))
    value = int(max_features)
    if value < 1:
        raise ValueError("max_features must be >= 1")
    return min(value, n_features)


class _BaseDecisionTree:
    """Shared fitting machinery for classification and regression trees."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state: Optional[int] = None,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1 or None")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.root_: Optional[TreeNode] = None
        self.n_features_: Optional[int] = None
        self._flat = None

    # -- subclass hooks -----------------------------------------------------
    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _best_split_for_feature(self, x_col, y, min_leaf):
        raise NotImplementedError

    # -- fitting ------------------------------------------------------------
    def fit(self, X, y, sample_weight=None):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError("X must be a 2-D array")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have mismatched lengths")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a tree on an empty dataset")
        self.n_features_ = X.shape[1]
        self._rng = np.random.default_rng(self.random_state)
        self._prepare_targets(y)
        self.root_ = self._grow(X, self._encoded_y, depth=0)
        self._flat = None
        return self

    def _prepare_targets(self, y: np.ndarray) -> None:
        """Subclasses encode targets (e.g. class labels to indices) here."""
        self._encoded_y = np.asarray(y, dtype=float)

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> TreeNode:
        node = TreeNode(
            value=self._leaf_value(y),
            n_samples=len(y),
            impurity=self._impurity(y),
            depth=depth,
        )
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or len(y) < self.min_samples_split
            or node.impurity <= 1e-12
        ):
            return node

        n_candidates = _resolve_max_features(self.max_features, self.n_features_)
        if n_candidates < self.n_features_:
            features = self._rng.choice(self.n_features_, size=n_candidates, replace=False)
        else:
            features = np.arange(self.n_features_)

        best_gain = 0.0
        best_feature = None
        best_threshold = 0.0
        parent_impurity = node.impurity
        n = len(y)
        for feature in features:
            gain, threshold = self._best_split_for_feature(
                X[:, feature], y, self.min_samples_leaf
            )
            if gain is None:
                continue
            improvement = parent_impurity - gain
            if improvement > best_gain + 1e-12:
                best_gain = improvement
                best_feature = int(feature)
                best_threshold = float(threshold)

        if best_feature is None:
            return node

        mask = X[:, best_feature] <= best_threshold
        if mask.sum() < self.min_samples_leaf or (n - mask.sum()) < self.min_samples_leaf:
            return node

        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    # -- pickling -----------------------------------------------------------
    def __getstate__(self):
        """Pickle only the model's value, never fit/predict scratch state.

        ``_flat`` (lazy prediction cache), ``_rng`` and ``_encoded_y``
        (fit-time scratch) are derivable or dead weight, and keeping them
        would make two pickles of the same trained tree differ -- e.g.
        before and after the first vectorised predict -- which breaks the
        value-based probe-memo fingerprints built on pickled model state.
        """
        state = {k: v for k, v in self.__dict__.items()
                 if k not in ("_rng", "_encoded_y")}
        state["_flat"] = None
        return state

    # -- prediction ---------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.root_ is None:
            raise RuntimeError("this tree has not been fitted yet")

    def _flattened(self):
        """Array form of the fitted tree for vectorised prediction.

        Built lazily at first predict (the GBM relabels leaf values between
        ``fit`` and the first ``predict``, so flattening cannot happen in
        ``fit``) and invalidated by refitting.  Leaves carry ``feature ==
        -1``; internal nodes carry their child indices.
        """
        flat = getattr(self, "_flat", None)
        if flat is not None:
            return flat
        order: list = []
        stack = [self.root_]
        while stack:
            node = stack.pop()
            order.append(node)
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)
        index = {id(node): i for i, node in enumerate(order)}  # repro: noqa DET002 -- transient flatten mapping; `order` pins every node alive for its lifetime
        n_nodes = len(order)
        feature = np.full(n_nodes, -1, dtype=np.int64)
        threshold = np.zeros(n_nodes, dtype=float)
        left = np.zeros(n_nodes, dtype=np.int64)
        right = np.zeros(n_nodes, dtype=np.int64)
        values = np.empty((n_nodes,) + self.root_.value.shape, dtype=float)
        for i, node in enumerate(order):
            values[i] = node.value
            if not node.is_leaf:
                feature[i] = node.feature
                threshold[i] = node.threshold
                left[i] = index[id(node.left)]  # repro: noqa DET002 -- transient flatten mapping; `order` pins every node alive for its lifetime
                right[i] = index[id(node.right)]  # repro: noqa DET002 -- transient flatten mapping; `order` pins every node alive for its lifetime
        self._flat = (feature, threshold, left, right, values)
        return self._flat

    def _node_values(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be a 2-D array")
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, expected {self.n_features_}"
            )
        # Vectorised routing over the flattened tree: every row walks one
        # level per iteration (bounded by tree depth), with the exact same
        # ``x[feature] <= threshold`` comparisons as a nodewise walk --
        # bit-identical results, orders of magnitude faster at fleet scale.
        feature, threshold, left, right, values = self._flattened()
        idx = np.zeros(X.shape[0], dtype=np.int64)
        if feature[0] >= 0:
            rows = np.arange(X.shape[0])
            while True:
                feats = feature[idx]
                active = feats >= 0
                if not active.any():
                    break
                go_left = X[rows, np.where(active, feats, 0)] <= threshold[idx]
                nxt = np.where(go_left, left[idx], right[idx])
                idx = np.where(active, nxt, idx)
        return values[idx]

    # -- introspection ------------------------------------------------------
    def node_count(self) -> int:
        self._check_fitted()
        return self.root_.node_count()

    def depth(self) -> int:
        self._check_fitted()
        return self.root_.max_depth()


class DecisionTreeClassifier(_BaseDecisionTree):
    """CART classifier using Gini impurity.

    Supports an arbitrary set of class labels; ``predict_proba`` returns the
    class frequency of the reached leaf which is the standard behaviour needed
    by the random forest's soft voting.
    """

    def _prepare_targets(self, y: np.ndarray) -> None:
        classes, encoded = np.unique(y, return_inverse=True)
        self.classes_ = classes
        self.n_classes_ = len(classes)
        self._encoded_y = encoded.astype(int)

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y.astype(int), minlength=self.n_classes_)
        return counts / counts.sum()

    def _impurity(self, y: np.ndarray) -> float:
        counts = np.bincount(y.astype(int), minlength=self.n_classes_)
        p = counts / counts.sum()
        return float(1.0 - np.sum(p * p))

    def _best_split_for_feature(self, x_col, y, min_leaf):
        """Return (weighted child Gini, threshold) of the best split, or (None, None)."""
        order = np.argsort(x_col, kind="mergesort")
        xs = x_col[order]
        ys = y[order].astype(int)
        n = len(ys)
        if xs[0] == xs[-1]:
            return None, None

        onehot = np.zeros((n, self.n_classes_))
        onehot[np.arange(n), ys] = 1.0
        left_counts = np.cumsum(onehot, axis=0)
        total = left_counts[-1]

        # Candidate split after position i (1-indexed prefix length).
        sizes_left = np.arange(1, n, dtype=float)
        sizes_right = n - sizes_left
        valid = (sizes_left >= min_leaf) & (sizes_right >= min_leaf)
        # Cannot split between identical feature values.
        valid &= xs[1:] > xs[:-1]
        if not valid.any():
            return None, None

        lc = left_counts[:-1]
        rc = total - lc
        gini_left = 1.0 - np.sum((lc / sizes_left[:, None]) ** 2, axis=1)
        gini_right = 1.0 - np.sum((rc / sizes_right[:, None]) ** 2, axis=1)
        weighted = (sizes_left * gini_left + sizes_right * gini_right) / n
        weighted[~valid] = np.inf
        best = int(np.argmin(weighted))
        if not np.isfinite(weighted[best]):
            return None, None
        threshold = (xs[best] + xs[best + 1]) / 2.0
        return float(weighted[best]), float(threshold)

    def predict_proba(self, X) -> np.ndarray:
        return self._node_values(X)

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


class DecisionTreeRegressor(_BaseDecisionTree):
    """CART regressor using variance reduction (equivalent to MSE splitting)."""

    def _prepare_targets(self, y: np.ndarray) -> None:
        self._encoded_y = np.asarray(y, dtype=float)

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        return np.array([float(np.mean(y))])

    def _impurity(self, y: np.ndarray) -> float:
        return float(np.var(y))

    def _best_split_for_feature(self, x_col, y, min_leaf):
        """Return (weighted child variance, threshold) of the best split."""
        order = np.argsort(x_col, kind="mergesort")
        xs = x_col[order]
        ys = y[order]
        n = len(ys)
        if xs[0] == xs[-1]:
            return None, None

        cumsum = np.cumsum(ys)
        cumsum_sq = np.cumsum(ys * ys)
        total = cumsum[-1]
        total_sq = cumsum_sq[-1]

        sizes_left = np.arange(1, n, dtype=float)
        sizes_right = n - sizes_left
        valid = (sizes_left >= min_leaf) & (sizes_right >= min_leaf)
        valid &= xs[1:] > xs[:-1]
        if not valid.any():
            return None, None

        sum_l = cumsum[:-1]
        sumsq_l = cumsum_sq[:-1]
        sum_r = total - sum_l
        sumsq_r = total_sq - sumsq_l
        var_l = sumsq_l / sizes_left - (sum_l / sizes_left) ** 2
        var_r = sumsq_r / sizes_right - (sum_r / sizes_right) ** 2
        # Guard against tiny negative values from floating-point cancellation.
        var_l = np.maximum(var_l, 0.0)
        var_r = np.maximum(var_r, 0.0)
        weighted = (sizes_left * var_l + sizes_right * var_r) / n
        weighted[~valid] = np.inf
        best = int(np.argmin(weighted))
        if not np.isfinite(weighted[best]):
            return None, None
        threshold = (xs[best] + xs[best + 1]) / 2.0
        return float(weighted[best]), float(threshold)

    def predict(self, X) -> np.ndarray:
        return self._node_values(X)[:, 0]

"""From-scratch machine-learning substrate used by Pond's prediction models.

The paper trains a scikit-learn ``RandomForest`` classifier (latency
insensitivity) and a LightGBM gradient-boosted quantile regressor (untouched
memory).  Neither library can be installed in this offline environment, so
this package implements the required algorithms directly on top of numpy:

* :mod:`repro.ml.tree` -- CART decision trees (classification and regression).
* :mod:`repro.ml.forest` -- bootstrap-aggregated random forests.
* :mod:`repro.ml.gbm` -- gradient boosting, including pinball (quantile) loss.
* :mod:`repro.ml.metrics` -- the precision/recall-style trade-off metrics the
  paper reports (false-positive-rate curves, overprediction-rate curves).
* :mod:`repro.ml.model_selection` -- train/test splitting and k-fold CV.

The implementations intentionally mirror the external APIs (``fit`` /
``predict`` / ``predict_proba``) so that Pond's model wrappers in
:mod:`repro.core.prediction` read exactly like the production code described
in the paper (Section 5).
"""

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.gbm import GradientBoostingRegressor, QuantileGradientBoostingRegressor
from repro.ml.metrics import (
    accuracy_score,
    confusion_counts,
    false_positive_rate,
    mean_absolute_error,
    mean_pinball_loss,
    precision_recall_curve,
    precision_score,
    recall_score,
    roc_auc_score,
)
from repro.ml.model_selection import KFold, train_test_split

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "GradientBoostingRegressor",
    "QuantileGradientBoostingRegressor",
    "accuracy_score",
    "confusion_counts",
    "false_positive_rate",
    "mean_absolute_error",
    "mean_pinball_loss",
    "precision_recall_curve",
    "precision_score",
    "recall_score",
    "roc_auc_score",
    "KFold",
    "train_test_split",
]

"""Metrics used to evaluate Pond's prediction models.

The paper reports model quality through two custom trade-off curves rather
than standard accuracy numbers:

* Figure 17 sweeps the *fraction of workloads labelled latency-insensitive*
  against the resulting *false-positive rate* (an insensitive label given to a
  workload whose slowdown exceeds the PDM).
* Figure 18 sweeps the *average untouched memory harvested* against the
  *overprediction rate* (VMs whose actual usage exceeds the prediction).

The helpers here compute both curves plus the standard metrics
(precision/recall/AUC/pinball loss) used in unit tests and ablations.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "accuracy_score",
    "precision_score",
    "recall_score",
    "confusion_counts",
    "false_positive_rate",
    "precision_recall_curve",
    "roc_auc_score",
    "mean_absolute_error",
    "mean_pinball_loss",
    "insensitive_tradeoff_curve",
    "overprediction_tradeoff_curve",
]


def accuracy_score(y_true, y_pred) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) == 0:
        raise ValueError("empty input")
    return float(np.mean(y_true == y_pred))


def confusion_counts(y_true, y_pred) -> Tuple[int, int, int, int]:
    """Return (tp, fp, tn, fn) for binary 0/1 labels."""
    y_true = np.asarray(y_true).astype(bool)
    y_pred = np.asarray(y_pred).astype(bool)
    tp = int(np.sum(y_true & y_pred))
    fp = int(np.sum(~y_true & y_pred))
    tn = int(np.sum(~y_true & ~y_pred))
    fn = int(np.sum(y_true & ~y_pred))
    return tp, fp, tn, fn


def precision_score(y_true, y_pred) -> float:
    tp, fp, _, _ = confusion_counts(y_true, y_pred)
    if tp + fp == 0:
        return 0.0
    return tp / (tp + fp)


def recall_score(y_true, y_pred) -> float:
    tp, _, _, fn = confusion_counts(y_true, y_pred)
    if tp + fn == 0:
        return 0.0
    return tp / (tp + fn)


def false_positive_rate(y_true, y_pred) -> float:
    """Fraction of *predicted positives* that are actually negative.

    Note this matches the paper's use of "false positives" in Figure 17:
    among workloads the model marks insensitive, the share that in fact
    exceed the PDM.  (It is 1 - precision, not the ROC-style FPR.)
    """
    tp, fp, _, _ = confusion_counts(y_true, y_pred)
    if tp + fp == 0:
        return 0.0
    return fp / (tp + fp)


def precision_recall_curve(y_true, scores):
    """Return (precisions, recalls, thresholds) sweeping the score threshold."""
    y_true = np.asarray(y_true).astype(bool)
    scores = np.asarray(scores, dtype=float)
    order = np.argsort(-scores, kind="mergesort")
    y_sorted = y_true[order]
    scores_sorted = scores[order]
    tp = np.cumsum(y_sorted)
    fp = np.cumsum(~y_sorted)
    precisions = tp / np.maximum(tp + fp, 1)
    total_pos = max(int(y_true.sum()), 1)
    recalls = tp / total_pos
    return precisions, recalls, scores_sorted


def roc_auc_score(y_true, scores) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) formulation."""
    y_true = np.asarray(y_true).astype(bool)
    scores = np.asarray(scores, dtype=float)
    n_pos = int(y_true.sum())
    n_neg = int((~y_true).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc_score requires both classes to be present")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=float)
    sorted_scores = scores[order]
    # Average ranks for ties.
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    rank_sum_pos = float(ranks[y_true].sum())
    auc = (rank_sum_pos - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)
    return float(auc)


def mean_absolute_error(y_true, y_pred) -> float:
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    return float(np.mean(np.abs(y_true - y_pred)))


def mean_pinball_loss(y_true, y_pred, alpha: float = 0.5) -> float:
    """Average pinball (quantile) loss at quantile ``alpha``."""
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    diff = y_true - y_pred
    return float(np.mean(np.where(diff >= 0, alpha * diff, (alpha - 1.0) * diff)))


def insensitive_tradeoff_curve(scores, slowdowns, pdm_percent: float, n_points: int = 50):
    """Figure-17-style curve: insensitive fraction vs false-positive rate.

    Parameters
    ----------
    scores:
        Model scores where *higher means more likely insensitive*.
    slowdowns:
        Measured slowdown (percent) of each workload when fully pool-backed.
    pdm_percent:
        The performance degradation margin; a workload is truly insensitive if
        its slowdown is <= this margin.

    Returns
    -------
    (fractions, fp_rates): arrays of the same length.  ``fractions[i]`` is the
    share of workloads labelled insensitive when the threshold admits the top
    scores; ``fp_rates[i]`` is the share of those labelled workloads whose
    true slowdown exceeds the PDM.
    """
    scores = np.asarray(scores, dtype=float)
    slowdowns = np.asarray(slowdowns, dtype=float)
    if scores.shape != slowdowns.shape:
        raise ValueError("scores and slowdowns must have the same shape")
    n = len(scores)
    if n == 0:
        raise ValueError("empty input")
    truly_sensitive = slowdowns > pdm_percent
    order = np.argsort(-scores, kind="mergesort")
    sensitive_sorted = truly_sensitive[order]
    cum_fp = np.cumsum(sensitive_sorted)
    counts = np.arange(1, n + 1)
    fractions_all = counts / n
    fp_all = cum_fp / counts
    # Downsample to n_points evenly spaced cut-offs for plotting-style output.
    idx = np.unique(np.linspace(0, n - 1, num=min(n_points, n)).astype(int))
    return fractions_all[idx] * 100.0, fp_all[idx] * 100.0


def overprediction_tradeoff_curve(predicted_untouched, actual_untouched, n_points: int = 50):
    """Figure-18-style curve: average untouched memory vs overprediction rate.

    Both inputs are fractions of each VM's memory (0..1).  The curve is swept
    by scaling the predictions from 0 % to 100 % of their value; larger scales
    harvest more memory but overpredict more VMs.
    """
    predicted = np.asarray(predicted_untouched, dtype=float)
    actual = np.asarray(actual_untouched, dtype=float)
    if predicted.shape != actual.shape:
        raise ValueError("inputs must have the same shape")
    if len(predicted) == 0:
        raise ValueError("empty input")
    scales = np.linspace(0.0, 1.5, n_points)
    avg_untouched = np.empty(n_points)
    op_rate = np.empty(n_points)
    for i, s in enumerate(scales):
        scaled = np.clip(predicted * s, 0.0, 1.0)
        avg_untouched[i] = float(np.mean(scaled)) * 100.0
        op_rate[i] = float(np.mean(scaled > actual + 1e-12)) * 100.0
    return avg_untouched, op_rate

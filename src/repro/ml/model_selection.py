"""Train/test splitting and k-fold cross-validation helpers.

The paper evaluates the latency-insensitivity model with "a 100-fold
validation based on randomly splitting into equal-sized training and testing
datasets" (Section 6.4.1) and evaluates the untouched-memory model by
training nightly and testing on the subsequent day (Section 6.4.2).  The
utilities here support both protocols.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["train_test_split", "KFold", "repeated_random_split"]


def train_test_split(*arrays, test_size: float = 0.5, random_state: Optional[int] = None):
    """Randomly split any number of same-length arrays into train/test parts.

    Returns the splits interleaved as ``a_train, a_test, b_train, b_test, ...``
    mirroring the scikit-learn convention the paper's prototype uses.
    """
    if not arrays:
        raise ValueError("at least one array is required")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    n = len(arrays[0])
    for arr in arrays:
        if len(arr) != n:
            raise ValueError("all arrays must have the same length")
    if n < 2:
        raise ValueError("need at least two samples to split")
    rng = np.random.default_rng(random_state)  # repro: noqa DET003 -- sklearn-style random_state contract; library callers pass explicit seeds
    perm = rng.permutation(n)
    n_test = max(1, int(round(test_size * n)))
    n_test = min(n_test, n - 1)
    test_idx = perm[:n_test]
    train_idx = perm[n_test:]
    out = []
    for arr in arrays:
        arr = np.asarray(arr)
        out.append(arr[train_idx])
        out.append(arr[test_idx])
    return tuple(out)


class KFold:
    """Deterministic k-fold splitter over ``n_samples`` row indices."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: Optional[int] = None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, n_samples: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        if n_samples < self.n_splits:
            raise ValueError("n_samples must be >= n_splits")
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            indices = rng.permutation(n_samples)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train_idx, test_idx


def repeated_random_split(
    n_samples: int,
    n_repeats: int = 100,
    test_size: float = 0.5,
    random_state: Optional[int] = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``n_repeats`` random (train, test) index pairs.

    This is the "100-fold validation based on randomly splitting into
    equal-sized training and testing datasets" protocol from Section 6.4.1.
    """
    if n_samples < 2:
        raise ValueError("need at least two samples")
    rng = np.random.default_rng(random_state)  # repro: noqa DET003 -- sklearn-style random_state contract; library callers pass explicit seeds
    n_test = max(1, int(round(test_size * n_samples)))
    n_test = min(n_test, n_samples - 1)
    for _ in range(n_repeats):
        perm = rng.permutation(n_samples)
        yield perm[n_test:], perm[:n_test]

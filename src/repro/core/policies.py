"""Memory-allocation policies for the cluster-scale savings simulations.

The end-to-end evaluation (paper Section 6.5, Figure 21) compares:

* an **all-local** baseline (no pooling),
* a **static** strawman that puts a fixed percentage (15 %) of every VM's
  memory on the pool, and
* **Pond**, which per VM either (a) places the whole VM on the pool when the
  latency-insensitivity model says it is safe, or (b) places the predicted
  untouched memory on the pool (GB-aligned, rounded down).

These policies operate on :class:`~repro.cluster.trace.VMTraceRecord` objects
(the simulator's unit of work), so Pond's behaviour is modelled through its
*operating point*: the fraction of VMs it labels insensitive (LI), the false
positive rate among them (FP), and how aggressively it harvests untouched
memory (controlled by the prediction quantile / overprediction rate OP).
Mispredictions are tracked per VM so the experiments can verify the
scheduling-misprediction constraint.

Batch policy contract (see DESIGN.md):

Every policy exposes two evaluation paths that must agree decision-for-
decision:

* ``decide_batch(trace) -> np.ndarray`` -- the vectorized path.  One call
  computes the pool share of every VM in the trace with bulk numpy
  operations; the simulator's hot loop then indexes the result instead of
  calling back into Python per VM.
* ``__call__(record) -> float`` -- the legacy per-record path, retained as a
  thin wrapper that evaluates a batch of one.

Both paths draw their randomness from *stable per-VM digests* (CRC32 of the
VM id, salted with the policy seed) fed through a counter-based bit mixer --
never from sequential RNG state.  The same VM therefore always receives the
same decision regardless of call order, how many simulator passes consume
the policy, which shard of a fleet run evaluates it, or the process's
``PYTHONHASHSEED``.  This is what makes sharded fleet simulation sound:
partitioning a workload across shards cannot change any VM's allocation.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Sequence, Tuple, Union
import weakref

import numpy as np

from repro.cluster.rng import GOLDEN, splitmix64, splitmix64_array
from repro.cluster.trace import ClusterTrace, TraceColumns, VMTraceRecord
from repro.core.prediction.combined import CombinedOperatingPoint

__all__ = [
    "AllLocalPolicy",
    "StaticFractionPolicy",
    "PondTracePolicy",
    "PolicyStats",
    "stable_vm_digests",
    "keyed_uniforms",
]

#: Batch-evaluatable inputs: a full trace (preferred: its columnar view is
#: cached), one streamed :class:`TraceColumns` chunk (the streaming replay
#: path evaluates one of these per chunk), or any sequence of records.
TraceLike = Union[ClusterTrace, TraceColumns, Sequence[VMTraceRecord]]

# One shared SplitMix64 implementation (repro.cluster.rng) serves both the
# policy digests here and the trace generator's window substreams.
_SPREAD = np.uint64(GOLDEN)
_mix64 = splitmix64_array
_mix64_int = splitmix64


#: Fixed salts separating the independent uniform streams each policy draws
#: per VM (overprediction, latency-insensitivity, false-positive, touch).
_STREAM_SALTS = tuple(np.uint64(_mix64_int(k + 1)) for k in range(8))


#: Digests are pure functions of ``(tag, seed, vm_id)`` but cost one CRC32
#: per VM; dimensioning sweeps and differential reruns batch-evaluate the
#: same trace many times (often through *different* policy instances built
#: by a factory), so memoise per trace at module level -- entries die with
#: their traces, and being a pure memo it needs no pickling support.
_DIGEST_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def stable_vm_digests(vm_ids: Sequence[str], tag: str, seed: int) -> np.ndarray:
    """Stable per-VM digests: CRC32 over ``tag:seed:vm_id``.

    CRC32 is deterministic across processes and platforms, unlike ``hash()``
    whose string hashing is randomised by ``PYTHONHASHSEED`` -- the digest a
    sharded worker computes for a VM is therefore identical to the one the
    parent (or any rerun) computes.  ``tag`` decorrelates different policy
    classes sharing a seed.
    """
    prefix = f"{tag}:{seed}:".encode()
    return np.fromiter(
        (zlib.crc32(prefix + vm_id.encode()) for vm_id in vm_ids),
        dtype=np.uint64,
        count=len(vm_ids),
    )


def keyed_uniforms(digests: np.ndarray, n_streams: int) -> np.ndarray:
    """Counter-based uniforms in ``[0, 1)`` keyed on per-VM digests.

    Returns shape ``(len(digests), n_streams)``; column ``k`` is an
    independent uniform draw per VM.  Pure function of the digest, so batch
    and scalar evaluation agree bit-for-bit and no sequential RNG state is
    involved.
    """
    spread = digests * _SPREAD
    out = np.empty((digests.shape[0], n_streams), dtype=np.float64)
    for k in range(n_streams):
        salt = _STREAM_SALTS[k] if k < len(_STREAM_SALTS) else np.uint64(
            _mix64_int(k + 1)
        )
        out[:, k] = (_mix64(spread ^ salt) >> np.uint64(11)) * (2.0 ** -53)
    return out


@dataclass
class PolicyStats:
    """Per-policy accounting of decisions and mispredictions."""

    n_vms: int = 0
    n_fully_pool_backed: int = 0
    n_znuma: int = 0
    n_all_local: int = 0
    n_mispredictions: int = 0
    pool_gb: float = 0.0
    total_gb: float = 0.0

    @property
    def misprediction_percent(self) -> float:
        return 100.0 * self.n_mispredictions / self.n_vms if self.n_vms else 0.0

    @property
    def pool_fraction_percent(self) -> float:
        return 100.0 * self.pool_gb / self.total_gb if self.total_gb else 0.0

    def add(self, other: "PolicyStats") -> "PolicyStats":
        """Accumulate another stats block (e.g. merging fleet shards)."""
        self.n_vms += other.n_vms
        self.n_fully_pool_backed += other.n_fully_pool_backed
        self.n_znuma += other.n_znuma
        self.n_all_local += other.n_all_local
        self.n_mispredictions += other.n_mispredictions
        self.pool_gb += other.pool_gb
        self.total_gb += other.total_gb
        return self


class _BatchPolicy:
    """Shared machinery for the two-phase (batch + scalar) policy engine.

    Subclasses implement :meth:`_decide_arrays`, the single vectorized
    decision function both evaluation paths run through; the scalar
    ``__call__`` is a batch of one, so the differential guarantee holds by
    construction.
    """

    #: Digest salt separating policy classes that share a seed.
    _digest_tag = "policy"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.stats = PolicyStats()

    # -- inputs ------------------------------------------------------------------
    def _trace_arrays(
        self, trace: TraceLike
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(memory_gb, untouched_fraction, digests) for a trace-like input."""
        if isinstance(trace, ClusterTrace):
            columns = trace.columns()
            per_trace = _DIGEST_MEMO.get(trace)
            if per_trace is None:
                per_trace = {}
                _DIGEST_MEMO[trace] = per_trace
            key = (self._digest_tag, self.seed)
            digests = per_trace.get(key)
            if digests is None or digests.shape[0] != len(columns.vm_ids):
                digests = stable_vm_digests(columns.vm_ids, self._digest_tag, self.seed)
                per_trace[key] = digests
            return columns.memory_gb, columns.untouched_fraction, digests
        if isinstance(trace, TraceColumns):
            # One streamed chunk: transient, so digests are not worth caching.
            digests = stable_vm_digests(trace.vm_ids, self._digest_tag, self.seed)
            return trace.memory_gb, trace.untouched_fraction, digests
        records = list(trace)
        memory = np.fromiter((r.memory_gb for r in records), np.float64, len(records))
        untouched = np.fromiter(
            (r.untouched_fraction for r in records), np.float64, len(records)
        )
        digests = stable_vm_digests(
            [r.vm_id for r in records], self._digest_tag, self.seed
        )
        return memory, untouched, digests

    # -- decision core -----------------------------------------------------------
    def _decide_arrays(
        self, memory_gb: np.ndarray, untouched_fraction: np.ndarray,
        digests: np.ndarray,
    ) -> Tuple[np.ndarray, PolicyStats]:
        raise NotImplementedError

    def decide_batch(self, trace: TraceLike) -> np.ndarray:
        """Vectorized path: pool GB for every VM, aligned with trace order."""
        memory_gb, untouched_fraction, digests = self._trace_arrays(trace)
        pool_gb, delta = self._decide_arrays(memory_gb, untouched_fraction, digests)
        self.stats.add(delta)
        return pool_gb

    def __call__(self, record: VMTraceRecord) -> float:
        """Thin per-record path: evaluates a batch of one."""
        digests = stable_vm_digests([record.vm_id], self._digest_tag, self.seed)
        pool_gb, delta = self._decide_arrays(
            np.array([record.memory_gb]),
            np.array([record.untouched_fraction]),
            digests,
        )
        self.stats.add(delta)
        return float(pool_gb[0])


class AllLocalPolicy(_BatchPolicy):
    """Every VM gets all of its memory on NUMA-local DRAM (the baseline)."""

    _digest_tag = "all-local"

    def _decide_arrays(self, memory_gb, untouched_fraction, digests):
        n = memory_gb.shape[0]
        delta = PolicyStats(
            n_vms=n, n_all_local=n, total_gb=float(memory_gb.sum())
        )
        return np.zeros(n, dtype=np.float64), delta


class StaticFractionPolicy(_BatchPolicy):
    """The strawman: a fixed fraction of every VM's memory goes to the pool.

    A VM is counted as a misprediction when its pool share exceeds its actual
    untouched memory (it will touch pool memory) *and* it is latency
    sensitive enough that the resulting spill exceeds the PDM; the paper
    estimates about 1/4 of touching VMs exceed a 5 % PDM.  The violation draw
    is keyed per VM (not a shared sequential RNG), so the verdict for a VM is
    independent of evaluation order and of how a fleet run shards the trace.
    """

    _digest_tag = "static-fraction"

    def __init__(self, fraction: float = 0.15,
                 touch_violation_probability: float = 0.25,
                 seed: int = 0) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if not 0.0 <= touch_violation_probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        super().__init__(seed=seed)
        self.fraction = fraction
        self.touch_violation_probability = touch_violation_probability

    def _decide_arrays(self, memory_gb, untouched_fraction, digests):
        pool_gb = memory_gb * self.fraction
        untouched_gb = memory_gb * untouched_fraction
        touches = pool_gb > untouched_gb + 1e-9
        uniforms = keyed_uniforms(digests, 1)
        violates = touches & (uniforms[:, 0] < self.touch_violation_probability)
        n = memory_gb.shape[0]
        delta = PolicyStats(
            n_vms=n,
            n_znuma=n,
            n_mispredictions=int(violates.sum()),
            pool_gb=float(pool_gb.sum()),
            total_gb=float(memory_gb.sum()),
        )
        return pool_gb, delta


class PondTracePolicy(_BatchPolicy):
    """Pond's allocation behaviour at a given combined-model operating point.

    Parameters
    ----------
    operating_point:
        The solved Eq.(1) operating point (LI %, FP %, OP %, UM %).
    prediction_quantile:
        How conservatively untouched memory is predicted: the prediction is
        this fraction of the VM's actual untouched memory for correctly
        predicted VMs.  Overpredicted VMs (an ``op_percent`` share) instead
        receive a prediction *above* their actual untouched memory.
    slice_gb:
        zNUMA sizes are rounded down to this granularity.
    """

    _digest_tag = "pond-trace"

    #: Uniform stream indices per VM.
    _STREAM_OVERPREDICT, _STREAM_LI, _STREAM_FP, _STREAM_TOUCH = range(4)

    def __init__(
        self,
        operating_point: CombinedOperatingPoint,
        prediction_quantile: float = 0.8,
        overprediction_excess: float = 0.15,
        slice_gb: int = 1,
        touch_violation_probability: float = 0.25,
        seed: int = 0,
    ) -> None:
        if not 0.0 < prediction_quantile <= 1.0:
            raise ValueError("prediction_quantile must be in (0, 1]")
        if overprediction_excess < 0:
            raise ValueError("overprediction_excess cannot be negative")
        if slice_gb < 1:
            raise ValueError("slice_gb must be >= 1")
        super().__init__(seed=seed)
        self.point = operating_point
        self.prediction_quantile = prediction_quantile
        self.overprediction_excess = overprediction_excess
        self.slice_gb = slice_gb
        self.touch_violation_probability = touch_violation_probability

    def _decide_arrays(self, memory_gb, untouched_fraction, digests):
        """Vectorized per-VM decision.

        Capacity modelling note: Pond's production scheduler treats pool
        memory as an additional bin-packing dimension, spreading fully
        pool-backed VMs across hosts and pool groups.  The per-server effect
        of that balancing is captured here by having every VM contribute its
        *expected* pool share (LI-probability-weighted) to capacity, while the
        misprediction accounting still uses per-VM draws -- see DESIGN.md.
        """
        point = self.point
        li = point.li_percent / 100.0
        uniforms = keyed_uniforms(digests, 4)

        # zNUMA branch: size the pool share from the predicted untouched memory.
        overpredicted = uniforms[:, self._STREAM_OVERPREDICT] < point.op_percent / 100.0
        predicted_fraction = np.where(
            overpredicted,
            np.minimum(0.99, untouched_fraction + self.overprediction_excess),
            untouched_fraction * self.prediction_quantile,
        )
        predicted_gb = predicted_fraction * memory_gb
        znuma_gb = np.floor(predicted_gb / self.slice_gb) * self.slice_gb
        znuma_gb = np.minimum(znuma_gb, memory_gb)

        # Misprediction accounting uses per-VM draws of the actual decision.
        fully_backed = uniforms[:, self._STREAM_LI] < li
        false_positive = fully_backed & (
            uniforms[:, self._STREAM_FP] < point.fp_percent / 100.0
        )
        has_znuma = ~fully_backed & (znuma_gb > 0)
        all_local = ~fully_backed & ~has_znuma
        # The VM spills; only a fraction of spilling VMs exceed the PDM.
        untouched_gb = memory_gb * untouched_fraction
        spills = has_znuma & (znuma_gb > untouched_gb + 1e-9) & (
            uniforms[:, self._STREAM_TOUCH] < self.touch_violation_probability
        )

        pool_gb = li * memory_gb + (1.0 - li) * znuma_gb
        delta = PolicyStats(
            n_vms=memory_gb.shape[0],
            n_fully_pool_backed=int(fully_backed.sum()),
            n_znuma=int(has_znuma.sum()),
            n_all_local=int(all_local.sum()),
            n_mispredictions=int(false_positive.sum() + spills.sum()),
            pool_gb=float(pool_gb.sum()),
            total_gb=float(memory_gb.sum()),
        )
        return pool_gb, delta

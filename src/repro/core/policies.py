"""Memory-allocation policies for the cluster-scale savings simulations.

The end-to-end evaluation (paper Section 6.5, Figure 21) compares:

* an **all-local** baseline (no pooling),
* a **static** strawman that puts a fixed percentage (15 %) of every VM's
  memory on the pool, and
* **Pond**, which per VM either (a) places the whole VM on the pool when the
  latency-insensitivity model says it is safe, or (b) places the predicted
  untouched memory on the pool (GB-aligned, rounded down).

These policies operate on :class:`~repro.cluster.trace.VMTraceRecord` objects
(the simulator's unit of work), so Pond's behaviour is modelled through its
*operating point*: the fraction of VMs it labels insensitive (LI), the false
positive rate among them (FP), and how aggressively it harvests untouched
memory (controlled by the prediction quantile / overprediction rate OP).
Mispredictions are tracked per VM so the experiments can verify the
scheduling-misprediction constraint.

Batch policy contract (see DESIGN.md):

Every policy exposes two evaluation paths that must agree decision-for-
decision:

* ``decide_batch(trace) -> np.ndarray`` -- the vectorized path.  One call
  computes the pool share of every VM in the trace with bulk numpy
  operations; the simulator's hot loop then indexes the result instead of
  calling back into Python per VM.
* ``__call__(record) -> float`` -- the legacy per-record path, retained as a
  thin wrapper that evaluates a batch of one.

Both paths draw their randomness from *stable per-VM digests* (CRC32 of the
VM id, salted with the policy seed) fed through a counter-based bit mixer --
never from sequential RNG state.  The same VM therefore always receives the
same decision regardless of call order, how many simulator passes consume
the policy, which shard of a fleet run evaluates it, or the process's
``PYTHONHASHSEED``.  This is what makes sharded fleet simulation sound:
partitioning a workload across shards cannot change any VM's allocation.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Sequence, Tuple, Union
import weakref

import numpy as np

from repro.cluster.rng import GOLDEN, splitmix64, splitmix64_array
from repro.cluster.trace import ClusterTrace, TraceColumns, VMTraceRecord
from repro.core.prediction.combined import CombinedOperatingPoint

__all__ = [
    "AllLocalPolicy",
    "StaticFractionPolicy",
    "PondTracePolicy",
    "PredictionPolicy",
    "PolicyStats",
    "stable_vm_digests",
    "keyed_uniforms",
]

#: Batch-evaluatable inputs: a full trace (preferred: its columnar view is
#: cached), one streamed :class:`TraceColumns` chunk (the streaming replay
#: path evaluates one of these per chunk), or any sequence of records.
TraceLike = Union[ClusterTrace, TraceColumns, Sequence[VMTraceRecord]]

# One shared SplitMix64 implementation (repro.cluster.rng) serves both the
# policy digests here and the trace generator's window substreams.
_SPREAD = np.uint64(GOLDEN)
_mix64 = splitmix64_array
_mix64_int = splitmix64


#: Fixed salts separating the independent uniform streams each policy draws
#: per VM (overprediction, latency-insensitivity, false-positive, touch).
_STREAM_SALTS = tuple(np.uint64(_mix64_int(k + 1)) for k in range(8))


#: Digests are pure functions of ``(tag, seed, vm_id)`` but cost one CRC32
#: per VM; dimensioning sweeps and differential reruns batch-evaluate the
#: same trace many times (often through *different* policy instances built
#: by a factory), so memoise per trace at module level -- entries die with
#: their traces, and being a pure memo it needs no pickling support.
_DIGEST_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def stable_vm_digests(vm_ids: Sequence[str], tag: str, seed: int) -> np.ndarray:
    """Stable per-VM digests: CRC32 over ``tag:seed:vm_id``.

    CRC32 is deterministic across processes and platforms, unlike ``hash()``
    whose string hashing is randomised by ``PYTHONHASHSEED`` -- the digest a
    sharded worker computes for a VM is therefore identical to the one the
    parent (or any rerun) computes.  ``tag`` decorrelates different policy
    classes sharing a seed.
    """
    prefix = f"{tag}:{seed}:".encode()
    return np.fromiter(
        (zlib.crc32(prefix + vm_id.encode()) for vm_id in vm_ids),
        dtype=np.uint64,
        count=len(vm_ids),
    )


def keyed_uniforms(digests: np.ndarray, n_streams: int) -> np.ndarray:
    """Counter-based uniforms in ``[0, 1)`` keyed on per-VM digests.

    Returns shape ``(len(digests), n_streams)``; column ``k`` is an
    independent uniform draw per VM.  Pure function of the digest, so batch
    and scalar evaluation agree bit-for-bit and no sequential RNG state is
    involved.
    """
    spread = digests * _SPREAD
    out = np.empty((digests.shape[0], n_streams), dtype=np.float64)
    for k in range(n_streams):
        salt = _STREAM_SALTS[k] if k < len(_STREAM_SALTS) else np.uint64(
            _mix64_int(k + 1)
        )
        out[:, k] = (_mix64(spread ^ salt) >> np.uint64(11)) * (2.0 ** -53)
    return out


@dataclass
class PolicyStats:
    """Per-policy accounting of decisions and mispredictions."""

    n_vms: int = 0
    n_fully_pool_backed: int = 0
    n_znuma: int = 0
    n_all_local: int = 0
    n_mispredictions: int = 0
    pool_gb: float = 0.0
    total_gb: float = 0.0

    @property
    def misprediction_percent(self) -> float:
        return 100.0 * self.n_mispredictions / self.n_vms if self.n_vms else 0.0

    @property
    def pool_fraction_percent(self) -> float:
        return 100.0 * self.pool_gb / self.total_gb if self.total_gb else 0.0

    def add(self, other: "PolicyStats") -> "PolicyStats":
        """Accumulate another stats block (e.g. merging fleet shards)."""
        self.n_vms += other.n_vms
        self.n_fully_pool_backed += other.n_fully_pool_backed
        self.n_znuma += other.n_znuma
        self.n_all_local += other.n_all_local
        self.n_mispredictions += other.n_mispredictions
        self.pool_gb += other.pool_gb
        self.total_gb += other.total_gb
        return self


class _BatchPolicy:
    """Shared machinery for the two-phase (batch + scalar) policy engine.

    Subclasses implement :meth:`_decide_arrays`, the single vectorized
    decision function both evaluation paths run through; the scalar
    ``__call__`` is a batch of one, so the differential guarantee holds by
    construction.
    """

    #: Digest salt separating policy classes that share a seed.
    _digest_tag = "policy"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.stats = PolicyStats()

    # -- inputs ------------------------------------------------------------------
    def _trace_arrays(
        self, trace: TraceLike
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(memory_gb, untouched_fraction, digests) for a trace-like input."""
        if isinstance(trace, ClusterTrace):
            columns = trace.columns()
            per_trace = _DIGEST_MEMO.get(trace)
            if per_trace is None:
                per_trace = {}
                _DIGEST_MEMO[trace] = per_trace
            key = (self._digest_tag, self.seed)
            digests = per_trace.get(key)
            if digests is None or digests.shape[0] != len(columns.vm_ids):
                digests = stable_vm_digests(columns.vm_ids, self._digest_tag, self.seed)
                per_trace[key] = digests
            return columns.memory_gb, columns.untouched_fraction, digests
        if isinstance(trace, TraceColumns):
            # One streamed chunk: transient, so digests are not worth caching.
            digests = stable_vm_digests(trace.vm_ids, self._digest_tag, self.seed)
            return trace.memory_gb, trace.untouched_fraction, digests
        records = list(trace)
        memory = np.fromiter((r.memory_gb for r in records), np.float64, len(records))
        untouched = np.fromiter(
            (r.untouched_fraction for r in records), np.float64, len(records)
        )
        digests = stable_vm_digests(
            [r.vm_id for r in records], self._digest_tag, self.seed
        )
        return memory, untouched, digests

    # -- decision core -----------------------------------------------------------
    def _decide_arrays(
        self, memory_gb: np.ndarray, untouched_fraction: np.ndarray,
        digests: np.ndarray,
    ) -> Tuple[np.ndarray, PolicyStats]:
        raise NotImplementedError

    def decide_batch(self, trace: TraceLike) -> np.ndarray:
        """Vectorized path: pool GB for every VM, aligned with trace order."""
        memory_gb, untouched_fraction, digests = self._trace_arrays(trace)
        pool_gb, delta = self._decide_arrays(memory_gb, untouched_fraction, digests)
        self.stats.add(delta)
        return pool_gb

    def __call__(self, record: VMTraceRecord) -> float:
        """Thin per-record path: evaluates a batch of one."""
        digests = stable_vm_digests([record.vm_id], self._digest_tag, self.seed)
        pool_gb, delta = self._decide_arrays(
            np.array([record.memory_gb]),
            np.array([record.untouched_fraction]),
            digests,
        )
        self.stats.add(delta)
        return float(pool_gb[0])


class AllLocalPolicy(_BatchPolicy):
    """Every VM gets all of its memory on NUMA-local DRAM (the baseline)."""

    _digest_tag = "all-local"

    def _decide_arrays(self, memory_gb, untouched_fraction, digests):
        n = memory_gb.shape[0]
        delta = PolicyStats(
            n_vms=n, n_all_local=n, total_gb=float(memory_gb.sum())
        )
        return np.zeros(n, dtype=np.float64), delta


class StaticFractionPolicy(_BatchPolicy):
    """The strawman: a fixed fraction of every VM's memory goes to the pool.

    A VM is counted as a misprediction when its pool share exceeds its actual
    untouched memory (it will touch pool memory) *and* it is latency
    sensitive enough that the resulting spill exceeds the PDM; the paper
    estimates about 1/4 of touching VMs exceed a 5 % PDM.  The violation draw
    is keyed per VM (not a shared sequential RNG), so the verdict for a VM is
    independent of evaluation order and of how a fleet run shards the trace.
    """

    _digest_tag = "static-fraction"

    def __init__(self, fraction: float = 0.15,
                 touch_violation_probability: float = 0.25,
                 seed: int = 0) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if not 0.0 <= touch_violation_probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        super().__init__(seed=seed)
        self.fraction = fraction
        self.touch_violation_probability = touch_violation_probability

    def _decide_arrays(self, memory_gb, untouched_fraction, digests):
        pool_gb = memory_gb * self.fraction
        untouched_gb = memory_gb * untouched_fraction
        touches = pool_gb > untouched_gb + 1e-9
        uniforms = keyed_uniforms(digests, 1)
        violates = touches & (uniforms[:, 0] < self.touch_violation_probability)
        n = memory_gb.shape[0]
        delta = PolicyStats(
            n_vms=n,
            n_znuma=n,
            n_mispredictions=int(violates.sum()),
            pool_gb=float(pool_gb.sum()),
            total_gb=float(memory_gb.sum()),
        )
        return pool_gb, delta


class PondTracePolicy(_BatchPolicy):
    """Pond's allocation behaviour at a given combined-model operating point.

    Parameters
    ----------
    operating_point:
        The solved Eq.(1) operating point (LI %, FP %, OP %, UM %).
    prediction_quantile:
        How conservatively untouched memory is predicted: the prediction is
        this fraction of the VM's actual untouched memory for correctly
        predicted VMs.  Overpredicted VMs (an ``op_percent`` share) instead
        receive a prediction *above* their actual untouched memory.
    slice_gb:
        zNUMA sizes are rounded down to this granularity.
    """

    _digest_tag = "pond-trace"

    #: Uniform stream indices per VM.
    _STREAM_OVERPREDICT, _STREAM_LI, _STREAM_FP, _STREAM_TOUCH = range(4)

    def __init__(
        self,
        operating_point: CombinedOperatingPoint,
        prediction_quantile: float = 0.8,
        overprediction_excess: float = 0.15,
        slice_gb: int = 1,
        touch_violation_probability: float = 0.25,
        seed: int = 0,
    ) -> None:
        if not 0.0 < prediction_quantile <= 1.0:
            raise ValueError("prediction_quantile must be in (0, 1]")
        if overprediction_excess < 0:
            raise ValueError("overprediction_excess cannot be negative")
        if slice_gb < 1:
            raise ValueError("slice_gb must be >= 1")
        super().__init__(seed=seed)
        self.point = operating_point
        self.prediction_quantile = prediction_quantile
        self.overprediction_excess = overprediction_excess
        self.slice_gb = slice_gb
        self.touch_violation_probability = touch_violation_probability

    def _decide_arrays(self, memory_gb, untouched_fraction, digests):
        """Vectorized per-VM decision.

        Capacity modelling note: Pond's production scheduler treats pool
        memory as an additional bin-packing dimension, spreading fully
        pool-backed VMs across hosts and pool groups.  The per-server effect
        of that balancing is captured here by having every VM contribute its
        *expected* pool share (LI-probability-weighted) to capacity, while the
        misprediction accounting still uses per-VM draws -- see DESIGN.md.
        """
        point = self.point
        li = point.li_percent / 100.0
        uniforms = keyed_uniforms(digests, 4)

        # zNUMA branch: size the pool share from the predicted untouched memory.
        overpredicted = uniforms[:, self._STREAM_OVERPREDICT] < point.op_percent / 100.0
        predicted_fraction = np.where(
            overpredicted,
            np.minimum(0.99, untouched_fraction + self.overprediction_excess),
            untouched_fraction * self.prediction_quantile,
        )
        predicted_gb = predicted_fraction * memory_gb
        znuma_gb = np.floor(predicted_gb / self.slice_gb) * self.slice_gb
        znuma_gb = np.minimum(znuma_gb, memory_gb)

        # Misprediction accounting uses per-VM draws of the actual decision.
        fully_backed = uniforms[:, self._STREAM_LI] < li
        false_positive = fully_backed & (
            uniforms[:, self._STREAM_FP] < point.fp_percent / 100.0
        )
        has_znuma = ~fully_backed & (znuma_gb > 0)
        all_local = ~fully_backed & ~has_znuma
        # The VM spills; only a fraction of spilling VMs exceed the PDM.
        untouched_gb = memory_gb * untouched_fraction
        spills = has_znuma & (znuma_gb > untouched_gb + 1e-9) & (
            uniforms[:, self._STREAM_TOUCH] < self.touch_violation_probability
        )

        pool_gb = li * memory_gb + (1.0 - li) * znuma_gb
        delta = PolicyStats(
            n_vms=memory_gb.shape[0],
            n_fully_pool_backed=int(fully_backed.sum()),
            n_znuma=int(has_znuma.sum()),
            n_all_local=int(all_local.sum()),
            n_mispredictions=int(false_positive.sum() + spills.sum()),
            pool_gb=float(pool_gb.sum()),
            total_gb=float(memory_gb.sum()),
        )
        return pool_gb, delta


class PredictionPolicy(_BatchPolicy):
    """Pond's allocation behaviour driven by the *actual* prediction models.

    Where :class:`PondTracePolicy` models the combined pipeline through its
    solved operating point (LI/FP/OP rates), this policy runs the real
    models from :mod:`repro.core.prediction` per VM, vectorized over trace
    chunks:

    * the quantile-GBM :class:`~repro.core.prediction.untouched_model.
      UntouchedMemoryPredictor` sizes the zNUMA from scheduling-time
      metadata (paper Figure 12's path A), and
    * the RandomForest :class:`~repro.core.prediction.latency_model.
      LatencyInsensitivityModel` decides which VMs go fully pool-backed.

    Trace records carry no customer metadata or core-PMU telemetry, so both
    feature vectors are *synthesised deterministically* from the per-VM
    digest streams (the same counter-based RNG every batch policy uses):
    the metadata history percentiles track the VM's true untouched fraction
    plus jitter, and the TMA counters track a latent sensitivity draw.  The
    decision for a VM is therefore a pure function of ``(vm_id, seed)`` and
    the fitted models -- independent of chunking, sharding, call order, and
    ``PYTHONHASHSEED`` -- and the whole policy pickles cleanly for
    process-pool workers (the models are plain numpy/dataclass trees).

    Unlike :class:`PondTracePolicy`'s expected-value capacity accounting,
    the pool share here is the *actual* per-VM decision (full memory for
    insensitive VMs, zNUMA otherwise): the online QoS loop must see and
    mitigate individual mispredicted VMs, not population averages.
    """

    _digest_tag = "prediction"

    #: Uniform stream indices per VM.
    (_STREAM_CORES, _STREAM_FAMILY, _STREAM_OS, _STREAM_REGION,
     _STREAM_HISTORY, _STREAM_TMA, _STREAM_TOUCH, _STREAM_NOISE) = range(8)

    #: Synthetic TMA feature-vector width (matches :meth:`train`'s corpus).
    N_TMA_FEATURES = 4

    #: True slowdown (percent) of a fully pool-backed VM with sensitivity
    #: latent ``s`` is ``SLOWDOWN_SCALE * s**2`` (Figure 5's up-to-~25-50 %
    #: range, quadratic so most VMs sit well under the PDM).
    SLOWDOWN_SCALE_PERCENT = 50.0

    #: History-percentile offsets around the true untouched fraction.
    _HISTORY_OFFSETS = np.linspace(-0.1, 0.1, 5)

    def __init__(
        self,
        untouched_model,
        latency_model,
        slice_gb: int = 1,
        touch_violation_probability: float = 0.25,
        seed: int = 0,
    ) -> None:
        if slice_gb < 1:
            raise ValueError("slice_gb must be >= 1")
        if not 0.0 <= touch_violation_probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        super().__init__(seed=seed)
        self.untouched_model = untouched_model
        self.latency_model = latency_model
        self.slice_gb = slice_gb
        self.touch_violation_probability = touch_violation_probability

    # -- training -----------------------------------------------------------------
    @classmethod
    def train(
        cls,
        seed: int = 0,
        n_samples: int = 512,
        fp_target_percent: float = 2.0,
        pdm_percent: float = 5.0,
        quantile: float = 0.05,
        slice_gb: int = 1,
        policy_seed: int = 0,
    ) -> "PredictionPolicy":
        """Fit both models on a synthetic corpus and return the policy.

        The corpus is drawn from the same generative process the policy
        synthesises features from at decide time (history percentiles
        tracking the untouched fraction; TMA counters tracking a
        sensitivity latent with true slowdown ``SLOWDOWN_SCALE * s**2``),
        so the models carry real signal: the GBM's quantile objective keeps
        overprediction rare, and the forest's threshold is calibrated to
        the FP-rate target exactly as in Figure 17.
        """
        from repro.core.prediction.latency_model import LatencyInsensitivityModel
        from repro.core.prediction.untouched_model import UntouchedMemoryPredictor

        rng = np.random.default_rng(seed)
        untouched = rng.uniform(0.0, 0.9, n_samples)
        jitter = rng.normal(0.0, 0.02, n_samples)
        rows = []
        for i in range(n_samples):
            history = np.clip(
                untouched[i] + jitter[i] + cls._HISTORY_OFFSETS, 0.0, 1.0
            )
            rows.append({
                "memory_gb": float(rng.choice([8.0, 16.0, 32.0, 64.0, 128.0])),
                "cores": float(2 ** rng.integers(0, 4)),
                "vm_family": f"family{rng.integers(0, 4)}",
                "guest_os": f"os{rng.integers(0, 3)}",
                "region": f"region{rng.integers(0, 5)}",
                "history_percentiles": history.tolist(),
            })
        untouched_model = UntouchedMemoryPredictor(
            quantile=quantile, n_estimators=40, min_samples_leaf=20,
            random_state=seed,
        ).fit(rows, untouched)

        sensitivity = rng.uniform(0.0, 1.0, n_samples)
        tma = cls._tma_matrix(sensitivity, rng.uniform(0.0, 1.0, n_samples))
        slowdowns = cls.SLOWDOWN_SCALE_PERCENT * sensitivity ** 2
        latency_model = LatencyInsensitivityModel(
            pdm_percent=pdm_percent, n_estimators=30, max_depth=6,
            random_state=seed,
        ).fit(tma, slowdowns)
        latency_model.calibrate_threshold(tma, slowdowns, fp_target_percent)
        return cls(untouched_model, latency_model, slice_gb=slice_gb,
                   seed=policy_seed)

    # -- deterministic feature synthesis --------------------------------------------
    @staticmethod
    def _tma_matrix(sensitivity: np.ndarray, noise: np.ndarray) -> np.ndarray:
        """Synthetic core-PMU features as a function of the latent draws."""
        out = np.empty((sensitivity.shape[0], PredictionPolicy.N_TMA_FEATURES))
        out[:, 0] = 0.05 + 0.9 * sensitivity + (noise - 0.5) * 0.04
        out[:, 1] = 0.02 + 0.7 * sensitivity + (0.5 - noise) * 0.04
        out[:, 2] = 0.5 * noise
        out[:, 3] = 0.3 * (1.0 - noise)
        return out

    def _synth_features(self, memory_gb, untouched_fraction, digests):
        """(metadata matrix, TMA matrix, uniforms) for a batch of VMs."""
        uniforms = keyed_uniforms(digests, 8)
        encoder = self.untouched_model.encoder
        cores = np.exp2(np.floor(uniforms[:, self._STREAM_CORES] * 4.0))
        codes = []
        for stream, name in (
            (self._STREAM_FAMILY, "vm_family"),
            (self._STREAM_OS, "guest_os"),
            (self._STREAM_REGION, "region"),
        ):
            n_cats = max(encoder.n_categories(name), 1)
            codes.append(np.floor(uniforms[:, stream] * n_cats))
        jitter = (uniforms[:, self._STREAM_HISTORY] - 0.5) * 0.04
        history = np.clip(
            untouched_fraction[:, None] + jitter[:, None]
            + self._HISTORY_OFFSETS[None, :],
            0.0, 1.0,
        )
        metadata = encoder.assemble_matrix(memory_gb, cores, codes, history)
        tma = self._tma_matrix(
            uniforms[:, self._STREAM_TMA], uniforms[:, self._STREAM_NOISE]
        )
        return metadata, tma, uniforms

    # -- decision core -----------------------------------------------------------
    def _decide_arrays(self, memory_gb, untouched_fraction, digests):
        metadata, tma, uniforms = self._synth_features(
            memory_gb, untouched_fraction, digests
        )
        predicted_fraction = self.untouched_model.predict_fraction_from_features(
            metadata
        )
        znuma_gb = np.floor(predicted_fraction * memory_gb / self.slice_gb)
        znuma_gb *= self.slice_gb
        znuma_gb = np.minimum(znuma_gb, memory_gb)

        scores = self.latency_model.insensitivity_score(tma)
        fully_backed = scores >= self.latency_model.threshold_
        has_znuma = ~fully_backed & (znuma_gb > 0)
        all_local = ~fully_backed & ~has_znuma

        # Misprediction accounting against the generative ground truth.
        sensitivity = uniforms[:, self._STREAM_TMA]
        true_slowdown = self.SLOWDOWN_SCALE_PERCENT * sensitivity ** 2
        false_positive = fully_backed & (
            true_slowdown > self.latency_model.pdm_percent
        )
        untouched_gb = memory_gb * untouched_fraction
        spills = has_znuma & (znuma_gb > untouched_gb + 1e-9) & (
            uniforms[:, self._STREAM_TOUCH] < self.touch_violation_probability
        )

        pool_gb = np.where(fully_backed, memory_gb, znuma_gb)
        delta = PolicyStats(
            n_vms=memory_gb.shape[0],
            n_fully_pool_backed=int(fully_backed.sum()),
            n_znuma=int(has_znuma.sum()),
            n_all_local=int(all_local.sum()),
            n_mispredictions=int(false_positive.sum() + spills.sum()),
            pool_gb=float(pool_gb.sum()),
            total_gb=float(memory_gb.sum()),
        )
        return pool_gb, delta

    # -- online QoS estimator -----------------------------------------------------
    def predict_slowdown_batch(self, trace: TraceLike,
                               pool_gb: np.ndarray) -> np.ndarray:
        """Estimated slowdown percent per VM under the given pool shares.

        This is the QoS monitor's model view (path B in Figure 11): the
        latency forest is re-evaluated on the VM's (synthesised) telemetry
        and weighted by the pool exposure observed at runtime -- the full
        memory for a fully pool-backed VM, the spilled fraction (pool share
        beyond the actual untouched set, i.e. the untouched-fraction
        telemetry column) for a zNUMA VM.  A pure function of the digests
        and the fitted models, so every engine and shard count computes the
        same estimates.
        """
        memory_gb, untouched_fraction, digests = self._trace_arrays(trace)
        pool_gb = np.asarray(pool_gb, dtype=np.float64)
        _, tma, _ = self._synth_features(memory_gb, untouched_fraction, digests)
        scores = self.latency_model.insensitivity_score(tma)
        spilled_gb = np.maximum(
            pool_gb - untouched_fraction * memory_gb, 0.0
        )
        exposure = np.where(
            pool_gb >= memory_gb - 1e-9,
            1.0,
            spilled_gb / np.maximum(memory_gb, 1e-12),
        )
        return self.SLOWDOWN_SCALE_PERCENT * (1.0 - scores) * exposure

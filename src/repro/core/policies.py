"""Memory-allocation policies for the cluster-scale savings simulations.

The end-to-end evaluation (paper Section 6.5, Figure 21) compares:

* an **all-local** baseline (no pooling),
* a **static** strawman that puts a fixed percentage (15 %) of every VM's
  memory on the pool, and
* **Pond**, which per VM either (a) places the whole VM on the pool when the
  latency-insensitivity model says it is safe, or (b) places the predicted
  untouched memory on the pool (GB-aligned, rounded down).

These policies operate on :class:`~repro.cluster.trace.VMTraceRecord` objects
(the simulator's unit of work), so Pond's behaviour is modelled through its
*operating point*: the fraction of VMs it labels insensitive (LI), the false
positive rate among them (FP), and how aggressively it harvests untouched
memory (controlled by the prediction quantile / overprediction rate OP).
Mispredictions are tracked per VM so the experiments can verify the
scheduling-misprediction constraint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.cluster.trace import VMTraceRecord
from repro.core.prediction.combined import CombinedOperatingPoint

__all__ = ["AllLocalPolicy", "StaticFractionPolicy", "PondTracePolicy", "PolicyStats"]


@dataclass
class PolicyStats:
    """Per-policy accounting of decisions and mispredictions."""

    n_vms: int = 0
    n_fully_pool_backed: int = 0
    n_znuma: int = 0
    n_all_local: int = 0
    n_mispredictions: int = 0
    pool_gb: float = 0.0
    total_gb: float = 0.0

    @property
    def misprediction_percent(self) -> float:
        return 100.0 * self.n_mispredictions / self.n_vms if self.n_vms else 0.0

    @property
    def pool_fraction_percent(self) -> float:
        return 100.0 * self.pool_gb / self.total_gb if self.total_gb else 0.0


class AllLocalPolicy:
    """Every VM gets all of its memory on NUMA-local DRAM (the baseline)."""

    def __init__(self) -> None:
        self.stats = PolicyStats()

    def __call__(self, record: VMTraceRecord) -> float:
        self.stats.n_vms += 1
        self.stats.n_all_local += 1
        self.stats.total_gb += record.memory_gb
        return 0.0


class StaticFractionPolicy:
    """The strawman: a fixed fraction of every VM's memory goes to the pool.

    A VM is counted as a misprediction when its pool share exceeds its actual
    untouched memory (it will touch pool memory) *and* it is latency
    sensitive enough that the resulting spill exceeds the PDM; the paper
    estimates about 1/4 of touching VMs exceed a 5 % PDM.
    """

    def __init__(self, fraction: float = 0.15,
                 touch_violation_probability: float = 0.25,
                 seed: int = 0) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if not 0.0 <= touch_violation_probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.fraction = fraction
        self.touch_violation_probability = touch_violation_probability
        self._rng = np.random.default_rng(seed)
        self.stats = PolicyStats()

    def __call__(self, record: VMTraceRecord) -> float:
        pool_gb = record.memory_gb * self.fraction
        self.stats.n_vms += 1
        self.stats.n_znuma += 1
        self.stats.total_gb += record.memory_gb
        self.stats.pool_gb += pool_gb
        if pool_gb > record.untouched_gb + 1e-9:
            if self._rng.uniform() < self.touch_violation_probability:
                self.stats.n_mispredictions += 1
        return pool_gb


class PondTracePolicy:
    """Pond's allocation behaviour at a given combined-model operating point.

    Parameters
    ----------
    operating_point:
        The solved Eq.(1) operating point (LI %, FP %, OP %, UM %).
    prediction_quantile:
        How conservatively untouched memory is predicted: the prediction is
        this fraction of the VM's actual untouched memory for correctly
        predicted VMs.  Overpredicted VMs (an ``op_percent`` share) instead
        receive a prediction *above* their actual untouched memory.
    slice_gb:
        zNUMA sizes are rounded down to this granularity.
    """

    def __init__(
        self,
        operating_point: CombinedOperatingPoint,
        prediction_quantile: float = 0.8,
        overprediction_excess: float = 0.15,
        slice_gb: int = 1,
        touch_violation_probability: float = 0.25,
        seed: int = 0,
    ) -> None:
        if not 0.0 < prediction_quantile <= 1.0:
            raise ValueError("prediction_quantile must be in (0, 1]")
        if overprediction_excess < 0:
            raise ValueError("overprediction_excess cannot be negative")
        if slice_gb < 1:
            raise ValueError("slice_gb must be >= 1")
        self.point = operating_point
        self.prediction_quantile = prediction_quantile
        self.overprediction_excess = overprediction_excess
        self.slice_gb = slice_gb
        self.touch_violation_probability = touch_violation_probability
        self.seed = seed
        self.stats = PolicyStats()

    def _vm_rng(self, record: VMTraceRecord) -> np.random.Generator:
        """Deterministic per-VM randomness: the same VM always gets the same
        decision, no matter how many simulator passes consume the policy."""
        digest = abs(hash((record.vm_id, self.seed))) % (2**32)
        return np.random.default_rng(digest)

    # -- per-VM decision ---------------------------------------------------------------
    def __call__(self, record: VMTraceRecord) -> float:
        """Return the VM's pool memory in GB.

        Capacity modelling note: Pond's production scheduler treats pool
        memory as an additional bin-packing dimension, spreading fully
        pool-backed VMs across hosts and pool groups.  The per-server effect
        of that balancing is captured here by having every VM contribute its
        *expected* pool share (LI-probability-weighted) to capacity, while the
        misprediction accounting still uses per-VM draws -- see DESIGN.md.
        """
        rng = self._vm_rng(record)
        self.stats.n_vms += 1
        self.stats.total_gb += record.memory_gb
        li = self.point.li_percent / 100.0

        # zNUMA branch: size the pool share from the predicted untouched memory.
        overpredicted = rng.uniform() < self.point.op_percent / 100.0
        if overpredicted:
            predicted_fraction = min(
                0.99, record.untouched_fraction + self.overprediction_excess
            )
        else:
            predicted_fraction = record.untouched_fraction * self.prediction_quantile
        predicted_gb = predicted_fraction * record.memory_gb
        znuma_gb = math.floor(predicted_gb / self.slice_gb) * self.slice_gb
        znuma_gb = float(min(znuma_gb, record.memory_gb))

        # Misprediction accounting uses per-VM draws of the actual decision.
        if rng.uniform() < li:
            self.stats.n_fully_pool_backed += 1
            if rng.uniform() < self.point.fp_percent / 100.0:
                self.stats.n_mispredictions += 1
        elif znuma_gb <= 0:
            self.stats.n_all_local += 1
        else:
            self.stats.n_znuma += 1
            if znuma_gb > record.untouched_gb + 1e-9:
                # The VM spills; only a fraction of spilling VMs exceed the PDM.
                if rng.uniform() < self.touch_violation_probability:
                    self.stats.n_mispredictions += 1

        pool_gb = li * record.memory_gb + (1.0 - li) * znuma_gb
        self.stats.pool_gb += pool_gb
        return pool_gb

"""Latency-insensitivity prediction (paper Sections 4.4, 6.4.1, Figure 17).

A VM is *latency insensitive* if running it entirely on pool memory keeps its
slowdown within the PDM.  Pond trains a RandomForest on core-PMU (TMA)
features with offline slowdown measurements as labels, and parameterises it by
a target false-positive rate: the model only labels the workloads it is most
confident about, trading coverage (how many workloads can go on the pool)
against false positives (workloads that will need mitigation).

Two threshold heuristics serve as baselines (Figure 17): "memory bound" and
"DRAM bound" label a workload insensitive when the respective TMA counter is
below a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import insensitive_tradeoff_curve
from repro.hypervisor.telemetry import TMA_FEATURE_NAMES

__all__ = [
    "LatencyInsensitivityModel",
    "DramBoundHeuristic",
    "MemoryBoundHeuristic",
    "TradeoffCurve",
]


@dataclass(frozen=True)
class TradeoffCurve:
    """Insensitive-fraction vs false-positive-rate curve (both in percent)."""

    insensitive_percent: np.ndarray
    false_positive_percent: np.ndarray

    def max_insensitive_at_fp(self, fp_target_percent: float) -> float:
        """Largest insensitive fraction achievable at or below the FP target."""
        mask = self.false_positive_percent <= fp_target_percent + 1e-9
        if not mask.any():
            return 0.0
        return float(self.insensitive_percent[mask].max())


class LatencyInsensitivityModel:
    """RandomForest classifier over TMA features with an FP-rate knob."""

    def __init__(
        self,
        pdm_percent: float = 5.0,
        n_estimators: int = 60,
        max_depth: Optional[int] = 8,
        random_state: int = 0,
    ) -> None:
        if pdm_percent <= 0:
            raise ValueError("pdm_percent must be positive")
        self.pdm_percent = pdm_percent
        self.forest = RandomForestClassifier(
            n_estimators=n_estimators,
            max_depth=max_depth,
            max_features="sqrt",
            random_state=random_state,
        )
        self._fitted = False
        self.threshold_: float = 0.5

    # -- training ------------------------------------------------------------------
    def fit(self, features: np.ndarray, slowdowns_percent: np.ndarray) -> "LatencyInsensitivityModel":
        """Train on offline-run features and measured slowdowns (percent)."""
        features = np.asarray(features, dtype=float)
        slowdowns = np.asarray(slowdowns_percent, dtype=float)
        if features.shape[0] != slowdowns.shape[0]:
            raise ValueError("features and slowdowns must have matching lengths")
        labels = (slowdowns <= self.pdm_percent).astype(int)
        if len(np.unique(labels)) < 2:
            raise ValueError(
                "training data needs both sensitive and insensitive examples"
            )
        self.forest.fit(features, labels)
        self._fitted = True
        return self

    # -- scoring ---------------------------------------------------------------------
    def insensitivity_score(self, features: np.ndarray) -> np.ndarray:
        """Probability that each sample is latency insensitive."""
        if not self._fitted:
            raise RuntimeError("model has not been fitted")
        proba = self.forest.predict_proba(np.asarray(features, dtype=float))
        insensitive_col = int(np.where(self.forest.classes_ == 1)[0][0])
        return proba[:, insensitive_col]

    def predict_insensitive(self, features: np.ndarray,
                            threshold: Optional[float] = None) -> np.ndarray:
        """Binary insensitive predictions at the given (or calibrated) threshold."""
        scores = self.insensitivity_score(features)
        cut = self.threshold_ if threshold is None else threshold
        return (scores >= cut).astype(int)

    # -- calibration against an FP-rate target ------------------------------------------
    def calibrate_threshold(
        self,
        features: np.ndarray,
        slowdowns_percent: np.ndarray,
        fp_target_percent: float,
    ) -> float:
        """Pick the lowest score threshold keeping FP rate within the target.

        The FP rate is measured the way the paper does: among samples labelled
        insensitive, the share whose slowdown actually exceeds the PDM.
        """
        if fp_target_percent < 0:
            raise ValueError("FP target cannot be negative")
        scores = self.insensitivity_score(features)
        slowdowns = np.asarray(slowdowns_percent, dtype=float)
        sensitive = slowdowns > self.pdm_percent
        order = np.argsort(-scores, kind="mergesort")
        best_threshold = 1.0 + 1e-9  # Degenerate: label nothing insensitive.
        cum_fp = 0
        for rank, idx in enumerate(order, start=1):
            if sensitive[idx]:
                cum_fp += 1
            fp_rate = 100.0 * cum_fp / rank
            if fp_rate <= fp_target_percent:
                best_threshold = float(scores[idx])
        self.threshold_ = best_threshold
        return best_threshold

    def tradeoff_curve(self, features: np.ndarray,
                       slowdowns_percent: np.ndarray) -> TradeoffCurve:
        """The Figure 17 curve for this model on the given evaluation set."""
        scores = self.insensitivity_score(features)
        fractions, fps = insensitive_tradeoff_curve(
            scores, np.asarray(slowdowns_percent, dtype=float), self.pdm_percent
        )
        return TradeoffCurve(insensitive_percent=fractions, false_positive_percent=fps)


class _CounterHeuristic:
    """Threshold heuristic on a single TMA counter (lower counter => insensitive)."""

    counter_name: str = ""

    def __init__(self, pdm_percent: float = 5.0) -> None:
        if pdm_percent <= 0:
            raise ValueError("pdm_percent must be positive")
        self.pdm_percent = pdm_percent
        self._index = TMA_FEATURE_NAMES.index(self.counter_name)

    def insensitivity_score(self, features: np.ndarray) -> np.ndarray:
        """Higher score = more likely insensitive = lower counter value."""
        features = np.asarray(features, dtype=float)
        return -features[:, self._index]

    def tradeoff_curve(self, features: np.ndarray,
                       slowdowns_percent: np.ndarray) -> TradeoffCurve:
        scores = self.insensitivity_score(features)
        fractions, fps = insensitive_tradeoff_curve(
            scores, np.asarray(slowdowns_percent, dtype=float), self.pdm_percent
        )
        return TradeoffCurve(insensitive_percent=fractions, false_positive_percent=fps)

    def predict_insensitive(self, features: np.ndarray, threshold: float) -> np.ndarray:
        """Insensitive when the counter is below ``threshold``."""
        features = np.asarray(features, dtype=float)
        return (features[:, self._index] <= threshold).astype(int)


class DramBoundHeuristic(_CounterHeuristic):
    """Threshold on the DRAM-latency-bound TMA counter (the stronger heuristic)."""

    counter_name = "dram_latency_bound"


class MemoryBoundHeuristic(_CounterHeuristic):
    """Threshold on the memory-bound TMA counter (the weaker heuristic)."""

    counter_name = "memory_bound"

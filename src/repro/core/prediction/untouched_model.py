"""Untouched-memory prediction (paper Sections 4.4, 6.4.2, Figures 14, 18, 19).

The model predicts how much of a VM's memory will remain untouched over its
lifetime, using only scheduling-time metadata: VM shape, guest OS, location,
and -- most importantly -- percentiles of the untouched memory observed in the
customer's previous VMs.  Pond trains a gradient-boosted regressor with a
*quantile* objective so the prediction errs on the side of under-prediction:
an under-predicted VM simply keeps more local memory, whereas an
over-predicted VM may spill its working set onto the pool and need QoS
mitigation.

The prediction is converted to a GB-aligned zNUMA size by rounding down
(paper Section 4.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.prediction.features import VMMetadataEncoder
from repro.ml.gbm import QuantileGradientBoostingRegressor
from repro.ml.metrics import overprediction_tradeoff_curve

__all__ = ["UntouchedMemoryPredictor", "FixedFractionBaseline"]


class UntouchedMemoryPredictor:
    """Quantile-GBM predictor of a VM's untouched-memory fraction."""

    def __init__(
        self,
        quantile: float = 0.03,
        n_estimators: int = 60,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 25,
        random_state: int = 0,
    ) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.quantile = quantile
        self.encoder = VMMetadataEncoder()
        # Shallow trees with large leaves: the conditional quantile must be
        # estimated from enough samples per leaf or the model memorises noise
        # and its overprediction rate drifts above the target quantile.
        self.gbm = QuantileGradientBoostingRegressor(
            alpha=quantile,
            n_estimators=n_estimators,
            learning_rate=learning_rate,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            random_state=random_state,
        )
        self._fitted = False

    # -- training -------------------------------------------------------------------
    def fit(self, metadata_rows: Sequence[Dict],
            untouched_fractions: Sequence[float]) -> "UntouchedMemoryPredictor":
        """Train on metadata rows and observed minimum untouched fractions."""
        untouched = np.asarray(untouched_fractions, dtype=float)
        if len(metadata_rows) != len(untouched):
            raise ValueError("metadata and labels must have matching lengths")
        if len(metadata_rows) == 0:
            raise ValueError("cannot train on an empty dataset")
        if np.any((untouched < 0) | (untouched > 1)):
            raise ValueError("untouched fractions must be in [0, 1]")
        self.encoder.fit(metadata_rows)
        features = self.encoder.encode(metadata_rows)
        self.gbm.fit(features, untouched)
        self._fitted = True
        return self

    # -- prediction ------------------------------------------------------------------
    def predict_fraction(self, metadata_rows: Sequence[Dict]) -> np.ndarray:
        """Predicted untouched fraction per VM (clipped to [0, 1))."""
        if not self._fitted:
            raise RuntimeError("model has not been fitted")
        features = self.encoder.encode(metadata_rows)
        return np.clip(self.gbm.predict(features), 0.0, 0.99)

    def predict_fraction_from_features(self, features: np.ndarray) -> np.ndarray:
        """Predicted untouched fraction from an already-assembled matrix.

        The vectorized policy path builds its feature matrix with
        :meth:`VMMetadataEncoder.assemble_matrix` (no dict rows); this is
        the matching predict entry point, with the same [0, 0.99) clip as
        :meth:`predict_fraction`.
        """
        if not self._fitted:
            raise RuntimeError("model has not been fitted")
        features = np.asarray(features, dtype=float)
        if features.ndim != 2 or features.shape[1] != self.encoder.n_features:
            raise ValueError(
                f"expected a (n, {self.encoder.n_features}) feature matrix, "
                f"got shape {features.shape}"
            )
        return np.clip(self.gbm.predict(features), 0.0, 0.99)

    def predict_znuma_gb(self, metadata_row: Dict, memory_gb: float,
                         slice_gb: int = 1) -> float:
        """GB-aligned zNUMA (pool) size for one VM, rounded down."""
        if memory_gb <= 0:
            raise ValueError("memory_gb must be positive")
        if slice_gb < 1:
            raise ValueError("slice_gb must be >= 1")
        fraction = float(self.predict_fraction([metadata_row])[0])
        raw_gb = fraction * memory_gb
        aligned = math.floor(raw_gb / slice_gb) * slice_gb
        return float(min(aligned, memory_gb))

    # -- evaluation -------------------------------------------------------------------
    def overprediction_rate(self, metadata_rows: Sequence[Dict],
                            actual_untouched: Sequence[float]) -> float:
        """Percent of VMs whose prediction exceeds the actual untouched fraction."""
        predicted = self.predict_fraction(metadata_rows)
        actual = np.asarray(actual_untouched, dtype=float)
        return float(np.mean(predicted > actual + 1e-12)) * 100.0

    def average_untouched_percent(self, metadata_rows: Sequence[Dict]) -> float:
        """Average predicted untouched memory (percent of VM memory)."""
        return float(np.mean(self.predict_fraction(metadata_rows))) * 100.0

    def tradeoff_curve(self, metadata_rows: Sequence[Dict],
                       actual_untouched: Sequence[float], n_points: int = 50):
        """Figure-18-style curve: average untouched percent vs overprediction rate."""
        predicted = self.predict_fraction(metadata_rows)
        actual = np.asarray(actual_untouched, dtype=float)
        return overprediction_tradeoff_curve(predicted, actual, n_points=n_points)


@dataclass
class FixedFractionBaseline:
    """Strawman that assumes the same untouched fraction for every VM (Figure 18)."""

    fraction: float = 0.15

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

    def predict_fraction(self, metadata_rows: Sequence[Dict]) -> np.ndarray:
        return np.full(len(metadata_rows), self.fraction)

    def overprediction_rate(self, metadata_rows: Sequence[Dict],
                            actual_untouched: Sequence[float]) -> float:
        actual = np.asarray(actual_untouched, dtype=float)
        return float(np.mean(self.fraction > actual + 1e-12)) * 100.0

    def average_untouched_percent(self, metadata_rows: Sequence[Dict]) -> float:
        return self.fraction * 100.0

    def tradeoff_curve(self, metadata_rows: Sequence[Dict],
                       actual_untouched: Sequence[float], n_points: int = 50):
        """Sweep the fixed fraction from 0 to 50 % (the Figure 18 strawman line)."""
        actual = np.asarray(actual_untouched, dtype=float)
        fractions = np.linspace(0.0, 0.5, n_points)
        avg = fractions * 100.0
        op = np.array([
            float(np.mean(f > actual + 1e-12)) * 100.0 for f in fractions
        ])
        return avg, op

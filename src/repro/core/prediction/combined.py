"""The combined prediction model and the Eq.(1) optimisation (paper Section 4.4).

Pond has to split a single error budget between its two models:

* labelling more workloads latency-insensitive (LI) puts more DRAM on the pool
  but raises the false-positive rate (FP),
* harvesting more untouched memory (UM) also puts more DRAM on the pool but
  raises the overprediction rate (OP).

Equation (1) maximises ``LI + UM`` subject to ``FP + OP <= 100 - TP``.  The
optimiser here consumes the two empirical trade-off curves (Figures 17/18),
grid-searches the split of the error budget, and reports the chosen operating
point together with the derived quantities the evaluation uses:

* the average fraction of DRAM placed on pools
  (``LI + (1 - LI) * UM`` -- insensitive VMs are fully pool-backed, the rest
  contribute their untouched share), and
* the expected scheduling-misprediction rate, i.e. the share of VMs that will
  exceed the PDM (false positives plus the fraction of overpredicted VMs whose
  spill actually causes a violation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CombinedOperatingPoint", "CombinedModelOptimizer"]


@dataclass(frozen=True)
class CombinedOperatingPoint:
    """One feasible operating point of the combined model (all values percent)."""

    fp_percent: float
    op_percent: float
    li_percent: float
    um_percent: float
    #: Probability that an overpredicted VM actually exceeds the PDM.
    op_violation_probability: float = 0.25

    @property
    def objective(self) -> float:
        """The Eq.(1) objective: LI + UM."""
        return self.li_percent + self.um_percent

    @property
    def pool_dram_percent(self) -> float:
        """Average share of DRAM placed on pools at this operating point."""
        li = self.li_percent / 100.0
        um = self.um_percent / 100.0
        return 100.0 * (li + (1.0 - li) * um)

    @property
    def scheduling_misprediction_percent(self) -> float:
        """Expected share of VMs exceeding the PDM before QoS mitigation."""
        li = self.li_percent / 100.0
        fp = self.fp_percent / 100.0
        op = self.op_percent / 100.0
        return 100.0 * (li * fp + op * self.op_violation_probability)


class CombinedModelOptimizer:
    """Solves Eq.(1) given the two models' empirical trade-off curves.

    Parameters
    ----------
    li_curve:
        Callable mapping an FP budget (percent) to the largest achievable LI
        (percent of workloads labelled insensitive).  Typically
        ``TradeoffCurve.max_insensitive_at_fp`` from the latency model.
    um_curve:
        Callable mapping an OP budget (percent) to the largest achievable UM
        (average untouched-memory percent).  Built from the untouched model's
        trade-off curve.
    op_violation_probability:
        Probability that an overprediction leads to a PDM violation (the paper
        estimates ~1/4 from the Figure 16 spill study).
    """

    def __init__(
        self,
        li_curve: Callable[[float], float],
        um_curve: Callable[[float], float],
        op_violation_probability: float = 0.25,
    ) -> None:
        if not 0.0 <= op_violation_probability <= 1.0:
            raise ValueError("op_violation_probability must be in [0, 1]")
        self.li_curve = li_curve
        self.um_curve = um_curve
        self.op_violation_probability = op_violation_probability

    def solve(self, error_budget_percent: float,
              n_grid: int = 101) -> CombinedOperatingPoint:
        """Find the FP/OP split maximising LI + UM within the error budget."""
        if error_budget_percent < 0:
            raise ValueError("error budget cannot be negative")
        if n_grid < 2:
            raise ValueError("n_grid must be >= 2")
        best: Optional[CombinedOperatingPoint] = None
        for fp in np.linspace(0.0, error_budget_percent, n_grid):
            op = error_budget_percent - fp
            point = CombinedOperatingPoint(
                fp_percent=float(fp),
                op_percent=float(op),
                li_percent=float(self.li_curve(float(fp))),
                um_percent=float(self.um_curve(float(op))),
                op_violation_probability=self.op_violation_probability,
            )
            if best is None or point.objective > best.objective:
                best = point
        assert best is not None
        return best

    def sweep(self, error_budgets_percent: Sequence[float],
              n_grid: int = 101) -> Tuple[np.ndarray, np.ndarray]:
        """Figure 20 data: pool-DRAM percent vs scheduling mispredictions.

        Returns (pool_dram_percent, misprediction_percent) arrays, one entry
        per error budget.
        """
        pool = []
        mispred = []
        for budget in error_budgets_percent:
            point = self.solve(budget, n_grid=n_grid)
            pool.append(point.pool_dram_percent)
            mispred.append(point.scheduling_misprediction_percent)
        return np.array(pool), np.array(mispred)

    @staticmethod
    def curve_from_points(x_percent: Sequence[float],
                          y_percent: Sequence[float]) -> Callable[[float], float]:
        """Build a budget -> value curve from measured (budget, value) points.

        The returned callable gives the best ``y`` achievable with a budget of
        at most ``x`` (monotone envelope of the measured points).
        """
        x = np.asarray(x_percent, dtype=float)
        y = np.asarray(y_percent, dtype=float)
        if x.shape != y.shape or x.size == 0:
            raise ValueError("x and y must be non-empty and of equal length")
        order = np.argsort(x)
        x_sorted = x[order]
        y_sorted = np.maximum.accumulate(y[order])

        def curve(budget: float) -> float:
            mask = x_sorted <= budget + 1e-9
            if not mask.any():
                return 0.0
            return float(y_sorted[mask].max())

        return curve

"""Pond's prediction models (paper Section 4.4).

* :mod:`repro.core.prediction.features` -- feature encoding for both models:
  TMA counter vectors for latency insensitivity, VM metadata + customer
  history percentiles for untouched memory.
* :mod:`repro.core.prediction.latency_model` -- the RandomForest latency-
  insensitivity classifier and the threshold heuristics it is compared to.
* :mod:`repro.core.prediction.untouched_model` -- the gradient-boosted
  quantile regressor for untouched memory.
* :mod:`repro.core.prediction.combined` -- the Eq.(1) optimiser balancing the
  two models' error budgets.
"""

from repro.core.prediction.features import (
    VMMetadataEncoder,
    telemetry_features,
)
from repro.core.prediction.latency_model import (
    LatencyInsensitivityModel,
    DramBoundHeuristic,
    MemoryBoundHeuristic,
)
from repro.core.prediction.untouched_model import UntouchedMemoryPredictor
from repro.core.prediction.combined import CombinedModelOptimizer, CombinedOperatingPoint

__all__ = [
    "VMMetadataEncoder",
    "telemetry_features",
    "LatencyInsensitivityModel",
    "DramBoundHeuristic",
    "MemoryBoundHeuristic",
    "UntouchedMemoryPredictor",
    "CombinedModelOptimizer",
    "CombinedOperatingPoint",
]

"""Feature encoding for Pond's two prediction models.

The latency-insensitivity model consumes core-PMU (TMA) counter vectors; the
untouched-memory model consumes VM metadata plus customer-history percentiles
(paper Figures 12 and 14).  Neither model may use anything that requires
looking inside the VM -- only telemetry available for opaque VMs.

:class:`VMMetadataEncoder` turns the categorical metadata (VM family, guest
OS, region) into a stable numeric encoding learned from the training
population, and concatenates the numeric features (memory, cores, history
percentiles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.hypervisor.telemetry import VMTelemetry

__all__ = ["VMMetadataEncoder", "telemetry_features", "METADATA_CATEGORICAL_FIELDS"]

#: Categorical metadata fields used by the untouched-memory model.
METADATA_CATEGORICAL_FIELDS = ("vm_family", "guest_os", "region")


def telemetry_features(telemetry: VMTelemetry,
                       percentiles: Sequence[float] = (50, 90, 99)) -> np.ndarray:
    """Latency-model feature vector from a VM's runtime telemetry.

    Uses per-counter percentiles over the VM's samples, which is what lets the
    QoS monitor re-evaluate latency sensitivity continuously at runtime.
    """
    return telemetry.percentile_features(percentiles)


@dataclass
class _CategoryTable:
    """Stable string -> index mapping with an explicit unknown bucket."""

    values: Dict[str, int] = field(default_factory=dict)

    def fit(self, observed: Sequence[str]) -> None:
        for value in sorted(set(observed)):
            if value not in self.values:
                self.values[value] = len(self.values)

    def encode(self, value: str) -> int:
        # Unknown categories map to -1 so the trees can isolate them.
        return self.values.get(value, -1)

    @property
    def n_categories(self) -> int:
        return len(self.values)


class VMMetadataEncoder:
    """Encodes VM metadata rows into numeric vectors for the untouched model.

    A metadata row is a dictionary with keys:

    ``memory_gb``, ``cores`` (numeric), ``vm_family``, ``guest_os``,
    ``region`` (categorical), and ``history_percentiles`` (a sequence of the
    customer's recent untouched-memory percentiles, e.g. 0/25/50/75/100).
    """

    def __init__(self, n_history_percentiles: int = 5) -> None:
        if n_history_percentiles < 1:
            raise ValueError("need at least one history percentile")
        self.n_history_percentiles = n_history_percentiles
        self._tables: Dict[str, _CategoryTable] = {
            name: _CategoryTable() for name in METADATA_CATEGORICAL_FIELDS
        }
        self._fitted = False

    # -- fitting --------------------------------------------------------------------
    def fit(self, rows: Sequence[Dict]) -> "VMMetadataEncoder":
        if not rows:
            raise ValueError("cannot fit the encoder on an empty dataset")
        for name in METADATA_CATEGORICAL_FIELDS:
            self._tables[name].fit([str(row.get(name, "")) for row in rows])
        self._fitted = True
        return self

    # -- encoding --------------------------------------------------------------------
    def encode_row(self, row: Dict) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("encoder must be fitted before encoding")
        numeric = [
            float(row.get("memory_gb", 0.0)),
            float(row.get("cores", 0.0)),
        ]
        categorical = [
            float(self._tables[name].encode(str(row.get(name, ""))))
            for name in METADATA_CATEGORICAL_FIELDS
        ]
        history = list(row.get("history_percentiles", []))
        if len(history) < self.n_history_percentiles:
            # Missing history: pad with a pessimistic zero-untouched signal.
            history = history + [0.0] * (self.n_history_percentiles - len(history))
        history = [float(h) for h in history[: self.n_history_percentiles]]
        return np.array(numeric + categorical + history, dtype=float)

    def encode(self, rows: Sequence[Dict]) -> np.ndarray:
        return np.vstack([self.encode_row(row) for row in rows])

    def assemble_matrix(
        self,
        memory_gb: np.ndarray,
        cores: np.ndarray,
        categorical_codes: Sequence[np.ndarray],
        history: np.ndarray,
    ) -> np.ndarray:
        """Vectorized feature-matrix assembly from already-encoded columns.

        The batch-policy hot path synthesises metadata as numeric arrays
        (per-VM digest draws), so building dict rows only to tear them back
        apart in :meth:`encode_row` would dominate the prediction cost.
        This assembles the same ``(n, n_features)`` layout directly:
        ``categorical_codes`` must already be table codes (use
        :meth:`n_categories` to draw valid ones; -1 is the unknown bucket)
        in ``METADATA_CATEGORICAL_FIELDS`` order, and ``history`` is the
        ``(n, n_history_percentiles)`` block.
        """
        if not self._fitted:
            raise RuntimeError("encoder must be fitted before encoding")
        if len(categorical_codes) != len(METADATA_CATEGORICAL_FIELDS):
            raise ValueError(
                f"need {len(METADATA_CATEGORICAL_FIELDS)} categorical code "
                f"columns, got {len(categorical_codes)}"
            )
        history = np.asarray(history, dtype=float)
        n = len(memory_gb)
        if history.shape != (n, self.n_history_percentiles):
            raise ValueError(
                f"history must have shape ({n}, {self.n_history_percentiles})"
            )
        out = np.empty((n, self.n_features), dtype=float)
        out[:, 0] = memory_gb
        out[:, 1] = cores
        for j, codes in enumerate(categorical_codes):
            out[:, 2 + j] = codes
        out[:, 2 + len(categorical_codes):] = history
        return out

    def n_categories(self, name: str) -> int:
        """Fitted category count for one of METADATA_CATEGORICAL_FIELDS."""
        return self._tables[name].n_categories

    @property
    def feature_names(self) -> List[str]:
        names = ["memory_gb", "cores"]
        names += list(METADATA_CATEGORICAL_FIELDS)
        names += [f"history_p{i}" for i in range(self.n_history_percentiles)]
        return names

    @property
    def n_features(self) -> int:
        return 2 + len(METADATA_CATEGORICAL_FIELDS) + self.n_history_percentiles

"""Pond configuration (paper Section 4).

Pond exposes exactly two externally-set parameters:

* **PDM** -- the performance degradation margin: the allowable slowdown of a
  workload relative to running entirely on NUMA-local DRAM (e.g. 1-10 %).
* **TP** -- the tail percentage: the share of VMs that must stay within the
  PDM (e.g. 98 %), which bounds the combined model's error budget via Eq.(1)
  and determines how often the QoS monitor must mitigate.

Everything else (pool size, slice granularity, latency scenario, QoS
mitigation budget) is deployment configuration collected here so that the
control plane, the policies, and the experiment drivers share one source of
truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.workloads.sensitivity import LatencyScenario, SCENARIO_182

__all__ = ["PondConfig"]


@dataclass(frozen=True)
class PondConfig:
    """Deployment-level Pond configuration."""

    #: Performance degradation margin, percent slowdown allowed per VM.
    pdm_percent: float = 5.0
    #: Target percentage of VMs that must stay within the PDM.
    tail_percentage: float = 98.0
    #: Number of CPU sockets sharing one pool.
    pool_size_sockets: int = 16
    #: Pool memory slice granularity in GB.
    slice_gb: int = 1
    #: Emulated CXL latency scenario used for performance modelling.
    scenario: LatencyScenario = field(default_factory=lambda: SCENARIO_182)
    #: Fraction of mispredicted VMs the QoS monitor can mitigate (paper: 1 %).
    qos_mitigation_budget_percent: float = 1.0
    #: Pool memory buffer (in slices per host) kept free for instant VM starts.
    pool_buffer_slices_per_host: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.pdm_percent <= 100.0:
            raise ValueError("pdm_percent must be in (0, 100]")
        if not 0.0 < self.tail_percentage <= 100.0:
            raise ValueError("tail_percentage must be in (0, 100]")
        if self.pool_size_sockets < 2:
            raise ValueError("pool_size_sockets must be >= 2")
        if self.slice_gb < 1:
            raise ValueError("slice_gb must be >= 1")
        if self.qos_mitigation_budget_percent < 0:
            raise ValueError("mitigation budget cannot be negative")
        if self.pool_buffer_slices_per_host < 0:
            raise ValueError("pool buffer cannot be negative")

    @property
    def error_budget_percent(self) -> float:
        """The Eq.(1) right-hand side: 100 - TP, split between FP and OP."""
        return 100.0 - self.tail_percentage

    @property
    def scheduling_misprediction_target_percent(self) -> float:
        """Mispredictions the scheduler may make before QoS mitigation runs out.

        The QoS monitor can mitigate up to ``qos_mitigation_budget_percent``
        of VMs, so the combined model can be allowed that much extra error on
        top of the raw 100 - TP budget.
        """
        return self.error_budget_percent + self.qos_mitigation_budget_percent

    def with_pdm(self, pdm_percent: float) -> "PondConfig":
        """Copy of this config with a different PDM."""
        return PondConfig(
            pdm_percent=pdm_percent,
            tail_percentage=self.tail_percentage,
            pool_size_sockets=self.pool_size_sockets,
            slice_gb=self.slice_gb,
            scenario=self.scenario,
            qos_mitigation_budget_percent=self.qos_mitigation_budget_percent,
            pool_buffer_slices_per_host=self.pool_buffer_slices_per_host,
        )

    def with_scenario(self, scenario: LatencyScenario) -> "PondConfig":
        """Copy of this config with a different latency scenario."""
        return PondConfig(
            pdm_percent=self.pdm_percent,
            tail_percentage=self.tail_percentage,
            pool_size_sockets=self.pool_size_sockets,
            slice_gb=self.slice_gb,
            scenario=scenario,
            qos_mitigation_budget_percent=self.qos_mitigation_budget_percent,
            pool_buffer_slices_per_host=self.pool_buffer_slices_per_host,
        )

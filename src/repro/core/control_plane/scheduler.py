"""Prediction-driven VM scheduling (paper Section 4.3, Figures 11 and 13).

The scheduling workflow for an incoming VM request:

1. If the customer has *workload history*, query the latency-insensitivity
   model; insensitive VMs are allocated entirely on pool DRAM.
2. Otherwise (or when predicted sensitive), query the untouched-memory model;
   VMs with predicted untouched memory get a GB-aligned zNUMA node of that
   size backed by the pool, and the rest of their memory locally.
3. VMs with no predicted untouched memory get all-local allocations.
4. Before the VM starts, the Pool Manager onlines the needed slices on the
   target host (onlining is fast, so it does not delay the VM start); a
   buffer of free pool memory is maintained so offlining never blocks starts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.core.config import PondConfig
from repro.core.control_plane.pool_manager import PoolManager
from repro.hypervisor.host import Host, HostCapacityError
from repro.hypervisor.vm import VMInstance, VMRequest

__all__ = ["SchedulingDecision", "PondScheduler"]

#: Predicts whether a VM (given its request) is latency insensitive; returns
#: ``None`` when there is no workload history to base a prediction on.
InsensitivityPredictor = Callable[[VMRequest], Optional[bool]]
#: Predicts a VM's untouched memory in GB from its request metadata.
UntouchedPredictor = Callable[[VMRequest], float]


@dataclass(frozen=True)
class SchedulingDecision:
    """The memory split chosen for one VM plus the reasoning behind it."""

    vm_id: str
    local_gb: float
    pool_gb: float
    predicted_insensitive: Optional[bool]
    had_history: bool
    predicted_untouched_gb: float

    @property
    def uses_pool(self) -> bool:
        return self.pool_gb > 0

    @property
    def fully_pool_backed(self) -> bool:
        return self.local_gb == 0 and self.pool_gb > 0

    @property
    def pool_fraction(self) -> float:
        total = self.local_gb + self.pool_gb
        return self.pool_gb / total if total > 0 else 0.0


class PondScheduler:
    """Places VM requests on hosts using Pond's prediction pipeline."""

    def __init__(
        self,
        config: PondConfig,
        pool_manager: PoolManager,
        insensitivity_predictor: InsensitivityPredictor,
        untouched_predictor: UntouchedPredictor,
    ) -> None:
        self.config = config
        self.pool_manager = pool_manager
        self.insensitivity_predictor = insensitivity_predictor
        self.untouched_predictor = untouched_predictor
        self.decisions: Dict[str, SchedulingDecision] = {}

    # -- the Figure 13 decision tree -------------------------------------------------------
    def decide(self, request: VMRequest) -> SchedulingDecision:
        """Decide the local/pool split for a request (no placement side effects)."""
        insensitive = self.insensitivity_predictor(request)
        had_history = insensitive is not None

        if had_history and insensitive:
            decision = SchedulingDecision(
                vm_id=request.vm_id,
                local_gb=0.0,
                pool_gb=request.memory_gb,
                predicted_insensitive=True,
                had_history=True,
                predicted_untouched_gb=request.memory_gb,
            )
        else:
            untouched_gb = max(0.0, float(self.untouched_predictor(request)))
            slice_gb = self.config.slice_gb
            pool_gb = min(
                request.memory_gb,
                math.floor(untouched_gb / slice_gb) * slice_gb,
            )
            decision = SchedulingDecision(
                vm_id=request.vm_id,
                local_gb=request.memory_gb - pool_gb,
                pool_gb=float(pool_gb),
                predicted_insensitive=insensitive,
                had_history=had_history,
                predicted_untouched_gb=untouched_gb,
            )
        self.decisions[request.vm_id] = decision
        return decision

    # -- placement ---------------------------------------------------------------------------
    def schedule(self, request: VMRequest, host: Host,
                 start_time_s: float = 0.0) -> VMInstance:
        """Decide, online pool slices on the host, and place the VM.

        Raises :class:`~repro.hypervisor.host.HostCapacityError` if the host
        cannot fit the VM even after onlining pool memory.
        """
        decision = self.decide(request)
        if decision.pool_gb > 0:
            needed_slices = math.ceil(decision.pool_gb / self.config.slice_gb)
            have_slices = int(host.free_pool_gb // self.config.slice_gb)
            missing = max(0, needed_slices - have_slices)
            if missing > 0:
                if missing > self.pool_manager.unassigned_pool_gb // self.config.slice_gb:
                    raise HostCapacityError(
                        f"pool exhausted while scheduling VM {request.vm_id}"
                    )
                self.pool_manager.add_capacity(host.host_id, missing)
        vm = host.place_vm(
            request,
            local_gb=decision.local_gb,
            pool_gb=decision.pool_gb,
            start_time_s=start_time_s,
        )
        # Keep the start-time buffer topped up for the next arrival.
        self.pool_manager.ensure_buffer(
            host.host_id, self.config.pool_buffer_slices_per_host
        )
        return vm

    # -- departure path ------------------------------------------------------------------------
    def handle_departure(self, host: Host, vm_id: str, time_s: float) -> None:
        """Terminate the VM and queue its pool slices for asynchronous release."""
        vm = host.terminate_vm(vm_id, time_s)
        if vm.pool_memory_gb > 0:
            releasable = int(host.free_pool_gb // self.config.slice_gb)
            buffer_slices = self.config.pool_buffer_slices_per_host
            to_release = max(0, releasable - buffer_slices)
            if to_release > 0:
                self.pool_manager.queue_release(host.host_id, to_release, now_s=time_s)

"""Pond's distributed control plane (paper Section 4.3, Figure 11).

* :mod:`repro.core.control_plane.pool_manager` -- the Pool Manager colocated
  with the EMCs: onlines/offlines 1 GB slices, keeps the free buffer that
  takes slice offlining off the VM-start critical path.
* :mod:`repro.core.control_plane.scheduler` -- the prediction-driven VM
  scheduling workflow (path A in Figure 11 / decision tree in Figure 13).
* :mod:`repro.core.control_plane.qos_monitor` -- continuous QoS monitoring of
  running VMs (path B).
* :mod:`repro.core.control_plane.mitigation` -- the mitigation manager that
  migrates mispredicted VMs to all-local memory.
* :mod:`repro.core.control_plane.online` -- the fleet-scale projection of
  paths A+B: config/accounting for the online QoS tick the array-engine
  replays run per sample interval (DESIGN.md section 10).
"""

from repro.core.control_plane.pool_manager import PoolManager
from repro.core.control_plane.scheduler import PondScheduler, SchedulingDecision
from repro.core.control_plane.qos_monitor import QoSMonitor, QoSVerdict
from repro.core.control_plane.mitigation import MitigationManager
from repro.core.control_plane.online import (
    OnlineControlConfig,
    OnlineControlStats,
)

__all__ = [
    "PoolManager",
    "PondScheduler",
    "SchedulingDecision",
    "QoSMonitor",
    "QoSVerdict",
    "MitigationManager",
    "OnlineControlConfig",
    "OnlineControlStats",
]

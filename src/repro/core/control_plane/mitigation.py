"""Mitigation manager: the one-time memory reconfiguration (paper Section 4.2).

When the QoS monitor flags a VM, the mitigation manager performs Pond's
one-time correction: the hypervisor temporarily disables the virtualization
accelerator, copies all of the VM's pool memory to local DRAM (about 50 ms per
GB), re-enables the accelerator, and the VM runs all-local from then on.  If
the host lacks free local memory, the fallback is a live migration to another
host (modelled here as a slower, whole-memory copy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hypervisor.host import Host, HostCapacityError
from repro.hypervisor.vm import VMInstance

__all__ = ["MitigationManager", "MitigationRecord"]

#: Live migration to another host copies all memory at roughly this rate.
LIVE_MIGRATION_S_PER_GB = 0.2


@dataclass(frozen=True)
class MitigationRecord:
    """One executed (or failed) mitigation."""

    vm_id: str
    #: "local_copy", "live_migration", "failed", "vm_departed", or "killed"
    #: (the recorded end of the fault-degradation ladder, DESIGN.md
    #: section 11 -- never a silent drop).
    method: str
    moved_gb: float
    duration_s: float


class MitigationManager:
    """Executes mitigations requested by the QoS monitor."""

    def __init__(self) -> None:
        self.records: List[MitigationRecord] = []

    def mitigate(self, host: Host, vm_id: str,
                 fallback_host: Optional[Host] = None,
                 missing_ok: bool = False) -> MitigationRecord:
        """Move the VM's pool memory to local DRAM, falling back to migration.

        Returns the record of what happened; a record with method ``failed``
        means neither the local copy nor the fallback migration was possible.
        A VM can legitimately depart between the QoS verdict and the
        mitigation executing; pass ``missing_ok=True`` to record that race as
        a ``vm_departed`` no-op instead of raising ``KeyError``.
        ``vm_departed`` records count as neither mitigations nor failures.
        """
        vm = host.vms.get(vm_id)
        if vm is None:
            if missing_ok:
                record = MitigationRecord(vm_id, "vm_departed", 0.0, 0.0)
                self.records.append(record)
                return record
            raise KeyError(f"host {host.host_id} has no VM {vm_id!r}")
        pool_gb = vm.pool_memory_gb
        if pool_gb <= 0:
            record = MitigationRecord(vm_id, "local_copy", 0.0, 0.0)
            self.records.append(record)
            return record

        try:
            duration = host.mitigate_vm(vm_id)
            record = MitigationRecord(vm_id, "local_copy", pool_gb, duration)
        except HostCapacityError:
            if fallback_host is None:
                record = MitigationRecord(vm_id, "failed", 0.0, 0.0)
            else:
                record = self._live_migrate(host, fallback_host, vm)
        self.records.append(record)
        return record

    def _live_migrate(self, source: Host, target: Host, vm: VMInstance) -> MitigationRecord:
        """Move the VM to ``target`` with an all-local allocation."""
        request = vm.request
        if target.free_cores < request.cores or \
                target.free_local_gb < request.memory_gb - 1e-9:
            return MitigationRecord(vm.vm_id, "failed", 0.0, 0.0)
        source.terminate_vm(vm.vm_id, time_s=max(vm.start_time_s, 0.0))
        new_vm = target.place_vm(
            request, local_gb=request.memory_gb, pool_gb=0.0,
            start_time_s=vm.start_time_s,
        )
        new_vm.record_touch(vm.touched_memory_gb)
        new_vm.mitigated = True
        duration = LIVE_MIGRATION_S_PER_GB * request.memory_gb
        return MitigationRecord(vm.vm_id, "live_migration", request.memory_gb, duration)

    def record_kill(self, vm_id: str, memory_gb: float) -> MitigationRecord:
        """Record a VM killed at the end of the degradation ladder.

        When an EMC failure strands a VM and both rungs of the ladder
        (pool-to-local reconfiguration, then live migration) exhaust their
        retry budget, the VM is terminated -- recorded here so no outcome
        is ever silently dropped (DESIGN.md section 11).  ``moved_gb`` is
        the VM's full memory footprint: the capacity the kill released.
        """
        record = MitigationRecord(vm_id, "killed", float(memory_gb), 0.0)
        self.records.append(record)
        return record

    # -- accounting -------------------------------------------------------------------------
    @property
    def n_mitigations(self) -> int:
        return sum(1 for r in self.records
                   if r.method in ("local_copy", "live_migration"))

    @property
    def n_failures(self) -> int:
        return sum(1 for r in self.records if r.method == "failed")

    @property
    def n_kills(self) -> int:
        return sum(1 for r in self.records if r.method == "killed")

    def total_moved_gb(self) -> float:
        return sum(r.moved_gb for r in self.records)

    def total_duration_s(self) -> float:
        return sum(r.duration_s for r in self.records)

"""The Pool Manager (paper Sections 4.1-4.3, Figure 9).

The Pool Manager (PM) is colocated with the EMCs and assigns 1 GB slices of
pool memory to hosts:

* ``Add_capacity(host, slice)`` interrupts the host driver, which hot-plugs
  the address range and brings the memory online (microseconds per GB), and
  records the host in the EMC's permission table.
* ``Release_capacity(host, slice)`` offlines the slice on the host (10-100 ms
  per GB) and clears the permission entry.

Because offlining is slow, the PM keeps a buffer of unallocated pool memory
per host and performs releases *asynchronously* after VM departures, so VM
starts never wait on reclamation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.cxl.emc import EMCDevice, EMCError
from repro.hypervisor.host import Host
from repro.hypervisor.slices import SliceTransitionModel

__all__ = ["PoolManager", "PoolManagerError"]


class PoolManagerError(RuntimeError):
    """Raised for invalid Pool Manager operations."""


@dataclass
class _PendingRelease:
    """A queued asynchronous slice release."""

    host_id: str
    n_slices: int
    queued_at_s: float


class PoolManager:
    """Assigns pool slices to hosts and reclaims them asynchronously."""

    def __init__(
        self,
        emc: EMCDevice,
        transition_model: Optional[SliceTransitionModel] = None,
        slice_gb: int = 1,
    ) -> None:
        if slice_gb < 1:
            raise ValueError("slice_gb must be >= 1")
        self.emc = emc
        self.slice_gb = slice_gb
        self.transitions = transition_model or SliceTransitionModel(seed=0)
        self.hosts: Dict[str, Host] = {}
        self._release_queue: Deque[_PendingRelease] = deque()
        #: Completed onlining/offlining wall-clock time, for Finding-10 accounting.
        self.total_online_s: float = 0.0
        self.total_offline_s: float = 0.0

    # -- host registration -----------------------------------------------------------
    def register_host(self, host: Host) -> int:
        """Attach a host to the EMC; returns the CXL port id."""
        if host.host_id in self.hosts:
            raise PoolManagerError(f"host {host.host_id!r} already registered")
        port = self.emc.attach_host(host.host_id)
        self.hosts[host.host_id] = host
        return port

    def unregister_host(self, host_id: str) -> None:
        if host_id not in self.hosts:
            raise PoolManagerError(f"host {host_id!r} is not registered")
        host = self.hosts.pop(host_id)
        assigned = len(self.emc.slices_of(host_id))
        if assigned:
            host.offline_pool_memory(assigned * self.slice_gb)
            self.transitions.offline_slices(assigned)
        self.emc.detach_host(host_id)

    # -- capacity assignment -------------------------------------------------------------
    def add_capacity(self, host_id: str, n_slices: int) -> float:
        """Online ``n_slices`` slices on the host; returns the onlining time (s)."""
        host = self._host(host_id)
        if n_slices < 0:
            raise ValueError("slice count cannot be negative")
        if n_slices == 0:
            return 0.0
        if n_slices > self.emc.free_slices:
            raise PoolManagerError(
                f"pool exhausted: requested {n_slices} slices, "
                f"{self.emc.free_slices} free"
            )
        for _ in range(n_slices):
            self.emc.assign_slice(host_id)
        host.online_pool_memory(n_slices * self.slice_gb)
        record = self.transitions.online_slices(n_slices)
        self.total_online_s += record.duration_s
        return record.duration_s

    def release_capacity(self, host_id: str, n_slices: int) -> float:
        """Synchronously offline ``n_slices`` from the host (slow path)."""
        host = self._host(host_id)
        if n_slices < 0:
            raise ValueError("slice count cannot be negative")
        if n_slices == 0:
            return 0.0
        owned = self.emc.slices_of(host_id)
        if n_slices > len(owned):
            raise PoolManagerError(
                f"host {host_id!r} owns {len(owned)} slices, cannot release {n_slices}"
            )
        free_gb = host.free_pool_gb
        if n_slices * self.slice_gb > free_gb + 1e-9:
            raise PoolManagerError(
                f"host {host_id!r} has only {free_gb:.1f} GB of unallocated pool memory"
            )
        host.offline_pool_memory(n_slices * self.slice_gb)
        for slice_index in owned[-n_slices:]:
            self.emc.release_slice(host_id, slice_index)
        record = self.transitions.offline_slices(n_slices)
        self.total_offline_s += record.duration_s
        return record.duration_s

    # -- asynchronous release (the fast path after VM departure) ---------------------------
    def queue_release(self, host_id: str, n_slices: int, now_s: float = 0.0) -> None:
        """Queue an asynchronous release; processed by :meth:`process_releases`."""
        self._host(host_id)
        if n_slices < 0:
            raise ValueError("slice count cannot be negative")
        if n_slices == 0:
            return
        self._release_queue.append(_PendingRelease(host_id, n_slices, now_s))

    def process_releases(self, max_slices: Optional[int] = None) -> float:
        """Drain the release queue (up to ``max_slices``); returns time spent (s).

        Queued amounts are clamped to what is actually free and owned at
        processing time: a mitigation or a later VM start may legitimately have
        consumed pool memory that was free when the release was queued.
        """
        total_s = 0.0
        processed = 0
        while self._release_queue:
            pending = self._release_queue[0]
            host = self._host(pending.host_id)
            owned = len(self.emc.slices_of(pending.host_id))
            free = int(host.free_pool_gb // self.slice_gb)
            releasable = min(pending.n_slices, owned, free)
            if max_slices is not None and processed + releasable > max_slices:
                break
            self._release_queue.popleft()
            if releasable > 0:
                total_s += self.release_capacity(pending.host_id, releasable)
                processed += releasable
        return total_s

    @property
    def pending_release_slices(self) -> int:
        return sum(p.n_slices for p in self._release_queue)

    # -- buffer management ------------------------------------------------------------------
    def ensure_buffer(self, host_id: str, buffer_slices: int) -> int:
        """Top up the host's free pool memory to ``buffer_slices``; returns slices added."""
        host = self._host(host_id)
        if buffer_slices < 0:
            raise ValueError("buffer cannot be negative")
        current = int(host.free_pool_gb // self.slice_gb)
        needed = max(0, buffer_slices - current)
        available = min(needed, self.emc.free_slices)
        if available > 0:
            self.add_capacity(host_id, available)
        return available

    # -- queries -----------------------------------------------------------------------------
    def host_pool_gb(self, host_id: str) -> int:
        return len(self.emc.slices_of(host_id)) * self.slice_gb

    @property
    def unassigned_pool_gb(self) -> int:
        return self.emc.free_gb

    def _host(self, host_id: str) -> Host:
        host = self.hosts.get(host_id)
        if host is None:
            raise PoolManagerError(f"host {host_id!r} is not registered")
        return host

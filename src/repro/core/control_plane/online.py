"""Online prediction-driven control loop over the production replay.

The paper's end-to-end system (Sections 4.3-4.4, Figure 11, Figure 21) is
not a one-shot allocation policy: an ML pipeline sizes each VM's zNUMA at
scheduling time, and a QoS monitor watches running VMs and triggers
mitigation (pool -> local reconfiguration) when a misprediction surfaces.
This module carries the *fleet-scale* counterpart of that loop: the
configuration knob block, the per-replay accounting, and the slowdown
estimator the replay's QoS tick consumes.

The loop itself runs inside the array-engine replays
(:meth:`repro.cluster.simulator.ClusterSimulator.run` with ``online=...``
and the cross-shard pump in :mod:`repro.cluster.pool_topology`); the event
ordering contract is DESIGN.md section 10.  The hypervisor-level
single-host actors (:class:`~repro.core.control_plane.qos_monitor.QoSMonitor`,
:class:`~repro.core.control_plane.mitigation.MitigationManager`) stay the
behavioural reference for one host; this module is their struct-of-arrays
projection at 100k+-VM scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = [
    "OnlineControlConfig",
    "OnlineControlStats",
    "estimate_slowdown_batch",
    "at_risk_mask",
    "FALLBACK_SLOWDOWN_SCALE_PERCENT",
]

#: Fallback slowdown scale (percent at 100 % spill) used when the policy
#: does not expose ``predict_slowdown_batch``.  Matches the worst-case
#: pool-latency slowdowns the paper measures for fully pool-backed
#: latency-sensitive workloads (Figure 5: up to ~25 %).
FALLBACK_SLOWDOWN_SCALE_PERCENT = 25.0


@dataclass(frozen=True)
class OnlineControlConfig:
    """Knobs for the online QoS/mitigation stage of a replay.

    ``qos_threshold_percent`` is the PDM the QoS tick enforces: a live VM
    whose estimated slowdown exceeds it is mitigated (its pool share is
    migrated to NUMA-local DRAM).  ``math.inf`` disables mitigation
    entirely -- the replay is then byte-identical to the static replay of
    the same policy (differential-tested).

    ``migration_cost_s_per_gb`` prices each pool -> local move; it only
    feeds the mitigation-latency accounting (`OnlineControlStats`), never
    the replay's event ordering, so charging a different cost cannot change
    placements.
    """

    qos_threshold_percent: float = 5.0
    migration_cost_s_per_gb: float = 0.2

    def __post_init__(self) -> None:
        if not self.qos_threshold_percent > 0:
            raise ValueError("qos_threshold_percent must be positive")
        if self.migration_cost_s_per_gb < 0:
            raise ValueError("migration_cost_s_per_gb cannot be negative")

    @property
    def mitigation_enabled(self) -> bool:
        return not math.isinf(self.qos_threshold_percent)


@dataclass
class OnlineControlStats:
    """Accounting for one online replay (mergeable across fleet shards)."""

    n_ticks: int = 0
    n_checks: int = 0
    n_mitigations: int = 0
    n_failed_mitigations: int = 0
    migrated_gb: float = 0.0
    migration_time_s: float = 0.0
    mitigated_vm_ids: List[str] = field(default_factory=list)

    @property
    def mean_mitigation_s(self) -> float:
        """Mean modelled latency of one successful mitigation."""
        if not self.n_mitigations:
            return 0.0
        return self.migration_time_s / self.n_mitigations

    def add(self, other: "OnlineControlStats") -> "OnlineControlStats":
        """Accumulate another stats block (e.g. merging fleet shards)."""
        self.n_ticks += other.n_ticks
        self.n_checks += other.n_checks
        self.n_mitigations += other.n_mitigations
        self.n_failed_mitigations += other.n_failed_mitigations
        self.migrated_gb += other.migrated_gb
        self.migration_time_s += other.migration_time_s
        self.mitigated_vm_ids.extend(other.mitigated_vm_ids)
        return self


def _trace_memory_untouched(trace):
    """(memory_gb, untouched_fraction) arrays for a trace-like input."""
    columns = trace.columns() if hasattr(trace, "columns") else trace
    memory = getattr(columns, "memory_gb", None)
    untouched = getattr(columns, "untouched_fraction", None)
    if memory is not None and untouched is not None:
        return np.asarray(memory, float), np.asarray(untouched, float)
    records = list(trace)
    memory = np.fromiter((r.memory_gb for r in records), float, len(records))
    untouched = np.fromiter(
        (r.untouched_fraction for r in records), float, len(records)
    )
    return memory, untouched


def estimate_slowdown_batch(policy, trace, pool_gb: np.ndarray) -> np.ndarray:
    """Estimated slowdown percent per VM, aligned with the trace order.

    Prefers the policy's own model -- ``predict_slowdown_batch(trace,
    pool_gb)`` (the :class:`~repro.core.policies.PredictionPolicy` path,
    which reruns the latency forest deterministically) -- and falls back to
    a spill-fraction heuristic for policies without one: the estimated
    slowdown scales with the fraction of the VM's memory that its pool
    share forces beyond the actual untouched set.

    NaN estimates are sanitised to ``+inf`` here: the QoS tick treats an
    unmeasurable slowdown on a pool-exposed VM as a PDM violation (the
    same conservative direction :class:`QoSMonitor` takes on broken
    telemetry), instead of letting a ``NaN > threshold`` comparison
    silently drop the VM from mitigation.
    """
    pool_gb = np.asarray(pool_gb, dtype=np.float64)
    method = getattr(policy, "predict_slowdown_batch", None)
    if method is not None:
        slowdown = np.asarray(method(trace, pool_gb), dtype=np.float64)
    else:
        memory_gb, untouched_fraction = _trace_memory_untouched(trace)
        spilled_gb = np.maximum(pool_gb - untouched_fraction * memory_gb, 0.0)
        spill_fraction = spilled_gb / np.maximum(memory_gb, 1e-12)
        slowdown = FALLBACK_SLOWDOWN_SCALE_PERCENT * spill_fraction
    if slowdown.shape != pool_gb.shape:
        raise ValueError(
            f"slowdown estimate shape {slowdown.shape} does not match "
            f"pool_gb shape {pool_gb.shape}"
        )
    return np.where(np.isnan(slowdown), np.inf, slowdown)


def at_risk_mask(slowdowns: np.ndarray, pool_gb: np.ndarray,
                 qos_threshold_percent: float) -> np.ndarray:
    """Which VMs the QoS tick will flag: pool-exposed and beyond the PDM.

    Monotone in the threshold by construction: lowering
    ``qos_threshold_percent`` can only grow the mask (property-tested).
    """
    slowdowns = np.asarray(slowdowns, dtype=np.float64)
    pool_gb = np.asarray(pool_gb, dtype=np.float64)
    return (pool_gb > 0.0) & (slowdowns > qos_threshold_percent)

"""QoS monitoring of running VMs (paper Sections 4.3-4.4, path B in Figure 11).

The monitor periodically inspects every running VM:

* For zNUMA VMs it checks whether the untouched-memory prediction was too
  optimistic -- i.e. whether the guest's touched working set has grown beyond
  the local allocation and is spilling onto the pool.
* For VMs with any pool exposure whose working set spills (or that are fully
  pool-backed), it re-evaluates latency sensitivity from live core-PMU
  telemetry; if the predicted slowdown exceeds the PDM, it asks the mitigation
  manager to migrate the VM to all-local memory.

The monitor itself never moves memory; it only produces verdicts.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.config import PondConfig
from repro.hypervisor.vm import VMInstance

__all__ = ["QoSVerdict", "QoSDecision", "QoSMonitor"]

#: Estimates a VM's current slowdown (percent) from live telemetry features.
SlowdownEstimator = Callable[[VMInstance], float]


class QoSVerdict(str, enum.Enum):
    """Outcome of one QoS check for one VM."""

    OK = "ok"                          # no pool exposure or no spill
    SPILL_TOLERATED = "spill_tolerated"  # spilling but within the PDM
    MITIGATE = "mitigate"              # exceeds the PDM; migrate to local


@dataclass(frozen=True)
class QoSDecision:
    """A verdict plus the evidence it was based on."""

    vm_id: str
    verdict: QoSVerdict
    spilled_gb: float
    estimated_slowdown_percent: float


class QoSMonitor:
    """Evaluates running VMs against the PDM and flags mitigation candidates."""

    def __init__(self, config: PondConfig, slowdown_estimator: SlowdownEstimator) -> None:
        self.config = config
        self.slowdown_estimator = slowdown_estimator
        self.history: List[QoSDecision] = []

    def check_vm(self, vm: VMInstance) -> QoSDecision:
        """Evaluate one VM and record the decision."""
        if vm.pool_memory_gb <= 0:
            decision = QoSDecision(vm.vm_id, QoSVerdict.OK, 0.0, 0.0)
        else:
            spilled = vm.spilled_gb
            fully_pool_backed = vm.local_memory_gb == 0
            if spilled <= 0 and not fully_pool_backed:
                # Correctly sized zNUMA: the pool node is effectively untouched.
                decision = QoSDecision(vm.vm_id, QoSVerdict.OK, 0.0, 0.0)
            else:
                slowdown = float(self.slowdown_estimator(vm))
                if math.isnan(slowdown):
                    # Broken telemetry cannot rule out a PDM violation, and a
                    # NaN loses every comparison -- without this branch it
                    # would silently read as "spill tolerated".  Mitigate.
                    verdict = QoSVerdict.MITIGATE
                elif slowdown > self.config.pdm_percent:
                    verdict = QoSVerdict.MITIGATE
                else:
                    verdict = QoSVerdict.SPILL_TOLERATED
                decision = QoSDecision(vm.vm_id, verdict, spilled, slowdown)
        self.history.append(decision)
        return decision

    def check_all(self, vms: Dict[str, VMInstance]) -> List[QoSDecision]:
        """Evaluate every running VM; returns only the mitigation candidates."""
        return [  # repro: noqa DET007 -- VM registry is inserted in arrival order, deterministic for a given trace
            decision
            for vm in vms.values()
            if (decision := self.check_vm(vm)).verdict is QoSVerdict.MITIGATE
        ]

    # -- accounting -----------------------------------------------------------------------
    def mitigation_rate_percent(self) -> float:
        """Share of *distinct checked VMs* flagged for mitigation.

        A VM whose mitigation fails (no host headroom) keeps spilling and is
        re-flagged on every later tick; counting raw verdicts would let one
        stuck VM inflate both numerator and denominator without bound --
        and at a different rate than VMs that are checked but never flagged,
        so the ratio depended on how often each call site polled.  The rate
        is therefore defined over distinct VM ids: flagged VMs over checked
        VMs, each counted once, matching the paper's "% of VMs needing
        mitigation" framing (Section 4.4).
        """
        if not self.history:
            return 0.0
        checked = {d.vm_id for d in self.history}
        flagged = {
            d.vm_id for d in self.history if d.verdict is QoSVerdict.MITIGATE
        }
        return 100.0 * len(flagged) / len(checked)

    def within_mitigation_budget(self) -> bool:
        """Whether mitigations stay within the configured QoS budget."""
        return self.mitigation_rate_percent() <= self.config.qos_mitigation_budget_percent

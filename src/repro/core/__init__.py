"""Pond's core: configuration, prediction models, control plane, and policies.

This package is the paper's primary contribution -- the pieces that turn a
CXL pool plus hypervisor support into a system that meets cloud performance
targets:

* :mod:`repro.core.config` -- the PDM/TP configuration knobs.
* :mod:`repro.core.prediction` -- the latency-insensitivity model, the
  untouched-memory model, and the combined Eq.(1) optimiser.
* :mod:`repro.core.control_plane` -- the Pool Manager, the prediction-driven
  VM scheduler, the QoS monitor, and the mitigation manager.
* :mod:`repro.core.policies` -- memory-allocation policies used in the
  cluster-scale savings simulations (all-local, static fraction, Pond).
"""

from repro.core.config import PondConfig
from repro.core.prediction.latency_model import (
    LatencyInsensitivityModel,
    DramBoundHeuristic,
    MemoryBoundHeuristic,
)
from repro.core.prediction.untouched_model import UntouchedMemoryPredictor
from repro.core.prediction.combined import CombinedModelOptimizer, CombinedOperatingPoint
from repro.core.control_plane.pool_manager import PoolManager
from repro.core.control_plane.scheduler import PondScheduler, SchedulingDecision
from repro.core.control_plane.qos_monitor import QoSMonitor, QoSVerdict
from repro.core.control_plane.mitigation import MitigationManager
from repro.core.policies import (
    AllLocalPolicy,
    StaticFractionPolicy,
    PondTracePolicy,
)

__all__ = [
    "PondConfig",
    "LatencyInsensitivityModel",
    "DramBoundHeuristic",
    "MemoryBoundHeuristic",
    "UntouchedMemoryPredictor",
    "CombinedModelOptimizer",
    "CombinedOperatingPoint",
    "PoolManager",
    "PondScheduler",
    "SchedulingDecision",
    "QoSMonitor",
    "QoSVerdict",
    "MitigationManager",
    "AllLocalPolicy",
    "StaticFractionPolicy",
    "PondTracePolicy",
]

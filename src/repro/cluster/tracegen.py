"""Synthetic VM trace generation calibrated to the paper's cluster statistics.

The generator produces per-cluster VM arrival/departure traces with the
statistical properties that drive stranding and pooling savings:

* a target steady-state core utilisation (the x-axis of Figure 2a),
* a VM mix whose DRAM:core ratio deviates from the servers' ratio (the root
  cause of stranding),
* heavy-tailed lifetimes (most VMs are short, a few live for days),
* a customer population with consistent untouched-memory behaviour (from
  :class:`repro.workloads.memory_behavior.UntouchedMemoryModel`), and
* optional mid-trace workload shifts (the day-36 event in Figure 2b).

Arrivals follow a Poisson process whose rate is derived from Little's law so
that the requested utilisation is reached in steady state.

Generation is **windowed** (DESIGN.md section 4): the trace is produced one
fixed time window at a time, each window drawing from its own SplitMix64-
derived RNG substream keyed on ``(config.seed, window index)``.  Because a
window's content depends only on its substream -- never on how many records
came before -- the materialised path (:meth:`TraceGenerator.generate_bulk`)
and the streaming path (:meth:`TraceGenerator.stream`, which re-buffers the
same windows into fixed-size chunks) produce byte-for-byte identical records,
and streaming holds at most one window plus one chunk in memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.cluster.rng import GOLDEN, MASK64, splitmix64
from repro.cluster.server import ServerConfig
from repro.cluster.trace import ClusterTrace, TraceColumns, TraceStream, VMTraceRecord
from repro.cluster.vm_types import (
    VM_TYPE_CATALOG,
    VMType,
    family_probabilities,
    family_size_distribution,
    sample_vm_type,
)
from repro.workloads.memory_behavior import UntouchedMemoryModel

__all__ = [
    "TraceGenConfig",
    "TraceGenerator",
    "GeneratedTraceStream",
    "fleet_shard_configs",
    "generate_fleet",
]

DAY_S = 86_400.0
HOUR_S = 3_600.0

#: Length of one generation window.  Window boundaries are part of the
#: generator's definition (each window has its own RNG substream), so this is
#: a constant, not a knob: changing it would change every generated trace.
GENERATION_WINDOW_S = DAY_S


@dataclass
class TraceGenConfig:
    """Knobs controlling one cluster's synthetic trace."""

    cluster_id: str = "cluster-0"
    n_servers: int = 40
    server_config: ServerConfig = field(default_factory=ServerConfig)
    duration_days: float = 10.0
    target_core_utilization: float = 0.80
    mean_lifetime_hours: float = 6.0
    lifetime_sigma: float = 1.4
    family_weights: Optional[Dict[str, float]] = None
    n_customers: int = 100
    region: str = "region-0"
    #: If set, multiply the memory-optimised family weight by this factor from
    #: ``shift_day`` onwards (the Figure 2b workload-change event).
    shift_day: Optional[float] = None
    shift_memory_factor: float = 3.0
    #: Start the trace with a steady-state population already running at t=0
    #: (residual lifetimes drawn from the equilibrium distribution).  Without
    #: this, heavy-tailed lifetimes make the cluster take many days to reach
    #: its target utilisation.
    warm_start: bool = True
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError("need at least one server")
        if self.duration_days <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 < self.target_core_utilization <= 1.0:
            raise ValueError("target utilisation must be in (0, 1]")
        if self.mean_lifetime_hours <= 0:
            raise ValueError("mean lifetime must be positive")
        if self.n_customers < 1:
            raise ValueError("need at least one customer")

    @property
    def total_cores(self) -> int:
        return self.n_servers * self.server_config.total_cores

    @property
    def duration_s(self) -> float:
        return self.duration_days * DAY_S


class TraceGenerator:
    """Generates synthetic cluster traces from a :class:`TraceGenConfig`."""

    #: Workload names attached to VMs, used to look up latency sensitivity.
    _WORKLOAD_POOL = (
        "web-frontend", "api-server", "redis-cache", "mysql-oltp", "spark-batch",
        "ml-training", "video-transcode", "analytics-olap", "ci-runner",
        "game-server", "mail-relay", "search-index",
    )

    def __init__(self, config: TraceGenConfig,
                 memory_model: Optional[UntouchedMemoryModel] = None) -> None:
        self.config = config
        self.memory_model = memory_model or UntouchedMemoryModel(
            n_customers=config.n_customers, seed=config.seed + 1000
        )

    def _substream_rng(self, stream_index: int) -> np.random.Generator:
        """Independent RNG substream for one generation window.

        Stream 0 is the warm-start population; stream ``i + 1`` is time
        window ``i``.  Each substream's seed is a pure SplitMix64 function of
        ``(config.seed, stream_index)``, so any window can be generated
        without generating the ones before it -- the property the streaming
        path relies on for its byte-for-byte-equality guarantee.
        """
        base = splitmix64((self.config.seed & MASK64) ^ GOLDEN)
        return np.random.default_rng(
            splitmix64(base ^ ((stream_index + 1) * GOLDEN))
        )

    # -- arrival-rate calibration ---------------------------------------------------
    def _expected_cores_per_vm(self) -> float:
        rng = np.random.default_rng(self.config.seed + 7)
        samples = [sample_vm_type(rng, self.config.family_weights).cores for _ in range(500)]
        return float(np.mean(samples))

    def arrival_rate_per_s(self) -> float:
        """Poisson arrival rate achieving the target utilisation (Little's law).

        target_used_cores = rate * mean_lifetime * mean_cores_per_vm
        """
        cfg = self.config
        target_used_cores = cfg.target_core_utilization * cfg.total_cores
        mean_lifetime_s = cfg.mean_lifetime_hours * HOUR_S
        mean_cores = self._expected_cores_per_vm()
        return target_used_cores / (mean_lifetime_s * mean_cores)

    # -- sampling helpers -------------------------------------------------------------
    def _family_weights_at(self, time_s: float) -> Optional[Dict[str, float]]:
        cfg = self.config
        if cfg.shift_day is None or time_s < cfg.shift_day * DAY_S:
            return cfg.family_weights
        weights = dict(cfg.family_weights or {})
        base = weights.get("memory_optimized", 0.20)
        weights["memory_optimized"] = base * cfg.shift_memory_factor
        return weights

    def _customer_popularity(self) -> np.ndarray:
        """Zipf-like popularity: a few customers create most VMs."""
        ranks = np.arange(1, self.config.n_customers + 1, dtype=float)
        probs = 1.0 / ranks
        probs /= probs.sum()
        return probs

    # -- bulk (vectorized) generation --------------------------------------------------
    def _window_arrival_times(self, rate: float, window_len: float,
                              rng: np.random.Generator) -> np.ndarray:
        """Poisson arrival times in ``[0, window_len)``, drawn in bulk.

        Poisson processes restrict cleanly to sub-intervals, so drawing each
        generation window independently (from its own substream) still yields
        one Poisson process over the full duration.
        """
        expected = rate * window_len
        gaps: List[np.ndarray] = []
        total = 0.0
        # Over-draw slightly, then top up until the cumulative time passes the
        # window; two iterations suffice in practice.
        chunk = int(expected + 6.0 * np.sqrt(expected) + 16.0)
        while total < window_len:
            draw = rng.exponential(1.0 / rate, size=chunk)
            gaps.append(draw)
            total += float(draw.sum())
            chunk = max(chunk // 4, 1024)
        times = np.cumsum(np.concatenate(gaps))
        return times[times < window_len]

    def _bulk_vm_types(self, arrivals: np.ndarray,
                       rng: np.random.Generator) -> List[VMType]:
        """Sample one VM type per arrival, honouring the mid-trace shift."""
        cfg = self.config
        n = arrivals.size
        shift_s = None if cfg.shift_day is None else cfg.shift_day * DAY_S
        type_indices = np.empty(n, dtype=np.int64)
        if shift_s is None:
            masks = [(np.ones(n, dtype=bool), cfg.family_weights)]
        else:
            before = arrivals < shift_s
            masks = [
                (before, self._family_weights_at(0.0)),
                (~before, self._family_weights_at(shift_s)),
            ]
        for mask, family_weights in masks:
            count = int(mask.sum())
            if not count:
                continue
            families, probs = family_probabilities(family_weights)
            family_draw = rng.choice(len(families), size=count, p=probs)
            # Per-family size popularity follows the same power law as
            # sample_vm_type (both share family_size_distribution).
            slot_indices = np.flatnonzero(mask)
            for family_idx, family in enumerate(families):
                family_mask = family_draw == family_idx
                n_family = int(family_mask.sum())
                if not n_family:
                    continue
                candidates, size_weights = family_size_distribution(family)
                picks = rng.choice(len(candidates), size=n_family, p=size_weights)
                type_indices[slot_indices[family_mask]] = np.asarray(candidates)[picks]
        return [VM_TYPE_CATALOG[i] for i in type_indices]

    def _bulk_customers(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Customer draw for ``n`` VMs (indices into the pool), in bulk."""
        idx = rng.choice(
            self.config.n_customers, size=n, p=self._customer_popularity()
        )
        return idx % len(self.memory_model.customer_ids)

    def _bulk_records(self, arrivals: np.ndarray, lifetimes: np.ndarray,
                      first_index: int,
                      rng: np.random.Generator) -> List[VMTraceRecord]:
        cfg = self.config
        n = arrivals.size
        vm_types = self._bulk_vm_types(arrivals, rng)
        customer_idx = self._bulk_customers(n, rng)
        customer_pool = self.memory_model.customer_ids
        untouched = self.memory_model.sample_untouched_fractions_bulk(
            [customer_pool[i] for i in customer_idx],
            [t.family for t in vm_types],
            rng,
        )
        guests = np.where(rng.uniform(size=n) < 0.7, "linux", "windows")
        workloads = rng.choice(self._WORKLOAD_POOL, size=n)
        prefix = f"{cfg.cluster_id}-vm-"
        return [
            VMTraceRecord(
                vm_id=prefix + str(first_index + i),
                cluster_id=cfg.cluster_id,
                arrival_s=float(arrivals[i]),
                lifetime_s=float(lifetimes[i]),
                cores=vm_types[i].cores,
                memory_gb=vm_types[i].memory_gb,
                customer_id=customer_pool[customer_idx[i]],
                vm_family=vm_types[i].family,
                guest_os=str(guests[i]),
                region=cfg.region,
                workload_name=str(workloads[i]),
                untouched_fraction=float(untouched[i]),
            )
            for i in range(n)
        ]

    def iter_window_records(self) -> Iterator[List[VMTraceRecord]]:
        """Yield the trace one generation window at a time, in arrival order.

        The first yielded block is the warm-start population (arrivals at
        ``t = 0``, substream 0) when enabled; block ``i + 1`` covers time
        window ``[i * GENERATION_WINDOW_S, (i + 1) * GENERATION_WINDOW_S)``
        from substream ``i + 1``.  Within a window every random quantity
        (arrival process, lifetime model, VM mix, customer population,
        untouched-memory behaviour) is drawn in bulk numpy operations.  This
        is the only generation path: :meth:`generate_bulk` concatenates the
        windows and :meth:`stream` re-buffers them into chunks, which is why
        the two are identical record-for-record.
        """
        cfg = self.config
        rate = self.arrival_rate_per_s()
        mean_s = cfg.mean_lifetime_hours * HOUR_S
        sigma = cfg.lifetime_sigma
        mu = np.log(mean_s) - sigma**2 / 2.0
        count = 0
        if cfg.warm_start:
            rng = self._substream_rng(0)
            n_initial = int(round(rate * mean_s))
            if n_initial:
                totals = np.clip(
                    rng.lognormal(mu + sigma**2, sigma, size=n_initial),
                    60.0, 90.0 * DAY_S,
                )
                residuals = np.maximum(60.0, rng.uniform(0.0, totals))
                block = self._bulk_records(
                    np.zeros(n_initial), residuals, count, rng
                )
                count += len(block)
                yield block
        duration = cfg.duration_s
        n_windows = int(np.ceil(duration / GENERATION_WINDOW_S))
        for window in range(n_windows):
            rng = self._substream_rng(window + 1)
            start = window * GENERATION_WINDOW_S
            window_len = min(GENERATION_WINDOW_S, duration - start)
            offsets = self._window_arrival_times(rate, window_len, rng)
            arrivals = start + offsets
            lifetimes = np.clip(
                rng.lognormal(mu, sigma, size=arrivals.size), 60.0, 90.0 * DAY_S
            )
            block = self._bulk_records(arrivals, lifetimes, count, rng)
            count += len(block)
            yield block

    def generate_bulk(self) -> ClusterTrace:
        """Vectorized trace generation (concatenates the generation windows).

        Roughly an order of magnitude faster than a per-record loop for the
        10^5..10^6-VM traces the scale benchmarks replay; :meth:`generate`
        delegates here.  For traces that should never be materialised at
        all, use :meth:`stream` instead -- it yields the very same records.
        """
        records: List[VMTraceRecord] = []
        for block in self.iter_window_records():
            records.extend(block)
        return ClusterTrace(records, cluster_id=self.config.cluster_id)

    def stream(self, chunk_size: int = 8192) -> "GeneratedTraceStream":
        """Lazy :class:`TraceStream` over this generator's trace.

        Byte-for-byte identical to :meth:`generate_bulk` (both consume
        :meth:`iter_window_records`), while holding at most one generation
        window plus one chunk of records in memory.
        """
        return GeneratedTraceStream(self, chunk_size=chunk_size)

    # -- generation --------------------------------------------------------------------
    def generate(self) -> ClusterTrace:
        """Generate the full trace for this cluster (delegates to the bulk path)."""
        return self.generate_bulk()


class GeneratedTraceStream(TraceStream):
    """Chunked stream over a :class:`TraceGenerator`'s synthetic trace.

    Re-buffers the generator's windows (see
    :meth:`TraceGenerator.iter_window_records`) into ``chunk_size``-record
    :class:`TraceColumns` blocks.  Window generation is driven by pure
    per-window RNG substreams, so every :meth:`chunks` call regenerates the
    identical trace -- the stream is re-iterable and picklable (it holds only
    the generator's config and memory model), which is what lets fleet
    workers and capacity-search probes replay it repeatedly.
    """

    def __init__(self, generator: TraceGenerator, chunk_size: int = 8192) -> None:
        self.generator = generator
        self.chunk_size = self._validate_chunk_size(chunk_size)
        self.cluster_id = generator.config.cluster_id

    def chunks(self) -> Iterator[TraceColumns]:
        buffer: List[VMTraceRecord] = []
        for block in self.generator.iter_window_records():
            buffer.extend(block)
            while len(buffer) >= self.chunk_size:
                yield TraceColumns.from_records(buffer[: self.chunk_size])
                del buffer[: self.chunk_size]
        if buffer:
            yield TraceColumns.from_records(buffer)


def fleet_shard_configs(
    n_clusters: int,
    base_config: Optional[TraceGenConfig] = None,
    utilization_range: Sequence[float] = (0.55, 0.95),
    seed: int = 3,
) -> List[TraceGenConfig]:
    """Per-cluster configs for a fleet with utilisation spread evenly across
    ``utilization_range`` (so the stranding-vs-utilisation analysis, Figure
    2a, has samples in every bucket).  Shared by :func:`generate_fleet` and
    the sharded :class:`repro.cluster.fleet.FleetSimulator`.
    """
    if n_clusters < 1:
        raise ValueError("need at least one cluster")
    lo, hi = utilization_range
    if not 0.0 < lo <= hi <= 1.0:
        raise ValueError("utilization_range must satisfy 0 < lo <= hi <= 1")
    base = base_config or TraceGenConfig()
    configs: List[TraceGenConfig] = []
    for i in range(n_clusters):
        frac = 0.5 if n_clusters == 1 else i / (n_clusters - 1)
        util = lo + (hi - lo) * frac
        configs.append(replace(
            base,
            cluster_id=f"cluster-{i:03d}",
            target_core_utilization=util,
            region=f"region-{i % 3}",
            seed=seed + i,
        ))
    return configs


def generate_fleet(
    n_clusters: int,
    base_config: Optional[TraceGenConfig] = None,
    utilization_range: Sequence[float] = (0.55, 0.95),
    seed: int = 3,
) -> List[ClusterTrace]:
    """Generate traces for a fleet of clusters with varying utilisation."""
    return [
        TraceGenerator(cfg).generate_bulk()
        for cfg in fleet_shard_configs(n_clusters, base_config, utilization_range, seed)
    ]

"""SplitMix64 mixing primitives for keyed, order-independent randomness.

Two subsystems derive deterministic randomness from stable keys instead of
sequential RNG state, and both must keep using the *same* finalizer:

* the batch policy engine (:mod:`repro.core.policies`) spreads per-VM CRC32
  digests into independent uniform streams, and
* the windowed trace generator (:mod:`repro.cluster.tracegen`) seeds one RNG
  substream per generation window from ``(config.seed, window index)``.

This module is dependency-free (numpy only) so both layers can import it
without touching the ``repro.cluster`` <-> ``repro.core`` package boundary.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MASK64", "GOLDEN", "splitmix64", "splitmix64_array"]

#: 64-bit wrap mask for Python-int arithmetic.
MASK64 = (1 << 64) - 1

#: Golden-ratio odd constant (the canonical SplitMix64 stream increment).
GOLDEN = 0x9E3779B97F4A7C15


def splitmix64(z: int) -> int:
    """SplitMix64 finalizer over a 64-bit int (wrapping arithmetic)."""
    z &= MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
    return z ^ (z >> 31)


def splitmix64_array(z: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array (wrapping arithmetic)."""
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))

"""Pool dimensioning and DRAM-savings estimation (paper Figures 3 and 21).

The DRAM-savings argument works as follows.  Servers are deployed with one
uniform DRAM configuration, so without pooling the fleet must size *every*
server so that the VM schedule still fits -- and because VM mixes differ
across servers, the average server then strands the difference.  With
pooling, a share of every VM's memory (fixed or predicted by Pond) is served
from a pool shared by ``pool_size_sockets`` sockets; servers can be
provisioned with less local DRAM, and each pool absorbs the per-server
deviations.  The bigger the pool, the better the statistical multiplexing,
with diminishing returns (Figure 3).

Following the paper's methodology ("the simulator ... schedules VMs on the
same nodes as in the trace and changes their memory allocation to match the
policy; for rare cases where a VM does not fit on a server, the simulator
moves the VMs to another server"), the *required* DRAM is found by a
capacity search: the smallest uniform per-server DRAM such that the
memory-constrained replay of the trace still places (almost) every VM, given
a pool provisioned from the observed per-group demand.  A faster
peak-observation mode is kept for ablations.
"""

from __future__ import annotations

import copy
import pickle
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.engine import resolve_engine
from repro.cluster.scheduler import validate_strategy
from repro.cluster.simulator import ClusterSimulator, PoolPolicy, SimulationResult
from repro.cluster.server import ServerConfig
from repro.cluster.trace import ClusterTrace, TraceColumns, VMTraceRecord

__all__ = [
    "PoolSavings",
    "PoolDimensioner",
    "FixedFractionPolicy",
    "fixed_fraction_policy",
    "uniform_pool_requirement_gb",
    "capacity_candidate_config",
    "CapacityProbeOutcome",
    "SpeculationStats",
]


class FixedFractionPolicy:
    """Policy allocating a fixed fraction of every VM's memory on the pool.

    Stateless (no stats, no randomness), so the batch and per-record paths
    agree trivially; used by the Figure 3 sweeps and as the simplest example
    of the batch policy contract (DESIGN.md).
    """

    def __init__(self, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.fraction = fraction

    def __call__(self, record: VMTraceRecord) -> float:
        return record.memory_gb * self.fraction

    def decide_batch(self, trace):
        """Batch path for a trace, a streamed chunk, or a record sequence."""
        if isinstance(trace, ClusterTrace):
            memory_gb = trace.columns().memory_gb
        elif isinstance(trace, TraceColumns):
            memory_gb = trace.memory_gb
        else:
            records = list(trace)
            memory_gb = np.fromiter(
                (r.memory_gb for r in records), np.float64, len(records)
            )
        return memory_gb * self.fraction


def fixed_fraction_policy(fraction: float) -> FixedFractionPolicy:
    """Backwards-compatible constructor for :class:`FixedFractionPolicy`."""
    return FixedFractionPolicy(fraction)


def capacity_candidate_config(base: ServerConfig,
                              dram_per_server_gb: float) -> ServerConfig:
    """Server config for one capacity-search candidate DRAM size.

    Shared by :class:`PoolDimensioner` and the fleet-level
    :meth:`repro.cluster.fleet.FleetSimulator.capacity_search` so both
    searches probe byte-identical cluster configurations (which is what makes
    their single-shard results comparable in differential tests).
    """
    return ServerConfig(
        name="search-candidate",
        sockets=base.sockets,
        cores_per_socket=base.cores_per_socket,
        dram_per_socket_gb=max(1.0, dram_per_server_gb / base.sockets),
    )


def uniform_pool_requirement_gb(
    result: SimulationResult,
    pool_size_sockets: int,
    sockets_per_server: int,
    n_servers: int,
) -> float:
    """Uniform pool provisioning from observed per-group peaks, per server.

    Pool blades are deployed with one capacity per attached server, so the
    requirement is the worst per-server pool demand across groups times the
    number of servers.  Normalising per server keeps the answer meaningful
    when the last pool group has fewer servers than the others.
    """
    if not result.pool_peak_gb:
        return 0.0
    servers_per_group = max(1, pool_size_sockets // sockets_per_server)
    worst_per_server = 0.0
    for group, peak in result.pool_peak_gb.items():
        group_start = group * servers_per_group
        group_size = min(servers_per_group, n_servers - group_start)
        if group_size <= 0:
            continue
        worst_per_server = max(worst_per_server, peak / group_size)
    return worst_per_server * n_servers


@dataclass(frozen=True)
class PoolSavings:
    """Required DRAM under a pooling configuration, relative to no pooling."""

    pool_size_sockets: int
    baseline_dram_gb: float
    required_local_dram_gb: float
    required_pool_dram_gb: float
    average_pool_fraction: float

    @property
    def required_total_dram_gb(self) -> float:
        return self.required_local_dram_gb + self.required_pool_dram_gb

    @property
    def required_dram_percent(self) -> float:
        """Required DRAM as a percent of the no-pooling baseline (Figure 3 y-axis)."""
        if self.baseline_dram_gb <= 0:
            return 100.0
        return 100.0 * self.required_total_dram_gb / self.baseline_dram_gb

    @property
    def savings_percent(self) -> float:
        return 100.0 - self.required_dram_percent


# -- capacity-search probes ------------------------------------------------------------
@dataclass(frozen=True)
class CapacityProbeOutcome:
    """Everything a capacity search needs from one replay.

    A probe worker returns this instead of the full
    :class:`~repro.cluster.simulator.SimulationResult` so cross-process
    traffic stays tiny regardless of trace size.
    """

    placed_vms: int
    rejected_vms: int
    pool_peak_gb: Dict[int, float]
    total_pool_gb: float
    total_memory_gb: float
    #: Policy accounting of this probe (fleet probes only; the policy is
    #: rebuilt per probe in the worker, so these are per-probe deltas).
    policy_stats: Optional[object] = field(default=None, compare=False)

    @property
    def average_pool_fraction(self) -> float:
        if self.total_memory_gb <= 0:
            return 0.0
        return self.total_pool_gb / self.total_memory_gb


@dataclass
class SpeculationStats:
    """Speculative-probe accounting for one capacity-search call.

    Probes submitted by the speculative ``prefetch_bisection`` paths are
    *issued*; an issued probe whose outcome the search later blocks on is a
    *hit*; issued probes never consumed by the time the call drained its
    stats are *wasted* (a probe still in flight when drained counts as
    wasted even if a later call happens to reuse its memoised outcome --
    the counters are per-call diagnostics, not global truth).  Speculation
    never changes probe verdicts or dimensioning: probes are deterministic
    per key, so depth only decides which outcomes are already warm.
    """

    #: Speculative probes submitted to the worker pool.
    issued: int = 0
    #: Issued probes the search actually blocked on.
    hits: int = 0
    #: Issued probes not consumed by the end of the call.
    wasted: int = 0
    #: The adaptive controller's depth when the call finished.
    final_depth: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.issued if self.issued else 0.0

    def add(self, other: "SpeculationStats") -> None:
        self.issued += other.issued
        self.hits += other.hits
        self.wasted += other.wasted
        self.final_depth = other.final_depth


#: Adaptive speculation-depth bounds (see ``_ProbeSessionBase._adaptive_depth``).
_SPEC_DEPTH_MIN = 1
_SPEC_DEPTH_MAX = 4
_SPEC_DEPTH_INITIAL = 2
#: Issued probes per adaptation window.
_SPEC_WINDOW = 8


def capacity_probe_replay(
    trace,
    policy: Optional[PoolPolicy],
    n_servers: int,
    server_config: ServerConfig,
    pool_size_sockets: int,
    pool_capacity_gb: float,
    dram_per_server_gb: Optional[float],
    sample_interval_s: float,
    scheduler_strategy: str,
    engine: Optional[str],
) -> SimulationResult:
    """One capacity-search replay.

    Single definition shared by :meth:`PoolDimensioner._simulate`, the
    dimensioner's probe workers, and the fleet search's probe workers, so
    in-process and worker probes build byte-identical simulators.
    """
    if dram_per_server_gb is None:
        config = server_config
        constrain = False
    else:
        config = capacity_candidate_config(server_config, dram_per_server_gb)
        constrain = True
    simulator = ClusterSimulator(
        n_servers=n_servers,
        server_config=config,
        pool_size_sockets=pool_size_sockets,
        pool_capacity_gb_per_group=pool_capacity_gb,
        constrain_memory=constrain,
        sample_interval_s=sample_interval_s,
        scheduler_strategy=scheduler_strategy,
        engine=engine,
        # Dimensioning only reads peaks and rejection counts.
        record_placements=False,
    )
    return simulator.run(trace, policy=policy)


def probe_outcome_of(result: SimulationResult,
                     policy: Optional[PoolPolicy] = None) -> CapacityProbeOutcome:
    """Compress a replay result into the probe outcome the searches consume."""
    stats = getattr(policy, "stats", None) if policy is not None else None
    return CapacityProbeOutcome(
        placed_vms=result.placed_vms,
        rejected_vms=result.rejected_vms,
        pool_peak_gb=dict(result.pool_peak_gb),
        total_pool_gb=result.total_pool_gb_allocated,
        total_memory_gb=result.total_memory_gb_allocated,
        policy_stats=stats,
    )


#: Per-process state for dimensioner probe workers, set by the pool
#: initializer (the heavy trace ships once per worker, not per probe;
#: policies -- small picklables -- travel with each task so one session
#: serves every policy of a study grid).
_PROBE_STATE: dict = {}


def _capacity_probe_init(trace, n_servers, server_config,
                         sample_interval_s, scheduler_strategy, engine) -> None:
    _PROBE_STATE.update(
        trace=trace, n_servers=n_servers,
        server_config=server_config, sample_interval_s=sample_interval_s,
        scheduler_strategy=scheduler_strategy, engine=engine,
    )


def _run_capacity_probe(
    task: Tuple[Optional[PoolPolicy], int, float, Optional[float]]
) -> CapacityProbeOutcome:
    """Probe task: (policy, pool_size_sockets, pool_capacity_gb, dram).

    The policy arrives as this worker's own unpickled copy (decisions are
    digest-keyed, so a copy decides identically); its accounting is zeroed
    so the outcome's ``policy_stats`` is a clean per-probe delta -- the
    session merges these back into the caller's policy so parallel searches
    keep the stats accounting the sequential in-process replays would have
    accumulated.
    """
    policy, pool_size_sockets, pool_capacity_gb, dram = task
    if policy is not None:
        # The shipped policy may carry stats accumulated before this search
        # (policy reuse across calls); zero the copy's accounting so the
        # outcome really is a per-probe delta.
        stats = getattr(policy, "stats", None)
        if stats is not None:
            policy.stats = type(stats)()
    state = _PROBE_STATE
    result = capacity_probe_replay(
        state["trace"], policy,
        state["n_servers"], state["server_config"], pool_size_sockets,
        pool_capacity_gb, dram, state["sample_interval_s"],
        state["scheduler_strategy"], state["engine"],
    )
    return probe_outcome_of(result, policy)


def _shutdown_executor(executor: ProcessPoolExecutor) -> None:
    """Finalizer-safe executor shutdown (no session references captured)."""
    executor.shutdown(wait=False, cancel_futures=True)


def _probe_fingerprint(obj) -> Optional[bytes]:
    """Value-based fingerprint of a policy (or policy factory) for memo keys.

    Reused sessions memoise probe outcomes across calls, so the key must
    change when a policy is *mutated in place* between searches -- an
    identity token would silently serve the pre-mutation outcome.  The
    fingerprint pickles the object's state with the ``stats`` accounting
    stripped (stats accumulate during probing but never influence
    decisions, so including them would spuriously invalidate every memo).
    Returns ``None`` when the object cannot be fingerprinted (unpicklable
    state); callers fall back to a pinned identity token.
    """
    if obj is None:
        return None
    try:
        getstate = getattr(obj, "__getstate__", None)
        if getstate is not None:
            state = getstate()
        elif hasattr(obj, "__dict__"):
            state = dict(obj.__dict__)
        else:
            state = None
        if isinstance(state, dict):
            payload = (
                type(obj).__module__,
                type(obj).__qualname__,
                {k: v for k, v in state.items() if k != "stats"},
            )
        else:
            payload = obj
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None


class _ProbeSessionBase:
    """Shared mechanics of the reusable capacity-probe sessions.

    Owns what :class:`_CapacityProbeSession` (dimensioner) and the fleet's
    ``_FleetProbeSession`` have in common, so the two cannot drift: the
    memo/future tables, value-based policy tokens (:func:`_probe_fingerprint`
    with a pinned-identity fallback), per-token pending-stat draining, the
    in-flight cap helper, and the executor lifecycle (idempotent ``close``,
    context-manager protocol, a ``weakref.finalize`` guard for sessions
    dropped unclosed).
    """

    def __init__(self) -> None:
        self._outcomes: Dict[tuple, CapacityProbeOutcome] = {}
        self._futures: Dict[tuple, object] = {}
        #: fallback identity tokens for un-fingerprintable objects (strong
        #: refs pin them so ids are never recycled; in-place mutation is
        #: then indistinguishable, which is the best an identity key can do).
        self._id_tokens: Dict[int, tuple] = {}
        self._pinned: list = []
        #: probe-stat deltas not yet drained, keyed by token.
        self._pending_stats: Dict[object, list] = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        self._finalizer = None
        self._max_inflight = 0
        #: speculative submits not yet consumed by an ``outcome`` call.
        self._spec_keys: set = set()
        self._spec_issued = 0
        self._spec_hits = 0
        #: adaptive speculation depth, kept warm across calls on a reused
        #: session (the workload's hit profile rarely changes between calls).
        self._spec_depth = _SPEC_DEPTH_INITIAL
        self._spec_window_issued = 0
        self._spec_window_hits = 0

    def _attach_executor(self, executor: ProcessPoolExecutor,
                         max_inflight: int) -> None:
        self._executor = executor
        self._max_inflight = max_inflight
        self._finalizer = weakref.finalize(self, _shutdown_executor, executor)

    def _token(self, obj):
        """Stable memo-key token: value-based when possible, pinned identity
        otherwise."""
        if obj is None:
            return None
        digest = _probe_fingerprint(obj)
        if digest is not None:
            return digest
        token = self._id_tokens.get(id(obj))  # repro: noqa DET002 -- _pinned keeps every keyed object alive for the session, so its address cannot be recycled
        if token is None:  # repro: noqa DET002 -- token is a synthetic ("id", ordinal) tuple, not a raw address
            token = ("id", len(self._pinned))
            self._id_tokens[id(obj)] = token  # repro: noqa DET002 -- _pinned keeps every keyed object alive for the session, so its address cannot be recycled
            self._pinned.append(obj)
        return token

    def _inflight_full(self) -> bool:
        return sum(
            1 for f in self._futures.values() if not f.done()
        ) >= self._max_inflight

    # -- adaptive speculation ----------------------------------------------------------
    def _mark_speculative(self, key: tuple) -> None:
        """Count one speculative submit (prefetch paths only)."""
        self._spec_keys.add(key)
        self._spec_issued += 1
        self._spec_window_issued += 1

    def _note_consumed(self, key: tuple) -> None:
        """A blocking ``outcome`` reached ``key``: a hit if it was speculated."""
        if key in self._spec_keys:
            self._spec_keys.discard(key)
            self._spec_hits += 1
            self._spec_window_hits += 1

    def _adaptive_depth(self, fanout: int = 1) -> int:
        """Current speculative-bisection depth.

        Hit-rate driven: every ``_SPEC_WINDOW`` issued probes, the depth
        deepens when speculation keeps paying off and backs off when most
        speculated probes go unused.  Occupancy guarded: the frontier a
        depth implies (``(2**depth - 1) * fanout`` probes, ``fanout`` = probes
        per candidate) is shrunk to what the pool's idle capacity can absorb,
        so speculation never starves the probe the search blocks on next.
        Depth changes which probes are *warm*, never which verdicts the
        search sees -- probes are deterministic and memoised per key.
        """
        if self._executor is None:
            return 0
        if self._spec_window_issued >= _SPEC_WINDOW:
            rate = self._spec_window_hits / self._spec_window_issued
            if rate >= 0.5 and self._spec_depth < _SPEC_DEPTH_MAX:
                self._spec_depth += 1
            elif rate < 0.2 and self._spec_depth > _SPEC_DEPTH_MIN:
                self._spec_depth -= 1
            self._spec_window_issued = 0
            self._spec_window_hits = 0
        inflight = sum(1 for f in self._futures.values() if not f.done())
        idle = max(0, self._max_inflight - inflight)
        depth = self._spec_depth
        while depth > _SPEC_DEPTH_MIN and \
                (2 ** depth - 1) * fanout > max(idle, fanout):
            depth -= 1
        return depth

    def drain_speculation_stats(self) -> "SpeculationStats":
        """Pop (once) the speculation counters accumulated since the last
        drain; still-unconsumed speculative probes count as wasted."""
        stats = SpeculationStats(
            issued=self._spec_issued,
            hits=self._spec_hits,
            wasted=len(self._spec_keys),
            final_depth=self._spec_depth,
        )
        self._spec_keys.clear()
        self._spec_issued = 0
        self._spec_hits = 0
        return stats

    def _record_outcome(self, key: tuple,
                        outcome: CapacityProbeOutcome) -> None:
        self._outcomes[key] = outcome
        if outcome.policy_stats is not None and key[0] is not None:
            self._pending_stats.setdefault(key[0], []).append(
                outcome.policy_stats
            )

    def _drain_stat_deltas(self, obj) -> list:
        """Pop (once) the stat deltas of ``obj``'s probes run since the last
        drain; memoised probes from earlier calls are never double-counted."""
        token = self._token(obj)
        if token is None:
            return []
        return self._pending_stats.pop(token, [])

    def close(self) -> None:
        if self._executor is not None:
            if self._finalizer is not None:
                self._finalizer.detach()
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._futures.clear()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _CapacityProbeSession(_ProbeSessionBase):
    """Memoised capacity-search probes, inline or on a process pool.

    Probes are keyed on ``(policy, pool_size_sockets, pool_capacity_gb,
    dram)`` -- the policy via a value-based fingerprint
    (:func:`_probe_fingerprint`), so mutating a policy in place between
    searches changes the key instead of serving a stale memoised outcome
    (unpicklable policies fall back to a pinned identity token, which cannot
    detect in-place mutation).  The parallel session ships the trace to
    workers once (pool initializer); policies ride along with each probe
    task, so **one session serves every policy and pool size of a study
    grid**.  :meth:`submit` / :meth:`prefetch_bisection` let independent
    probes -- the rejection-budget replay, the pool-provisioning replay, and
    speculative bisection candidates -- run concurrently while the caller
    blocks only on the probe it needs next.  Sequential and parallel
    sessions produce identical outcomes; parallelism only changes *when*
    probes run.

    Sessions are reusable across ``evaluate_capacity_search`` calls
    (memoised outcomes are sound: probes are deterministic per key);
    :class:`PoolDimensioner` owns one and invalidates it when the trace or
    the dimensioner configuration changes.  ``close()`` is idempotent, the
    context-manager protocol closes on exit, and a ``weakref.finalize``
    guard shuts the worker pool down if the session is dropped unclosed.
    """

    def __init__(self, dimensioner: "PoolDimensioner",
                 trace: ClusterTrace) -> None:
        super().__init__()
        self._dimensioner = dimensioner
        self._trace = trace
        workers = dimensioner.max_workers
        if workers is not None and workers > 1:
            self._attach_executor(
                ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_capacity_probe_init,
                    initargs=(
                        trace, dimensioner.n_servers,
                        dimensioner.server_config,
                        dimensioner.sample_interval_s,
                        dimensioner.scheduler_strategy, dimensioner.engine,
                    ),
                ),
                max_inflight=2 * workers,
            )

    @property
    def parallel(self) -> bool:
        return self._executor is not None

    def submit(self, policy: Optional[PoolPolicy], pool_size_sockets: int,
               pool_capacity_gb: float, dram: Optional[float],
               speculative: bool = False) -> None:
        """Non-blocking probe; no-op when sequential or saturated.

        ``speculative`` marks prefetch-issued probes for the adaptive
        controller's accounting (warm-start probes the search will certainly
        need are not speculative).
        """
        if self._executor is None:
            return
        key = (self._token(policy), pool_size_sockets, pool_capacity_gb, dram)
        if key in self._outcomes or key in self._futures:
            return
        if self._inflight_full():
            return
        self._futures[key] = self._executor.submit(
            _run_capacity_probe,
            (policy, pool_size_sockets, pool_capacity_gb, dram),
        )
        if speculative:
            self._mark_speculative(key)

    def outcome(self, policy: Optional[PoolPolicy], pool_size_sockets: int,
                pool_capacity_gb: float,
                dram: Optional[float]) -> CapacityProbeOutcome:
        """Blocking probe result (memoised)."""
        key = (self._token(policy), pool_size_sockets, pool_capacity_gb, dram)
        self._note_consumed(key)
        cached = self._outcomes.get(key)
        if cached is not None:
            return cached
        future = self._futures.pop(key, None)
        if future is not None:
            result = future.result()
        elif self._executor is not None:
            result = self._executor.submit(
                _run_capacity_probe,
                (policy, pool_size_sockets, pool_capacity_gb, dram),
            ).result()
        else:
            dim = self._dimensioner
            result = probe_outcome_of(capacity_probe_replay(
                self._trace, policy,
                dim.n_servers, dim.server_config, pool_size_sockets,
                pool_capacity_gb, dram, dim.sample_interval_s,
                dim.scheduler_strategy, dim.engine,
            ))
        self._record_outcome(key, result)
        return result

    def prefetch_bisection(self, policy: Optional[PoolPolicy],
                           pool_size_sockets: int,
                           pool_capacity_gb: float, lo: float, hi: float,
                           depth: Optional[int] = None) -> None:
        """Speculatively submit the bisection tree under ``(lo, hi)``.

        Breadth-first: the midpoint the search will probe next goes in
        first, then both candidates it could probe after, and so on --
        whichever way each verdict lands, the following probe is already
        running.  Mis-speculated candidates stay memoised in case a later
        interval revisits them.  ``depth=None`` (the default) lets the
        adaptive controller pick the depth from the recent hit rate and the
        pool's idle capacity (:meth:`_ProbeSessionBase._adaptive_depth`);
        an explicit depth pins it (tests, ablations).
        """
        if self._executor is None:
            return
        if depth is None:
            depth = self._adaptive_depth()
        frontier = [(lo, hi)]
        for _ in range(depth):
            next_frontier = []
            for low, high in frontier:
                mid = (low + high) / 2.0
                self.submit(policy, pool_size_sockets, pool_capacity_gb, mid,
                            speculative=True)
                next_frontier.append((low, mid))
                next_frontier.append((mid, high))
            frontier = next_frontier

    def drain_policy_stats(self, policy: Optional[PoolPolicy]):
        """Merge (and clear) the stat deltas of ``policy``'s new probes.

        Draining keeps reused sessions honest: a probe memoised by an
        earlier call already folded its delta into the caller's policy then
        and is not counted again.  Returns ``None`` when there is nothing
        to fold.
        """
        merged = None
        for stats in self._drain_stat_deltas(policy):
            if merged is None:
                merged = copy.deepcopy(stats)
            else:
                merged.add(stats)
        return merged


def bisect_min_dram(hi: float, steps: int, budget: int,
                    rejections: Callable[[float], int],
                    prefetch: Optional[Callable[[float, float], None]] = None,
                    widen_rounds: int = 4) -> float:
    """Smallest per-server DRAM (after ``steps`` bisections) within budget.

    ``rejections(dram)`` is a blocking probe; ``prefetch(lo, hi)`` is an
    optional non-blocking hint that warms candidates the search may need
    next (speculative bisection).  The probe *sequence* is exactly the
    legacy sequential one -- the search path is a pure function of the
    deterministic, memoised rejection counts -- which is why parallel and
    sequential searches return identical results.  Shared by
    :class:`PoolDimensioner` and ``FleetSimulator.capacity_search``.
    """
    lo = 0.0
    feasible = False
    for _ in range(widen_rounds):
        if prefetch is not None:
            prefetch(lo, hi)
        if rejections(hi) <= budget:
            feasible = True
            break
        hi *= 1.5
    if not feasible:
        return hi
    for _ in range(steps):
        if prefetch is not None:
            prefetch(lo, hi)
        mid = (lo + hi) / 2.0
        if rejections(mid) <= budget:
            hi = mid
        else:
            lo = mid
    return hi


class PoolDimensioner:
    """Estimates DRAM requirements for different pool sizes and policies."""

    def __init__(
        self,
        n_servers: int,
        server_config: Optional[ServerConfig] = None,
        sample_interval_s: float = 3600.0,
        search_steps: int = 7,
        rejection_tolerance: float = 0.002,
        pool_headroom: float = 1.05,
        scheduler_strategy: str = "indexed",
        engine: Optional[str] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        if n_servers < 1:
            raise ValueError("need at least one server")
        if search_steps < 1:
            raise ValueError("search_steps must be >= 1")
        if rejection_tolerance < 0:
            raise ValueError("rejection_tolerance cannot be negative")
        if pool_headroom < 1.0:
            raise ValueError("pool_headroom must be >= 1.0")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        validate_strategy(scheduler_strategy)
        self.n_servers = n_servers
        self.server_config = server_config or ServerConfig()
        self.sample_interval_s = sample_interval_s
        self.search_steps = search_steps
        self.rejection_tolerance = rejection_tolerance
        self.pool_headroom = pool_headroom
        self.scheduler_strategy = scheduler_strategy
        #: Placement engine for every replay ("array" by default; see
        #: repro.cluster.engine).  Resolved once so probe workers and
        #: in-process replays agree.
        self.engine = resolve_engine(engine, scheduler_strategy)
        #: When > 1, :meth:`evaluate_capacity_search` runs its replays as
        #: parallel probes on a process pool (speculative bisection); the
        #: returned savings are identical to the sequential search.
        self.max_workers = max_workers
        # Keyed on the trace object via weak references: ``id(trace)`` keys
        # (the previous scheme) are reused by CPython once a trace is garbage
        # collected, which let a new trace silently inherit a stale baseline
        # or rejection count.  Weak keys vanish with the trace instead.
        self._baseline_cache: "weakref.WeakKeyDictionary[ClusterTrace, float]" = (
            weakref.WeakKeyDictionary()
        )
        self._peak_baseline_cache: "weakref.WeakKeyDictionary[ClusterTrace, float]" = (
            weakref.WeakKeyDictionary()
        )
        self._rejection_cache: "weakref.WeakKeyDictionary[ClusterTrace, int]" = (
            weakref.WeakKeyDictionary()
        )
        # Reusable probe session (ROADMAP: sessions survive across
        # evaluate_capacity_search calls).  Valid for one trace identity and
        # one dimensioner configuration; the trace is pinned by strong
        # reference while the session lives (``close()`` releases it).
        self._probe_session: Optional[_CapacityProbeSession] = None
        self._probe_session_trace: Optional[ClusterTrace] = None
        self._probe_session_fingerprint: Optional[tuple] = None
        #: Speculation accounting of the most recent
        #: :meth:`evaluate_capacity_search` call (drained per call; all
        #: zeros for sequential searches).  Purely diagnostic -- speculation
        #: never changes probe verdicts or the returned savings.
        self.last_speculation: Optional[SpeculationStats] = None

    # -- probe-session lifecycle -------------------------------------------------------
    def _session_fingerprint(self) -> tuple:
        """The configuration a probe session (and its memos) depends on."""
        return (
            self.n_servers, self.server_config, self.sample_interval_s,
            self.scheduler_strategy, self.engine, self.max_workers,
        )

    def probe_session(self, trace: ClusterTrace) -> _CapacityProbeSession:
        """The reusable probe session for ``trace``, created on first use.

        One session -- one worker pool, one shipped trace -- serves every
        ``evaluate_capacity_search`` call over the same trace, across pool
        sizes *and* policies (policies travel with each probe task).  A
        different trace, or any change to the dimensioner's configuration,
        invalidates the session: its memoised outcomes were computed under
        the old key, so it is closed and rebuilt.
        """
        fingerprint = self._session_fingerprint()
        if (self._probe_session is not None
                and self._probe_session_trace is trace
                and self._probe_session_fingerprint == fingerprint):
            return self._probe_session
        self.close()
        self._probe_session = _CapacityProbeSession(self, trace)
        self._probe_session_trace = trace
        self._probe_session_fingerprint = fingerprint
        return self._probe_session

    def close(self) -> None:
        """Shut down the reusable probe session (idempotent).

        The dimensioner stays usable; the next capacity search lazily builds
        a fresh session.
        """
        if self._probe_session is not None:
            self._probe_session.close()
            self._probe_session = None
        self._probe_session_trace = None
        self._probe_session_fingerprint = None

    def __enter__(self) -> "PoolDimensioner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- simulation helpers -----------------------------------------------------------
    def _simulate(
        self,
        trace: ClusterTrace,
        policy: Optional[PoolPolicy],
        pool_size_sockets: int,
        pool_capacity_gb: float,
        dram_per_server_gb: Optional[float],
    ) -> SimulationResult:
        return capacity_probe_replay(
            trace, policy, self.n_servers, self.server_config,
            pool_size_sockets, pool_capacity_gb, dram_per_server_gb,
            self.sample_interval_s, self.scheduler_strategy, self.engine,
        )

    def _core_only_rejections(
        self, trace: ClusterTrace,
        session: Optional[_CapacityProbeSession] = None,
    ) -> int:
        """Rejections due to core/NUMA fragmentation alone (memory unconstrained)."""
        if trace not in self._rejection_cache:
            if session is not None:
                rejected = session.outcome(None, 0, float("inf"), None).rejected_vms
            else:
                rejected = self._simulate(trace, None, 0, float("inf"), None).rejected_vms
            self._rejection_cache[trace] = rejected
        return self._rejection_cache[trace]

    def _rejection_budget(
        self, trace: ClusterTrace,
        session: Optional[_CapacityProbeSession] = None,
    ) -> int:
        return self._core_only_rejections(trace, session) + max(
            1, int(self.rejection_tolerance * len(trace))
        )

    def _min_uniform_server_dram(
        self,
        trace: ClusterTrace,
        policy: Optional[PoolPolicy],
        pool_size_sockets: int,
        pool_capacity_gb: float,
        session: Optional[_CapacityProbeSession] = None,
    ) -> float:
        """Binary-search the smallest uniform per-server DRAM that still fits.

        With a parallel ``session`` the bisection speculates: bracketing
        candidates are probed concurrently on the process pool and memoised,
        so each verdict's follow-up probe is usually already running.  The
        probe sequence (and therefore the result) is identical either way.
        """
        budget = self._rejection_budget(trace, session)
        if session is None:
            def rejections(dram: float) -> int:
                return self._simulate(
                    trace, policy, pool_size_sockets, pool_capacity_gb, dram
                ).rejected_vms

            prefetch = None
        else:
            def rejections(dram: float) -> int:
                return session.outcome(
                    policy, pool_size_sockets, pool_capacity_gb, dram
                ).rejected_vms

            if session.parallel:
                def prefetch(lo: float, hi: float) -> None:
                    session.prefetch_bisection(
                        policy, pool_size_sockets, pool_capacity_gb, lo, hi
                    )
            else:
                prefetch = None
        return bisect_min_dram(
            self.server_config.total_dram_gb, self.search_steps, budget,
            rejections, prefetch,
        )

    # -- baseline ------------------------------------------------------------------
    def _baseline_required_dram_gb(
        self, trace: ClusterTrace,
        session: Optional[_CapacityProbeSession] = None,
    ) -> float:
        if trace not in self._baseline_cache:
            per_server = self._min_uniform_server_dram(trace, None, 0, 0.0, session)
            self._baseline_cache[trace] = per_server * self.n_servers
        return self._baseline_cache[trace]

    def baseline_required_dram_gb(self, trace: ClusterTrace) -> float:
        """Required DRAM with every VM entirely on local memory (no pooling)."""
        return self._baseline_required_dram_gb(trace)

    # -- pooled configurations --------------------------------------------------------
    def evaluate(
        self,
        trace: ClusterTrace,
        pool_size_sockets: int,
        policy: PoolPolicy,
    ) -> PoolSavings:
        """Required DRAM when ``policy`` decides pool allocations.

        Uniform provisioning from observed demand: every server is bought with
        the DRAM of the worst per-server *local* peak, every pool blade with
        the worst per-group *pool* peak.  The no-pooling baseline provisions
        every server for the worst per-server *total* peak, which is exactly
        the over-provisioning that manifests as stranding.

        ``pool_size_sockets`` must be a multiple of the server socket count;
        a value of 0 degenerates to the no-pooling baseline.
        """
        baseline = self.peak_baseline_required_dram_gb(trace)
        if pool_size_sockets == 0:
            return PoolSavings(
                pool_size_sockets=0,
                baseline_dram_gb=baseline,
                required_local_dram_gb=baseline,
                required_pool_dram_gb=0.0,
                average_pool_fraction=0.0,
            )
        result = self._simulate(trace, policy, pool_size_sockets, float("inf"), None)
        uniform_pool_gb = self._uniform_pool_requirement_gb(result, pool_size_sockets)
        return PoolSavings(
            pool_size_sockets=pool_size_sockets,
            baseline_dram_gb=baseline,
            required_local_dram_gb=result.uniform_required_local_dram_gb,
            required_pool_dram_gb=uniform_pool_gb,
            average_pool_fraction=result.average_pool_fraction,
        )

    def _uniform_pool_requirement_gb(self, result: SimulationResult,
                                     pool_size_sockets: int) -> float:
        return uniform_pool_requirement_gb(
            result, pool_size_sockets, self.server_config.sockets, self.n_servers
        )

    def peak_baseline_required_dram_gb(self, trace: ClusterTrace) -> float:
        """No-pooling baseline under uniform peak-observation provisioning."""
        if trace not in self._peak_baseline_cache:
            result = self._simulate(trace, None, 0, 0.0, None)
            self._peak_baseline_cache[trace] = result.uniform_required_local_dram_gb
        return self._peak_baseline_cache[trace]

    def evaluate_capacity_search(
        self,
        trace: ClusterTrace,
        pool_size_sockets: int,
        policy: PoolPolicy,
    ) -> PoolSavings:
        """Capacity-search mode: the smallest uniform server DRAM that still fits.

        The memory-constrained replay lets the scheduler divert VMs to other
        servers (the paper's "moves the VMs to another server"), so this mode
        credits rescheduling slack to the *local* side; the pool is provisioned
        from the unconstrained per-group peak.  Used by the provisioning-
        methodology ablation benchmark; the fleet-scale lift of the same
        search is :meth:`repro.cluster.fleet.FleetSimulator.capacity_search`.

        The algorithm, step by step:

        1. **Rejection budget.**  Replay the trace memory-unconstrained with
           no pool and count rejections -- those are due to core/NUMA
           fragmentation alone and can never be fixed by DRAM.  The budget is
           that count plus ``max(1, rejection_tolerance * len(trace))``
           (the paper tolerates "rare cases").
        2. **Pool provisioning.**  Replay once more, memory-unconstrained but
           *with* the pool and policy, and provision every pool group with
           ``pool_headroom`` times the worst observed per-group peak.
        3. **Binary search.**  Find the smallest uniform per-server DRAM such
           that the fully constrained replay (that DRAM, that pool) rejects
           no more VMs than the budget; ``search_steps`` bisection steps
           bracket it from an upper bound that is widened if infeasible.

        Worked example::

            cfg = TraceGenConfig(n_servers=12, duration_days=1.0, seed=7)
            trace = TraceGenerator(cfg).generate_bulk()
            dimensioner = PoolDimensioner(n_servers=12, search_steps=5)
            savings = dimensioner.evaluate_capacity_search(
                trace, pool_size_sockets=16, policy=FixedFractionPolicy(0.3)
            )
            # savings.baseline_dram_gb: smallest uniform DRAM, no pooling
            # savings.required_total_dram_gb: local search result + pools
            # savings.savings_percent: Figure 21's y-axis gap

        With ``max_workers > 1`` the search's replays run as parallel probes
        on a process pool: the rejection-budget replay, the pool-provisioning
        replay, and the first candidates of both binary searches start
        concurrently up front, and each bisection speculates its bracketing
        candidates (see :func:`bisect_min_dram`).  The returned savings are
        identical to the sequential search -- parallelism only changes when
        probes run, never which verdicts they produce.

        The probe pool is a **reusable session** (see :meth:`probe_session`):
        repeated searches over the same trace -- a Figure-21 grid sweeping
        pool sizes and policies -- share one worker pool, one shipped trace,
        and the memoised probe outcomes, instead of paying worker spawn and
        trace shipping once per cell.  The session is torn down whenever the
        trace or the dimensioner configuration changes, on any exception,
        and by :meth:`close` / the context-manager exit.
        """
        session = self.probe_session(trace)
        try:
            inf = float("inf")
            if session.parallel:
                # Warm start: the probe chains that do not depend on each
                # other begin together (budget replay, no-pool baseline upper
                # bound, pool-provisioning replay).
                if trace not in self._rejection_cache:
                    session.submit(None, 0, inf, None)
                if trace not in self._baseline_cache:
                    session.submit(None, 0, 0.0, self.server_config.total_dram_gb)
                if pool_size_sockets:
                    session.submit(policy, pool_size_sockets, inf, None)
            baseline = self._baseline_required_dram_gb(trace, session)
            if pool_size_sockets == 0:
                self.last_speculation = session.drain_speculation_stats()
                return PoolSavings(
                    pool_size_sockets=0,
                    baseline_dram_gb=baseline,
                    required_local_dram_gb=baseline,
                    required_pool_dram_gb=0.0,
                    average_pool_fraction=0.0,
                )
            unconstrained = session.outcome(policy, pool_size_sockets, inf, None)
            if unconstrained.pool_peak_gb:
                per_group_pool = self.pool_headroom * max(
                    unconstrained.pool_peak_gb.values()
                )
                n_groups = len(unconstrained.pool_peak_gb)
            else:
                per_group_pool = 0.0
                n_groups = 0
            per_server = self._min_uniform_server_dram(
                trace, policy, pool_size_sockets, per_group_pool, session
            )
            if session.parallel:
                # Parallel probes ran pickled policy copies in the workers;
                # fold their per-probe stat deltas back into the caller's
                # policy so `policy.stats` keeps working like the sequential
                # search (the executed probe multiset can differ --
                # speculation -- but every probe replays the same trace, so
                # the stats ratios are preserved).  Draining takes only the
                # deltas of probes run since the last call, so a reused
                # session never double-counts.
                stats = getattr(policy, "stats", None)
                probe_stats = session.drain_policy_stats(policy)
                if stats is not None and probe_stats is not None:
                    stats.add(probe_stats)
            self.last_speculation = session.drain_speculation_stats()
            return PoolSavings(
                pool_size_sockets=pool_size_sockets,
                baseline_dram_gb=baseline,
                required_local_dram_gb=per_server * self.n_servers,
                required_pool_dram_gb=per_group_pool * n_groups,
                average_pool_fraction=unconstrained.average_pool_fraction,
            )
        except BaseException:
            # Executor lifecycle hardening: a failed search must not leave a
            # half-used probe pool behind (the next call rebuilds one).
            self.close()
            raise

    def sweep_pool_sizes(
        self,
        trace: ClusterTrace,
        pool_sizes: Sequence[int],
        policy: PoolPolicy,
    ) -> List[PoolSavings]:
        """Evaluate the same policy across multiple pool sizes (Figure 3 rows)."""
        return [self.evaluate(trace, size, policy) for size in pool_sizes]

    def sweep_fixed_fractions(
        self,
        trace: ClusterTrace,
        pool_sizes: Sequence[int],
        fractions: Sequence[float],
    ) -> Dict[float, List[PoolSavings]]:
        """The full Figure 3 grid: fixed pool fractions x pool sizes."""
        return {
            fraction: self.sweep_pool_sizes(trace, pool_sizes, fixed_fraction_policy(fraction))
            for fraction in fractions
        }

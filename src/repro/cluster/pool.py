"""Pool dimensioning and DRAM-savings estimation (paper Figures 3 and 21).

The DRAM-savings argument works as follows.  Servers are deployed with one
uniform DRAM configuration, so without pooling the fleet must size *every*
server so that the VM schedule still fits -- and because VM mixes differ
across servers, the average server then strands the difference.  With
pooling, a share of every VM's memory (fixed or predicted by Pond) is served
from a pool shared by ``pool_size_sockets`` sockets; servers can be
provisioned with less local DRAM, and each pool absorbs the per-server
deviations.  The bigger the pool, the better the statistical multiplexing,
with diminishing returns (Figure 3).

Following the paper's methodology ("the simulator ... schedules VMs on the
same nodes as in the trace and changes their memory allocation to match the
policy; for rare cases where a VM does not fit on a server, the simulator
moves the VMs to another server"), the *required* DRAM is found by a
capacity search: the smallest uniform per-server DRAM such that the
memory-constrained replay of the trace still places (almost) every VM, given
a pool provisioned from the observed per-group demand.  A faster
peak-observation mode is kept for ablations.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.scheduler import validate_strategy
from repro.cluster.simulator import ClusterSimulator, PoolPolicy, SimulationResult
from repro.cluster.server import ServerConfig
from repro.cluster.trace import ClusterTrace, TraceColumns, VMTraceRecord

__all__ = [
    "PoolSavings",
    "PoolDimensioner",
    "FixedFractionPolicy",
    "fixed_fraction_policy",
    "uniform_pool_requirement_gb",
    "capacity_candidate_config",
]


class FixedFractionPolicy:
    """Policy allocating a fixed fraction of every VM's memory on the pool.

    Stateless (no stats, no randomness), so the batch and per-record paths
    agree trivially; used by the Figure 3 sweeps and as the simplest example
    of the batch policy contract (DESIGN.md).
    """

    def __init__(self, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.fraction = fraction

    def __call__(self, record: VMTraceRecord) -> float:
        return record.memory_gb * self.fraction

    def decide_batch(self, trace):
        """Batch path for a trace, a streamed chunk, or a record sequence."""
        if isinstance(trace, ClusterTrace):
            memory_gb = trace.columns().memory_gb
        elif isinstance(trace, TraceColumns):
            memory_gb = trace.memory_gb
        else:
            records = list(trace)
            memory_gb = np.fromiter(
                (r.memory_gb for r in records), np.float64, len(records)
            )
        return memory_gb * self.fraction


def fixed_fraction_policy(fraction: float) -> FixedFractionPolicy:
    """Backwards-compatible constructor for :class:`FixedFractionPolicy`."""
    return FixedFractionPolicy(fraction)


def capacity_candidate_config(base: ServerConfig,
                              dram_per_server_gb: float) -> ServerConfig:
    """Server config for one capacity-search candidate DRAM size.

    Shared by :class:`PoolDimensioner` and the fleet-level
    :meth:`repro.cluster.fleet.FleetSimulator.capacity_search` so both
    searches probe byte-identical cluster configurations (which is what makes
    their single-shard results comparable in differential tests).
    """
    return ServerConfig(
        name="search-candidate",
        sockets=base.sockets,
        cores_per_socket=base.cores_per_socket,
        dram_per_socket_gb=max(1.0, dram_per_server_gb / base.sockets),
    )


def uniform_pool_requirement_gb(
    result: SimulationResult,
    pool_size_sockets: int,
    sockets_per_server: int,
    n_servers: int,
) -> float:
    """Uniform pool provisioning from observed per-group peaks, per server.

    Pool blades are deployed with one capacity per attached server, so the
    requirement is the worst per-server pool demand across groups times the
    number of servers.  Normalising per server keeps the answer meaningful
    when the last pool group has fewer servers than the others.
    """
    if not result.pool_peak_gb:
        return 0.0
    servers_per_group = max(1, pool_size_sockets // sockets_per_server)
    worst_per_server = 0.0
    for group, peak in result.pool_peak_gb.items():
        group_start = group * servers_per_group
        group_size = min(servers_per_group, n_servers - group_start)
        if group_size <= 0:
            continue
        worst_per_server = max(worst_per_server, peak / group_size)
    return worst_per_server * n_servers


@dataclass(frozen=True)
class PoolSavings:
    """Required DRAM under a pooling configuration, relative to no pooling."""

    pool_size_sockets: int
    baseline_dram_gb: float
    required_local_dram_gb: float
    required_pool_dram_gb: float
    average_pool_fraction: float

    @property
    def required_total_dram_gb(self) -> float:
        return self.required_local_dram_gb + self.required_pool_dram_gb

    @property
    def required_dram_percent(self) -> float:
        """Required DRAM as a percent of the no-pooling baseline (Figure 3 y-axis)."""
        if self.baseline_dram_gb <= 0:
            return 100.0
        return 100.0 * self.required_total_dram_gb / self.baseline_dram_gb

    @property
    def savings_percent(self) -> float:
        return 100.0 - self.required_dram_percent


class PoolDimensioner:
    """Estimates DRAM requirements for different pool sizes and policies."""

    def __init__(
        self,
        n_servers: int,
        server_config: Optional[ServerConfig] = None,
        sample_interval_s: float = 3600.0,
        search_steps: int = 7,
        rejection_tolerance: float = 0.002,
        pool_headroom: float = 1.05,
        scheduler_strategy: str = "indexed",
    ) -> None:
        if n_servers < 1:
            raise ValueError("need at least one server")
        if search_steps < 1:
            raise ValueError("search_steps must be >= 1")
        if rejection_tolerance < 0:
            raise ValueError("rejection_tolerance cannot be negative")
        if pool_headroom < 1.0:
            raise ValueError("pool_headroom must be >= 1.0")
        validate_strategy(scheduler_strategy)
        self.n_servers = n_servers
        self.server_config = server_config or ServerConfig()
        self.sample_interval_s = sample_interval_s
        self.search_steps = search_steps
        self.rejection_tolerance = rejection_tolerance
        self.pool_headroom = pool_headroom
        self.scheduler_strategy = scheduler_strategy
        # Keyed on the trace object via weak references: ``id(trace)`` keys
        # (the previous scheme) are reused by CPython once a trace is garbage
        # collected, which let a new trace silently inherit a stale baseline
        # or rejection count.  Weak keys vanish with the trace instead.
        self._baseline_cache: "weakref.WeakKeyDictionary[ClusterTrace, float]" = (
            weakref.WeakKeyDictionary()
        )
        self._peak_baseline_cache: "weakref.WeakKeyDictionary[ClusterTrace, float]" = (
            weakref.WeakKeyDictionary()
        )
        self._rejection_cache: "weakref.WeakKeyDictionary[ClusterTrace, int]" = (
            weakref.WeakKeyDictionary()
        )

    # -- simulation helpers -----------------------------------------------------------
    def _simulate(
        self,
        trace: ClusterTrace,
        policy: Optional[PoolPolicy],
        pool_size_sockets: int,
        pool_capacity_gb: float,
        dram_per_server_gb: Optional[float],
    ) -> SimulationResult:
        if dram_per_server_gb is None:
            config = self.server_config
            constrain = False
        else:
            config = capacity_candidate_config(self.server_config, dram_per_server_gb)
            constrain = True
        simulator = ClusterSimulator(
            n_servers=self.n_servers,
            server_config=config,
            pool_size_sockets=pool_size_sockets,
            pool_capacity_gb_per_group=pool_capacity_gb,
            constrain_memory=constrain,
            sample_interval_s=self.sample_interval_s,
            scheduler_strategy=self.scheduler_strategy,
            # Dimensioning only reads peaks and rejection counts.
            record_placements=False,
        )
        return simulator.run(trace, policy=policy)

    def _core_only_rejections(self, trace: ClusterTrace) -> int:
        """Rejections due to core/NUMA fragmentation alone (memory unconstrained)."""
        if trace not in self._rejection_cache:
            result = self._simulate(trace, None, 0, float("inf"), None)
            self._rejection_cache[trace] = result.rejected_vms
        return self._rejection_cache[trace]

    def _rejection_budget(self, trace: ClusterTrace) -> int:
        return self._core_only_rejections(trace) + max(1, int(self.rejection_tolerance * len(trace)))

    def _min_uniform_server_dram(
        self,
        trace: ClusterTrace,
        policy: Optional[PoolPolicy],
        pool_size_sockets: int,
        pool_capacity_gb: float,
    ) -> float:
        """Binary-search the smallest uniform per-server DRAM that still fits."""
        budget = self._rejection_budget(trace)
        hi = self.server_config.total_dram_gb
        lo = 0.0
        # Ensure the upper bound is actually feasible; if not, widen it.
        for _ in range(4):
            result = self._simulate(trace, policy, pool_size_sockets, pool_capacity_gb, hi)
            if result.rejected_vms <= budget:
                break
            hi *= 1.5
        else:
            return hi
        for _ in range(self.search_steps):
            mid = (lo + hi) / 2.0
            result = self._simulate(trace, policy, pool_size_sockets, pool_capacity_gb, mid)
            if result.rejected_vms <= budget:
                hi = mid
            else:
                lo = mid
        return hi

    # -- baseline ------------------------------------------------------------------
    def baseline_required_dram_gb(self, trace: ClusterTrace) -> float:
        """Required DRAM with every VM entirely on local memory (no pooling)."""
        if trace not in self._baseline_cache:
            per_server = self._min_uniform_server_dram(trace, None, 0, 0.0)
            self._baseline_cache[trace] = per_server * self.n_servers
        return self._baseline_cache[trace]

    # -- pooled configurations --------------------------------------------------------
    def evaluate(
        self,
        trace: ClusterTrace,
        pool_size_sockets: int,
        policy: PoolPolicy,
    ) -> PoolSavings:
        """Required DRAM when ``policy`` decides pool allocations.

        Uniform provisioning from observed demand: every server is bought with
        the DRAM of the worst per-server *local* peak, every pool blade with
        the worst per-group *pool* peak.  The no-pooling baseline provisions
        every server for the worst per-server *total* peak, which is exactly
        the over-provisioning that manifests as stranding.

        ``pool_size_sockets`` must be a multiple of the server socket count;
        a value of 0 degenerates to the no-pooling baseline.
        """
        baseline = self.peak_baseline_required_dram_gb(trace)
        if pool_size_sockets == 0:
            return PoolSavings(
                pool_size_sockets=0,
                baseline_dram_gb=baseline,
                required_local_dram_gb=baseline,
                required_pool_dram_gb=0.0,
                average_pool_fraction=0.0,
            )
        result = self._simulate(trace, policy, pool_size_sockets, float("inf"), None)
        uniform_pool_gb = self._uniform_pool_requirement_gb(result, pool_size_sockets)
        return PoolSavings(
            pool_size_sockets=pool_size_sockets,
            baseline_dram_gb=baseline,
            required_local_dram_gb=result.uniform_required_local_dram_gb,
            required_pool_dram_gb=uniform_pool_gb,
            average_pool_fraction=result.average_pool_fraction,
        )

    def _uniform_pool_requirement_gb(self, result: SimulationResult,
                                     pool_size_sockets: int) -> float:
        return uniform_pool_requirement_gb(
            result, pool_size_sockets, self.server_config.sockets, self.n_servers
        )

    def peak_baseline_required_dram_gb(self, trace: ClusterTrace) -> float:
        """No-pooling baseline under uniform peak-observation provisioning."""
        if trace not in self._peak_baseline_cache:
            result = self._simulate(trace, None, 0, 0.0, None)
            self._peak_baseline_cache[trace] = result.uniform_required_local_dram_gb
        return self._peak_baseline_cache[trace]

    def evaluate_capacity_search(
        self,
        trace: ClusterTrace,
        pool_size_sockets: int,
        policy: PoolPolicy,
    ) -> PoolSavings:
        """Capacity-search mode: the smallest uniform server DRAM that still fits.

        The memory-constrained replay lets the scheduler divert VMs to other
        servers (the paper's "moves the VMs to another server"), so this mode
        credits rescheduling slack to the *local* side; the pool is provisioned
        from the unconstrained per-group peak.  Used by the provisioning-
        methodology ablation benchmark; the fleet-scale lift of the same
        search is :meth:`repro.cluster.fleet.FleetSimulator.capacity_search`.

        The algorithm, step by step:

        1. **Rejection budget.**  Replay the trace memory-unconstrained with
           no pool and count rejections -- those are due to core/NUMA
           fragmentation alone and can never be fixed by DRAM.  The budget is
           that count plus ``max(1, rejection_tolerance * len(trace))``
           (the paper tolerates "rare cases").
        2. **Pool provisioning.**  Replay once more, memory-unconstrained but
           *with* the pool and policy, and provision every pool group with
           ``pool_headroom`` times the worst observed per-group peak.
        3. **Binary search.**  Find the smallest uniform per-server DRAM such
           that the fully constrained replay (that DRAM, that pool) rejects
           no more VMs than the budget; ``search_steps`` bisection steps
           bracket it from an upper bound that is widened if infeasible.

        Worked example::

            cfg = TraceGenConfig(n_servers=12, duration_days=1.0, seed=7)
            trace = TraceGenerator(cfg).generate_bulk()
            dimensioner = PoolDimensioner(n_servers=12, search_steps=5)
            savings = dimensioner.evaluate_capacity_search(
                trace, pool_size_sockets=16, policy=FixedFractionPolicy(0.3)
            )
            # savings.baseline_dram_gb: smallest uniform DRAM, no pooling
            # savings.required_total_dram_gb: local search result + pools
            # savings.savings_percent: Figure 21's y-axis gap
        """
        baseline = self.baseline_required_dram_gb(trace)
        if pool_size_sockets == 0:
            return PoolSavings(
                pool_size_sockets=0,
                baseline_dram_gb=baseline,
                required_local_dram_gb=baseline,
                required_pool_dram_gb=0.0,
                average_pool_fraction=0.0,
            )
        unconstrained = self._simulate(
            trace, policy, pool_size_sockets, float("inf"), None
        )
        if unconstrained.pool_peak_gb:
            per_group_pool = self.pool_headroom * max(unconstrained.pool_peak_gb.values())
            n_groups = len(unconstrained.pool_peak_gb)
        else:
            per_group_pool = 0.0
            n_groups = 0
        per_server = self._min_uniform_server_dram(
            trace, policy, pool_size_sockets, per_group_pool
        )
        return PoolSavings(
            pool_size_sockets=pool_size_sockets,
            baseline_dram_gb=baseline,
            required_local_dram_gb=per_server * self.n_servers,
            required_pool_dram_gb=per_group_pool * n_groups,
            average_pool_fraction=unconstrained.average_pool_fraction,
        )

    def sweep_pool_sizes(
        self,
        trace: ClusterTrace,
        pool_sizes: Sequence[int],
        policy: PoolPolicy,
    ) -> List[PoolSavings]:
        """Evaluate the same policy across multiple pool sizes (Figure 3 rows)."""
        return [self.evaluate(trace, size, policy) for size in pool_sizes]

    def sweep_fixed_fractions(
        self,
        trace: ClusterTrace,
        pool_sizes: Sequence[int],
        fractions: Sequence[float],
    ) -> Dict[float, List[PoolSavings]]:
        """The full Figure 3 grid: fixed pool fractions x pool sizes."""
        return {
            fraction: self.sweep_pool_sizes(trace, pool_sizes, fixed_fraction_policy(fraction))
            for fraction in fractions
        }

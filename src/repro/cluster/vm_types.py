"""VM SKU catalog and sampling.

Cloud VMs come in families with different DRAM-to-core ratios; the mismatch
between the VM mix's aggregate ratio and the servers' ratio is what produces
stranding (paper Section 2).  The catalog below mirrors typical public-cloud
families (general purpose ~4 GB/core, memory optimised ~8 GB/core, compute
optimised ~2 GB/core) across several core counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "VMType",
    "VM_TYPE_CATALOG",
    "family_probabilities",
    "family_size_distribution",
    "sample_vm_type",
    "vm_mix_dram_per_core",
]


@dataclass(frozen=True)
class VMType:
    """One rentable VM shape."""

    name: str
    family: str
    cores: int
    memory_gb: float

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.memory_gb <= 0:
            raise ValueError("memory must be positive")

    @property
    def memory_per_core_gb(self) -> float:
        return self.memory_gb / self.cores


def _family(prefix: str, family: str, gb_per_core: float, core_counts: Sequence[int]) -> List[VMType]:
    return [
        VMType(name=f"{prefix}{c}", family=family, cores=c, memory_gb=c * gb_per_core)
        for c in core_counts
    ]


#: The rentable VM catalog: three families spanning 2-48 cores.
VM_TYPE_CATALOG: List[VMType] = (
    _family("D", "general", 4.0, (2, 4, 8, 16, 32, 48))
    + _family("E", "memory_optimized", 8.0, (2, 4, 8, 16, 32, 48))
    + _family("F", "compute_optimized", 2.0, (2, 4, 8, 16, 32, 48))
    + _family("B", "burstable", 4.0, (1, 2, 4))
)

_CATALOG_BY_NAME: Dict[str, VMType] = {t.name: t for t in VM_TYPE_CATALOG}

#: Default popularity of each family.  General-purpose VMs dominate by count;
#: memory-optimised VMs carry a large share of memory, which keeps the VM
#: mix's aggregate DRAM:core ratio at roughly 70-80 % of the servers' ratio --
#: the regime in which core exhaustion strands the remaining DRAM.
DEFAULT_FAMILY_WEIGHTS: Dict[str, float] = {
    "general": 0.42,
    "memory_optimized": 0.36,
    "compute_optimized": 0.14,
    "burstable": 0.08,
}

#: Smaller VMs are far more common than large ones; the steep exponent keeps
#: the typical server hosting dozens of VMs, as in production clusters.
_SIZE_WEIGHT_EXPONENT = -1.8


def get_vm_type(name: str) -> VMType:
    if name not in _CATALOG_BY_NAME:
        raise KeyError(f"unknown VM type {name!r}")
    return _CATALOG_BY_NAME[name]


def family_probabilities(
    family_weights: Optional[Dict[str, float]] = None,
) -> Tuple[List[str], np.ndarray]:
    """Normalised family sampling distribution (defaults merged with overrides).

    Single source of truth for both the per-VM sampler below and the bulk
    trace-generation path.
    """
    weights = dict(DEFAULT_FAMILY_WEIGHTS)
    if family_weights:
        weights.update(family_weights)
    families = sorted(weights)
    probs = np.array([max(0.0, weights[f]) for f in families], dtype=float)
    if probs.sum() <= 0:
        raise ValueError("family weights must not all be zero")
    probs /= probs.sum()
    return families, probs


def family_size_distribution(family: str) -> Tuple[List[int], np.ndarray]:
    """Catalog indices of one family and their power-law size popularity."""
    indices = [i for i, t in enumerate(VM_TYPE_CATALOG) if t.family == family]
    if not indices:
        raise KeyError(f"no catalog entries for family {family!r}")
    size_weights = np.array(
        [VM_TYPE_CATALOG[i].cores ** _SIZE_WEIGHT_EXPONENT for i in indices]
    )
    size_weights /= size_weights.sum()
    return indices, size_weights


def sample_vm_type(
    rng: np.random.Generator,
    family_weights: Optional[Dict[str, float]] = None,
) -> VMType:
    """Sample a VM type: family by weight, size by a power-law popularity."""
    families, probs = family_probabilities(family_weights)
    family = str(rng.choice(families, p=probs))
    indices, size_weights = family_size_distribution(family)
    idx = int(rng.choice(len(indices), p=size_weights))
    return VM_TYPE_CATALOG[indices[idx]]


def vm_mix_dram_per_core(
    rng: np.random.Generator,
    n_samples: int = 1000,
    family_weights: Optional[Dict[str, float]] = None,
) -> float:
    """Estimate the aggregate DRAM:core ratio of a sampled VM mix."""
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    total_cores = 0
    total_memory = 0.0
    for _ in range(n_samples):
        t = sample_vm_type(rng, family_weights)
        total_cores += t.cores
        total_memory += t.memory_gb
    return total_memory / total_cores

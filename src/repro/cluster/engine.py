"""Array-backed placement engine: the struct-of-arrays scheduler hot path.

The object scheduler (:mod:`repro.cluster.scheduler`) walks ``ClusterServer``
instances on every placement: each candidate check is a chain of method calls
and attribute loads (``find_numa_node``, ``free_cores``, ``stranded_gb``,
per-node Python lists), and every commit touches half a dozen objects.  At
million-event trace scale that per-VM interpreter overhead dominates the run.

:class:`ArrayPlacementEngine` replaces the object model with flat
struct-of-arrays state:

* per-NUMA-node used cores / GB in flat ``n_servers * sockets`` arrays,
* per-server scalars (used cores/GB, pool usage, peaks) in parallel arrays,
* cluster aggregates (used cores, used GB, stranded GB, running VMs)
  maintained incrementally with the exact arithmetic the object path uses,
* live placements as parallel arrays indexed by an integer **VM handle**
  (handles are recycled through a free list; an optional intern table maps
  vm ids to handles for callers that address VMs by id), and
* the departure side stores only ``(time, seq, handle)`` triples, so the
  event heap never carries strings or objects.

Hot state lives in plain Python lists: the per-event operations are scalar
reads/writes, where list indexing is what CPython executes fastest (numpy
scalar indexing boxes a fresh float per access, which is *slower* than the
object path it would replace).

The selection walk is the **same best-fit bucket structure** as the indexed
scheduler -- free-core buckets holding ``(free_local_gb, server_index)``
sorted lists, walked from the fewest feasible free cores upwards -- and every
float update replays the object path's arithmetic operation-for-operation, so
placements, rejections, peaks, and sample rows are byte-identical to the
object engine (differential-tested; see DESIGN.md section 6).

``ClusterSimulator``, ``VMScheduler``, ``PoolDimensioner``, and
``FleetSimulator`` select the engine via ``engine="array" | "object"``; the
object path is kept for differential testing, exactly like the scheduler's
``strategy="linear"`` scan.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.server import ClusterServer, ServerConfig

__all__ = [
    "ArrayPlacementEngine",
    "PLACEMENT_ENGINES",
    "validate_engine",
    "resolve_engine",
]

#: Valid values for the ``engine`` argument grown by the scheduler/simulator.
PLACEMENT_ENGINES = ("array", "object")


def validate_engine(engine: str) -> str:
    """Validate a placement-engine name; returns it for chaining."""
    if engine not in PLACEMENT_ENGINES:
        raise ValueError(
            f"unknown placement engine {engine!r}; "
            f"expected one of {PLACEMENT_ENGINES}"
        )
    return engine


def resolve_engine(engine: Optional[str], scheduler_strategy: str) -> str:
    """Resolve the ``engine=None`` default and validate the combination.

    The array engine implements the *indexed* bucket walk; the legacy linear
    scan only exists on the object path.  ``None`` therefore resolves to
    ``"array"`` under the default indexed strategy and to ``"object"`` under
    ``strategy="linear"``; asking for the impossible combination is an error.
    """
    if engine is None:
        return "array" if scheduler_strategy == "indexed" else "object"
    validate_engine(engine)
    if engine == "array" and scheduler_strategy != "indexed":
        raise ValueError(
            "engine='array' implements the indexed bucket walk; use "
            "scheduler_strategy='indexed' with it (engine='object' keeps "
            f"the {scheduler_strategy!r} strategy)"
        )
    return engine


class ArrayPlacementEngine:
    """Struct-of-arrays cluster state with best-fit bucket-walk placement.

    The engine is constructed either for a fresh uniform cluster
    (:meth:`for_cluster`, the simulator's path) or from existing
    ``ClusterServer`` objects (:meth:`from_servers`, the scheduler facade's
    path, which snapshots their current occupancy).

    Placement/removal return and consume integer VM handles; callers that
    track VMs by id use :meth:`place_vm` / :meth:`remove_vm`, which maintain
    the interned id table.
    """

    def __init__(
        self,
        n_servers: int,
        config: ServerConfig,
        group_of: Optional[Sequence[int]] = None,
        pool_free_gb: Optional[Dict[int, float]] = None,
        server_ids: Optional[Sequence[str]] = None,
        pool_used_gb: Optional[Dict[int, float]] = None,
        pool_peak_gb: Optional[Dict[int, float]] = None,
    ) -> None:
        if n_servers < 1:
            raise ValueError("need at least one server")
        self.n_servers = n_servers
        self.config = config
        self.sockets = config.sockets
        self.cores_per_socket = config.cores_per_socket
        self.dram_per_socket_gb = config.dram_per_socket_gb
        self.server_total_cores = config.total_cores
        self.server_total_dram_gb = config.total_dram_gb
        self.server_ids: List[str] = (
            list(server_ids) if server_ids is not None
            else [f"server-{i:04d}" for i in range(n_servers)]
        )
        if len(self.server_ids) != n_servers:
            raise ValueError("server_ids must have one entry per server")

        # -- struct-of-arrays state ------------------------------------------------
        n_nodes = n_servers * self.sockets
        #: flat (n_servers, sockets) arrays, row-major by server index.
        self.node_used_cores: List[int] = [0] * n_nodes
        self.node_used_gb: List[float] = [0.0] * n_nodes
        #: per-server scalars.
        self.used_cores_srv: List[int] = [0] * n_servers
        self.used_gb_srv: List[float] = [0.0] * n_servers
        self.pool_used_srv: List[float] = [0.0] * n_servers
        self.peak_local_gb: List[float] = [0.0] * n_servers
        self.peak_pool_gb: List[float] = [0.0] * n_servers
        #: server index -> pool group id (-1: not pooled).
        self.group_of: List[int] = (
            list(group_of) if group_of is not None else [-1] * n_servers
        )
        if len(self.group_of) != n_servers:
            raise ValueError("group_of must have one entry per server")
        #: shared pool accounting, keyed by group id.  All three dicts may be
        #: the caller's (they are mutated in place like the object path);
        #: passing shared ``pool_used_gb`` / ``pool_peak_gb`` dicts lets a
        #: fleet-owned ledger span several engines -- the cross-shard pool
        #: topology (repro.cluster.pool_topology) builds one engine per shard
        #: over one shared ledger, so a pool group's draw/release/peak
        #: accounting is externally ownable.
        self.pool_free_gb: Dict[int, float] = (
            pool_free_gb if pool_free_gb is not None else {}
        )
        self.pool_used_gb: Dict[int, float] = (
            pool_used_gb if pool_used_gb is not None
            else {g: 0.0 for g in self.pool_free_gb}
        )
        self.pool_peak_by_group: Dict[int, float] = (
            pool_peak_gb if pool_peak_gb is not None
            else {g: 0.0 for g in self.pool_free_gb}
        )

        # -- cluster aggregates ----------------------------------------------------
        self.total_cores = n_servers * self.server_total_cores
        self.used_cores = 0
        self.used_local_gb = 0.0
        self.stranded_gb = 0.0
        self.running_vms = 0

        # -- candidate index (same structure as the indexed scheduler) -------------
        #: free-core count -> sorted [(free_local_gb, server_index), ...]
        self._buckets: List[List[Tuple[float, int]]] = [
            [] for _ in range(self.server_total_cores + 1)
        ]
        full = (self.server_total_cores, self.server_total_dram_gb)
        self._bucket_key: List[Tuple[int, float]] = [full] * n_servers
        # Fresh servers share one key, so ascending index order is sorted.
        self._buckets[full[0]] = [(full[1], i) for i in range(n_servers)]

        # -- live placements, indexed by handle ------------------------------------
        self.vm_server: List[int] = []
        self.vm_node: List[int] = []
        self.vm_cores: List[int] = []
        self.vm_local_gb: List[float] = []
        self.vm_pool_gb: List[float] = []
        self._free_handles: List[int] = []
        #: vm id -> handle, maintained by place_vm/remove_vm only.
        self._handle_of: Dict[str, int] = {}

    # -- constructors ----------------------------------------------------------------
    @classmethod
    def for_cluster(
        cls,
        n_servers: int,
        config: ServerConfig,
        pool_size_sockets: int = 0,
        pool_capacity_gb_per_group: float = float("inf"),
        base_sockets: Optional[int] = None,
    ) -> "ArrayPlacementEngine":
        """Fresh uniform cluster, mirroring ``ClusterSimulator._build_cluster``.

        ``base_sockets`` is the socket count used to size pool groups (the
        simulator derives groups from its *base* config even when the replay
        runs a memory-unconstrained or capacity-candidate variant of it).
        """
        group_of: Optional[List[int]] = None
        pool_free: Optional[Dict[int, float]] = None
        if pool_size_sockets:
            sockets = base_sockets if base_sockets is not None else config.sockets
            servers_per_group = max(1, pool_size_sockets // sockets)
            group_of = [i // servers_per_group for i in range(n_servers)]
            pool_free = {}
            for group in group_of:
                pool_free.setdefault(group, pool_capacity_gb_per_group)
        return cls(n_servers, config, group_of=group_of, pool_free_gb=pool_free)

    @classmethod
    def from_servers(
        cls,
        servers: Sequence[ClusterServer],
        pool_free_gb: Optional[Dict[int, float]] = None,
        server_pool_group: Optional[Dict[str, int]] = None,
    ) -> "ArrayPlacementEngine":
        """Snapshot existing servers (with any live placements) into arrays.

        All servers must share one :class:`ServerConfig`: a single bucket
        index assumes uniform capacity (the object path supports heterogeneous
        fleets; use ``engine="object"`` for those).
        """
        if not servers:
            raise ValueError("need at least one server")
        config = servers[0].config
        if any(s.config != config for s in servers):
            raise ValueError(
                "engine='array' requires a homogeneous ServerConfig across "
                "servers; use engine='object' for heterogeneous fleets"
            )
        server_pool_group = server_pool_group or {}
        group_of = [server_pool_group.get(s.server_id, -1) for s in servers]
        engine = cls(
            len(servers), config, group_of=group_of,
            pool_free_gb=pool_free_gb,
            server_ids=[s.server_id for s in servers],
        )
        for idx, server in enumerate(servers):
            for vm_id, placement in server._placements.items():
                engine._adopt(vm_id, idx, *placement)
        return engine

    def _adopt(self, vm_id: str, idx: int, node: int, cores: int,
               local_gb: float, pool_gb: float) -> None:
        """Intern one pre-existing placement (construction-time only)."""
        base = idx * self.sockets + node
        self.node_used_cores[base] += cores
        self.node_used_gb[base] += local_gb
        self.used_cores_srv[idx] += cores
        new_gb = self.used_gb_srv[idx] + local_gb
        self.used_gb_srv[idx] = new_gb
        self.pool_used_srv[idx] += pool_gb
        if new_gb > self.peak_local_gb[idx]:
            self.peak_local_gb[idx] = new_gb
        if self.pool_used_srv[idx] > self.peak_pool_gb[idx]:
            self.peak_pool_gb[idx] = self.pool_used_srv[idx]
        group = self.group_of[idx]
        if group >= 0 and pool_gb > 0:
            self.pool_used_gb[group] = self.pool_used_gb.get(group, 0.0) + pool_gb
        self.used_cores += cores
        self.used_local_gb += local_gb
        self.running_vms += 1
        self._reindex(idx)
        self.stranded_gb = sum(
            (self.server_total_dram_gb - self.used_gb_srv[i])
            for i in range(self.n_servers)
            if self.used_cores_srv[i] >= self.server_total_cores
        )
        self._handle_of[vm_id] = self._new_handle(idx, node, cores, local_gb, pool_gb)

    # -- handle bookkeeping ------------------------------------------------------------
    def _new_handle(self, idx: int, node: int, cores: int,
                    local_gb: float, pool_gb: float) -> int:
        free = self._free_handles
        if free:
            handle = free.pop()
            self.vm_server[handle] = idx
            self.vm_node[handle] = node
            self.vm_cores[handle] = cores
            self.vm_local_gb[handle] = local_gb
            self.vm_pool_gb[handle] = pool_gb
        else:
            handle = len(self.vm_server)
            self.vm_server.append(idx)
            self.vm_node.append(node)
            self.vm_cores.append(cores)
            self.vm_local_gb.append(local_gb)
            self.vm_pool_gb.append(pool_gb)
        return handle

    def _reindex(self, idx: int) -> None:
        key = self._bucket_key[idx]
        new_key = (
            self.server_total_cores - self.used_cores_srv[idx],
            self.server_total_dram_gb - self.used_gb_srv[idx],
        )
        if new_key == key:
            return
        bucket = self._buckets[key[0]]
        pos = bisect_left(bucket, (key[1], idx))
        del bucket[pos]
        insort(self._buckets[new_key[0]], (new_key[1], idx))
        self._bucket_key[idx] = new_key

    # -- selection ---------------------------------------------------------------------
    def select(self, cores: int, local_gb: float, pool_gb: float) -> int:
        """Best-fit server index for the request, or -1 when nothing fits.

        Walks the free-core buckets upwards exactly like the indexed
        scheduler's ``_select_indexed`` (same tie-breaks, same pool and NUMA
        feasibility checks), so decisions match the object path bit-for-bit.
        """
        node_cores = self.node_used_cores
        node_gb = self.node_used_gb
        sockets = self.sockets
        cores_limit = self.cores_per_socket - cores
        gb_limit = self.dram_per_socket_gb - local_gb + 1e-9
        need_pool = pool_gb > 0
        group_of = self.group_of
        pool_free = self.pool_free_gb
        for free in range(cores, len(self._buckets)):
            for _, idx in self._buckets[free]:
                if need_pool:
                    group = group_of[idx]
                    avail = pool_free.get(group, 0.0) if group >= 0 else 0.0
                    if pool_gb > avail + 1e-9:
                        continue
                base = idx * sockets
                best_used = -1
                for node in range(sockets):
                    used = node_cores[base + node]
                    if (used <= cores_limit and used > best_used
                            and node_gb[base + node] <= gb_limit):
                        best_used = used
                if best_used >= 0:
                    return idx
        return -1

    def _find_node(self, idx: int, cores: int, local_gb: float) -> int:
        """Fullest NUMA node of ``idx`` that fits (mirrors ``find_numa_node``)."""
        node_cores = self.node_used_cores
        node_gb = self.node_used_gb
        base = idx * self.sockets
        cores_limit = self.cores_per_socket - cores
        gb_limit = self.dram_per_socket_gb - local_gb + 1e-9
        best_node = -1
        best_used = -1
        for node in range(self.sockets):
            used = node_cores[base + node]
            if (used <= cores_limit and used > best_used
                    and node_gb[base + node] <= gb_limit):
                best_node = node
                best_used = used
        return best_node

    # -- placement ---------------------------------------------------------------------
    def place(self, cores: int, local_gb: float, pool_gb: float) -> int:
        """Select + commit; returns the VM handle, or -1 when nothing fits.

        Replays the object path's arithmetic operation-for-operation
        (scheduler aggregates, per-server usage, peaks, pool free/used/peak)
        so all downstream floats are byte-identical.  Raises
        :class:`~repro.cluster.scheduler.PlacementError` for the object
        path's group-less pool request corner (including its peak side
        effect: the transient placement's peaks survive the rollback).
        """
        node_cores = self.node_used_cores
        node_gb = self.node_used_gb
        sockets = self.sockets
        cores_limit = self.cores_per_socket - cores
        gb_limit = self.dram_per_socket_gb - local_gb + 1e-9
        need_pool = pool_gb > 0
        group_of = self.group_of
        pool_free = self.pool_free_gb
        buckets = self._buckets

        sidx = -1
        best_node = -1
        for free in range(cores, len(buckets)):
            for _, idx in buckets[free]:
                if need_pool:
                    group = group_of[idx]
                    avail = pool_free.get(group, 0.0) if group >= 0 else 0.0
                    if pool_gb > avail + 1e-9:
                        continue
                base = idx * sockets
                cand_node = -1
                cand_used = -1
                for node in range(sockets):
                    used = node_cores[base + node]
                    if (used <= cores_limit and used > cand_used
                            and node_gb[base + node] <= gb_limit):
                        cand_node = node
                        cand_used = used
                if cand_node >= 0:
                    sidx = idx
                    best_node = cand_node
                    break
            if sidx >= 0:
                break
        if sidx < 0:
            return -1

        # -- commit: same mutation order and arithmetic as ClusterServer.place
        # + VMScheduler.place -------------------------------------------------
        used_cores_srv = self.used_cores_srv
        used_gb_srv = self.used_gb_srv
        pool_used_srv = self.pool_used_srv
        stc = self.server_total_cores
        std = self.server_total_dram_gb

        before_cores = used_cores_srv[sidx]
        stranded_before = std - used_gb_srv[sidx] if before_cores >= stc else 0.0

        pos = sidx * sockets + best_node
        node_cores[pos] += cores
        node_gb[pos] += local_gb
        new_cores = before_cores + cores
        used_cores_srv[sidx] = new_cores
        new_gb = used_gb_srv[sidx] + local_gb
        used_gb_srv[sidx] = new_gb
        pool_used_srv[sidx] += pool_gb
        if new_gb > self.peak_local_gb[sidx]:
            self.peak_local_gb[sidx] = new_gb
        if pool_used_srv[sidx] > self.peak_pool_gb[sidx]:
            self.peak_pool_gb[sidx] = pool_used_srv[sidx]

        if need_pool:
            group = group_of[sidx]
            if group < 0:
                # Object path: server.place succeeded, the group lookup failed,
                # server.remove rolled usage back -- but not the peaks.
                from repro.cluster.scheduler import PlacementError

                node_cores[pos] -= cores
                node_gb[pos] -= local_gb
                used_cores_srv[sidx] = new_cores - cores
                used_gb_srv[sidx] = new_gb - local_gb
                pool_used_srv[sidx] -= pool_gb
                error = PlacementError(
                    f"server {self.server_ids[sidx]} is not in any pool group "
                    f"but {pool_gb:.1f} GB of pool memory was requested"
                )
                # The scheduler facade mirrors the transient placement onto
                # the ClusterServer object; tell it which server was touched.
                error.server_index = sidx
                raise error
            pool_free[group] -= pool_gb
            pool_used = self.pool_used_gb
            pool_used[group] += pool_gb
            if pool_used[group] > self.pool_peak_by_group[group]:
                self.pool_peak_by_group[group] = pool_used[group]

        self.used_cores += cores
        self.used_local_gb += local_gb
        stranded_after = std - new_gb if new_cores >= stc else 0.0
        self.stranded_gb += stranded_after - stranded_before
        self.running_vms += 1

        # -- reindex (same bucket arithmetic as _reindex, inlined) -----------
        key = self._bucket_key[sidx]
        new_key = (stc - new_cores, std - new_gb)
        if new_key != key:
            bucket = buckets[key[0]]
            del bucket[bisect_left(bucket, (key[1], sidx))]
            insort(buckets[new_key[0]], (new_key[1], sidx))
            self._bucket_key[sidx] = new_key

        return self._new_handle(sidx, best_node, cores, local_gb, pool_gb)

    def remove(self, handle: int) -> None:
        """Release a placement by handle (departure path).

        Mirrors the object simulator's departure sequence: pool-used
        decrement with negative-drift clamping, pool free return, usage and
        aggregate decrements, stranding delta, reindex.
        """
        sidx = self.vm_server[handle]
        node = self.vm_node[handle]
        cores = self.vm_cores[handle]
        local_gb = self.vm_local_gb[handle]
        pool_gb = self.vm_pool_gb[handle]

        group = self.group_of[sidx]
        if group >= 0:
            pool_used = self.pool_used_gb
            remaining = pool_used[group] - pool_gb
            if remaining < 0.0:
                # Clamp the tiny negative float drift repeated +=/-= of
                # policy fractions accumulates; real imbalances stay loud.
                if remaining < -1e-6:
                    raise RuntimeError(
                        f"pool group {group} accounting went negative "
                        f"({remaining} GB) -- simulator bug"
                    )
                remaining = 0.0
            pool_used[group] = remaining
            if pool_gb > 0:
                self.pool_free_gb[group] += pool_gb

        used_cores_srv = self.used_cores_srv
        used_gb_srv = self.used_gb_srv
        stc = self.server_total_cores
        std = self.server_total_dram_gb
        before_cores = used_cores_srv[sidx]
        stranded_before = std - used_gb_srv[sidx] if before_cores >= stc else 0.0

        pos = sidx * self.sockets + node
        self.node_used_cores[pos] -= cores
        self.node_used_gb[pos] -= local_gb
        new_cores = before_cores - cores
        used_cores_srv[sidx] = new_cores
        new_gb = used_gb_srv[sidx] - local_gb
        used_gb_srv[sidx] = new_gb
        self.pool_used_srv[sidx] -= pool_gb

        self.used_cores -= cores
        self.used_local_gb -= local_gb
        stranded_after = std - new_gb if new_cores >= stc else 0.0
        self.stranded_gb += stranded_after - stranded_before
        self.running_vms -= 1

        key = self._bucket_key[sidx]
        new_key = (stc - new_cores, std - new_gb)
        if new_key != key:
            bucket = self._buckets[key[0]]
            del bucket[bisect_left(bucket, (key[1], sidx))]
            insort(self._buckets[new_key[0]], (new_key[1], sidx))
            self._bucket_key[sidx] = new_key

        self._free_handles.append(handle)

    # -- online mitigation ----------------------------------------------------------------
    def migrate_pool_to_local(self, handle: int) -> float:
        """Move a live VM's pool share onto its NUMA-local node (mitigation).

        The online QoS loop's reconfiguration primitive (paper Section 4.2):
        the VM keeps its cores and node, its pool allocation is returned to
        the group ledger, and the same GBs are charged to local DRAM.

        Returns the moved GB; ``0.0`` when the VM has no pool exposure, and
        ``-1.0`` when the node lacks the DRAM headroom (same ``+ 1e-9``
        feasibility slack as placement) -- the caller records a failed
        mitigation and may retry after departures free memory.  Ledger
        updates reuse the departure path's negative-drift clamp, so
        ``pool_used`` can never drift negative through mitigations.
        """
        sidx = self.vm_server[handle]
        node = self.vm_node[handle]
        pool_gb = self.vm_pool_gb[handle]
        if pool_gb <= 0.0:
            return 0.0
        pos = sidx * self.sockets + node
        std = self.server_total_dram_gb
        if self.node_used_gb[pos] + pool_gb > self.dram_per_socket_gb + 1e-9:
            return -1.0

        group = self.group_of[sidx]
        if group >= 0:
            pool_used = self.pool_used_gb
            remaining = pool_used[group] - pool_gb
            if remaining < 0.0:
                if remaining < -1e-6:
                    raise RuntimeError(
                        f"pool group {group} accounting went negative "
                        f"({remaining} GB) -- simulator bug"
                    )
                remaining = 0.0
            pool_used[group] = remaining
            self.pool_free_gb[group] += pool_gb
        self.pool_used_srv[sidx] -= pool_gb

        used_cores_srv = self.used_cores_srv
        used_gb_srv = self.used_gb_srv
        stc = self.server_total_cores
        cores_now = used_cores_srv[sidx]
        stranded_before = std - used_gb_srv[sidx] if cores_now >= stc else 0.0

        self.node_used_gb[pos] += pool_gb
        new_gb = used_gb_srv[sidx] + pool_gb
        used_gb_srv[sidx] = new_gb
        if new_gb > self.peak_local_gb[sidx]:
            self.peak_local_gb[sidx] = new_gb

        self.used_local_gb += pool_gb
        stranded_after = std - new_gb if cores_now >= stc else 0.0
        self.stranded_gb += stranded_after - stranded_before

        key = self._bucket_key[sidx]
        new_key = (stc - cores_now, std - new_gb)
        if new_key != key:
            bucket = self._buckets[key[0]]
            del bucket[bisect_left(bucket, (key[1], sidx))]
            insort(self._buckets[new_key[0]], (new_key[1], sidx))
            self._bucket_key[sidx] = new_key

        self.vm_local_gb[handle] = self.vm_local_gb[handle] + pool_gb
        self.vm_pool_gb[handle] = 0.0
        return pool_gb

    # -- id-addressed API (scheduler facade) ---------------------------------------------
    def place_vm(self, vm_id: str, cores: int, local_gb: float,
                 pool_gb: float) -> int:
        """Place by vm id; returns the server index.  Raises on no fit."""
        from repro.cluster.scheduler import PlacementError

        if vm_id in self._handle_of:
            raise ValueError(f"VM {vm_id!r} already placed")
        handle = self.place(cores, local_gb, pool_gb)
        if handle < 0:
            raise PlacementError(
                f"no server fits {cores} cores, {local_gb:.1f} GB local, "
                f"{pool_gb:.1f} GB pool"
            )
        self._handle_of[vm_id] = handle
        return self.vm_server[handle]

    def placed_on(self, vm_id: str) -> int:
        """Server index a vm id is placed on, or -1 when unknown."""
        handle = self._handle_of.get(vm_id)
        return self.vm_server[handle] if handle is not None else -1

    def remove_vm(self, vm_id: str) -> int:
        """Remove by vm id; returns the server index it ran on."""
        handle = self._handle_of.pop(vm_id, None)
        if handle is None:
            raise KeyError(f"no VM {vm_id!r} placed")
        sidx = self.vm_server[handle]
        self.remove(handle)
        return sidx

    # -- result export -------------------------------------------------------------------
    def server_peaks(self) -> Tuple[Dict[str, float], Dict[str, float]]:
        """(peak local GB, peak local+pool GB) per server id."""
        ids = self.server_ids
        local = {ids[i]: self.peak_local_gb[i] for i in range(self.n_servers)}
        total = {
            ids[i]: self.peak_local_gb[i] + self.peak_pool_gb[i]
            for i in range(self.n_servers)
        }
        return local, total

"""Fleet-level pool topologies: pool groups that may span cluster shards.

The paper's pool-scope sensitivity result (Figure 4) is that how many
sockets share one CXL pool drives both the achievable DRAM savings and the
blast radius of a pool failure, with 16-64-socket pools spanning multiple
chassis or racks.  The sharded fleet simulator models each shard as one
independent cluster, so out of the box "pools never span shards" -- the
rack-scale regime where one pool serves servers from *two* clusters could
not be replayed.  This module lifts pool-group ownership out of the
single-cluster simulator:

* :class:`PoolTopology` maps every ``(shard, server)`` of a fleet to a
  *fleet-level* pool group id.  :meth:`PoolTopology.per_shard` reproduces
  the classic intra-shard grouping (the degenerate topology, byte-identical
  to the shardwise path -- differential-tested like ``engine="object"``);
  :meth:`PoolTopology.spanning` blocks groups across the concatenated fleet
  server list, ignoring shard boundaries, so one group can span clusters.
* :class:`PoolGroupLedger` owns the per-group free/used/peak accounting.
  Engines do not copy it: every shard's :class:`ArrayPlacementEngine` is
  constructed over the *same* ledger dicts, so a pool draw in one shard is
  immediately visible to placement feasibility checks in another.
* :func:`replay_crossshard` replays the shards of a fleet as **one merged
  time-ordered event stream** (arrivals k-way merged across shards,
  departures and per-shard samples in a single event heap), which is what
  makes a shared group's capacity constraint physically meaningful: two
  shards contending for one group contend at simulation time, not
  shard-serially.

Ordering contract (mirrors ``ClusterSimulator``'s merged loop): at equal
timestamps the order is departures, then samples, then arrivals, with
deterministic shard-index tie-breaks; per shard, the relative event order is
exactly the single-cluster simulator's, which is why the degenerate
per-shard topology reproduces ``FleetSimulator``'s classic results
byte-for-byte (enforced by ``tests/test_pool_topology.py``).
"""

from __future__ import annotations

import gc
import heapq
from bisect import bisect_left, bisect_right, insort
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.engine import ArrayPlacementEngine
from repro.cluster.faults import FaultImpactStats, FaultInjector, FaultSchedule
from repro.cluster.scheduler import PlacementError
from repro.cluster.server import ServerConfig
from repro.cluster.simulator import (
    SimulationResult,
    TraceInput,
    block_replay_columns,
    effective_server_config,
    iter_policy_blocks,
)
from repro.cluster.trace import ClusterTrace
from repro.core.control_plane.online import (
    OnlineControlConfig,
    OnlineControlStats,
    estimate_slowdown_batch,
)

__all__ = ["PoolTopology", "PoolGroupLedger", "replay_crossshard"]


class PoolTopology:
    """Fleet-wide mapping of servers to pool groups, with provisioning domains.

    ``group_of[shard][server]`` is the fleet-level pool group id serving that
    server.  Group ids are contiguous (``0 .. n_groups - 1``) and every
    server belongs to exactly one group -- the topology describes a fully
    pooled fleet (use ``pool_size_sockets=0`` on the fleet itself for the
    unpooled regime).

    ``domain_of_group`` partitions groups into **provisioning domains**: pool
    blades are bought uniformly within a domain, so the capacity search
    provisions every group of a domain at the domain's worst observed peak
    (times headroom).  The per-shard topology uses one domain per shard --
    exactly today's per-cluster provisioning -- while spanning topologies
    default to a single fleet-wide domain (one blade SKU for the whole
    deployment).
    """

    def __init__(
        self,
        group_of: Sequence[Sequence[int]],
        sockets_per_server: int,
        pool_size_sockets: int,
        domain_of_group: Optional[Sequence[int]] = None,
    ) -> None:
        if not group_of:
            raise ValueError("need at least one shard")
        if sockets_per_server < 1:
            raise ValueError("sockets_per_server must be >= 1")
        if pool_size_sockets < 1:
            raise ValueError(
                "pool_size_sockets must be >= 1 (an unpooled fleet needs no "
                "topology)"
            )
        if pool_size_sockets % sockets_per_server != 0:
            raise ValueError(
                "pool_size_sockets must be a multiple of the server socket count"
            )
        self.group_of: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(int(g) for g in shard) for shard in group_of
        )
        if any(not shard for shard in self.group_of):
            raise ValueError("every shard must have at least one server")
        self.sockets_per_server = sockets_per_server
        self.pool_size_sockets = pool_size_sockets
        self.shard_sizes: Tuple[int, ...] = tuple(len(s) for s in self.group_of)
        self.n_shards = len(self.group_of)
        self.total_servers = sum(self.shard_sizes)

        seen = sorted({g for shard in self.group_of for g in shard})
        if seen[0] != 0 or seen[-1] != len(seen) - 1:
            raise ValueError(
                f"group ids must be contiguous 0..n-1, got {seen[:8]}..."
            )
        self.n_groups = len(seen)

        # -- derived indices -------------------------------------------------------
        sizes = [0] * self.n_groups
        shards_of: List[set] = [set() for _ in range(self.n_groups)]
        by_shard: List[List[int]] = []
        for shard, assignment in enumerate(self.group_of):
            shard_groups: List[int] = []
            for group in assignment:
                sizes[group] += 1
                shards_of[group].add(shard)
                if group not in shard_groups:
                    shard_groups.append(group)
            by_shard.append(sorted(shard_groups))
        #: servers attached to each group, fleet-wide.
        self.group_server_count: Tuple[int, ...] = tuple(sizes)
        #: shards each group touches (ascending).
        self.group_shards: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(s)) for s in shards_of
        )
        #: groups each shard's servers attach to (ascending fleet ids).
        self._groups_by_shard: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(g) for g in by_shard
        )

        if domain_of_group is None:
            domains: Tuple[int, ...] = (0,) * self.n_groups
        else:
            domains = tuple(int(d) for d in domain_of_group)
            if len(domains) != self.n_groups:
                raise ValueError("domain_of_group must have one entry per group")
        self.domain_of_group = domains
        #: domain id -> its groups, both ascending (provisioning iterates
        #: domains in this order, matching the shardwise accumulation order
        #: of the classic capacity search for per-shard topologies).
        by_domain: Dict[int, List[int]] = {}
        for group in range(self.n_groups):
            by_domain.setdefault(self.domain_of_group[group], []).append(group)
        self.groups_by_domain: Dict[int, Tuple[int, ...]] = {
            d: tuple(by_domain[d]) for d in sorted(by_domain)
        }

    # -- constructors --------------------------------------------------------------
    @classmethod
    def per_shard(cls, shard_sizes: Sequence[int], sockets_per_server: int,
                  pool_size_sockets: int) -> "PoolTopology":
        """The degenerate topology: groups confined to shards.

        Reproduces ``ClusterSimulator._build_cluster`` grouping inside every
        shard (``server // servers_per_group``, fleet ids offset per shard)
        with one provisioning domain per shard -- the exact regime the
        shardwise fleet path models, kept as the differential anchor.
        """
        servers_per_group = max(1, pool_size_sockets // sockets_per_server)
        group_of: List[List[int]] = []
        domains: List[int] = []
        next_group = 0
        for shard, n_servers in enumerate(shard_sizes):
            local = [i // servers_per_group for i in range(n_servers)]
            n_local = local[-1] + 1 if local else 0
            group_of.append([next_group + g for g in local])
            domains.extend([shard] * n_local)
            next_group += n_local
        return cls(group_of, sockets_per_server, pool_size_sockets, domains)

    @classmethod
    def spanning(cls, shard_sizes: Sequence[int], sockets_per_server: int,
                 pool_size_sockets: int) -> "PoolTopology":
        """Groups blocked across the concatenated fleet server list.

        Shard boundaries are ignored: server ``k`` of the fleet-wide
        enumeration joins group ``k // servers_per_group``, so a group at a
        shard seam serves servers from two (or more) clusters -- the
        rack-scale pooling regime.  One fleet-wide provisioning domain.
        """
        servers_per_group = max(1, pool_size_sockets // sockets_per_server)
        group_of: List[List[int]] = []
        offset = 0
        for n_servers in shard_sizes:
            group_of.append(
                [(offset + i) // servers_per_group for i in range(n_servers)]
            )
            offset += n_servers
        return cls(group_of, sockets_per_server, pool_size_sockets)

    # -- views ---------------------------------------------------------------------
    def groups_of_shard(self, shard: int) -> Tuple[int, ...]:
        """Fleet group ids a shard's servers attach to (ascending)."""
        return self._groups_by_shard[shard]

    def local_group_ids(self, shard: int) -> Dict[int, int]:
        """fleet group id -> shard-local group id (ascending enumeration).

        For :meth:`per_shard` topologies this recovers exactly the local ids
        ``ClusterSimulator`` would have used, which is how the degenerate
        replay reports byte-identical per-shard ``pool_peak_gb`` dicts.
        """
        return {g: i for i, g in enumerate(self._groups_by_shard[shard])}

    @property
    def spanning_group_ids(self) -> Tuple[int, ...]:
        """Groups whose servers live in more than one shard."""
        return tuple(
            g for g in range(self.n_groups) if len(self.group_shards[g]) > 1
        )

    @property
    def is_per_shard(self) -> bool:
        """True when no group spans shards *and* domains follow shards.

        This is the degenerate regime whose results are byte-identical to the
        classic shardwise fleet path; anything else is fleet-owned.
        """
        return all(
            len(self.group_shards[g]) == 1
            and self.domain_of_group[g] == self.group_shards[g][0]
            for g in range(self.n_groups)
        )

    # -- provisioning --------------------------------------------------------------
    def provision_capacities(
        self, peaks: Dict[int, float], headroom: float,
    ) -> Tuple[Dict[int, float], float]:
        """Uniform per-domain pool capacities from observed group peaks.

        Every group of a domain is provisioned at ``headroom`` times the
        domain's worst per-group peak (pool blades are bought uniformly
        within a domain).  Returns ``(capacity per group, total provisioned
        GB)``; the total is accumulated domain by domain as ``capacity *
        n_groups`` -- the same float arithmetic the classic per-shard search
        uses, so degenerate topologies provision byte-identically.
        """
        caps: Dict[int, float] = {}
        required_total = 0.0
        for _domain, groups in self.groups_by_domain.items():
            cap = headroom * max(peaks.get(g, 0.0) for g in groups)
            for group in groups:
                caps[group] = cap
            required_total += cap * len(groups)
        return caps, required_total

    def uniform_pool_requirement_gb(self, peaks: Dict[int, float]) -> float:
        """Fleet-owned uniform pool provisioning from observed group peaks.

        The per-server normalised analogue of
        :func:`repro.cluster.pool.uniform_pool_requirement_gb`: blades are
        deployed with one capacity per attached server fleet-wide, so the
        requirement is the worst per-server group demand times the fleet
        server count.  Used for the savings of spanning topologies, where no
        single shard owns a group.
        """
        if not peaks:
            return 0.0
        worst_per_server = 0.0
        for group, peak in peaks.items():
            size = self.group_server_count[group]
            if size <= 0:
                continue
            worst_per_server = max(worst_per_server, peak / size)
        return worst_per_server * self.total_servers


class PoolGroupLedger:
    """Fleet-owned pool-group accounting shared by every shard's engine.

    The three dicts are handed to each :class:`ArrayPlacementEngine` (which
    mutates them in place), so a draw in one shard is immediately visible to
    every other shard sharing the group -- capacity feasibility, usage
    samples, and peaks are all fleet-level facts.
    """

    def __init__(self, capacities: Dict[int, float]) -> None:
        self.capacity_gb: Dict[int, float] = dict(capacities)
        self.free_gb: Dict[int, float] = dict(capacities)
        self.used_gb: Dict[int, float] = {g: 0.0 for g in capacities}
        self.peak_gb: Dict[int, float] = {g: 0.0 for g in capacities}
        #: group -> healthy capacity while degraded (fault injection);
        #: absent means the group is healthy.  See DESIGN.md section 11.
        self._healthy_capacity_gb: Dict[int, float] = {}

    # -- fault degradation (EMC failures; see repro.cluster.faults) ---------------
    @property
    def degraded_groups(self) -> Tuple[int, ...]:
        """Groups currently running at degraded capacity (insertion order)."""
        return tuple(self._healthy_capacity_gb)

    def is_degraded(self, group: int) -> bool:
        return group in self._healthy_capacity_gb

    def degrade(self, group: int, loss_fraction: float) -> float:
        """Cut ``group`` to ``(1 - loss_fraction)`` of its *healthy* capacity.

        Repeated fails re-derive from the healthy capacity (losses do not
        compound -- a fail event states how much of the EMC is gone, not a
        delta).  A total loss (``loss_fraction >= 1``) zeroes the group even
        when its healthy capacity is infinite; a partial loss of an
        infinite group is a no-op (``inf * fraction`` is still ``inf``).

        While degraded, ``free_gb`` is pinned to ``max(0, capacity - used)``
        so the feasibility checks in placement see the surviving capacity;
        returns the **deficit** (``max(0, used - capacity)``): demand the
        failure strands until it is evacuated, killed, or repaired.
        """
        if group not in self.capacity_gb:
            raise KeyError(f"unknown pool group {group}")
        if not 0.0 < loss_fraction <= 1.0:
            raise ValueError("loss_fraction must be in (0, 1]")
        healthy = self._healthy_capacity_gb.setdefault(
            group, self.capacity_gb[group])
        if loss_fraction >= 1.0:
            capacity = 0.0
        else:
            capacity = healthy * (1.0 - loss_fraction)
        self.capacity_gb[group] = capacity
        used = self.used_gb[group]
        free = capacity - used
        self.free_gb[group] = free if free > 0.0 else 0.0
        deficit = used - capacity
        return deficit if deficit > 0.0 else 0.0

    def repair(self, group: int) -> None:
        """Restore a degraded group to its healthy capacity.

        ``free_gb`` becomes ``max(0, healthy - used)`` -- live draws made
        while degraded stay accounted.  Repairing a healthy group is a
        no-op.
        """
        healthy = self._healthy_capacity_gb.pop(group, None)
        if healthy is None:
            return
        self.capacity_gb[group] = healthy
        used = self.used_gb[group]
        free = healthy - used
        self.free_gb[group] = free if free > 0.0 else 0.0

    def resync(self, group: int) -> None:
        """Re-pin a *degraded* group's ``free_gb`` to ``capacity - used``.

        The placement engines return released pool memory with an
        unmediated ``free += gb``; on a degraded group that can overshoot
        the surviving capacity.  The fault injector calls this after any
        release it observes.  Healthy groups are left alone -- their free
        counter is the engines' incremental truth.
        """
        if group not in self._healthy_capacity_gb:
            return
        free = self.capacity_gb[group] - self.used_gb[group]
        self.free_gb[group] = free if free > 0.0 else 0.0

    @classmethod
    def for_topology(
        cls, topology: PoolTopology,
        capacity: Union[float, Dict[int, float]],
    ) -> "PoolGroupLedger":
        """Ledger over a topology's groups: one shared capacity, or per group."""
        if isinstance(capacity, dict):
            missing = [g for g in range(topology.n_groups) if g not in capacity]
            if missing:
                raise ValueError(f"capacity missing for groups {missing[:8]}")
            caps = {g: capacity[g] for g in range(topology.n_groups)}
        else:
            caps = {g: capacity for g in range(topology.n_groups)}
        return cls(caps)


def _shard_arrival_events(
    shard: int,
    trace: TraceInput,
    policy,
    use_pool: bool,
    with_slowdowns: bool = False,
) -> Iterator[Tuple[float, float, int, float, str, float]]:
    """One shard's ``(arrival, departure, cores, memory, vm_id, pool_gb)``
    stream, in arrival order, with pool allocations resolved exactly like
    the single-cluster replay (shared :func:`iter_policy_blocks`).

    With ``with_slowdowns`` (the online replay's mitigation path) each
    tuple carries a seventh element: the VM's estimated slowdown percent
    from :func:`estimate_slowdown_batch` under ``policy``, computed per
    block exactly like the single-cluster online loop."""
    streaming = not isinstance(trace, ClusterTrace)
    last_arrival = 0.0
    for block, records, allocations in iter_policy_blocks(
        trace, policy, None, use_pool
    ):
        vm_ids, arrivals, departs, cores_col, memory_col = (
            block_replay_columns(block, records)
        )
        n_block = len(vm_ids)
        if streaming and n_block:
            prev = last_arrival
            for index in range(n_block):
                arrival = arrivals[index]
                if arrival < prev:
                    raise ValueError(
                        f"stream records must be sorted by arrival time "
                        f"({vm_ids[index]!r} arrives at {arrival} after "
                        f"{prev})"
                    )
                prev = arrival
            last_arrival = prev
        if allocations is None:
            if policy is not None and use_pool:
                allocations = [
                    float(np.clip(policy(r), 0.0, r.memory_gb)) for r in records
                ]
            else:
                allocations = [0.0] * n_block
        if with_slowdowns and n_block:
            slowdowns = estimate_slowdown_batch(
                policy, block,
                np.asarray(allocations, dtype=np.float64),
            ).tolist()
            yield from zip(arrivals, departs, cores_col, memory_col, vm_ids,
                           allocations, slowdowns)
        else:
            yield from zip(arrivals, departs, cores_col, memory_col, vm_ids,
                           allocations)


#: Event kinds in the merged heap; at equal timestamps departures fire first,
#: then fault events, then grid samples, then horizon samples, then (outside
#: the heap) arrivals -- the single-cluster simulator's ordering, per shard
#: (DESIGN.md sections 10 and 11).
_KIND_DEPARTURE = 0
_KIND_FAULT = 1
_KIND_SAMPLE = 2
_KIND_HORIZON = 3
_KIND_ARRIVAL = 4  # sentinel used only in pump limits; arrivals are not heaped


def replay_crossshard(
    inputs: Sequence[TraceInput],
    policies: Sequence[object],
    n_servers_per_shard: Sequence[int],
    server_configs: Sequence[ServerConfig],
    topology: PoolTopology,
    capacity: Union[float, Dict[int, float]],
    constrain_memory: bool,
    sample_interval_s: float,
    record_placements: bool = False,
    online: Optional[OnlineControlConfig] = None,
    faults: Optional[FaultSchedule] = None,
) -> Tuple[List[SimulationResult], PoolGroupLedger]:
    """Replay a fleet as one merged event stream over a shared group ledger.

    Each shard keeps its own placement engine, sample grid, and result (a
    shard is still one scheduling domain: VMs never migrate across shards);
    only the pool groups are fleet-owned.  Returns one
    :class:`SimulationResult` per shard plus the ledger, whose ``peak_gb``
    holds the fleet-level per-group peaks.

    For a :meth:`PoolTopology.per_shard` topology the per-shard results are
    byte-identical to running each shard through ``ClusterSimulator`` on its
    own (same floats, same sample rows, same peaks): disjoint shards never
    read each other's state, and per shard the event order and arithmetic
    match the single-cluster loop operation for operation.  Shard results of
    spanning topologies report ``pool_peak_gb = {}`` -- a spanned group's
    peak belongs to the fleet, not to any one shard (read it off the
    returned ledger).

    Materialised traces whose departures all fall strictly after their
    arrivals (and whose VMs all request at least one core), replayed on a
    fleet of shards sharing one server SKU, run on the **inlined** merged
    loop (:func:`_replay_crossshard_inlined`): the event heap is replaced by
    a precomputed global event order and the per-event engine method calls
    by the hoisted-local hot loop of ``ClusterSimulator._run_array`` (the
    loop hoists the SKU shape into scalars, hence the uniformity
    requirement).  Anything else -- streams, hand-built column blocks,
    degenerate lifetimes, zero-core VMs or mixed-SKU fleets -- keeps the
    engine-method event loop (:func:`_replay_crossshard_events`), which also
    serves as the differential reference pinning the inlined loop's
    byte-identical results.

    ``online`` activates the online QoS/mitigation stage (DESIGN.md section
    10): after each shard's grid sample a QoS tick migrates that shard's
    at-risk pool-exposed VMs to local DRAM, updating the shared ledger.
    Online replays always run on the engine-method event loop -- mitigation
    mutates per-VM state mid-replay, which the precomputed-order inlined
    loop cannot express -- and attach a per-shard
    :class:`~repro.core.control_plane.online.OnlineControlStats` to each
    result.  With mitigation disabled the per-shard results are
    byte-identical to the static replay (differential-tested).

    ``faults`` activates deterministic EMC fault injection (DESIGN.md
    section 11): :class:`~repro.cluster.faults.FaultSchedule` events (fleet
    group ids) merge into the event heap -- after departures, before grid
    samples at equal timestamps -- degrading the shared ledger and running
    the degradation ladder over affected VMs; per-shard evacuation-retry
    ticks fire after each shard's QoS tick (or directly after its grid
    sample when ``online`` is off).  Like online replays, faulted replays
    always run on the engine-method event loop; with an empty schedule the
    per-shard results stay byte-identical to the static replay
    (differential-tested).  Impact accounting lands on each result's
    ``fault_stats`` (group-level counters on the group's home shard).
    """
    _validate_crossshard_args(
        inputs, policies, n_servers_per_shard, server_configs, topology)
    if online is not None or faults is not None:
        return _replay_crossshard_events(
            inputs, policies, n_servers_per_shard, server_configs, topology,
            capacity, constrain_memory, sample_interval_s, record_placements,
            online=online, faults=faults)
    uniform_sku = len({
        (cfg.sockets, cfg.cores_per_socket, cfg.dram_per_socket_gb)
        for cfg in server_configs
    }) <= 1
    for trace in inputs:
        if not uniform_sku or not isinstance(trace, ClusterTrace):
            break
        columns = trace.columns()
        arrivals = columns.arrival_s
        if arrivals is None:
            break
        if arrivals.shape[0] and not (
            bool((columns.departure_s > arrivals).all())
            and int(columns.cores.min()) >= 1
        ):
            break
    else:
        return _replay_crossshard_inlined(
            inputs, policies, n_servers_per_shard, server_configs, topology,
            capacity, constrain_memory, sample_interval_s, record_placements)
    return _replay_crossshard_events(
        inputs, policies, n_servers_per_shard, server_configs, topology,
        capacity, constrain_memory, sample_interval_s, record_placements)


def _validate_crossshard_args(inputs, policies, n_servers_per_shard,
                              server_configs, topology) -> None:
    """Shared shape validation for both cross-shard replay loops."""
    n_shards = len(inputs)
    if not (len(policies) == len(n_servers_per_shard) == len(server_configs)
            == n_shards == topology.n_shards):
        raise ValueError("inputs/policies/configs/topology shard counts differ")
    for shard in range(n_shards):
        if n_servers_per_shard[shard] != topology.shard_sizes[shard]:
            raise ValueError(
                f"topology maps {topology.shard_sizes[shard]} servers for "
                f"shard {shard}, fleet has {n_servers_per_shard[shard]}"
            )


def _crossshard_setup(n_servers_per_shard, server_configs, topology, capacity,
                      constrain_memory):
    """Ledger, per-shard engines/results, and derived per-shard views."""
    n_shards = topology.n_shards
    ledger = PoolGroupLedger.for_topology(topology, capacity)
    engines: List[ArrayPlacementEngine] = []
    results: List[SimulationResult] = []
    for shard in range(n_shards):
        engines.append(ArrayPlacementEngine(
            n_servers_per_shard[shard],
            effective_server_config(server_configs[shard], constrain_memory),
            group_of=list(topology.group_of[shard]),
            pool_free_gb=ledger.free_gb,
            pool_used_gb=ledger.used_gb,
            pool_peak_gb=ledger.peak_gb,
        ))
        results.append(SimulationResult())
    shard_groups = [topology.groups_of_shard(s) for s in range(n_shards)]
    total_cores = [e.total_cores for e in engines]
    total_dram = [
        n_servers_per_shard[s] * server_configs[s].total_dram_gb
        for s in range(n_shards)
    ]
    return ledger, engines, results, shard_groups, total_cores, total_dram


def _replay_crossshard_events(
    inputs: Sequence[TraceInput],
    policies: Sequence[object],
    n_servers_per_shard: Sequence[int],
    server_configs: Sequence[ServerConfig],
    topology: PoolTopology,
    capacity: Union[float, Dict[int, float]],
    constrain_memory: bool,
    sample_interval_s: float,
    record_placements: bool = False,
    online: Optional[OnlineControlConfig] = None,
    faults: Optional[FaultSchedule] = None,
) -> Tuple[List[SimulationResult], PoolGroupLedger]:
    """The engine-method cross-shard event loop (differential reference).

    Events live in an explicit heap and every placement/removal goes through
    :class:`ArrayPlacementEngine` methods.  This is the loop the inlined
    fast path (:func:`_replay_crossshard_inlined`) is differentially pinned
    against; it also handles inputs the fast path cannot (streams,
    hand-built blocks, degenerate lifetimes, zero-core VMs) and carries the
    online QoS/mitigation stage (``online=...``): per-shard QoS ticks fire
    after that shard's grid samples, exactly like the single-cluster online
    loop (:meth:`ClusterSimulator._run_array_online`).
    """
    n_shards = len(inputs)
    if not (len(policies) == len(n_servers_per_shard) == len(server_configs)
            == n_shards == topology.n_shards):
        raise ValueError("inputs/policies/configs/topology shard counts differ")
    for shard in range(n_shards):
        if n_servers_per_shard[shard] != topology.shard_sizes[shard]:
            raise ValueError(
                f"topology maps {topology.shard_sizes[shard]} servers for "
                f"shard {shard}, fleet has {n_servers_per_shard[shard]}"
            )

    ledger = PoolGroupLedger.for_topology(topology, capacity)
    engines: List[ArrayPlacementEngine] = []
    results: List[SimulationResult] = []
    for shard in range(n_shards):
        engines.append(ArrayPlacementEngine(
            n_servers_per_shard[shard],
            effective_server_config(server_configs[shard], constrain_memory),
            group_of=list(topology.group_of[shard]),
            pool_free_gb=ledger.free_gb,
            pool_used_gb=ledger.used_gb,
            pool_peak_gb=ledger.peak_gb,
        ))
        results.append(SimulationResult())

    shard_groups = [topology.groups_of_shard(s) for s in range(n_shards)]
    total_cores = [e.total_cores for e in engines]
    total_dram = [
        n_servers_per_shard[s] * server_configs[s].total_dram_gb
        for s in range(n_shards)
    ]
    last_sample: List[Optional[float]] = [None] * n_shards
    done = [False] * n_shards
    placed = [0] * n_shards
    rejected = [0] * n_shards
    total_memory = [0.0] * n_shards
    total_pool = [0.0] * n_shards
    placed_ids: List[List[str]] = [[] for _ in range(n_shards)]
    placed_srv: List[List[int]] = [[] for _ in range(n_shards)]

    # -- online QoS/mitigation state (one at-risk set + stats per shard) ----
    mitigate = online is not None and online.mitigation_enabled
    threshold = online.qos_threshold_percent if online is not None else 0.0
    cost_per_gb = online.migration_cost_s_per_gb if online is not None else 0.0
    stats_list: List[Optional[OnlineControlStats]] = [None] * n_shards
    if online is not None:
        for shard in range(n_shards):
            stats_list[shard] = OnlineControlStats()
            results[shard].online_stats = stats_list[shard]
    at_risk: List[Dict[int, str]] = [{} for _ in range(n_shards)]

    # -- fault injection (shared ledger degradation; DESIGN.md section 11) --
    if faults is not None:
        fstats = [FaultImpactStats() for _ in range(n_shards)]
        for shard in range(n_shards):
            results[shard].fault_stats = fstats[shard]
        injector = FaultInjector(
            faults, ledger, engines, at_risk, fstats,
            group_shards={g: topology.group_shards[g]
                          for g in range(topology.n_groups)},
            done=done,
        )
    else:
        injector = None

    def qos_tick(shard: int) -> None:
        stats = stats_list[shard]
        stats.n_ticks += 1
        flagged = at_risk[shard]
        if not flagged:
            return
        stats.n_checks += len(flagged)
        eng = engines[shard]
        for handle in list(flagged):
            moved = eng.migrate_pool_to_local(handle)
            if moved < 0.0:
                # No node headroom right now; retried next tick.
                stats.n_failed_mitigations += 1
                continue
            stats.n_mitigations += 1
            stats.migrated_gb += moved
            stats.migration_time_s += cost_per_gb * moved
            stats.mitigated_vm_ids.append(flagged.pop(handle))
        if injector is not None:
            # Engine releases credit the ledger's free pool unconditionally;
            # re-clamp any degraded group to its surviving capacity.
            injector.resync_degraded()

    def take_sample(shard: int, time_s: float) -> None:
        eng = engines[shard]
        stranded = eng.stranded_gb
        if stranded < 0.0:
            stranded = 0.0
        used_pool = 0.0
        for group in shard_groups[shard]:
            used_pool += ledger.used_gb[group]
        results[shard].sample_buffer.append_row((
            time_s,
            eng.used_cores / total_cores[shard],
            100.0 * eng.used_cores / total_cores[shard],
            eng.used_local_gb,
            used_pool,
            stranded,
            100.0 * stranded / total_dram[shard],
            eng.running_vms,
        ))
        last_sample[shard] = time_s

    # -- merged event heap: departures, faults, sample grids, horizons ------
    # Entries: (time, _KIND_DEPARTURE, seq, shard, handle-or-token)
    #          (time, _KIND_FAULT, event_index)
    #          (time, _KIND_SAMPLE, shard)
    #          (time, _KIND_HORIZON, shard)
    # The (time, kind, tie) prefix is unique, so heap order is total and
    # deterministic (seq is global, preserving per-shard placement order;
    # fault events at one timestamp fire in schedule order).
    events: list = [(0.0, _KIND_SAMPLE, shard) for shard in range(n_shards)]
    if faults is not None:
        for index, fault_event in enumerate(faults.events):
            events.append((fault_event.time_s, _KIND_FAULT, index))
    heapq.heapify(events)
    heappush = heapq.heappush
    heappop = heapq.heappop

    def pump(limit) -> None:
        """Apply every heaped event ordered before ``limit``."""
        while events and events[0] < limit:
            event = heappop(events)
            kind = event[1]
            if kind == _KIND_DEPARTURE:
                if injector is not None:
                    # Token-indirected (kills void the mapping, live
                    # migrations rewrite it; degraded groups re-clamped).
                    injector.on_departure(event[4])
                    continue
                shard = event[3]
                # Departed VMs leave the at-risk set before the handle is
                # recycled, or a later placement reusing the handle would
                # inherit the stale flag.
                at_risk[shard].pop(event[4], None)
                engines[shard].remove(event[4])
            elif kind == _KIND_FAULT:
                # Heap order matches schedule order, so the cursor fires
                # exactly this event; groups whose shards are all past
                # their horizons are skipped inside (per-shard parity with
                # the single-cluster replay's bounded fault stream).
                injector.fire_next()
            elif kind == _KIND_SAMPLE:
                shard = event[2]
                if done[shard]:
                    continue  # past this shard's horizon; grid ends here
                take_sample(shard, event[0])
                heappush(events, (event[0] + sample_interval_s,
                                  _KIND_SAMPLE, shard))
                if mitigate:
                    # QoS tick after the grid sample: samples always show
                    # the pre-mitigation state (DESIGN.md section 10).
                    qos_tick(shard)
                if injector is not None:
                    # Evacuation-retry tick after the QoS tick, scoped to
                    # this shard's pending VMs (DESIGN.md section 11).
                    injector.retry_tick(shard)
            else:  # _KIND_HORIZON
                shard = event[2]
                end_time = event[0]
                if last_sample[shard] is None or last_sample[shard] <= end_time:
                    if last_sample[shard] == end_time:
                        results[shard].sample_buffer.drop_last()
                    take_sample(shard, end_time)
                done[shard] = True

    # -- k-way arrival merge (ties broken by shard index) -------------------
    arrival_iters = [
        _shard_arrival_events(shard, inputs[shard], policies[shard], True,
                              with_slowdowns=mitigate)
        for shard in range(n_shards)
    ]
    shard_end = [0.0] * n_shards
    merge_heap: list = []
    for shard, it in enumerate(arrival_iters):
        first = next(it, None)
        if first is None:
            # Empty shard trace: its horizon is time 0.0, like the
            # single-cluster replay of an empty trace.
            heappush(events, (0.0, _KIND_HORIZON, shard))
        else:
            merge_heap.append((first[0], shard, first))
    heapq.heapify(merge_heap)

    seq = 0
    while merge_heap:
        arrival_s, shard, record = heappop(merge_heap)
        pump((arrival_s, _KIND_ARRIVAL))
        _, departure_s, cores_r, memory_gb, vm_id, vm_pool_gb = record[:6]
        local_gb = memory_gb - vm_pool_gb
        eng = engines[shard]
        try:
            handle = eng.place(cores_r, local_gb, vm_pool_gb)
        except PlacementError:
            # Group-less pool request corner: counted as a rejection, peaks
            # keep the transient placement (object-path parity).
            handle = -1
        if handle < 0:
            rejected[shard] += 1
        else:
            placed[shard] += 1
            if record_placements:
                placed_ids[shard].append(vm_id)
                placed_srv[shard].append(eng.vm_server[handle])
            total_memory[shard] += memory_gb
            total_pool[shard] += vm_pool_gb
            seq += 1
            if injector is not None:
                # Token indirection: kills and live migrations change or
                # void the handle before the departure fires.
                token = injector.note_place(shard, handle, vm_id, vm_pool_gb)
                heappush(events,
                         (departure_s, _KIND_DEPARTURE, seq, shard, token))
            else:
                heappush(events,
                         (departure_s, _KIND_DEPARTURE, seq, shard, handle))
            if mitigate and vm_pool_gb > 0.0 and record[6] > threshold:
                at_risk[shard][handle] = vm_id
        shard_end[shard] = arrival_s
        nxt = next(arrival_iters[shard], None)
        if nxt is None:
            # Shard exhausted: its horizon is its last arrival time.  The
            # horizon fires after every departure and grid sample <= it.
            heappush(events, (arrival_s, _KIND_HORIZON, shard))
        else:
            heappush(merge_heap, (nxt[0], shard, nxt))

    # Drain: remaining departures in time order, each shard's grid samples up
    # to its own horizon, then the horizon samples themselves; grid events
    # past a fired horizon are discarded by ``pump``.
    pump((float("inf"),))
    if injector is not None:
        injector.finalize()

    for shard in range(n_shards):
        res = results[shard]
        eng = engines[shard]
        res.placed_vms = placed[shard]
        res.rejected_vms = rejected[shard]
        res.total_memory_gb_allocated = total_memory[shard]
        res.total_pool_gb_allocated = total_pool[shard]
        res.server_peak_local_gb, res.server_peak_total_gb = eng.server_peaks()
        if topology.is_per_shard:
            local = topology.local_group_ids(shard)
            res.pool_peak_gb = {
                local[g]: ledger.peak_gb[g] for g in shard_groups[shard]
            }
        else:
            res.pool_peak_gb = {}
        if record_placements:
            res._placed_vm_ids = placed_ids[shard]
            res._placed_server_idx = placed_srv[shard]
            res._placement_server_ids = eng.server_ids
    return results, ledger




def _replay_crossshard_inlined(
    inputs: Sequence[TraceInput],
    policies: Sequence[object],
    n_servers_per_shard: Sequence[int],
    server_configs: Sequence[ServerConfig],
    topology: PoolTopology,
    capacity: Union[float, Dict[int, float]],
    constrain_memory: bool,
    sample_interval_s: float,
    record_placements: bool = False,
) -> Tuple[List[SimulationResult], PoolGroupLedger]:
    """The inlined cross-shard merged loop (heap-free, flat fleet state).

    Replaces :func:`_replay_crossshard_events`' event heap and per-event
    engine method calls with structures computed once up front, exploiting
    what a materialised uniform-SKU fleet already knows:

    * **arrival merge**: a stable ``np.lexsort`` over ``(arrival, shard)``
      reproduces the k-way merge heap's order exactly (the heap holds one
      entry per shard at a time, so ties resolve by shard, then by per-shard
      stream order);
    * **departures**: a stable argsort of the merged-order departure column
      is the heap's ``(time, seq)`` order -- the global placement sequence
      *is* the merged arrival position.  A placement stores its payload at
      its merged position; the drain walks the precomputed order through a
      pointer, batched by one ``bisect_right`` per pump bound.  A payload
      still ``None`` at drain time is a rejected VM (the dispatcher
      guarantees ``departure > arrival``, so "not yet arrived" is
      impossible);
    * **flat fleet state**: every shard engine's per-server and per-NUMA-node
      lists are concatenated into fleet-wide locals (a shard's server ``i``
      becomes fleet index ``offset + i``), so the hot loop reads plain
      locals instead of unpacking a per-shard state tuple per event.  The
      dispatcher only routes uniform-SKU fleets here, so the server shape
      (sockets, per-socket cores/DRAM, bucket count) hoists into scalars and
      a fleet server's first NUMA-node slot is just ``index * sockets``.
      Bucket entries carry fleet server ids during the run (a constant
      offset preserves within-shard order, so walk order is unchanged) and
      are translated back at the end;
    * **grid samples and horizons**: every shard's grid is the same
      ``k * sample_interval_s`` sequence, so one shared clock plus per-shard
      alive flags replaces per-shard heap entries (shards fire in shard
      order at each tick, exactly the heap's tie-break); horizons activate
      when their shard's last arrival is processed, matching the heap push,
      and wait in a tiny heap of their own whose min is cached in a local;
    * the per-event arithmetic is statement-for-statement
      :meth:`ArrayPlacementEngine.place` / ``remove``, with the same
      full-server elision and GC pause as
      ``ClusterSimulator._run_array_presorted`` (``buckets[0]`` is rebuilt
      canonically per shard at the end).  Departures of VMs that drew no
      pool memory skip the pool ledger block entirely: every write in it is
      a float no-op for ``pool_gb == 0`` (``x - 0.0 == x``; the quantities
      involved are never ``-0.0``), so results are unchanged.

    Byte-identical to the events loop by construction and pinned by the
    differential suite in ``tests/test_pool_topology.py``.
    """
    n_shards = len(inputs)
    ledger, engines, results, shard_groups, total_cores, total_dram = (
        _crossshard_setup(n_servers_per_shard, server_configs, topology,
                          capacity, constrain_memory)
    )
    # Group ids are contiguous 0..n_groups-1, so the shared ledger dicts
    # flatten into plain lists for the hot loop (a list subscript is ~2-3x
    # cheaper than a dict lookup); the ledger dicts -- shared with the shard
    # engines, which this loop never calls -- are refreshed at the end.
    n_groups = topology.n_groups
    pool_free = [ledger.free_gb[g] for g in range(n_groups)]
    pool_used = [ledger.used_gb[g] for g in range(n_groups)]
    pool_peak = [ledger.peak_gb[g] for g in range(n_groups)]

    # -- uniform server shape, hoisted into scalars --------------------------
    e0 = engines[0]
    sockets = e0.sockets
    cores_ps = e0.cores_per_socket
    dram_ps = e0.dram_per_socket_gb
    stc = e0.server_total_cores
    std = e0.server_total_dram_gb
    two_sockets = sockets == 2

    # -- flat fleet state: per-shard engine lists concatenated ---------------
    # (engines are freshly built, so this is a copy of all-zero state plus
    # the initial full-free bucket, re-keyed to fleet server indices)
    node_cores: List[int] = []
    node_gb: List[float] = []
    used_cores_srv: List[int] = []
    used_gb_srv: List[float] = []
    pool_used_srv: List[float] = []
    peak_local: List[float] = []
    peak_pool: List[float] = []
    group_of: List[int] = []
    srv_off: List[int] = []
    buckets_l: List[List[List[Tuple[float, int]]]] = []
    for eng in engines:
        off = len(used_cores_srv)
        srv_off.append(off)
        node_cores.extend(eng.node_used_cores)
        node_gb.extend(eng.node_used_gb)
        used_cores_srv.extend(eng.used_cores_srv)
        used_gb_srv.extend(eng.used_gb_srv)
        pool_used_srv.extend(eng.pool_used_srv)
        peak_local.extend(eng.peak_local_gb)
        peak_pool.extend(eng.peak_pool_gb)
        group_of.extend(eng.group_of)
        buckets_l.append([
            [(key_gb, idx + off) for key_gb, idx in bucket]
            for bucket in eng._buckets
        ])
    n_buckets = len(buckets_l[0])

    append_rows = [r.sample_buffer.append_row for r in results]
    agg_cores = [0] * n_shards
    agg_gb = [0.0] * n_shards
    agg_stranded = [0.0] * n_shards
    agg_running = [0] * n_shards
    placed = [0] * n_shards
    rejected = [0] * n_shards
    total_memory = [0.0] * n_shards
    total_pool = [0.0] * n_shards
    placed_ids: List[List[str]] = [[] for _ in range(n_shards)]
    placed_srv: List[List[int]] = [[] for _ in range(n_shards)]

    # -- merged arrival order and global presorted departures ----------------
    arr_parts = []
    dep_parts = []
    cores_parts = []
    mem_parts = []
    alloc_parts = []
    shard_parts = []
    pos_parts = []
    vm_ids_by_shard: List[Sequence[str]] = []
    horizons = [0.0] * n_shards
    remaining = [0] * n_shards
    for shard in range(n_shards):
        trace = inputs[shard]
        block, records, allocations = next(iter(iter_policy_blocks(
            trace, policies[shard], None, True)))
        columns = trace.columns()
        n_s = columns.arrival_s.shape[0]
        if allocations is None:
            pol = policies[shard]
            if pol is not None:
                # min/max matches np.clip bit-for-bit for finite values
                # (block_replay_columns' clamp), without the ufunc dispatch.
                allocations = [
                    float(min(max(pol(r), 0.0), r.memory_gb)) for r in records
                ]
            else:
                allocations = [0.0] * n_s
        arr_parts.append(columns.arrival_s)
        dep_parts.append(columns.departure_s)
        cores_parts.append(columns.cores)
        mem_parts.append(columns.memory_gb)
        alloc_parts.append(np.asarray(allocations, dtype=np.float64))
        shard_parts.append(np.full(n_s, shard, dtype=np.int64))
        pos_parts.append(np.arange(n_s, dtype=np.int64))
        vm_ids_by_shard.append(columns.vm_ids)
        horizons[shard] = float(columns.arrival_s[n_s - 1]) if n_s else 0.0
        remaining[shard] = n_s

    arrival_all = np.concatenate(arr_parts)
    shard_all = np.concatenate(shard_parts)
    # Stable sort by (arrival, shard): the merge heap holds one entry per
    # shard, so equal arrivals tie-break by shard and, within a shard, by
    # stream order -- which lexsort's stability preserves.
    order = np.lexsort((shard_all, arrival_all))
    m_arr = arrival_all[order].tolist()
    m_shard = shard_all[order].tolist()
    m_cores = np.concatenate(cores_parts)[order].tolist()
    m_mem = np.concatenate(mem_parts)[order].tolist()
    m_alloc = np.concatenate(alloc_parts)[order].tolist()
    m_pos = np.concatenate(pos_parts)[order].tolist() if record_placements else None
    dep_merged = np.concatenate(dep_parts)[order]
    # Ties in departure time resolve by merged position == global placement
    # sequence (rejected VMs leave a None payload and simply drain as
    # no-ops), exactly the events loop's (time, seq) heap prefix.
    dep_sort = np.argsort(dep_merged, kind="stable")
    dep_order = dep_sort.tolist()
    dep_times = dep_merged[dep_sort].tolist()
    n_total = len(m_arr)
    #: Reused walk ranges (one allocation per distinct core count, not
    #: one per placement); indices past the last bucket walk nothing.
    max_cr = int(max(m_cores)) if n_total else 0
    walk_ranges = [
        range(c, n_buckets) for c in range(max(n_buckets, max_cr + 1))
    ]
    payload: List[Optional[Tuple[int, int, int, int, float, float]]] = (
        [None] * n_total
    )

    bisect = bisect_left
    bisect_r = bisect_right
    insort_ = insort
    heappush = heapq.heappush
    heappop = heapq.heappop
    inf = float("inf")

    n_dep = n_total
    p = 0
    next_dep = dep_times[0] if n_dep else inf
    next_sample_time = 0.0
    last_sample: List[Optional[float]] = [None] * n_shards
    alive = [True] * n_shards
    n_alive = n_shards
    #: Horizons become pending when their shard's arrivals are exhausted
    #: (matching the events loop's push-after-last-arrival).  ``t_h`` caches
    #: the heap min (the heap changes at most ``2 * n_shards`` times, so
    #: maintaining the cache is far cheaper than peeking every pump round).
    hor_heap: List[Tuple[float, int]] = []
    for shard in range(n_shards):
        if not remaining[shard]:
            heappush(hor_heap, (0.0, shard))
    t_h = hor_heap[0][0] if hor_heap else inf
    #: Cached next grid tick (``inf`` once every shard's horizon passed).
    t_s = 0.0
    # next_event folds the pump-entry test into one compare per arrival
    # (the grid starts at 0.0, so the first arrival always pumps).
    next_event = next_dep if next_dep <= next_sample_time else next_sample_time
    if t_h < next_event:
        next_event = t_h

    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        k = -1
        for s, arrival_s, cores_r, memory_gb, vm_pool_gb in zip(
            m_shard, m_arr, m_cores, m_mem, m_alloc
        ):
            k += 1
            # -- pump: all heaped-order events strictly before this arrival --
            if next_event <= arrival_s:
                nxt = t_s if t_s <= t_h else t_h
                if arrival_s < nxt:
                    # Fast path: only departures fire before this
                    # arrival (grid ticks and horizons are rare
                    # next to departure pumps), so skip the full
                    # pump round-trip machinery.
                    end = bisect_r(dep_times, arrival_s, p)
                    for m in dep_order[p:end]:
                        entry = payload[m]
                        if entry is None:
                            continue  # rejected VM: nothing placed
                        # -- departure (ArrayPlacementEngine.remove) -----
                        ds, sidx, pos, d_cores, d_local, d_pool = entry
                        if d_pool:
                            # place() rejects pool draws on group-less
                            # servers, so a pool-carrying payload always
                            # has a real group.
                            group = group_of[sidx]
                            remaining_gb = pool_used[group] - d_pool
                            if remaining_gb < 0.0:
                                # Clamp tiny negative float drift; real
                                # imbalances stay loud.
                                if remaining_gb < -1e-6:
                                    raise RuntimeError(
                                        f"pool group {group} accounting "
                                        f"went negative ({remaining_gb} "
                                        f"GB) -- simulator bug"
                                    )
                                remaining_gb = 0.0
                            pool_used[group] = remaining_gb
                            pool_free[group] += d_pool
                            pool_used_srv[sidx] -= d_pool
                        before_cores = used_cores_srv[sidx]
                        old_gb = used_gb_srv[sidx]
                        node_cores[pos] -= d_cores
                        node_gb[pos] -= d_local
                        new_cores = before_cores - d_cores
                        used_cores_srv[sidx] = new_cores
                        new_gb = old_gb - d_local
                        used_gb_srv[sidx] = new_gb
                        agg_cores[ds] -= d_cores
                        agg_gb[ds] -= d_local
                        buckets = buckets_l[ds]
                        if before_cores >= stc:
                            # stranded_after is exactly 0.0; full servers
                            # are unindexed (full-server elision).
                            agg_stranded[ds] += 0.0 - (std - old_gb)
                        else:
                            bucket = buckets[stc - before_cores]
                            del bucket[
                                bisect(bucket, (std - old_gb, sidx))
                            ]
                        insort_(
                            buckets[stc - new_cores], (std - new_gb, sidx)
                        )
                        agg_running[ds] -= 1
                    p = end
                    next_dep = dep_times[p] if p < n_dep else inf
                    next_event = next_dep if next_dep <= nxt else nxt
                else:
                    while True:
                        # Grid sample (kind 1) outranks horizon (kind 2) at ties.
                        fire_sample = t_s <= t_h
                        nxt_t = t_s if fire_sample else t_h
                        bound = nxt_t if nxt_t <= arrival_s else arrival_s
                        if next_dep <= bound:
                            end = bisect_r(dep_times, bound, p)
                            for m in dep_order[p:end]:
                                entry = payload[m]
                                if entry is None:
                                    continue  # rejected VM: nothing placed
                                # -- departure (ArrayPlacementEngine.remove) -----
                                ds, sidx, pos, d_cores, d_local, d_pool = entry
                                if d_pool:
                                    # place() rejects pool draws on group-less
                                    # servers, so a pool-carrying payload always
                                    # has a real group.
                                    group = group_of[sidx]
                                    remaining_gb = pool_used[group] - d_pool
                                    if remaining_gb < 0.0:
                                        # Clamp tiny negative float drift; real
                                        # imbalances stay loud.
                                        if remaining_gb < -1e-6:
                                            raise RuntimeError(
                                                f"pool group {group} accounting "
                                                f"went negative ({remaining_gb} "
                                                f"GB) -- simulator bug"
                                            )
                                        remaining_gb = 0.0
                                    pool_used[group] = remaining_gb
                                    pool_free[group] += d_pool
                                    pool_used_srv[sidx] -= d_pool
                                before_cores = used_cores_srv[sidx]
                                old_gb = used_gb_srv[sidx]
                                node_cores[pos] -= d_cores
                                node_gb[pos] -= d_local
                                new_cores = before_cores - d_cores
                                used_cores_srv[sidx] = new_cores
                                new_gb = old_gb - d_local
                                used_gb_srv[sidx] = new_gb
                                agg_cores[ds] -= d_cores
                                agg_gb[ds] -= d_local
                                buckets = buckets_l[ds]
                                if before_cores >= stc:
                                    # stranded_after is exactly 0.0; full servers
                                    # are unindexed (full-server elision).
                                    agg_stranded[ds] += 0.0 - (std - old_gb)
                                else:
                                    bucket = buckets[stc - before_cores]
                                    del bucket[
                                        bisect(bucket, (std - old_gb, sidx))
                                    ]
                                insort_(
                                    buckets[stc - new_cores], (std - new_gb, sidx)
                                )
                                agg_running[ds] -= 1
                            p = end
                            next_dep = dep_times[p] if p < n_dep else inf
                        if nxt_t > arrival_s:
                            break
                        if fire_sample:
                            # Grid tick: alive shards sample in shard order (the
                            # heap's tie-break for equal-time sample events).
                            for gs in range(n_shards):
                                if alive[gs]:
                                    stranded = agg_stranded[gs]
                                    if stranded < 0.0:
                                        stranded = 0.0
                                    used_pool_gb = 0.0
                                    for g in shard_groups[gs]:
                                        used_pool_gb += pool_used[g]
                                    append_rows[gs]((
                                        t_s,
                                        agg_cores[gs] / total_cores[gs],
                                        100.0 * agg_cores[gs] / total_cores[gs],
                                        agg_gb[gs],
                                        used_pool_gb,
                                        stranded,
                                        100.0 * stranded / total_dram[gs],
                                        agg_running[gs],
                                    ))
                                    last_sample[gs] = t_s
                            next_sample_time = t_s + sample_interval_s
                            t_s = next_sample_time
                        else:
                            h, hs = heappop(hor_heap)
                            t_h = hor_heap[0][0] if hor_heap else inf
                            ls = last_sample[hs]
                            if ls is None or ls <= h:
                                if ls == h:
                                    results[hs].sample_buffer.drop_last()
                                stranded = agg_stranded[hs]
                                if stranded < 0.0:
                                    stranded = 0.0
                                used_pool_gb = 0.0
                                for g in shard_groups[hs]:
                                    used_pool_gb += pool_used[g]
                                append_rows[hs]((
                                    h,
                                    agg_cores[hs] / total_cores[hs],
                                    100.0 * agg_cores[hs] / total_cores[hs],
                                    agg_gb[hs],
                                    used_pool_gb,
                                    stranded,
                                    100.0 * stranded / total_dram[hs],
                                    agg_running[hs],
                                ))
                                last_sample[hs] = h
                            alive[hs] = False
                            n_alive -= 1
                            if not n_alive:
                                t_s = inf
                    nxt = t_s if t_s <= t_h else t_h
                    next_event = next_dep if next_dep <= nxt else nxt

            buckets = buckets_l[s]
            local_gb = memory_gb - vm_pool_gb

            # -- best-fit bucket walk (ArrayPlacementEngine.place) -----------
            cores_limit = cores_ps - cores_r
            gb_limit = dram_ps - local_gb + 1e-9
            need_pool = vm_pool_gb > 0
            sidx = -1
            best_node = -1
            base = 0
            if two_sockets:
                for free in walk_ranges[cores_r]:
                    for _key_gb, idx in buckets[free]:
                        if need_pool:
                            group = group_of[idx]
                            avail = pool_free[group] if group >= 0 else 0.0
                            if vm_pool_gb > avail + 1e-9:
                                continue
                        base = idx + idx
                        used0 = node_cores[base]
                        used1 = node_cores[base + 1]
                        # Fullest feasible node; ties go to node 0
                        # (find_numa_node's strict ``>`` comparison).
                        if used1 > used0:
                            if (used1 <= cores_limit
                                    and node_gb[base + 1] <= gb_limit):
                                sidx = idx
                                best_node = 1
                                break
                            if (used0 <= cores_limit
                                    and node_gb[base] <= gb_limit):
                                sidx = idx
                                best_node = 0
                                break
                        else:
                            if (used0 <= cores_limit
                                    and node_gb[base] <= gb_limit):
                                sidx = idx
                                best_node = 0
                                break
                            if (used1 <= cores_limit
                                    and node_gb[base + 1] <= gb_limit):
                                sidx = idx
                                best_node = 1
                                break
                    if sidx >= 0:
                        break
            else:
                for free in walk_ranges[cores_r]:
                    for _key_gb, idx in buckets[free]:
                        if need_pool:
                            group = group_of[idx]
                            avail = pool_free[group] if group >= 0 else 0.0
                            if vm_pool_gb > avail + 1e-9:
                                continue
                        base = idx * sockets
                        cand_node = -1
                        cand_used = -1
                        for node in range(sockets):
                            used = node_cores[base + node]
                            if (used <= cores_limit and used > cand_used
                                    and node_gb[base + node] <= gb_limit):
                                cand_node = node
                                cand_used = used
                        if cand_node >= 0:
                            sidx = idx
                            best_node = cand_node
                            break
                    if sidx >= 0:
                        break
            if sidx < 0:
                rejected[s] += 1
            else:
                # -- commit (ArrayPlacementEngine.place, inlined) ------------
                pos = base + best_node
                node_cores[pos] += cores_r
                node_gb[pos] += local_gb
                before_cores = used_cores_srv[sidx]
                old_gb = used_gb_srv[sidx]
                new_cores = before_cores + cores_r
                used_cores_srv[sidx] = new_cores
                new_gb = old_gb + local_gb
                used_gb_srv[sidx] = new_gb
                if new_gb > peak_local[sidx]:
                    peak_local[sidx] = new_gb
                committed = True
                if need_pool:
                    pool_srv = pool_used_srv[sidx] + vm_pool_gb
                    pool_used_srv[sidx] = pool_srv
                    if pool_srv > peak_pool[sidx]:
                        peak_pool[sidx] = pool_srv
                    group = group_of[sidx]
                    if group < 0:
                        # Group-less pool request corner (unreachable for
                        # topology-built engines, where every server has a
                        # group; kept for exact parity with the events
                        # loop's PlacementError handling): roll usage back,
                        # peaks keep the transient placement.
                        node_cores[pos] -= cores_r
                        node_gb[pos] -= local_gb
                        used_cores_srv[sidx] = new_cores - cores_r
                        used_gb_srv[sidx] = new_gb - local_gb
                        pool_used_srv[sidx] = pool_srv - vm_pool_gb
                        rejected[s] += 1
                        committed = False
                    else:
                        pool_free[group] -= vm_pool_gb
                        g_used = pool_used[group] + vm_pool_gb
                        pool_used[group] = g_used
                        if g_used > pool_peak[group]:
                            pool_peak[group] = g_used
                if committed:
                    agg_cores[s] += cores_r
                    agg_gb[s] += local_gb
                    # Reindex with the full-server elision (buckets[0] is
                    # never read by the walk; rebuilt at the end).
                    bucket = buckets[stc - before_cores]
                    del bucket[bisect(bucket, (std - old_gb, sidx))]
                    if new_cores >= stc:
                        # stranded_before is exactly 0.0 (free core existed).
                        agg_stranded[s] += (std - new_gb) - 0.0
                    else:
                        insort_(buckets[stc - new_cores], (std - new_gb, sidx))
                    agg_running[s] += 1
                    placed[s] += 1
                    if record_placements:
                        placed_ids[s].append(vm_ids_by_shard[s][m_pos[k]])
                        placed_srv[s].append(sidx)
                    total_memory[s] += memory_gb
                    total_pool[s] += vm_pool_gb
                    # departure > arrival, so the presorted drain has not
                    # passed this position yet: storing the payload IS the
                    # push.
                    payload[k] = (s, sidx, pos, cores_r, local_gb, vm_pool_gb)

            remaining[s] -= 1
            if not remaining[s]:
                # Shard exhausted: its horizon (this arrival's time) becomes
                # pending, exactly like the events loop's push.
                h = horizons[s]
                heappush(hor_heap, (h, s))
                if h < t_h:
                    t_h = h
                if h < next_event:
                    next_event = h

        # -- drain: remaining grid samples, horizons, departures -------------
        while True:
            fire_sample = t_s <= t_h
            nxt_t = t_s if fire_sample else t_h
            if next_dep <= nxt_t:
                end = bisect_r(dep_times, nxt_t, p) if nxt_t != inf else n_dep
                for m in dep_order[p:end]:
                    entry = payload[m]
                    if entry is None:
                        continue
                    ds, sidx, pos, d_cores, d_local, d_pool = entry
                    if d_pool:
                        group = group_of[sidx]
                        remaining_gb = pool_used[group] - d_pool
                        if remaining_gb < 0.0:
                            if remaining_gb < -1e-6:
                                raise RuntimeError(
                                    f"pool group {group} accounting went "
                                    f"negative ({remaining_gb} GB) -- "
                                    f"simulator bug"
                                )
                            remaining_gb = 0.0
                        pool_used[group] = remaining_gb
                        pool_free[group] += d_pool
                        pool_used_srv[sidx] -= d_pool
                    before_cores = used_cores_srv[sidx]
                    old_gb = used_gb_srv[sidx]
                    node_cores[pos] -= d_cores
                    node_gb[pos] -= d_local
                    new_cores = before_cores - d_cores
                    used_cores_srv[sidx] = new_cores
                    new_gb = old_gb - d_local
                    used_gb_srv[sidx] = new_gb
                    agg_cores[ds] -= d_cores
                    agg_gb[ds] -= d_local
                    buckets = buckets_l[ds]
                    if before_cores >= stc:
                        agg_stranded[ds] += 0.0 - (std - old_gb)
                    else:
                        bucket = buckets[stc - before_cores]
                        del bucket[bisect(bucket, (std - old_gb, sidx))]
                    insort_(buckets[stc - new_cores], (std - new_gb, sidx))
                    agg_running[ds] -= 1
                p = end
                next_dep = dep_times[p] if p < n_dep else inf
            if nxt_t == inf:
                break
            if fire_sample:
                for gs in range(n_shards):
                    if alive[gs]:
                        stranded = agg_stranded[gs]
                        if stranded < 0.0:
                            stranded = 0.0
                        used_pool_gb = 0.0
                        for g in shard_groups[gs]:
                            used_pool_gb += pool_used[g]
                        append_rows[gs]((
                            t_s,
                            agg_cores[gs] / total_cores[gs],
                            100.0 * agg_cores[gs] / total_cores[gs],
                            agg_gb[gs],
                            used_pool_gb,
                            stranded,
                            100.0 * stranded / total_dram[gs],
                            agg_running[gs],
                        ))
                        last_sample[gs] = t_s
                next_sample_time = t_s + sample_interval_s
                t_s = next_sample_time
            else:
                h, hs = heappop(hor_heap)
                t_h = hor_heap[0][0] if hor_heap else inf
                ls = last_sample[hs]
                if ls is None or ls <= h:
                    if ls == h:
                        results[hs].sample_buffer.drop_last()
                    stranded = agg_stranded[hs]
                    if stranded < 0.0:
                        stranded = 0.0
                    used_pool_gb = 0.0
                    for g in shard_groups[hs]:
                        used_pool_gb += pool_used[g]
                    append_rows[hs]((
                        h,
                        agg_cores[hs] / total_cores[hs],
                        100.0 * agg_cores[hs] / total_cores[hs],
                        agg_gb[hs],
                        used_pool_gb,
                        stranded,
                        100.0 * stranded / total_dram[hs],
                        agg_running[hs],
                    ))
                    last_sample[hs] = h
                alive[hs] = False
                n_alive -= 1
                if not n_alive:
                    t_s = inf
    finally:
        if gc_was_enabled:
            gc.enable()

    # Refresh the shared ledger dicts (also referenced by the shard engines)
    # from the flattened group state before anything reads them back.
    for g in range(n_groups):
        ledger.free_gb[g] = pool_free[g]
        ledger.used_gb[g] = pool_used[g]
        ledger.peak_gb[g] = pool_peak[g]

    # -- hand the flat state back to the engines -----------------------------
    for shard in range(n_shards):
        res = results[shard]
        eng = engines[shard]
        off = srv_off[shard]
        n = eng.n_servers
        base0 = off * sockets
        n_nodes = n * sockets
        eng.node_used_cores[:] = node_cores[base0:base0 + n_nodes]
        eng.node_used_gb[:] = node_gb[base0:base0 + n_nodes]
        eng.used_cores_srv[:] = used_cores_srv[off:off + n]
        eng.used_gb_srv[:] = used_gb_srv[off:off + n]
        eng.pool_used_srv[:] = pool_used_srv[off:off + n]
        eng.peak_local_gb[:] = peak_local[off:off + n]
        eng.peak_pool_gb[:] = peak_pool[off:off + n]
        buckets = buckets_l[shard]
        # Rebuild the unmaintained full-server bucket (a full server's key
        # is its state at fill time, so sorting the recomputed keys is the
        # canonical index), then translate fleet ids back to shard-local.
        buckets[0] = sorted(
            (std - used_gb_srv[i], i)
            for i in range(off, off + n)
            if used_cores_srv[i] >= stc
        )
        eng._buckets = [
            [(key_gb, idx - off) for key_gb, idx in bucket]
            for bucket in buckets
        ]
        eng._bucket_key = [
            (stc - used_cores_srv[off + i], std - used_gb_srv[off + i])
            for i in range(n)
        ]
        eng.used_cores = agg_cores[shard]
        eng.used_local_gb = agg_gb[shard]
        eng.stranded_gb = agg_stranded[shard]
        eng.running_vms = agg_running[shard]
        res.placed_vms = placed[shard]
        res.rejected_vms = rejected[shard]
        res.total_memory_gb_allocated = total_memory[shard]
        res.total_pool_gb_allocated = total_pool[shard]
        res.server_peak_local_gb, res.server_peak_total_gb = eng.server_peaks()
        if topology.is_per_shard:
            local = topology.local_group_ids(shard)
            res.pool_peak_gb = {
                local[g]: ledger.peak_gb[g] for g in shard_groups[shard]
            }
        else:
            res.pool_peak_gb = {}
        if record_placements:
            res._placed_vm_ids = placed_ids[shard]
            res._placed_server_idx = [g - off for g in placed_srv[shard]]
            res._placement_server_ids = eng.server_ids
    return results, ledger

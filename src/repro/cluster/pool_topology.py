"""Fleet-level pool topologies: pool groups that may span cluster shards.

The paper's pool-scope sensitivity result (Figure 4) is that how many
sockets share one CXL pool drives both the achievable DRAM savings and the
blast radius of a pool failure, with 16-64-socket pools spanning multiple
chassis or racks.  The sharded fleet simulator models each shard as one
independent cluster, so out of the box "pools never span shards" -- the
rack-scale regime where one pool serves servers from *two* clusters could
not be replayed.  This module lifts pool-group ownership out of the
single-cluster simulator:

* :class:`PoolTopology` maps every ``(shard, server)`` of a fleet to a
  *fleet-level* pool group id.  :meth:`PoolTopology.per_shard` reproduces
  the classic intra-shard grouping (the degenerate topology, byte-identical
  to the shardwise path -- differential-tested like ``engine="object"``);
  :meth:`PoolTopology.spanning` blocks groups across the concatenated fleet
  server list, ignoring shard boundaries, so one group can span clusters.
* :class:`PoolGroupLedger` owns the per-group free/used/peak accounting.
  Engines do not copy it: every shard's :class:`ArrayPlacementEngine` is
  constructed over the *same* ledger dicts, so a pool draw in one shard is
  immediately visible to placement feasibility checks in another.
* :func:`replay_crossshard` replays the shards of a fleet as **one merged
  time-ordered event stream** (arrivals k-way merged across shards,
  departures and per-shard samples in a single event heap), which is what
  makes a shared group's capacity constraint physically meaningful: two
  shards contending for one group contend at simulation time, not
  shard-serially.

Ordering contract (mirrors ``ClusterSimulator``'s merged loop): at equal
timestamps the order is departures, then samples, then arrivals, with
deterministic shard-index tie-breaks; per shard, the relative event order is
exactly the single-cluster simulator's, which is why the degenerate
per-shard topology reproduces ``FleetSimulator``'s classic results
byte-for-byte (enforced by ``tests/test_pool_topology.py``).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.engine import ArrayPlacementEngine
from repro.cluster.scheduler import PlacementError
from repro.cluster.server import ServerConfig
from repro.cluster.simulator import (
    SimulationResult,
    TraceInput,
    block_replay_columns,
    effective_server_config,
    iter_policy_blocks,
)
from repro.cluster.trace import ClusterTrace

__all__ = ["PoolTopology", "PoolGroupLedger", "replay_crossshard"]


class PoolTopology:
    """Fleet-wide mapping of servers to pool groups, with provisioning domains.

    ``group_of[shard][server]`` is the fleet-level pool group id serving that
    server.  Group ids are contiguous (``0 .. n_groups - 1``) and every
    server belongs to exactly one group -- the topology describes a fully
    pooled fleet (use ``pool_size_sockets=0`` on the fleet itself for the
    unpooled regime).

    ``domain_of_group`` partitions groups into **provisioning domains**: pool
    blades are bought uniformly within a domain, so the capacity search
    provisions every group of a domain at the domain's worst observed peak
    (times headroom).  The per-shard topology uses one domain per shard --
    exactly today's per-cluster provisioning -- while spanning topologies
    default to a single fleet-wide domain (one blade SKU for the whole
    deployment).
    """

    def __init__(
        self,
        group_of: Sequence[Sequence[int]],
        sockets_per_server: int,
        pool_size_sockets: int,
        domain_of_group: Optional[Sequence[int]] = None,
    ) -> None:
        if not group_of:
            raise ValueError("need at least one shard")
        if sockets_per_server < 1:
            raise ValueError("sockets_per_server must be >= 1")
        if pool_size_sockets < 1:
            raise ValueError(
                "pool_size_sockets must be >= 1 (an unpooled fleet needs no "
                "topology)"
            )
        if pool_size_sockets % sockets_per_server != 0:
            raise ValueError(
                "pool_size_sockets must be a multiple of the server socket count"
            )
        self.group_of: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(int(g) for g in shard) for shard in group_of
        )
        if any(not shard for shard in self.group_of):
            raise ValueError("every shard must have at least one server")
        self.sockets_per_server = sockets_per_server
        self.pool_size_sockets = pool_size_sockets
        self.shard_sizes: Tuple[int, ...] = tuple(len(s) for s in self.group_of)
        self.n_shards = len(self.group_of)
        self.total_servers = sum(self.shard_sizes)

        seen = sorted({g for shard in self.group_of for g in shard})
        if seen[0] != 0 or seen[-1] != len(seen) - 1:
            raise ValueError(
                f"group ids must be contiguous 0..n-1, got {seen[:8]}..."
            )
        self.n_groups = len(seen)

        # -- derived indices -------------------------------------------------------
        sizes = [0] * self.n_groups
        shards_of: List[set] = [set() for _ in range(self.n_groups)]
        by_shard: List[List[int]] = []
        for shard, assignment in enumerate(self.group_of):
            shard_groups: List[int] = []
            for group in assignment:
                sizes[group] += 1
                shards_of[group].add(shard)
                if group not in shard_groups:
                    shard_groups.append(group)
            by_shard.append(sorted(shard_groups))
        #: servers attached to each group, fleet-wide.
        self.group_server_count: Tuple[int, ...] = tuple(sizes)
        #: shards each group touches (ascending).
        self.group_shards: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(s)) for s in shards_of
        )
        #: groups each shard's servers attach to (ascending fleet ids).
        self._groups_by_shard: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(g) for g in by_shard
        )

        if domain_of_group is None:
            domains: Tuple[int, ...] = (0,) * self.n_groups
        else:
            domains = tuple(int(d) for d in domain_of_group)
            if len(domains) != self.n_groups:
                raise ValueError("domain_of_group must have one entry per group")
        self.domain_of_group = domains
        #: domain id -> its groups, both ascending (provisioning iterates
        #: domains in this order, matching the shardwise accumulation order
        #: of the classic capacity search for per-shard topologies).
        by_domain: Dict[int, List[int]] = {}
        for group in range(self.n_groups):
            by_domain.setdefault(self.domain_of_group[group], []).append(group)
        self.groups_by_domain: Dict[int, Tuple[int, ...]] = {
            d: tuple(by_domain[d]) for d in sorted(by_domain)
        }

    # -- constructors --------------------------------------------------------------
    @classmethod
    def per_shard(cls, shard_sizes: Sequence[int], sockets_per_server: int,
                  pool_size_sockets: int) -> "PoolTopology":
        """The degenerate topology: groups confined to shards.

        Reproduces ``ClusterSimulator._build_cluster`` grouping inside every
        shard (``server // servers_per_group``, fleet ids offset per shard)
        with one provisioning domain per shard -- the exact regime the
        shardwise fleet path models, kept as the differential anchor.
        """
        servers_per_group = max(1, pool_size_sockets // sockets_per_server)
        group_of: List[List[int]] = []
        domains: List[int] = []
        next_group = 0
        for shard, n_servers in enumerate(shard_sizes):
            local = [i // servers_per_group for i in range(n_servers)]
            n_local = local[-1] + 1 if local else 0
            group_of.append([next_group + g for g in local])
            domains.extend([shard] * n_local)
            next_group += n_local
        return cls(group_of, sockets_per_server, pool_size_sockets, domains)

    @classmethod
    def spanning(cls, shard_sizes: Sequence[int], sockets_per_server: int,
                 pool_size_sockets: int) -> "PoolTopology":
        """Groups blocked across the concatenated fleet server list.

        Shard boundaries are ignored: server ``k`` of the fleet-wide
        enumeration joins group ``k // servers_per_group``, so a group at a
        shard seam serves servers from two (or more) clusters -- the
        rack-scale pooling regime.  One fleet-wide provisioning domain.
        """
        servers_per_group = max(1, pool_size_sockets // sockets_per_server)
        group_of: List[List[int]] = []
        offset = 0
        for n_servers in shard_sizes:
            group_of.append(
                [(offset + i) // servers_per_group for i in range(n_servers)]
            )
            offset += n_servers
        return cls(group_of, sockets_per_server, pool_size_sockets)

    # -- views ---------------------------------------------------------------------
    def groups_of_shard(self, shard: int) -> Tuple[int, ...]:
        """Fleet group ids a shard's servers attach to (ascending)."""
        return self._groups_by_shard[shard]

    def local_group_ids(self, shard: int) -> Dict[int, int]:
        """fleet group id -> shard-local group id (ascending enumeration).

        For :meth:`per_shard` topologies this recovers exactly the local ids
        ``ClusterSimulator`` would have used, which is how the degenerate
        replay reports byte-identical per-shard ``pool_peak_gb`` dicts.
        """
        return {g: i for i, g in enumerate(self._groups_by_shard[shard])}

    @property
    def spanning_group_ids(self) -> Tuple[int, ...]:
        """Groups whose servers live in more than one shard."""
        return tuple(
            g for g in range(self.n_groups) if len(self.group_shards[g]) > 1
        )

    @property
    def is_per_shard(self) -> bool:
        """True when no group spans shards *and* domains follow shards.

        This is the degenerate regime whose results are byte-identical to the
        classic shardwise fleet path; anything else is fleet-owned.
        """
        return all(
            len(self.group_shards[g]) == 1
            and self.domain_of_group[g] == self.group_shards[g][0]
            for g in range(self.n_groups)
        )

    # -- provisioning --------------------------------------------------------------
    def provision_capacities(
        self, peaks: Dict[int, float], headroom: float,
    ) -> Tuple[Dict[int, float], float]:
        """Uniform per-domain pool capacities from observed group peaks.

        Every group of a domain is provisioned at ``headroom`` times the
        domain's worst per-group peak (pool blades are bought uniformly
        within a domain).  Returns ``(capacity per group, total provisioned
        GB)``; the total is accumulated domain by domain as ``capacity *
        n_groups`` -- the same float arithmetic the classic per-shard search
        uses, so degenerate topologies provision byte-identically.
        """
        caps: Dict[int, float] = {}
        required_total = 0.0
        for _domain, groups in self.groups_by_domain.items():
            cap = headroom * max(peaks.get(g, 0.0) for g in groups)
            for group in groups:
                caps[group] = cap
            required_total += cap * len(groups)
        return caps, required_total

    def uniform_pool_requirement_gb(self, peaks: Dict[int, float]) -> float:
        """Fleet-owned uniform pool provisioning from observed group peaks.

        The per-server normalised analogue of
        :func:`repro.cluster.pool.uniform_pool_requirement_gb`: blades are
        deployed with one capacity per attached server fleet-wide, so the
        requirement is the worst per-server group demand times the fleet
        server count.  Used for the savings of spanning topologies, where no
        single shard owns a group.
        """
        if not peaks:
            return 0.0
        worst_per_server = 0.0
        for group, peak in peaks.items():
            size = self.group_server_count[group]
            if size <= 0:
                continue
            worst_per_server = max(worst_per_server, peak / size)
        return worst_per_server * self.total_servers


class PoolGroupLedger:
    """Fleet-owned pool-group accounting shared by every shard's engine.

    The three dicts are handed to each :class:`ArrayPlacementEngine` (which
    mutates them in place), so a draw in one shard is immediately visible to
    every other shard sharing the group -- capacity feasibility, usage
    samples, and peaks are all fleet-level facts.
    """

    def __init__(self, capacities: Dict[int, float]) -> None:
        self.capacity_gb: Dict[int, float] = dict(capacities)
        self.free_gb: Dict[int, float] = dict(capacities)
        self.used_gb: Dict[int, float] = {g: 0.0 for g in capacities}
        self.peak_gb: Dict[int, float] = {g: 0.0 for g in capacities}

    @classmethod
    def for_topology(
        cls, topology: PoolTopology,
        capacity: Union[float, Dict[int, float]],
    ) -> "PoolGroupLedger":
        """Ledger over a topology's groups: one shared capacity, or per group."""
        if isinstance(capacity, dict):
            missing = [g for g in range(topology.n_groups) if g not in capacity]
            if missing:
                raise ValueError(f"capacity missing for groups {missing[:8]}")
            caps = {g: capacity[g] for g in range(topology.n_groups)}
        else:
            caps = {g: capacity for g in range(topology.n_groups)}
        return cls(caps)


def _shard_arrival_events(
    shard: int,
    trace: TraceInput,
    policy,
    use_pool: bool,
) -> Iterator[Tuple[float, float, int, float, str, float]]:
    """One shard's ``(arrival, departure, cores, memory, vm_id, pool_gb)``
    stream, in arrival order, with pool allocations resolved exactly like
    the single-cluster replay (shared :func:`iter_policy_blocks`)."""
    streaming = not isinstance(trace, ClusterTrace)
    last_arrival = 0.0
    for block, records, allocations in iter_policy_blocks(
        trace, policy, None, use_pool
    ):
        vm_ids, arrivals, departs, cores_col, memory_col = (
            block_replay_columns(block, records)
        )
        n_block = len(vm_ids)
        if streaming and n_block:
            prev = last_arrival
            for index in range(n_block):
                arrival = arrivals[index]
                if arrival < prev:
                    raise ValueError(
                        f"stream records must be sorted by arrival time "
                        f"({vm_ids[index]!r} arrives at {arrival} after "
                        f"{prev})"
                    )
                prev = arrival
            last_arrival = prev
        if allocations is None:
            if policy is not None and use_pool:
                allocations = [
                    float(np.clip(policy(r), 0.0, r.memory_gb)) for r in records
                ]
            else:
                allocations = [0.0] * n_block
        yield from zip(arrivals, departs, cores_col, memory_col, vm_ids,
                       allocations)


#: Event kinds in the merged heap; at equal timestamps departures fire first,
#: then grid samples, then horizon samples, then (outside the heap) arrivals
#: -- the single-cluster simulator's ordering, per shard.
_KIND_DEPARTURE = 0
_KIND_SAMPLE = 1
_KIND_HORIZON = 2
_KIND_ARRIVAL = 3  # sentinel used only in pump limits; arrivals are not heaped


def replay_crossshard(
    inputs: Sequence[TraceInput],
    policies: Sequence[object],
    n_servers_per_shard: Sequence[int],
    server_configs: Sequence[ServerConfig],
    topology: PoolTopology,
    capacity: Union[float, Dict[int, float]],
    constrain_memory: bool,
    sample_interval_s: float,
    record_placements: bool = False,
) -> Tuple[List[SimulationResult], PoolGroupLedger]:
    """Replay a fleet as one merged event stream over a shared group ledger.

    Each shard keeps its own placement engine, sample grid, and result (a
    shard is still one scheduling domain: VMs never migrate across shards);
    only the pool groups are fleet-owned.  Returns one
    :class:`SimulationResult` per shard plus the ledger, whose ``peak_gb``
    holds the fleet-level per-group peaks.

    For a :meth:`PoolTopology.per_shard` topology the per-shard results are
    byte-identical to running each shard through ``ClusterSimulator`` on its
    own (same floats, same sample rows, same peaks): disjoint shards never
    read each other's state, and per shard the event order and arithmetic
    match the single-cluster loop operation for operation.  Shard results of
    spanning topologies report ``pool_peak_gb = {}`` -- a spanned group's
    peak belongs to the fleet, not to any one shard (read it off the
    returned ledger).
    """
    n_shards = len(inputs)
    if not (len(policies) == len(n_servers_per_shard) == len(server_configs)
            == n_shards == topology.n_shards):
        raise ValueError("inputs/policies/configs/topology shard counts differ")
    for shard in range(n_shards):
        if n_servers_per_shard[shard] != topology.shard_sizes[shard]:
            raise ValueError(
                f"topology maps {topology.shard_sizes[shard]} servers for "
                f"shard {shard}, fleet has {n_servers_per_shard[shard]}"
            )

    ledger = PoolGroupLedger.for_topology(topology, capacity)
    engines: List[ArrayPlacementEngine] = []
    results: List[SimulationResult] = []
    for shard in range(n_shards):
        engines.append(ArrayPlacementEngine(
            n_servers_per_shard[shard],
            effective_server_config(server_configs[shard], constrain_memory),
            group_of=list(topology.group_of[shard]),
            pool_free_gb=ledger.free_gb,
            pool_used_gb=ledger.used_gb,
            pool_peak_gb=ledger.peak_gb,
        ))
        results.append(SimulationResult())

    shard_groups = [topology.groups_of_shard(s) for s in range(n_shards)]
    total_cores = [e.total_cores for e in engines]
    total_dram = [
        n_servers_per_shard[s] * server_configs[s].total_dram_gb
        for s in range(n_shards)
    ]
    last_sample: List[Optional[float]] = [None] * n_shards
    done = [False] * n_shards
    placed = [0] * n_shards
    rejected = [0] * n_shards
    total_memory = [0.0] * n_shards
    total_pool = [0.0] * n_shards
    placed_ids: List[List[str]] = [[] for _ in range(n_shards)]
    placed_srv: List[List[int]] = [[] for _ in range(n_shards)]

    def take_sample(shard: int, time_s: float) -> None:
        eng = engines[shard]
        stranded = eng.stranded_gb
        if stranded < 0.0:
            stranded = 0.0
        used_pool = 0.0
        for group in shard_groups[shard]:
            used_pool += ledger.used_gb[group]
        results[shard].sample_buffer.append_row((
            time_s,
            eng.used_cores / total_cores[shard],
            100.0 * eng.used_cores / total_cores[shard],
            eng.used_local_gb,
            used_pool,
            stranded,
            100.0 * stranded / total_dram[shard],
            eng.running_vms,
        ))
        last_sample[shard] = time_s

    # -- merged event heap: departures, per-shard sample grids, horizons ----
    # Entries: (time, _KIND_DEPARTURE, seq, shard, handle)
    #          (time, _KIND_SAMPLE, shard)
    #          (time, _KIND_HORIZON, shard)
    # The (time, kind, tie) prefix is unique, so heap order is total and
    # deterministic (seq is global, preserving per-shard placement order).
    events: list = [(0.0, _KIND_SAMPLE, shard) for shard in range(n_shards)]
    heapq.heapify(events)
    heappush = heapq.heappush
    heappop = heapq.heappop

    def pump(limit) -> None:
        """Apply every heaped event ordered before ``limit``."""
        while events and events[0] < limit:
            event = heappop(events)
            kind = event[1]
            if kind == _KIND_DEPARTURE:
                engines[event[3]].remove(event[4])
            elif kind == _KIND_SAMPLE:
                shard = event[2]
                if done[shard]:
                    continue  # past this shard's horizon; grid ends here
                take_sample(shard, event[0])
                heappush(events, (event[0] + sample_interval_s,
                                  _KIND_SAMPLE, shard))
            else:  # _KIND_HORIZON
                shard = event[2]
                end_time = event[0]
                if last_sample[shard] is None or last_sample[shard] <= end_time:
                    if last_sample[shard] == end_time:
                        results[shard].sample_buffer.drop_last()
                    take_sample(shard, end_time)
                done[shard] = True

    # -- k-way arrival merge (ties broken by shard index) -------------------
    arrival_iters = [
        _shard_arrival_events(shard, inputs[shard], policies[shard], True)
        for shard in range(n_shards)
    ]
    shard_end = [0.0] * n_shards
    merge_heap: list = []
    for shard, it in enumerate(arrival_iters):
        first = next(it, None)
        if first is None:
            # Empty shard trace: its horizon is time 0.0, like the
            # single-cluster replay of an empty trace.
            heappush(events, (0.0, _KIND_HORIZON, shard))
        else:
            merge_heap.append((first[0], shard, first))
    heapq.heapify(merge_heap)

    seq = 0
    while merge_heap:
        arrival_s, shard, record = heappop(merge_heap)
        pump((arrival_s, _KIND_ARRIVAL))
        _, departure_s, cores_r, memory_gb, vm_id, vm_pool_gb = record
        local_gb = memory_gb - vm_pool_gb
        eng = engines[shard]
        try:
            handle = eng.place(cores_r, local_gb, vm_pool_gb)
        except PlacementError:
            # Group-less pool request corner: counted as a rejection, peaks
            # keep the transient placement (object-path parity).
            handle = -1
        if handle < 0:
            rejected[shard] += 1
        else:
            placed[shard] += 1
            if record_placements:
                placed_ids[shard].append(vm_id)
                placed_srv[shard].append(eng.vm_server[handle])
            total_memory[shard] += memory_gb
            total_pool[shard] += vm_pool_gb
            seq += 1
            heappush(events,
                     (departure_s, _KIND_DEPARTURE, seq, shard, handle))
        shard_end[shard] = arrival_s
        nxt = next(arrival_iters[shard], None)
        if nxt is None:
            # Shard exhausted: its horizon is its last arrival time.  The
            # horizon fires after every departure and grid sample <= it.
            heappush(events, (arrival_s, _KIND_HORIZON, shard))
        else:
            heappush(merge_heap, (nxt[0], shard, nxt))

    # Drain: remaining departures in time order, each shard's grid samples up
    # to its own horizon, then the horizon samples themselves; grid events
    # past a fired horizon are discarded by ``pump``.
    pump((float("inf"),))

    for shard in range(n_shards):
        res = results[shard]
        eng = engines[shard]
        res.placed_vms = placed[shard]
        res.rejected_vms = rejected[shard]
        res.total_memory_gb_allocated = total_memory[shard]
        res.total_pool_gb_allocated = total_pool[shard]
        res.server_peak_local_gb, res.server_peak_total_gb = eng.server_peaks()
        if topology.is_per_shard:
            local = topology.local_group_ids(shard)
            res.pool_peak_gb = {
                local[g]: ledger.peak_gb[g] for g in shard_groups[shard]
            }
        else:
            res.pool_peak_gb = {}
        if record_placements:
            res._placed_vm_ids = placed_ids[shard]
            res._placed_server_idx = placed_srv[shard]
            res._placement_server_ids = eng.server_ids
    return results, ledger

"""NUMA-aware bin-packing VM scheduler for the cluster simulator.

Azure's scheduler solves a multi-dimensional bin-packing problem (cores,
memory, plus the pool dimension once Pond is deployed).  The simulator only
needs placement decisions that reproduce the stranding phenomenon, so the
scheduler here implements the standard best-fit heuristic the literature uses
for VM packing:

* candidate servers must fit the VM's cores and local memory within a single
  NUMA node (the hypervisor avoids NUMA spanning; the paper observes spanning
  for only 2-3 % of VMs, which we ignore),
* if pool memory is requested, the server's pool group must have enough free
  pool capacity,
* among the candidates, the server with the fewest free cores after placement
  wins (best fit on the scarce dimension, which is what packs cores tightly
  and exposes memory stranding).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.server import ClusterServer

__all__ = ["VMScheduler", "PlacementError"]


class PlacementError(RuntimeError):
    """Raised when no server can host a VM request."""


class VMScheduler:
    """Best-fit scheduler over a fixed set of servers and pool groups."""

    def __init__(self, servers: Sequence[ClusterServer],
                 pool_free_gb: Optional[Dict[int, float]] = None,
                 server_pool_group: Optional[Dict[str, int]] = None) -> None:
        if not servers:
            raise ValueError("the scheduler needs at least one server")
        self.servers: List[ClusterServer] = list(servers)
        #: pool group id -> free pool GB (shared by the simulator).
        self.pool_free_gb: Dict[int, float] = pool_free_gb if pool_free_gb is not None else {}
        #: server id -> pool group id.
        self.server_pool_group: Dict[str, int] = server_pool_group or {}

    def _pool_free_for(self, server: ClusterServer) -> float:
        group = self.server_pool_group.get(server.server_id)
        if group is None:
            return 0.0
        return self.pool_free_gb.get(group, 0.0)

    def select_server(self, cores: int, local_gb: float, pool_gb: float) -> ClusterServer:
        """Pick the best-fit server for the request; raise if none fits."""
        best: Optional[ClusterServer] = None
        best_key = None
        for server in self.servers:
            if not server.can_place(cores, local_gb, self._pool_free_for(server), pool_gb):
                continue
            # Best fit: fewest free cores remaining, then least free memory.
            key = (server.free_cores - cores, server.free_local_gb - local_gb)
            if best_key is None or key < best_key:
                best = server
                best_key = key
        if best is None:
            raise PlacementError(
                f"no server fits {cores} cores, {local_gb:.1f} GB local, "
                f"{pool_gb:.1f} GB pool"
            )
        return best

    def place(self, vm_id: str, cores: int, local_gb: float, pool_gb: float) -> ClusterServer:
        """Select a server and commit the placement, including pool accounting."""
        server = self.select_server(cores, local_gb, pool_gb)
        server.place(vm_id, cores, local_gb, pool_gb)
        if pool_gb > 0:
            group = self.server_pool_group.get(server.server_id)
            if group is None:
                server.remove(vm_id)
                raise PlacementError(
                    f"server {server.server_id} is not in any pool group but "
                    f"{pool_gb:.1f} GB of pool memory was requested"
                )
            self.pool_free_gb[group] -= pool_gb
        return server

    def remove(self, vm_id: str, server: ClusterServer) -> None:
        """Remove a VM from its server and return its pool memory to the group."""
        _, _, _, pool_gb = server.remove(vm_id)
        if pool_gb > 0:
            group = self.server_pool_group.get(server.server_id)
            if group is not None:
                self.pool_free_gb[group] += pool_gb

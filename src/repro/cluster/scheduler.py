"""NUMA-aware bin-packing VM scheduler for the cluster simulator.

Azure's scheduler solves a multi-dimensional bin-packing problem (cores,
memory, plus the pool dimension once Pond is deployed).  The simulator only
needs placement decisions that reproduce the stranding phenomenon, so the
scheduler here implements the standard best-fit heuristic the literature uses
for VM packing:

* candidate servers must fit the VM's cores and local memory within a single
  NUMA node (the hypervisor avoids NUMA spanning; the paper observes spanning
  for only 2-3 % of VMs, which we ignore),
* if pool memory is requested, the server's pool group must have enough free
  pool capacity,
* among the candidates, the server with the fewest free cores after placement
  wins (best fit on the scarce dimension, which is what packs cores tightly
  and exposes memory stranding).

Two interchangeable strategies implement that heuristic:

* ``strategy="indexed"`` (default) keeps servers bucketed by server-level free
  cores, each bucket a sorted list of ``(free_local_gb, server_index)``.  A
  placement walks buckets from the fewest feasible free cores upwards and
  returns the first candidate whose NUMA nodes and pool group actually fit,
  which visits the servers in exactly the best-fit preference order of the
  linear scan.  Placement cost is O(total_cores + log n) instead of
  O(n_servers), which is what makes million-event traces tractable.
* ``strategy="linear"`` is the legacy full scan, kept for differential
  testing; both strategies must produce identical placement decisions.

Orthogonally, ``engine="array"`` delegates selection and accounting to the
struct-of-arrays :class:`~repro.cluster.engine.ArrayPlacementEngine` (same
bucket walk, flat arrays instead of per-server objects) and mirrors every
mutation onto the ``ClusterServer`` objects so their state stays coherent
for callers.  The mirroring makes the facade a differential harness, not a
fast path -- the fast path is ``ClusterSimulator(engine="array")``, which
drives the engine directly without server objects.

All server mutations must go through :meth:`place` / :meth:`remove` so the
index and the aggregate counters stay coherent.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.server import ClusterServer

__all__ = [
    "VMScheduler",
    "PlacementError",
    "SCHEDULER_STRATEGIES",
    "validate_strategy",
]

#: Valid values for the ``strategy`` constructor argument.
SCHEDULER_STRATEGIES = ("indexed", "linear")


def validate_strategy(strategy: str) -> str:
    """Validate a scheduler-strategy name; returns it for chaining."""
    if strategy not in SCHEDULER_STRATEGIES:
        raise ValueError(
            f"unknown scheduler strategy {strategy!r}; "
            f"expected one of {SCHEDULER_STRATEGIES}"
        )
    return strategy


class PlacementError(RuntimeError):
    """Raised when no server can host a VM request."""


class VMScheduler:
    """Best-fit scheduler over a fixed set of servers and pool groups."""

    def __init__(self, servers: Sequence[ClusterServer],
                 pool_free_gb: Optional[Dict[int, float]] = None,
                 server_pool_group: Optional[Dict[str, int]] = None,
                 strategy: str = "indexed",
                 engine: Optional[str] = "object") -> None:
        if not servers:
            raise ValueError("the scheduler needs at least one server")
        # Imported here: repro.cluster.engine imports this module's
        # PlacementError lazily, so the eager direction must be this one.
        from repro.cluster.engine import ArrayPlacementEngine, resolve_engine

        self.servers: List[ClusterServer] = list(servers)
        self.strategy = validate_strategy(strategy)
        #: "object" (default: ClusterServer objects are authoritative) or
        #: "array" (the ArrayPlacementEngine decides and accounts; mutations
        #: are mirrored onto the server objects).
        self.engine = resolve_engine(engine if engine is not None else "object",
                                     strategy)
        #: pool group id -> free pool GB (shared by the simulator).
        self.pool_free_gb: Dict[int, float] = pool_free_gb if pool_free_gb is not None else {}
        #: server id -> pool group id.
        self.server_pool_group: Dict[str, int] = server_pool_group or {}
        self._server_index: Dict[str, int] = {
            s.server_id: i for i, s in enumerate(self.servers)
        }
        if len(self._server_index) != len(self.servers):
            raise ValueError("server ids must be unique")
        # Aggregate counters so the simulator can sample cluster state in O(1)
        # instead of re-summing every server each sample.
        self.total_cores = sum(s.total_cores for s in self.servers)
        self.used_cores = sum(s.used_cores for s in self.servers)
        self.used_local_gb = float(sum(s.used_local_gb for s in self.servers))
        self.stranded_gb = float(sum(s.stranded_gb for s in self.servers))
        self.running_vms = sum(s.n_vms for s in self.servers)
        self._array: Optional[ArrayPlacementEngine] = None
        if self.engine == "array":
            self._array = ArrayPlacementEngine.from_servers(
                self.servers, self.pool_free_gb, self.server_pool_group
            )
        elif strategy == "indexed":
            self._build_index()

    # -- candidate index ---------------------------------------------------------------
    def _build_index(self) -> None:
        max_cores = max(s.total_cores for s in self.servers)
        #: free-core count -> sorted [(free_local_gb, server_index), ...]
        self._buckets: List[List[Tuple[float, int]]] = [
            [] for _ in range(max_cores + 1)
        ]
        #: server index -> its current (free_cores, free_local_gb) bucket key.
        self._bucket_key: List[Tuple[int, float]] = [(0, 0.0)] * len(self.servers)
        for idx, server in enumerate(self.servers):
            key = (server.free_cores, server.free_local_gb)
            self._bucket_key[idx] = key
            insort(self._buckets[key[0]], (key[1], idx))

    def _reindex(self, server: ClusterServer) -> None:
        idx = self._server_index[server.server_id]
        old_cores, old_gb = self._bucket_key[idx]
        new_key = (server.free_cores, server.free_local_gb)
        if new_key == (old_cores, old_gb):
            return
        bucket = self._buckets[old_cores]
        pos = bisect_left(bucket, (old_gb, idx))
        del bucket[pos]
        insort(self._buckets[new_key[0]], (new_key[1], idx))
        self._bucket_key[idx] = new_key

    def _pool_free_for(self, server: ClusterServer) -> float:
        group = self.server_pool_group.get(server.server_id)
        if group is None:
            return 0.0
        return self.pool_free_gb.get(group, 0.0)

    # -- selection ---------------------------------------------------------------------
    def _select_linear(self, cores: int, local_gb: float,
                       pool_gb: float) -> Optional[ClusterServer]:
        best: Optional[ClusterServer] = None
        best_key = None
        for server in self.servers:
            if not server.can_place(cores, local_gb, self._pool_free_for(server), pool_gb):
                continue
            # Best fit: fewest free cores remaining, then least free memory.
            key = (server.free_cores - cores, server.free_local_gb - local_gb)
            if best_key is None or key < best_key:
                best = server
                best_key = key
        return best

    def _select_indexed(self, cores: int, local_gb: float,
                        pool_gb: float) -> Optional[ClusterServer]:
        servers = self.servers
        need_pool = pool_gb > 0
        buckets = self._buckets
        # A feasible server needs a NUMA node with >= cores free, so its
        # server-level free cores are >= cores as well; walking free-core
        # buckets upwards visits candidates in best-fit order (the in-bucket
        # sort breaks ties by free memory, then by server position, exactly
        # like the linear scan's strict ``<`` comparison).
        for free in range(cores, len(buckets)):
            for _, idx in buckets[free]:
                server = servers[idx]
                if need_pool and pool_gb > self._pool_free_for(server) + 1e-9:
                    continue
                if server.find_numa_node(cores, local_gb) is not None:
                    return server
        return None

    def select_server(self, cores: int, local_gb: float, pool_gb: float) -> ClusterServer:
        """Pick the best-fit server for the request; raise if none fits."""
        if self._array is not None:
            idx = self._array.select(cores, local_gb, pool_gb)
            best = self.servers[idx] if idx >= 0 else None
        elif self.strategy == "indexed":
            best = self._select_indexed(cores, local_gb, pool_gb)
        else:
            best = self._select_linear(cores, local_gb, pool_gb)
        if best is None:
            raise PlacementError(
                f"no server fits {cores} cores, {local_gb:.1f} GB local, "
                f"{pool_gb:.1f} GB pool"
            )
        return best

    # -- placement ---------------------------------------------------------------------
    def _sync_from_array(self) -> None:
        """Copy the array engine's aggregates into the public counters."""
        array = self._array
        self.used_cores = array.used_cores
        self.used_local_gb = array.used_local_gb
        self.stranded_gb = array.stranded_gb
        self.running_vms = array.running_vms

    def _place_array(self, vm_id: str, cores: int, local_gb: float,
                     pool_gb: float) -> ClusterServer:
        """Array-engine placement, mirrored onto the ClusterServer object."""
        try:
            idx = self._array.place_vm(vm_id, cores, local_gb, pool_gb)
        except PlacementError as error:
            idx = getattr(error, "server_index", None)
            if idx is not None:
                # Group-less pool request: the object path transiently places
                # then rolls back, leaving the peak side effect -- mirror it.
                server = self.servers[idx]
                server.place(vm_id, cores, local_gb, pool_gb)
                server.remove(vm_id)
            raise
        server = self.servers[idx]
        server.place(vm_id, cores, local_gb, pool_gb)
        self._sync_from_array()
        return server

    def place(self, vm_id: str, cores: int, local_gb: float, pool_gb: float) -> ClusterServer:
        """Select a server and commit the placement, including pool accounting."""
        if self._array is not None:
            return self._place_array(vm_id, cores, local_gb, pool_gb)
        server = self.select_server(cores, local_gb, pool_gb)
        stranded_before = server.stranded_gb
        server.place(vm_id, cores, local_gb, pool_gb)
        if pool_gb > 0:
            group = self.server_pool_group.get(server.server_id)
            if group is None:
                server.remove(vm_id)
                raise PlacementError(
                    f"server {server.server_id} is not in any pool group but "
                    f"{pool_gb:.1f} GB of pool memory was requested"
                )
            self.pool_free_gb[group] -= pool_gb
        self.used_cores += cores
        self.used_local_gb += local_gb
        self.stranded_gb += server.stranded_gb - stranded_before
        self.running_vms += 1
        if self.strategy == "indexed":
            self._reindex(server)
        return server

    def remove(self, vm_id: str, server: ClusterServer) -> None:
        """Remove a VM from its server and return its pool memory to the group."""
        if self._array is not None:
            # Validate before mutating either side: a wrong-server call must
            # fail with engine and mirror still in sync (the object path's
            # server.remove raises with state intact; so must we).
            if self._array.placed_on(vm_id) != self._server_index[server.server_id]:
                raise KeyError(f"server {server.server_id} has no VM {vm_id!r}")
            self._array.remove_vm(vm_id)
            server.remove(vm_id)
            self._sync_from_array()
            return
        stranded_before = server.stranded_gb
        _, cores, local_gb, pool_gb = server.remove(vm_id)
        if pool_gb > 0:
            group = self.server_pool_group.get(server.server_id)
            if group is not None:
                self.pool_free_gb[group] += pool_gb
        self.used_cores -= cores
        self.used_local_gb -= local_gb
        self.stranded_gb += server.stranded_gb - stranded_before
        self.running_vms -= 1
        if self.strategy == "indexed":
            self._reindex(server)

"""Server SKUs and lightweight per-server accounting for cluster simulation.

The paper's evaluation servers are two-socket machines (Intel Skylake 8157M
with 2 x 384 GB, AMD EPYC 7452 with 2 x 512 GB).  The cluster simulator needs
to process millions of VM events, so :class:`ClusterServer` keeps only the
counters the stranding and pooling analyses need (used cores and memory per
NUMA node, plus peak memory usage) rather than the full hypervisor object
model in :mod:`repro.hypervisor.host`.

Because :meth:`ClusterServer.find_numa_node` sits on the scheduler's innermost
loop, the class maintains scalar running totals (``used_cores``,
``used_local_gb``) alongside the per-node lists instead of re-summing them on
every access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["ServerConfig", "ClusterServer"]


@dataclass(frozen=True)
class ServerConfig:
    """Hardware shape of one server SKU."""

    name: str = "two-socket-192"
    sockets: int = 2
    cores_per_socket: int = 24
    dram_per_socket_gb: float = 192.0

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ValueError("a server needs at least one socket")
        if self.cores_per_socket < 1:
            raise ValueError("cores_per_socket must be >= 1")
        if self.dram_per_socket_gb <= 0:
            raise ValueError("dram_per_socket_gb must be positive")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def total_dram_gb(self) -> float:
        return self.sockets * self.dram_per_socket_gb

    @property
    def dram_per_core_gb(self) -> float:
        return self.total_dram_gb / self.total_cores


class ClusterServer:
    """Per-server core/memory accounting at NUMA-node granularity."""

    __slots__ = (
        "server_id", "config", "node_used_cores", "node_used_local_gb",
        "pool_used_gb", "_placements", "peak_local_gb", "peak_pool_gb",
        "_total_cores", "_total_dram_gb", "_cores_per_socket",
        "_dram_per_socket_gb", "_used_cores", "_used_local_gb",
    )

    def __init__(self, server_id: str, config: ServerConfig) -> None:
        self.server_id = server_id
        self.config = config
        self.node_used_cores: List[int] = [0] * config.sockets
        self.node_used_local_gb: List[float] = [0.0] * config.sockets
        self.pool_used_gb: float = 0.0
        # vm_id -> (node, cores, local_gb, pool_gb)
        self._placements: Dict[str, Tuple[int, int, float, float]] = {}
        self.peak_local_gb: float = 0.0
        self.peak_pool_gb: float = 0.0
        # Hot-path scalars: the scheduler reads these on every candidate check.
        self._total_cores = config.total_cores
        self._total_dram_gb = config.total_dram_gb
        self._cores_per_socket = config.cores_per_socket
        self._dram_per_socket_gb = config.dram_per_socket_gb
        self._used_cores = 0
        self._used_local_gb = 0.0

    # -- capacity ------------------------------------------------------------------
    @property
    def total_cores(self) -> int:
        return self._total_cores

    @property
    def total_dram_gb(self) -> float:
        return self._total_dram_gb

    @property
    def used_cores(self) -> int:
        return self._used_cores

    @property
    def used_local_gb(self) -> float:
        return self._used_local_gb

    @property
    def free_cores(self) -> int:
        return self._total_cores - self._used_cores

    @property
    def free_local_gb(self) -> float:
        return self._total_dram_gb - self._used_local_gb

    def node_free_cores(self, node: int) -> int:
        return self._cores_per_socket - self.node_used_cores[node]

    def node_free_local_gb(self, node: int) -> float:
        return self._dram_per_socket_gb - self.node_used_local_gb[node]

    @property
    def core_utilization(self) -> float:
        return self._used_cores / self._total_cores

    @property
    def stranded_gb(self) -> float:
        """Memory stranded on this server: free DRAM when all cores are rented."""
        if self._used_cores < self._total_cores:
            return 0.0
        return self._total_dram_gb - self._used_local_gb

    @property
    def n_vms(self) -> int:
        return len(self._placements)

    # -- placement -------------------------------------------------------------------
    def find_numa_node(self, cores: int, local_gb: float) -> Optional[int]:
        """Best NUMA node that fits ``cores`` and ``local_gb``, or ``None``.

        Mirrors the hypervisor's preference to place small VMs entirely within
        one NUMA node; the fullest node that still fits is chosen (best fit).
        """
        node_cores = self.node_used_cores
        node_gb = self.node_used_local_gb
        cores_limit = self._cores_per_socket - cores
        gb_limit = self._dram_per_socket_gb - local_gb + 1e-9
        best_node = None
        best_used = -1
        for node in range(len(node_cores)):
            used = node_cores[node]
            if used <= cores_limit and node_gb[node] <= gb_limit:
                # Fullest node that still fits == most used cores.
                if used > best_used:
                    best_node = node
                    best_used = used
        return best_node

    def can_place(self, cores: int, local_gb: float, pool_available_gb: float,
                  pool_gb: float) -> bool:
        if pool_gb > pool_available_gb + 1e-9:
            return False
        return self.find_numa_node(cores, local_gb) is not None

    def place(self, vm_id: str, cores: int, local_gb: float, pool_gb: float) -> int:
        """Place a VM; returns the NUMA node used.  Raises if it does not fit."""
        if vm_id in self._placements:
            raise ValueError(f"VM {vm_id!r} already placed on {self.server_id}")
        if cores < 1 or local_gb < 0 or pool_gb < 0:
            raise ValueError("invalid placement request")
        node = self.find_numa_node(cores, local_gb)
        if node is None:
            raise RuntimeError(
                f"server {self.server_id}: no NUMA node fits {cores} cores / "
                f"{local_gb:.1f} GB"
            )
        self.node_used_cores[node] += cores
        self.node_used_local_gb[node] += local_gb
        self._used_cores += cores
        self._used_local_gb += local_gb
        self.pool_used_gb += pool_gb
        self._placements[vm_id] = (node, cores, local_gb, pool_gb)
        if self._used_local_gb > self.peak_local_gb:
            self.peak_local_gb = self._used_local_gb
        if self.pool_used_gb > self.peak_pool_gb:
            self.peak_pool_gb = self.pool_used_gb
        return node

    def remove(self, vm_id: str) -> Tuple[int, int, float, float]:
        """Remove a VM; returns its (node, cores, local_gb, pool_gb)."""
        placement = self._placements.pop(vm_id, None)
        if placement is None:
            raise KeyError(f"server {self.server_id} has no VM {vm_id!r}")
        node, cores, local_gb, pool_gb = placement
        self.node_used_cores[node] -= cores
        self.node_used_local_gb[node] -= local_gb
        self._used_cores -= cores
        self._used_local_gb -= local_gb
        self.pool_used_gb -= pool_gb
        return placement

    def has_vm(self, vm_id: str) -> bool:
        return vm_id in self._placements

    def placement(self, vm_id: str) -> Tuple[int, int, float, float]:
        """Look up a VM's (node, cores, local_gb, pool_gb) placement."""
        placement = self._placements.get(vm_id)
        if placement is None:
            raise KeyError(f"server {self.server_id} has no VM {vm_id!r}")
        return placement

    def summary(self) -> Dict[str, float]:
        return {
            "used_cores": float(self.used_cores),
            "total_cores": float(self.total_cores),
            "used_local_gb": self.used_local_gb,
            "total_dram_gb": self.total_dram_gb,
            "pool_used_gb": self.pool_used_gb,
            "stranded_gb": self.stranded_gb,
            "n_vms": float(self.n_vms),
        }

"""Sharded fleet simulator: million-VM pooling studies across many clusters.

The paper's evaluation replays traces from ~100 production clusters (Section
6.1, Figure 21); one :class:`~repro.cluster.simulator.ClusterSimulator`
models a single cluster, so fleet-scale studies shard the workload across
``N`` independent clusters and merge the results.  Each shard is one
cluster: its own synthetic trace (generated with the vectorized
``TraceGenerator.generate_bulk`` path), its own simulator replay, and its
own policy instance.  Because policy decisions are keyed on stable per-VM
digests (see ``repro.core.policies``), sharding never changes any VM's
allocation -- a fleet result is exactly the sum of its shards' single-cluster
results, which the fleet benchmark asserts.

Shards are embarrassingly parallel; ``max_workers`` optionally runs them in
a ``concurrent.futures`` process pool (everything a worker needs --
``TraceGenConfig``, the policy factory, optionally a pregenerated trace --
must be picklable, so policy factories are built from module-level
functions via ``functools.partial``).  The default is in-process serial
execution, which is also what the fleet benchmark times so the batch-vs-
callback comparison is not confounded by pool overhead.

Savings are computed per shard in peak-observation mode (the same
uniform-provisioning model as ``PoolDimensioner.evaluate``): the baseline is
a memory-unconstrained replay with no pooling, the pooled requirement is the
uniform per-server local peak plus the uniform per-group pool peak.
"""

from __future__ import annotations

import functools
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.pool import PoolSavings, uniform_pool_requirement_gb
from repro.cluster.simulator import ClusterSimulator, SimulationResult
from repro.cluster.trace import ClusterTrace
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator, fleet_shard_configs
from repro.core.policies import (
    AllLocalPolicy,
    PolicyStats,
    PondTracePolicy,
    StaticFractionPolicy,
)
from repro.core.prediction.combined import CombinedOperatingPoint

__all__ = [
    "FleetSimulator",
    "FleetResult",
    "FleetShardResult",
    "pond_policy_factory",
    "static_policy_factory",
    "all_local_policy_factory",
]

#: A policy factory builds one fresh policy per shard (index -> policy); it
#: runs inside the worker, so per-shard policies never share mutable state.
PolicyFactory = Callable[[int], object]


# -- picklable policy factories ------------------------------------------------------
def _build_pond_policy(operating_point: CombinedOperatingPoint,
                       kwargs: dict, shard_index: int) -> PondTracePolicy:
    return PondTracePolicy(operating_point, **kwargs)


def pond_policy_factory(operating_point: CombinedOperatingPoint,
                        **kwargs) -> PolicyFactory:
    """Picklable factory producing one ``PondTracePolicy`` per shard.

    All shards share the same seed (default 0 via ``PondTracePolicy``), which
    is safe *and* required: decisions are keyed per VM id, so a VM gets the
    same allocation no matter which shard evaluates it.
    """
    return functools.partial(_build_pond_policy, operating_point, kwargs)


def _build_static_policy(kwargs: dict, shard_index: int) -> StaticFractionPolicy:
    return StaticFractionPolicy(**kwargs)


def static_policy_factory(**kwargs) -> PolicyFactory:
    """Picklable factory producing one ``StaticFractionPolicy`` per shard."""
    return functools.partial(_build_static_policy, kwargs)


def _build_all_local_policy(shard_index: int) -> AllLocalPolicy:
    return AllLocalPolicy()


def all_local_policy_factory() -> PolicyFactory:
    """Picklable factory producing one ``AllLocalPolicy`` per shard."""
    return _build_all_local_policy


@dataclass(frozen=True)
class FleetShardResult:
    """One shard's replay: the cluster result plus savings inputs."""

    shard_id: str
    shard_index: int
    n_vms: int
    n_servers: int
    sockets_per_server: int
    pool_size_sockets: int
    result: SimulationResult
    #: Memory-unconstrained no-pooling uniform baseline, if requested.
    baseline_required_dram_gb: Optional[float]
    policy_stats: Optional[PolicyStats]
    #: Wall-clock seconds of the pooled replay alone (excludes trace
    #: generation and the baseline replay) -- the fleet benchmark compares
    #: these across the batch and per-VM-callback paths.
    run_seconds: float

    @property
    def required_local_dram_gb(self) -> float:
        return self.result.uniform_required_local_dram_gb

    @property
    def required_pool_dram_gb(self) -> float:
        return uniform_pool_requirement_gb(
            self.result, self.pool_size_sockets,
            self.sockets_per_server, self.n_servers,
        )

    @property
    def savings(self) -> PoolSavings:
        """This shard's single-cluster savings (requires a baseline run)."""
        if self.baseline_required_dram_gb is None:
            raise ValueError(
                "shard was run with compute_baseline=False; savings need the "
                "no-pooling baseline"
            )
        return PoolSavings(
            pool_size_sockets=self.pool_size_sockets,
            baseline_dram_gb=self.baseline_required_dram_gb,
            required_local_dram_gb=self.required_local_dram_gb,
            required_pool_dram_gb=self.required_pool_dram_gb,
            average_pool_fraction=self.result.average_pool_fraction,
        )


@dataclass
class FleetResult:
    """Merged view over all shards of one fleet run."""

    shards: List[FleetShardResult] = field(default_factory=list)

    # -- merged per-entity views ----------------------------------------------------
    @property
    def server_peak_local_gb(self) -> Dict[str, float]:
        """Per-server local peaks across the fleet, keyed ``shard/server``."""
        merged: Dict[str, float] = {}
        for shard in self.shards:
            for server_id, peak in shard.result.server_peak_local_gb.items():
                merged[f"{shard.shard_id}/{server_id}"] = peak
        return merged

    @property
    def pool_peak_gb(self) -> Dict[Tuple[str, int], float]:
        """Per-pool-group peaks across the fleet, keyed ``(shard, group)``."""
        merged: Dict[Tuple[str, int], float] = {}
        for shard in self.shards:
            for group, peak in shard.result.pool_peak_gb.items():
                merged[(shard.shard_id, group)] = peak
        return merged

    def results(self) -> Dict[str, SimulationResult]:
        """Per-shard simulation results (e.g. for stranding analysis)."""
        return {shard.shard_id: shard.result for shard in self.shards}

    # -- aggregates -----------------------------------------------------------------
    @property
    def n_vms(self) -> int:
        return sum(s.n_vms for s in self.shards)

    @property
    def placed_vms(self) -> int:
        return sum(s.result.placed_vms for s in self.shards)

    @property
    def rejected_vms(self) -> int:
        return sum(s.result.rejected_vms for s in self.shards)

    @property
    def required_local_dram_gb(self) -> float:
        return sum(s.required_local_dram_gb for s in self.shards)

    @property
    def required_pool_dram_gb(self) -> float:
        return sum(s.required_pool_dram_gb for s in self.shards)

    @property
    def baseline_dram_gb(self) -> float:
        if any(s.baseline_required_dram_gb is None for s in self.shards):
            raise ValueError("fleet was run with compute_baseline=False")
        return sum(s.baseline_required_dram_gb for s in self.shards)

    @property
    def total_run_seconds(self) -> float:
        """Summed pooled-replay seconds across shards (timing, not savings)."""
        return sum(s.run_seconds for s in self.shards)

    @property
    def policy_stats(self) -> PolicyStats:
        """Policy accounting merged across shards."""
        merged = PolicyStats()
        for shard in self.shards:
            if shard.policy_stats is not None:
                merged.add(shard.policy_stats)
        return merged

    @property
    def savings(self) -> PoolSavings:
        """Fleet DRAM savings: the component-wise sum of the shard savings."""
        if not self.shards:
            raise ValueError("fleet result has no shards")
        total_memory = sum(
            s.result.total_memory_gb_allocated for s in self.shards
        )
        total_pool = sum(s.result.total_pool_gb_allocated for s in self.shards)
        return PoolSavings(
            pool_size_sockets=self.shards[0].pool_size_sockets,
            baseline_dram_gb=self.baseline_dram_gb,
            required_local_dram_gb=self.required_local_dram_gb,
            required_pool_dram_gb=self.required_pool_dram_gb,
            average_pool_fraction=(total_pool / total_memory) if total_memory else 0.0,
        )


@dataclass(frozen=True)
class _ShardSpec:
    """Everything one worker needs to run a shard (must stay picklable)."""

    index: int
    config: TraceGenConfig
    trace: Optional[ClusterTrace]
    policy_factory: Optional[PolicyFactory]
    batch: bool
    compute_baseline: bool
    pool_size_sockets: int
    pool_capacity_gb_per_group: float
    constrain_memory: bool
    sample_interval_s: float
    scheduler_strategy: str
    #: Precomputed no-pooling baseline (skips the baseline replay).
    baseline_required_dram_gb: Optional[float] = None


def _shard_baseline_gb(cfg: TraceGenConfig, trace: ClusterTrace,
                       sample_interval_s: float, scheduler_strategy: str) -> float:
    """One shard's no-pooling uniform baseline (memory-unconstrained replay)."""
    baseline_sim = ClusterSimulator(
        n_servers=cfg.n_servers,
        server_config=cfg.server_config,
        pool_size_sockets=0,
        constrain_memory=False,
        sample_interval_s=sample_interval_s,
        scheduler_strategy=scheduler_strategy,
        record_placements=False,
    )
    return baseline_sim.run(trace).uniform_required_local_dram_gb


def _baseline_task(
    args: Tuple[TraceGenConfig, Optional[ClusterTrace], float, str]
) -> float:
    """Baseline replay for one shard; module-level so a pool can pickle it."""
    cfg, trace, sample_interval_s, scheduler_strategy = args
    if trace is None:
        trace = TraceGenerator(cfg).generate_bulk()
    return _shard_baseline_gb(cfg, trace, sample_interval_s, scheduler_strategy)


def _run_shard(spec: _ShardSpec) -> FleetShardResult:
    """Generate (if needed) and replay one shard; module-level for pickling."""
    cfg = spec.config
    trace = spec.trace
    if trace is None:
        trace = TraceGenerator(cfg).generate_bulk()
    policy = spec.policy_factory(spec.index) if spec.policy_factory else None
    simulator = ClusterSimulator(
        n_servers=cfg.n_servers,
        server_config=cfg.server_config,
        pool_size_sockets=spec.pool_size_sockets,
        pool_capacity_gb_per_group=spec.pool_capacity_gb_per_group,
        constrain_memory=spec.constrain_memory,
        sample_interval_s=spec.sample_interval_s,
        scheduler_strategy=spec.scheduler_strategy,
        record_placements=False,
    )
    start = time.perf_counter()
    if policy is not None and not spec.batch and hasattr(policy, "decide_batch"):
        # Forced per-VM-callback path (the batch engine's differential /
        # benchmark baseline): hide decide_batch from the simulator.
        result = simulator.run(trace, policy=policy.__call__)
    else:
        result = simulator.run(trace, policy=policy)
    run_seconds = time.perf_counter() - start

    baseline = spec.baseline_required_dram_gb
    if baseline is None and spec.compute_baseline:
        baseline = _shard_baseline_gb(
            cfg, trace, spec.sample_interval_s, spec.scheduler_strategy
        )

    return FleetShardResult(
        shard_id=cfg.cluster_id,
        shard_index=spec.index,
        n_vms=len(trace),
        n_servers=cfg.n_servers,
        sockets_per_server=cfg.server_config.sockets,
        pool_size_sockets=spec.pool_size_sockets,
        result=result,
        baseline_required_dram_gb=baseline,
        policy_stats=getattr(policy, "stats", None),
        run_seconds=run_seconds,
    )


class FleetSimulator:
    """Shards a fleet workload across N independent cluster simulations."""

    def __init__(
        self,
        shard_configs: Sequence[TraceGenConfig],
        pool_size_sockets: int = 0,
        pool_capacity_gb_per_group: float = float("inf"),
        constrain_memory: bool = False,
        sample_interval_s: float = 3600.0,
        scheduler_strategy: str = "indexed",
        max_workers: Optional[int] = None,
    ) -> None:
        if not shard_configs:
            raise ValueError("need at least one shard config")
        ids = [cfg.cluster_id for cfg in shard_configs]
        if len(set(ids)) != len(ids):
            raise ValueError("shard cluster_ids must be unique")
        self.shard_configs = list(shard_configs)
        self.pool_size_sockets = pool_size_sockets
        self.pool_capacity_gb_per_group = pool_capacity_gb_per_group
        self.constrain_memory = constrain_memory
        self.sample_interval_s = sample_interval_s
        self.scheduler_strategy = scheduler_strategy
        self.max_workers = max_workers

    # -- constructors ----------------------------------------------------------------
    @classmethod
    def sharded(cls, n_shards: int, base_config: TraceGenConfig,
                **kwargs) -> "FleetSimulator":
        """Homogeneous fleet: ``n_shards`` copies of ``base_config`` with
        per-shard cluster ids and seeds (``base seed + index``)."""
        if n_shards < 1:
            raise ValueError("need at least one shard")
        configs = [
            replace(
                base_config,
                cluster_id=f"{base_config.cluster_id}-shard-{i:03d}",
                region=f"region-{i % 3}",
                seed=base_config.seed + i,
            )
            for i in range(n_shards)
        ]
        return cls(configs, **kwargs)

    @classmethod
    def utilization_sweep(cls, n_shards: int, base_config: TraceGenConfig,
                          utilization_range: Sequence[float] = (0.55, 0.95),
                          seed: int = 3, **kwargs) -> "FleetSimulator":
        """Fleet with utilisation spread over ``utilization_range`` (the
        Figure 2a fleet shape; mirrors ``tracegen.generate_fleet``)."""
        configs = fleet_shard_configs(n_shards, base_config, utilization_range, seed)
        return cls(configs, **kwargs)

    # -- execution -------------------------------------------------------------------
    def generate_traces(self) -> List[ClusterTrace]:
        """Pregenerate every shard's trace (serially, in this process)."""
        return [TraceGenerator(cfg).generate_bulk() for cfg in self.shard_configs]

    def compute_baselines(
        self, traces: Optional[Sequence[ClusterTrace]] = None
    ) -> List[float]:
        """No-pooling uniform baseline per shard, for reuse across runs.

        The baseline replay is pool-independent, so callers sweeping several
        pool sizes or policies over the same traces should compute it once
        here and pass it to :meth:`run` via ``baselines`` instead of letting
        every run repeat it per shard.
        """
        if traces is not None and len(traces) != len(self.shard_configs):
            raise ValueError(
                f"got {len(traces)} traces for {len(self.shard_configs)} shards"
            )
        tasks = [
            (cfg, traces[i] if traces is not None else None,
             self.sample_interval_s, self.scheduler_strategy)
            for i, cfg in enumerate(self.shard_configs)
        ]
        if self.max_workers and self.max_workers > 1 and len(tasks) > 1:
            with ProcessPoolExecutor(max_workers=self.max_workers) as executor:
                return list(executor.map(_baseline_task, tasks))
        return [_baseline_task(task) for task in tasks]

    def run(
        self,
        policy_factory: Optional[PolicyFactory] = None,
        traces: Optional[Sequence[ClusterTrace]] = None,
        batch: bool = True,
        compute_baseline: Optional[bool] = None,
        baselines: Optional[Sequence[float]] = None,
    ) -> FleetResult:
        """Run every shard and merge the results.

        ``traces`` optionally supplies pregenerated shard traces (aligned
        with ``shard_configs``); otherwise each worker generates its own,
        which parallelises generation under a process pool.  ``batch``
        selects the vectorized ``decide_batch`` path (default) or forces the
        legacy per-VM callback.  ``compute_baseline`` adds a no-pooling
        baseline replay per shard so savings can be computed; it defaults to
        on exactly when the fleet pools memory.  ``baselines`` supplies
        precomputed per-shard baselines (see :meth:`compute_baselines`) and
        skips those replays entirely.
        """
        if traces is not None and len(traces) != len(self.shard_configs):
            raise ValueError(
                f"got {len(traces)} traces for {len(self.shard_configs)} shards"
            )
        if baselines is not None and len(baselines) != len(self.shard_configs):
            raise ValueError(
                f"got {len(baselines)} baselines for {len(self.shard_configs)} shards"
            )
        if compute_baseline is None:
            compute_baseline = bool(self.pool_size_sockets)
        specs = [
            _ShardSpec(
                index=i,
                config=cfg,
                trace=traces[i] if traces is not None else None,
                policy_factory=policy_factory,
                batch=batch,
                compute_baseline=compute_baseline,
                pool_size_sockets=self.pool_size_sockets,
                pool_capacity_gb_per_group=self.pool_capacity_gb_per_group,
                constrain_memory=self.constrain_memory,
                sample_interval_s=self.sample_interval_s,
                scheduler_strategy=self.scheduler_strategy,
                baseline_required_dram_gb=(
                    baselines[i] if baselines is not None else None
                ),
            )
            for i, cfg in enumerate(self.shard_configs)
        ]
        if self.max_workers and self.max_workers > 1 and len(specs) > 1:
            with ProcessPoolExecutor(max_workers=self.max_workers) as executor:
                shards = list(executor.map(_run_shard, specs))
        else:
            shards = [_run_shard(spec) for spec in specs]
        return FleetResult(shards=shards)

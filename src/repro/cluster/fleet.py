"""Sharded fleet simulator: million-VM pooling studies across many clusters.

The paper's evaluation replays traces from ~100 production clusters (Section
6.1, Figure 21); one :class:`~repro.cluster.simulator.ClusterSimulator`
models a single cluster, so fleet-scale studies shard the workload across
``N`` independent clusters and merge the results.  Each shard is one
cluster: its own synthetic trace (materialised via the vectorized
``TraceGenerator.generate_bulk`` path, or replayed as a lazy
``GeneratedTraceStream`` when ``stream_chunk_size`` is set so no shard trace
is ever held in full), its own simulator replay, and its own policy
instance.  Because policy decisions are keyed on stable per-VM digests (see
``repro.core.policies``), sharding never changes any VM's allocation -- a
fleet result is exactly the sum of its shards' single-cluster results,
which the fleet benchmark asserts.

Shards are embarrassingly parallel; ``max_workers`` optionally runs them in
a ``concurrent.futures`` process pool (everything a worker needs --
``TraceGenConfig``, the policy factory, optionally a pregenerated trace --
must be picklable, so policy factories are built from module-level
functions via ``functools.partial``).  The default is in-process serial
execution, which is also what the fleet benchmark times so the batch-vs-
callback comparison is not confounded by pool overhead.

Savings are computed per shard in peak-observation mode (the same
uniform-provisioning model as ``PoolDimensioner.evaluate``): the baseline is
a memory-unconstrained replay with no pooling, the pooled requirement is the
uniform per-server local peak plus the uniform per-group pool peak.
:meth:`FleetSimulator.capacity_search` offers the constrained alternative --
the dimensioner's binary search lifted to one shared fleet-wide server DRAM
size with the rejection budget aggregated across shards (DESIGN.md section
5).

Two later extensions relax the strict shard independence: ``pool_topology``
replays the fleet as one merged time-ordered event stream over fleet-owned
pool groups that may span shards (:mod:`repro.cluster.pool_topology`,
DESIGN.md section 8), and the capacity-search probe pools plus the shard
fanout executor are reusable sessions that survive across calls (DESIGN.md
section 7; release with :meth:`FleetSimulator.close` or the context-manager
protocol).
"""

from __future__ import annotations

import functools
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.engine import resolve_engine
from repro.cluster.faults import FaultImpactStats, FaultSchedule
from repro.cluster.pool import (
    CapacityProbeOutcome,
    PoolSavings,
    SpeculationStats,
    _ProbeSessionBase,
    _shutdown_executor,
    bisect_min_dram,
    capacity_candidate_config,
    capacity_probe_replay,
    probe_outcome_of,
    uniform_pool_requirement_gb,
)
from repro.cluster.pool_topology import PoolTopology, replay_crossshard
from repro.cluster.simulator import ClusterSimulator, SimulationResult, TraceInput
from repro.cluster.trace import ClusterTrace
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator, fleet_shard_configs
from repro.core.control_plane.online import (
    OnlineControlConfig,
    OnlineControlStats,
)
from repro.core.policies import (
    AllLocalPolicy,
    PolicyStats,
    PondTracePolicy,
    PredictionPolicy,
    StaticFractionPolicy,
)
from repro.core.prediction.combined import CombinedOperatingPoint

__all__ = [
    "FleetSimulator",
    "FleetResult",
    "FleetShardResult",
    "FleetCapacitySearchResult",
    "PoolTopology",
    "pond_policy_factory",
    "static_policy_factory",
    "all_local_policy_factory",
    "prediction_policy_factory",
]

#: A policy factory builds one fresh policy per shard (index -> policy); it
#: runs inside the worker, so per-shard policies never share mutable state.
PolicyFactory = Callable[[int], object]


# -- picklable policy factories ------------------------------------------------------
def _build_pond_policy(operating_point: CombinedOperatingPoint,
                       kwargs: dict, shard_index: int) -> PondTracePolicy:
    return PondTracePolicy(operating_point, **kwargs)


def pond_policy_factory(operating_point: CombinedOperatingPoint,
                        **kwargs) -> PolicyFactory:
    """Picklable factory producing one ``PondTracePolicy`` per shard.

    All shards share the same seed (default 0 via ``PondTracePolicy``), which
    is safe *and* required: decisions are keyed per VM id, so a VM gets the
    same allocation no matter which shard evaluates it.
    """
    return functools.partial(_build_pond_policy, operating_point, kwargs)


def _build_static_policy(kwargs: dict, shard_index: int) -> StaticFractionPolicy:
    return StaticFractionPolicy(**kwargs)


def static_policy_factory(**kwargs) -> PolicyFactory:
    """Picklable factory producing one ``StaticFractionPolicy`` per shard."""
    return functools.partial(_build_static_policy, kwargs)


def _build_all_local_policy(shard_index: int) -> AllLocalPolicy:
    return AllLocalPolicy()


def all_local_policy_factory() -> PolicyFactory:
    """Picklable factory producing one ``AllLocalPolicy`` per shard."""
    return _build_all_local_policy


def _build_prediction_policy(policy: PredictionPolicy,
                             shard_index: int) -> PredictionPolicy:
    # Fresh stats per shard, shared (read-only) trained models: policies
    # travel to workers by pickle, so the original's counters never alias.
    return PredictionPolicy(
        policy.untouched_model,
        policy.latency_model,
        slice_gb=policy.slice_gb,
        touch_violation_probability=policy.touch_violation_probability,
        seed=policy.seed,
    )


def prediction_policy_factory(policy: Optional[PredictionPolicy] = None,
                              **train_kwargs) -> PolicyFactory:
    """Picklable factory producing one ``PredictionPolicy`` per shard.

    Train once, fan out everywhere: the models are trained here (or passed
    in pre-trained via ``policy``) and shipped to every shard worker by
    pickle, so all shards decide with identical model state.  Like the other
    factories, decisions are keyed per VM id -- a VM gets the same zNUMA
    split no matter which shard evaluates it.
    """
    if policy is None:
        policy = PredictionPolicy.train(**train_kwargs)
    elif train_kwargs:
        raise ValueError("pass either a pre-trained policy or train kwargs")
    return functools.partial(_build_prediction_policy, policy)


@dataclass(frozen=True)
class FleetShardResult:
    """One shard's replay: the cluster result plus savings inputs."""

    shard_id: str
    shard_index: int
    n_vms: int
    n_servers: int
    sockets_per_server: int
    pool_size_sockets: int
    result: SimulationResult
    #: Memory-unconstrained no-pooling uniform baseline, if requested.
    baseline_required_dram_gb: Optional[float]
    policy_stats: Optional[PolicyStats]
    #: Wall-clock seconds of the pooled replay alone (excludes trace
    #: generation and the baseline replay) -- the fleet benchmark compares
    #: these across the batch and per-VM-callback paths.
    run_seconds: float

    @property
    def required_local_dram_gb(self) -> float:
        return self.result.uniform_required_local_dram_gb

    @property
    def required_pool_dram_gb(self) -> float:
        return uniform_pool_requirement_gb(
            self.result, self.pool_size_sockets,
            self.sockets_per_server, self.n_servers,
        )

    @property
    def savings(self) -> PoolSavings:
        """This shard's single-cluster savings (requires a baseline run)."""
        if self.baseline_required_dram_gb is None:
            raise ValueError(
                "shard was run with compute_baseline=False; savings need the "
                "no-pooling baseline"
            )
        return PoolSavings(
            pool_size_sockets=self.pool_size_sockets,
            baseline_dram_gb=self.baseline_required_dram_gb,
            required_local_dram_gb=self.required_local_dram_gb,
            required_pool_dram_gb=self.required_pool_dram_gb,
            average_pool_fraction=self.result.average_pool_fraction,
        )


@dataclass
class FleetResult:
    """Merged view over all shards of one fleet run."""

    shards: List[FleetShardResult] = field(default_factory=list)
    #: Cross-shard pool topology of the run (``None`` for the classic
    #: shardwise path, where every pool group is owned by one shard).
    pool_topology: Optional[PoolTopology] = None
    #: Fleet-level per-group pool peaks (topology runs only), keyed by fleet
    #: group id.  Spanning groups have no owning shard, so their peaks live
    #: here rather than in any shard's ``result.pool_peak_gb``.
    fleet_pool_peak_gb: Optional[Dict[int, float]] = None

    # -- merged per-entity views ----------------------------------------------------
    @property
    def server_peak_local_gb(self) -> Dict[str, float]:
        """Per-server local peaks across the fleet, keyed ``shard/server``."""
        merged: Dict[str, float] = {}
        for shard in self.shards:
            for server_id, peak in shard.result.server_peak_local_gb.items():
                merged[f"{shard.shard_id}/{server_id}"] = peak
        return merged

    @property
    def pool_peak_gb(self) -> Dict[Tuple[str, int], float]:
        """Per-pool-group peaks across the fleet, keyed ``(shard, group)``."""
        merged: Dict[Tuple[str, int], float] = {}
        for shard in self.shards:
            for group, peak in shard.result.pool_peak_gb.items():
                merged[(shard.shard_id, group)] = peak
        return merged

    def results(self) -> Dict[str, SimulationResult]:
        """Per-shard simulation results (e.g. for stranding analysis)."""
        return {shard.shard_id: shard.result for shard in self.shards}

    # -- aggregates -----------------------------------------------------------------
    @property
    def n_vms(self) -> int:
        return sum(s.n_vms for s in self.shards)

    @property
    def placed_vms(self) -> int:
        return sum(s.result.placed_vms for s in self.shards)

    @property
    def rejected_vms(self) -> int:
        return sum(s.result.rejected_vms for s in self.shards)

    @property
    def required_local_dram_gb(self) -> float:
        return sum(s.required_local_dram_gb for s in self.shards)

    @property
    def required_pool_dram_gb(self) -> float:
        """Uniform pool provisioning for the fleet.

        Shardwise runs (and degenerate per-shard topologies) sum each shard's
        own uniform requirement, exactly as before; a spanning topology has
        fleet-owned groups, so the requirement is computed from the fleet
        ledger's per-group peaks instead.
        """
        if self.pool_topology is not None and not self.pool_topology.is_per_shard:
            return self.pool_topology.uniform_pool_requirement_gb(
                self.fleet_pool_peak_gb or {}
            )
        return sum(s.required_pool_dram_gb for s in self.shards)

    @property
    def baseline_dram_gb(self) -> float:
        if any(s.baseline_required_dram_gb is None for s in self.shards):
            raise ValueError("fleet was run with compute_baseline=False")
        return sum(s.baseline_required_dram_gb for s in self.shards)

    @property
    def total_run_seconds(self) -> float:
        """Summed pooled-replay seconds across shards (timing, not savings)."""
        return sum(s.run_seconds for s in self.shards)

    @property
    def policy_stats(self) -> PolicyStats:
        """Policy accounting merged across shards."""
        merged = PolicyStats()
        for shard in self.shards:
            if shard.policy_stats is not None:
                merged.add(shard.policy_stats)
        return merged

    @property
    def online_stats(self) -> OnlineControlStats:
        """Online QoS/mitigation accounting merged across shards.

        All zeros when the fleet ran without ``online=...`` (shards then
        carry no stats) or with mitigation disabled.
        """
        merged = OnlineControlStats()
        for shard in self.shards:
            stats = shard.result.online_stats
            if stats is not None:
                merged.add(stats)
        return merged

    @property
    def fault_stats(self) -> FaultImpactStats:
        """EMC fault-impact accounting merged across shards.

        All zeros when the fleet ran without ``faults=...`` (shards then
        carry no stats) or when no scheduled event fired.
        """
        merged = FaultImpactStats()
        for shard in self.shards:
            stats = shard.result.fault_stats
            if stats is not None:
                merged.add(stats)
        return merged

    @property
    def savings(self) -> PoolSavings:
        """Fleet DRAM savings: the component-wise sum of the shard savings."""
        if not self.shards:
            raise ValueError("fleet result has no shards")
        total_memory = sum(
            s.result.total_memory_gb_allocated for s in self.shards
        )
        total_pool = sum(s.result.total_pool_gb_allocated for s in self.shards)
        return PoolSavings(
            pool_size_sockets=self.shards[0].pool_size_sockets,
            baseline_dram_gb=self.baseline_dram_gb,
            required_local_dram_gb=self.required_local_dram_gb,
            required_pool_dram_gb=self.required_pool_dram_gb,
            average_pool_fraction=(total_pool / total_memory) if total_memory else 0.0,
        )


@dataclass(frozen=True)
class FleetCapacitySearchResult:
    """Output of :meth:`FleetSimulator.capacity_search`.

    ``savings`` is directly comparable with
    :meth:`PoolDimensioner.evaluate_capacity_search` output (and equal to it
    for a single-shard fleet); the extra fields expose the dimensioning the
    search converged on.
    """

    savings: PoolSavings
    #: The shared uniform per-server DRAM the searches converged on.
    baseline_per_server_gb: float
    pooled_per_server_gb: float
    #: Per-shard pool-blade capacity (GB per pool group), aligned with
    #: ``shard_configs``.  Populated for the classic shardwise search and
    #: for degenerate per-shard topologies; empty for spanning topologies,
    #: whose provisioning lives in ``pool_capacity_gb_by_group``.
    per_shard_pool_capacity_gb: Tuple[float, ...]
    total_vms: int
    #: Fleet-aggregated rejection budget the constrained replays had to meet.
    rejection_budget: int
    #: Policy accounting merged across shards.  Counts accumulate over every
    #: search probe (each probe re-evaluates the same VMs), so use the
    #: percentage properties, which are invariant to the number of probes.
    policy_stats: PolicyStats
    #: Cross-shard topology the search provisioned for (``None``: classic
    #: per-shard groups).
    pool_topology: Optional[PoolTopology] = None
    #: Per-group provisioned pool capacity for topology searches, keyed by
    #: fleet group id (uniform within each provisioning domain).
    pool_capacity_gb_by_group: Optional[Dict[int, float]] = None
    #: Speculative-probe accounting of this call (parallel searches only;
    #: ``None`` for sequential searches).  Purely diagnostic -- speculation
    #: never changes probe verdicts or the returned dimensioning.
    speculation: Optional[SpeculationStats] = field(
        default=None, compare=False
    )


@dataclass(frozen=True)
class _ShardSpec:
    """Everything one worker needs to run a shard (must stay picklable)."""

    index: int
    config: TraceGenConfig
    trace: Optional[TraceInput]
    policy_factory: Optional[PolicyFactory]
    batch: bool
    compute_baseline: bool
    pool_size_sockets: int
    pool_capacity_gb_per_group: float
    constrain_memory: bool
    sample_interval_s: float
    scheduler_strategy: str
    #: Placement engine for the shard's replays (see repro.cluster.engine).
    engine: Optional[str] = None
    #: Precomputed no-pooling baseline (skips the baseline replay).
    baseline_required_dram_gb: Optional[float] = None
    #: When set (and no trace is supplied), the worker replays a lazy
    #: ``GeneratedTraceStream`` of this chunk size instead of materialising.
    stream_chunk_size: Optional[int] = None
    #: Online QoS/mitigation stage for the pooled replay (array engine only;
    #: see repro.core.control_plane.online).
    online: Optional[OnlineControlConfig] = None
    #: EMC fault-injection schedule for the pooled replay, already filtered
    #: to this shard's local events (array engine only; see
    #: repro.cluster.faults and DESIGN.md section 11).
    faults: Optional[FaultSchedule] = None


def _shard_trace_input(cfg: TraceGenConfig, trace: Optional[TraceInput],
                       stream_chunk_size: Optional[int]) -> TraceInput:
    """Resolve a shard's replay input: supplied trace/stream, lazy stream,
    or (the legacy default) a freshly materialised trace."""
    if trace is not None:
        return trace
    if stream_chunk_size is not None:
        return TraceGenerator(cfg).stream(stream_chunk_size)
    return TraceGenerator(cfg).generate_bulk()


def _shard_baseline_gb(cfg: TraceGenConfig, trace: TraceInput,
                       sample_interval_s: float, scheduler_strategy: str,
                       engine: Optional[str] = None) -> float:
    """One shard's no-pooling uniform baseline (memory-unconstrained replay)."""
    baseline_sim = ClusterSimulator(
        n_servers=cfg.n_servers,
        server_config=cfg.server_config,
        pool_size_sockets=0,
        constrain_memory=False,
        sample_interval_s=sample_interval_s,
        scheduler_strategy=scheduler_strategy,
        engine=engine,
        record_placements=False,
    )
    return baseline_sim.run(trace).uniform_required_local_dram_gb


def _baseline_task(
    args: Tuple[TraceGenConfig, Optional[TraceInput], float, str,
                Optional[int], Optional[str]]
) -> float:
    """Baseline replay for one shard; module-level so a pool can pickle it."""
    cfg, trace, sample_interval_s, scheduler_strategy, stream_chunk_size, engine = args
    trace = _shard_trace_input(cfg, trace, stream_chunk_size)
    return _shard_baseline_gb(cfg, trace, sample_interval_s, scheduler_strategy,
                              engine)


def _run_shard(spec: _ShardSpec) -> FleetShardResult:
    """Generate (if needed) and replay one shard; module-level for pickling."""
    cfg = spec.config
    trace = _shard_trace_input(cfg, spec.trace, spec.stream_chunk_size)
    policy = spec.policy_factory(spec.index) if spec.policy_factory else None
    simulator = ClusterSimulator(
        n_servers=cfg.n_servers,
        server_config=cfg.server_config,
        pool_size_sockets=spec.pool_size_sockets,
        pool_capacity_gb_per_group=spec.pool_capacity_gb_per_group,
        constrain_memory=spec.constrain_memory,
        sample_interval_s=spec.sample_interval_s,
        scheduler_strategy=spec.scheduler_strategy,
        engine=spec.engine,
        record_placements=False,
    )
    start = time.perf_counter()
    if policy is not None and not spec.batch and hasattr(policy, "decide_batch"):
        # Forced per-VM-callback path (the batch engine's differential /
        # benchmark baseline): hide decide_batch from the simulator.
        result = simulator.run(trace, policy=policy.__call__,
                               online=spec.online, faults=spec.faults)
    else:
        result = simulator.run(trace, policy=policy, online=spec.online,
                               faults=spec.faults)
    run_seconds = time.perf_counter() - start

    baseline = spec.baseline_required_dram_gb
    if baseline is None and spec.compute_baseline:
        baseline = _shard_baseline_gb(
            cfg, trace, spec.sample_interval_s, spec.scheduler_strategy,
            spec.engine,
        )

    return FleetShardResult(
        shard_id=cfg.cluster_id,
        shard_index=spec.index,
        # Every record is either placed or rejected, so this equals the trace
        # length -- without needing a __len__, which streams don't have.
        n_vms=result.placed_vms + result.rejected_vms,
        n_servers=cfg.n_servers,
        sockets_per_server=cfg.server_config.sockets,
        pool_size_sockets=spec.pool_size_sockets,
        result=result,
        baseline_required_dram_gb=baseline,
        policy_stats=getattr(policy, "stats", None),
        run_seconds=run_seconds,
    )


#: Per-process state for fleet capacity-search probe workers, set by the
#: pool initializer (the heavy shard inputs ship once per worker, not per
#: probe; policy factories -- tiny picklables -- travel with each task so
#: one session serves every policy of a study grid).
_FLEET_PROBE_STATE: dict = {}


def _fleet_probe_init(shard_configs, inputs,
                      sample_interval_s, scheduler_strategy, engine) -> None:
    _FLEET_PROBE_STATE.update(
        shard_configs=shard_configs, inputs=inputs,
        sample_interval_s=sample_interval_s,
        scheduler_strategy=scheduler_strategy, engine=engine,
    )


def _run_fleet_probe(
    task: Tuple[Optional[PolicyFactory], int, int, float, Optional[float]]
) -> CapacityProbeOutcome:
    """Probe task: (policy_factory, shard, pool_sockets, pool_capacity, dram).

    The policy is rebuilt per probe (decisions are digest-keyed, so a fresh
    instance decides identically), which makes the returned ``policy_stats``
    a clean per-probe delta.
    """
    factory, shard, pool_sockets, pool_capacity_gb, dram = task
    state = _FLEET_PROBE_STATE
    cfg = state["shard_configs"][shard]
    policy = factory(shard) if factory is not None else None
    result = capacity_probe_replay(
        state["inputs"][shard], policy, cfg.n_servers, cfg.server_config,
        pool_sockets, pool_capacity_gb, dram, state["sample_interval_s"],
        state["scheduler_strategy"], state["engine"],
    )
    return probe_outcome_of(result, policy)


def _run_fleet_topology_probe(
    task: Tuple[Optional[PolicyFactory], PoolTopology,
                Optional[Tuple[Tuple[int, float], ...]], Optional[float]]
) -> CapacityProbeOutcome:
    """Topology probe task: (policy_factory, topology, caps_items, dram).

    A cross-shard replay cannot be split by shard -- its pool groups span
    shards -- so one task is one **whole-fleet** merged replay; parallelism
    for topology searches comes from running speculated bisection candidates
    concurrently, not from sharding.  ``caps_items=None`` is the
    unconstrained provisioning replay (step 3'); otherwise the candidate
    replay against the provisioned per-group capacities.  Policies are
    rebuilt per probe (decisions are digest-keyed, so fresh instances decide
    identically), making the returned ``policy_stats`` a clean per-probe
    delta.
    """
    factory, topology, caps_items, dram = task
    state = _FLEET_PROBE_STATE
    shard_configs = state["shard_configs"]
    n_shards = len(shard_configs)
    n_servers_list = [cfg.n_servers for cfg in shard_configs]
    policies = [
        factory(i) if factory is not None else None for i in range(n_shards)
    ]
    for policy in policies:
        stats = getattr(policy, "stats", None)
        if stats is not None:
            policy.stats = type(stats)()
    if caps_items is None:
        server_cfg_list = [cfg.server_config for cfg in shard_configs]
        capacity: object = float("inf")
        constrain = False
    else:
        candidate = capacity_candidate_config(
            shard_configs[0].server_config, dram
        )
        server_cfg_list = [candidate] * n_shards
        capacity = dict(caps_items)
        constrain = True
    results, ledger = replay_crossshard(
        state["inputs"], policies, n_servers_list, server_cfg_list,
        topology, capacity, constrain, state["sample_interval_s"],
    )
    merged = None
    for policy in policies:
        stats = getattr(policy, "stats", None)
        if stats is not None:
            if merged is None:
                merged = PolicyStats()
            merged.add(stats)
    return CapacityProbeOutcome(
        placed_vms=sum(r.placed_vms for r in results),
        rejected_vms=sum(r.rejected_vms for r in results),
        pool_peak_gb=dict(ledger.peak_gb),
        total_pool_gb=sum(r.total_pool_gb_allocated for r in results),
        total_memory_gb=sum(r.total_memory_gb_allocated for r in results),
        policy_stats=merged,
    )


class _FleetProbeSession(_ProbeSessionBase):
    """Memoised fleet capacity-search probes on a process pool.

    One candidate DRAM size means one replay per shard; the session keys
    probes on ``(factory, shard, pool_sockets, pool_capacity, dram)`` --
    the factory via the shared value-based fingerprint (see
    ``repro.cluster.pool._ProbeSessionBase``), so mutating a factory's
    underlying state between calls invalidates its memos -- and
    dispatches them to workers, so the shards of a candidate run in parallel
    -- and speculative bisection candidates (see
    :meth:`prefetch_bisection`) overlap with the verdict the search is
    waiting on.  Worker policy stats are collected per probe and drained per
    policy factory.

    The session is **reusable across ``capacity_search`` calls**: the pool
    initializer ships the heavy shard-input list once, policy factories ride
    along with each probe task, and memoised outcomes survive between calls
    (probes are deterministic per key).  ``FleetSimulator`` keeps one session
    alive per trace-input set and closes it when the inputs or the fleet
    configuration change; the session also supports the context-manager
    protocol, ``close()`` is idempotent, and a ``weakref.finalize`` guard
    shuts the worker pool down if the session is dropped without closing.

    The pool initializer hands every worker the full shard-input list.
    Under the fork start method (Linux, the deployment target) that is
    copy-on-write -- workers share the parent's trace pages -- but under
    spawn each worker deserialises its own copy, so memory-constrained
    spawn platforms should prefer ``stream_chunk_size`` (lazy streams are
    tiny to ship) over pregenerated materialised traces.
    """

    def __init__(self, fleet: "FleetSimulator",
                 inputs: Sequence[TraceInput]) -> None:
        super().__init__()
        workers = fleet.max_workers or 1
        self._n_shards = len(fleet.shard_configs)
        self._attach_executor(
            ProcessPoolExecutor(
                max_workers=workers,
                initializer=_fleet_probe_init,
                initargs=(
                    list(fleet.shard_configs), list(inputs),
                    fleet.sample_interval_s, fleet.scheduler_strategy,
                    fleet.engine,
                ),
            ),
            max_inflight=max(2 * workers, 2 * self._n_shards),
        )

    def submit(self, factory: Optional[PolicyFactory], shard: int,
               pool_sockets: int, pool_capacity_gb: float,
               dram: Optional[float], speculative: bool = False) -> None:
        """Submit one shard probe unconditionally.

        Deliberately uncapped: :meth:`candidate_rejections` submits probes
        the search *will* block on, so throttling belongs only to the
        speculative :meth:`prefetch_bisection` path (which marks its submits
        ``speculative`` for the adaptive controller's accounting).
        """
        key = (self._token(factory), shard, pool_sockets, pool_capacity_gb,
               dram)
        if key in self._outcomes or key in self._futures:
            return
        self._futures[key] = self._executor.submit(
            _run_fleet_probe, (factory, shard, pool_sockets,
                               pool_capacity_gb, dram)
        )
        if speculative:
            self._mark_speculative(key)

    def outcome(self, factory: Optional[PolicyFactory], shard: int,
                pool_sockets: int, pool_capacity_gb: float,
                dram: Optional[float]) -> CapacityProbeOutcome:
        key = (self._token(factory), shard, pool_sockets, pool_capacity_gb,
               dram)
        self._note_consumed(key)
        cached = self._outcomes.get(key)
        if cached is None:
            future = self._futures.pop(key, None)
            if future is None:
                future = self._executor.submit(
                    _run_fleet_probe, (factory, shard, pool_sockets,
                                       pool_capacity_gb, dram)
                )
            cached = future.result()
            self._record_outcome(key, cached)
        return cached

    # -- whole-fleet topology probes ---------------------------------------------------
    def _topology_key(self, factory, topology: PoolTopology,
                      caps_items: Optional[Tuple[Tuple[int, float], ...]],
                      dram: Optional[float]) -> tuple:
        # key[0] stays the factory token so _record_outcome's per-token
        # stat draining covers topology probes too; "topology" disambiguates
        # from per-shard probe keys.
        return (self._token(factory), "topology", self._token(topology),
                caps_items, dram)

    def submit_topology(self, factory: Optional[PolicyFactory],
                        topology: PoolTopology,
                        caps_items: Optional[Tuple[Tuple[int, float], ...]],
                        dram: Optional[float],
                        speculative: bool = False) -> None:
        """Submit one whole-fleet cross-shard replay (see
        :func:`_run_fleet_topology_probe`)."""
        key = self._topology_key(factory, topology, caps_items, dram)
        if key in self._outcomes or key in self._futures:
            return
        self._futures[key] = self._executor.submit(
            _run_fleet_topology_probe, (factory, topology, caps_items, dram)
        )
        if speculative:
            self._mark_speculative(key)

    def topology_outcome(self, factory: Optional[PolicyFactory],
                         topology: PoolTopology,
                         caps_items: Optional[Tuple[Tuple[int, float], ...]],
                         dram: Optional[float]) -> CapacityProbeOutcome:
        """Blocking whole-fleet topology probe result (memoised)."""
        key = self._topology_key(factory, topology, caps_items, dram)
        self._note_consumed(key)
        cached = self._outcomes.get(key)
        if cached is None:
            future = self._futures.pop(key, None)
            if future is None:
                future = self._executor.submit(
                    _run_fleet_topology_probe,
                    (factory, topology, caps_items, dram)
                )
            cached = future.result()
            self._record_outcome(key, cached)
        return cached

    def prefetch_topology_bisection(
        self, factory: Optional[PolicyFactory], topology: PoolTopology,
        caps_items: Optional[Tuple[Tuple[int, float], ...]],
        lo: float, hi: float, depth: Optional[int] = None,
    ) -> None:
        """Speculatively submit whole-fleet replays for upcoming candidates.

        Each speculated candidate costs one merged replay (fanout 1), so
        topology searches can speculate deeper than the per-shard path for
        the same worker budget; ``depth=None`` defers to the adaptive
        controller.
        """
        if depth is None:
            depth = self._adaptive_depth()
        frontier = [(lo, hi)]
        for _ in range(depth):
            next_frontier = []
            for low, high in frontier:
                if self._inflight_full():
                    return
                mid = (low + high) / 2.0
                self.submit_topology(factory, topology, caps_items, mid,
                                     speculative=True)
                next_frontier.append((low, mid))
                next_frontier.append((mid, high))
            frontier = next_frontier

    def candidate_rejections(self, factory: Optional[PolicyFactory],
                             dram: float, pool_sockets: int,
                             pool_caps: Optional[Sequence[float]]) -> int:
        """Fleet-summed rejections for one candidate (all shards in flight)."""
        pooled = pool_caps is not None
        for shard in range(self._n_shards):
            if pooled:
                self.submit(factory, shard, pool_sockets, pool_caps[shard], dram)
            else:
                self.submit(None, shard, 0, 0.0, dram)
        total = 0
        for shard in range(self._n_shards):
            if pooled:
                outcome = self.outcome(
                    factory, shard, pool_sockets, pool_caps[shard], dram
                )
            else:
                outcome = self.outcome(None, shard, 0, 0.0, dram)
            total += outcome.rejected_vms
        return total

    def prefetch_bisection(self, factory: Optional[PolicyFactory],
                           pool_sockets: int,
                           pool_caps: Optional[Sequence[float]],
                           lo: float, hi: float,
                           depth: Optional[int] = None) -> None:
        """Speculatively submit per-shard probes for upcoming candidates.

        ``depth=None`` defers to the adaptive controller with a fanout of
        one candidate = ``n_shards`` probes; an explicit depth pins it.
        """
        if depth is None:
            depth = self._adaptive_depth(fanout=self._n_shards)
        pooled = pool_caps is not None
        frontier = [(lo, hi)]
        for _ in range(depth):
            next_frontier = []
            for low, high in frontier:
                if self._inflight_full():
                    return
                mid = (low + high) / 2.0
                for shard in range(self._n_shards):
                    if pooled:
                        self.submit(factory, shard, pool_sockets,
                                    pool_caps[shard], mid, speculative=True)
                    else:
                        self.submit(None, shard, 0, 0.0, mid,
                                    speculative=True)
                next_frontier.append((low, mid))
                next_frontier.append((mid, high))
            frontier = next_frontier

    def drain_stats(self, factory: Optional[PolicyFactory]) -> PolicyStats:
        """Merge (and clear) the stat deltas of ``factory``'s new probes.

        Draining keeps reused sessions honest: a probe memoised by an earlier
        call contributed its stats to *that* call's result and is not counted
        again.
        """
        merged = PolicyStats()
        for stats in self._drain_stat_deltas(factory):
            merged.add(stats)
        return merged


class FleetSimulator:
    """Shards a fleet workload across N independent cluster simulations.

    Each shard is one cluster: its own trace (materialised or streamed), its
    own simulator replay, its own policy instance; a fleet result is exactly
    the component-wise sum of its shards' single-cluster results.  Three
    execution modes (DESIGN.md sections 3-5):

    * ``max_workers`` fans shards out over a process pool in :meth:`run` and
      :meth:`compute_baselines`;
    * ``stream_chunk_size`` replays each shard through a lazy
      ``GeneratedTraceStream`` so no shard trace is ever materialised (peak
      trace memory drops from O(trace) to O(generation window + chunk +
      live VMs)); it composes
      with either of the other modes;
    * :meth:`capacity_search` lifts the dimensioner's binary search to the
      whole fleet (one shared per-server DRAM size, rejection budget
      aggregated across shards); with ``max_workers > 1`` its probes run on
      a reusable process-pool session (see DESIGN.md section 7);
    * ``pool_topology`` replays the fleet as one merged event stream over
      fleet-owned pool groups, so a group can span cluster shards
      (DESIGN.md section 8); the degenerate per-shard topology is
      byte-identical to the classic shardwise path.

    Reusable executors (the shard-fanout pool and the capacity-search probe
    session) stay alive across calls; ``close()`` -- or using the fleet as a
    context manager -- releases them.

    Worked example -- a streamed 4-cluster savings study::

        base = TraceGenConfig(n_servers=32, duration_days=3.0)
        fleet = FleetSimulator.sharded(
            4, base, pool_size_sockets=16, stream_chunk_size=8192
        )
        result = fleet.run(pond_policy_factory(operating_point))
        print(result.savings.savings_percent)   # summed across shards

        search = fleet.capacity_search(pond_policy_factory(operating_point))
        print(search.savings.savings_percent)   # constrained-replay variant
    """

    def __init__(
        self,
        shard_configs: Sequence[TraceGenConfig],
        pool_size_sockets: int = 0,
        pool_capacity_gb_per_group: float = float("inf"),
        constrain_memory: bool = False,
        sample_interval_s: float = 3600.0,
        scheduler_strategy: str = "indexed",
        engine: Optional[str] = None,
        max_workers: Optional[int] = None,
        stream_chunk_size: Optional[int] = None,
        pool_topology: Optional[PoolTopology] = None,
    ) -> None:
        if not shard_configs:
            raise ValueError("need at least one shard config")
        ids = [cfg.cluster_id for cfg in shard_configs]
        if len(set(ids)) != len(ids):
            raise ValueError("shard cluster_ids must be unique")
        if stream_chunk_size is not None and stream_chunk_size < 1:
            raise ValueError("stream_chunk_size must be >= 1")
        #: Placement engine for every shard replay ("array" by default; the
        #: object path stays available for differential testing).
        self.engine = resolve_engine(engine, scheduler_strategy)
        self.shard_configs = list(shard_configs)
        if pool_topology is not None:
            self._validate_topology(pool_topology, self.shard_configs,
                                    self.engine)
            if pool_size_sockets not in (0, pool_topology.pool_size_sockets):
                raise ValueError(
                    f"pool_size_sockets={pool_size_sockets} conflicts with "
                    f"the topology's {pool_topology.pool_size_sockets}"
                )
            pool_size_sockets = pool_topology.pool_size_sockets
        #: Cross-shard pool topology; ``None`` keeps the classic shardwise
        #: path where every pool group is confined to one shard.
        self.pool_topology = pool_topology
        self.pool_size_sockets = pool_size_sockets
        self.pool_capacity_gb_per_group = pool_capacity_gb_per_group
        self.constrain_memory = constrain_memory
        self.sample_interval_s = sample_interval_s
        self.scheduler_strategy = scheduler_strategy
        self.max_workers = max_workers
        self.stream_chunk_size = stream_chunk_size
        # capacity_search memos -- (core rejections, total VMs) and the
        # no-pool baseline per (search_steps, rejection_tolerance) -- both
        # pool-size- and policy-independent, so a Figure-21-style grid pays
        # for them once instead of once per cell.  Valid per trace-input set:
        # ``_capacity_cache_key`` holds the ``traces`` argument they were
        # computed for (``None`` = the fleet's own deterministic inputs) by
        # strong reference, so its identity cannot be recycled while cached.
        self._capacity_cache_key: Optional[Sequence[TraceInput]] = None
        self._capacity_core_stats: Optional[Tuple[int, int]] = None
        self._capacity_baseline_cache: Dict[Tuple[int, float], float] = {}
        # Reusable executors (ROADMAP: probe-pool sessions survive across
        # calls).  ``_capacity_inputs`` caches the resolved per-shard replay
        # inputs alongside the memos above, so a reused probe session and a
        # repeated capacity_search agree on input identity; ``close()`` (or
        # the context-manager exit) releases everything.
        self._capacity_inputs: Optional[List[TraceInput]] = None
        self._probe_session: Optional[_FleetProbeSession] = None
        self._probe_session_fingerprint: Optional[tuple] = None
        self._shard_pool: Optional[ProcessPoolExecutor] = None

    @staticmethod
    def _validate_topology(topology: PoolTopology,
                           shard_configs: Sequence[TraceGenConfig],
                           engine: str) -> None:
        if engine != "array":
            # replay_crossshard is built on ArrayPlacementEngine; silently
            # replaying on it while the fleet is configured for the object
            # path would mislabel differential results.
            raise ValueError(
                "cross-shard pool topologies replay on the array engine; "
                "engine='object' / scheduler_strategy='linear' are not "
                "supported with pool_topology"
            )
        sizes = tuple(cfg.n_servers for cfg in shard_configs)
        if topology.shard_sizes != sizes:
            raise ValueError(
                f"topology maps shard sizes {topology.shard_sizes}, fleet "
                f"has {sizes}"
            )
        server_config = shard_configs[0].server_config
        if any(cfg.server_config != server_config for cfg in shard_configs):
            raise ValueError(
                "cross-shard pool topologies require a homogeneous "
                "ServerConfig across shards"
            )
        if topology.sockets_per_server != server_config.sockets:
            raise ValueError(
                f"topology assumes {topology.sockets_per_server} sockets per "
                f"server, shard configs have {server_config.sockets}"
            )

    # -- lifecycle -------------------------------------------------------------------
    def close(self) -> None:
        """Shut down reusable executors and drop cached capacity inputs.

        Idempotent; the fleet remains usable afterwards (executors and
        sessions are recreated lazily on the next call).
        """
        if self._probe_session is not None:
            self._probe_session.close()
            self._probe_session = None
        self._probe_session_fingerprint = None
        if self._shard_pool is not None:
            self._shard_pool_finalizer.detach()
            self._shard_pool.shutdown(wait=True, cancel_futures=True)
            self._shard_pool = None
        self._capacity_inputs = None
        self._capacity_cache_key = None
        self._capacity_core_stats = None
        self._capacity_baseline_cache = {}

    def __enter__(self) -> "FleetSimulator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _shard_executor(self) -> ProcessPoolExecutor:
        """The reusable shard-fanout pool for :meth:`run` / baselines.

        Kept alive across calls (spawning a pool per call wastes worker
        startup on every cell of a study grid); closed by :meth:`close`.
        """
        if self._shard_pool is None:
            self._shard_pool = ProcessPoolExecutor(max_workers=self.max_workers)
            # GC guard: fleets dropped without close() must not leave worker
            # processes behind until interpreter exit.
            self._shard_pool_finalizer = weakref.finalize(
                self, _shutdown_executor, self._shard_pool
            )
        return self._shard_pool

    # -- constructors ----------------------------------------------------------------
    @classmethod
    def sharded(cls, n_shards: int, base_config: TraceGenConfig,
                **kwargs) -> "FleetSimulator":
        """Homogeneous fleet: ``n_shards`` copies of ``base_config`` with
        per-shard cluster ids and seeds (``base seed + index``)."""
        if n_shards < 1:
            raise ValueError("need at least one shard")
        configs = [
            replace(
                base_config,
                cluster_id=f"{base_config.cluster_id}-shard-{i:03d}",
                region=f"region-{i % 3}",
                seed=base_config.seed + i,
            )
            for i in range(n_shards)
        ]
        return cls(configs, **kwargs)

    @classmethod
    def utilization_sweep(cls, n_shards: int, base_config: TraceGenConfig,
                          utilization_range: Sequence[float] = (0.55, 0.95),
                          seed: int = 3, **kwargs) -> "FleetSimulator":
        """Fleet with utilisation spread over ``utilization_range`` (the
        Figure 2a fleet shape; mirrors ``tracegen.generate_fleet``)."""
        configs = fleet_shard_configs(n_shards, base_config, utilization_range, seed)
        return cls(configs, **kwargs)

    # -- execution -------------------------------------------------------------------
    def generate_traces(self) -> List[ClusterTrace]:
        """Pregenerate every shard's trace (serially, in this process)."""
        return [TraceGenerator(cfg).generate_bulk() for cfg in self.shard_configs]

    def compute_baselines(
        self, traces: Optional[Sequence[TraceInput]] = None
    ) -> List[float]:
        """No-pooling uniform baseline per shard, for reuse across runs.

        The baseline replay is pool-independent, so callers sweeping several
        pool sizes or policies over the same traces should compute it once
        here and pass it to :meth:`run` via ``baselines`` instead of letting
        every run repeat it per shard.
        """
        if traces is not None and len(traces) != len(self.shard_configs):
            raise ValueError(
                f"got {len(traces)} traces for {len(self.shard_configs)} shards"
            )
        tasks = [
            (cfg, traces[i] if traces is not None else None,
             self.sample_interval_s, self.scheduler_strategy,
             self.stream_chunk_size, self.engine)
            for i, cfg in enumerate(self.shard_configs)
        ]
        if self.max_workers and self.max_workers > 1 and len(tasks) > 1:
            try:
                return list(self._shard_executor().map(_baseline_task, tasks))
            except BaseException:
                # Executor hardening: never leave a reusable pool in an
                # unknown state after a failure -- tear it down (a later
                # call recreates it lazily).
                self.close()
                raise
        return [_baseline_task(task) for task in tasks]

    def run(
        self,
        policy_factory: Optional[PolicyFactory] = None,
        traces: Optional[Sequence[TraceInput]] = None,
        batch: bool = True,
        compute_baseline: Optional[bool] = None,
        baselines: Optional[Sequence[float]] = None,
        online: Optional[OnlineControlConfig] = None,
        faults: Optional[FaultSchedule] = None,
    ) -> FleetResult:
        """Run every shard and merge the results.

        ``traces`` optionally supplies pregenerated shard traces (aligned
        with ``shard_configs``); otherwise each worker generates its own,
        which parallelises generation under a process pool.  ``batch``
        selects the vectorized ``decide_batch`` path (default) or forces the
        legacy per-VM callback.  ``compute_baseline`` adds a no-pooling
        baseline replay per shard so savings can be computed; it defaults to
        on exactly when the fleet pools memory.  ``baselines`` supplies
        precomputed per-shard baselines (see :meth:`compute_baselines`) and
        skips those replays entirely.  ``online`` activates the online
        QoS/mitigation stage in every shard's pooled replay (array engine
        only); per-shard accounting lands on each
        ``shard.result.online_stats`` and merges via
        :attr:`FleetResult.online_stats`.  ``faults`` injects a seeded EMC
        fault schedule (see :mod:`repro.cluster.faults`): on the classic
        shardwise path each shard replays the events addressed to it via
        ``FaultSchedule.for_shard``; on a topology run the whole schedule
        feeds the merged cross-shard pump, where ``FaultEvent.group`` ids
        are fleet group ids and the ``shard`` field is ignored.  Impact
        accounting lands on each ``shard.result.fault_stats`` and merges
        via :attr:`FleetResult.fault_stats`.
        """
        if traces is not None and len(traces) != len(self.shard_configs):
            raise ValueError(
                f"got {len(traces)} traces for {len(self.shard_configs)} shards"
            )
        if baselines is not None and len(baselines) != len(self.shard_configs):
            raise ValueError(
                f"got {len(baselines)} baselines for {len(self.shard_configs)} shards"
            )
        if compute_baseline is None:
            compute_baseline = bool(self.pool_size_sockets)
        if self.pool_topology is not None:
            return self._run_topology(
                policy_factory, traces, batch, compute_baseline, baselines,
                online, faults,
            )
        specs = [
            _ShardSpec(
                index=i,
                config=cfg,
                trace=traces[i] if traces is not None else None,
                policy_factory=policy_factory,
                batch=batch,
                compute_baseline=compute_baseline,
                pool_size_sockets=self.pool_size_sockets,
                pool_capacity_gb_per_group=self.pool_capacity_gb_per_group,
                constrain_memory=self.constrain_memory,
                sample_interval_s=self.sample_interval_s,
                scheduler_strategy=self.scheduler_strategy,
                engine=self.engine,
                baseline_required_dram_gb=(
                    baselines[i] if baselines is not None else None
                ),
                stream_chunk_size=self.stream_chunk_size,
                online=online,
                faults=faults.for_shard(i) if faults is not None else None,
            )
            for i, cfg in enumerate(self.shard_configs)
        ]
        if self.max_workers and self.max_workers > 1 and len(specs) > 1:
            try:
                shards = list(self._shard_executor().map(_run_shard, specs))
            except BaseException:
                self.close()
                raise
        else:
            shards = [_run_shard(spec) for spec in specs]
        return FleetResult(shards=shards)

    def _run_topology(
        self,
        policy_factory: Optional[PolicyFactory],
        traces: Optional[Sequence[TraceInput]],
        batch: bool,
        compute_baseline: bool,
        baselines: Optional[Sequence[float]],
        online: Optional[OnlineControlConfig] = None,
        faults: Optional[FaultSchedule] = None,
    ) -> FleetResult:
        """:meth:`run` over a cross-shard pool topology.

        The shards replay as one merged time-ordered event stream against a
        fleet-owned group ledger (:func:`replay_crossshard`), so a pool
        group spanning cluster boundaries is drawn from and released to at
        simulation time.  For a degenerate per-shard topology the per-shard
        results are byte-identical to the classic shardwise path
        (differential-tested); the no-pooling baseline replays are
        pool-independent and reuse the shardwise helper unchanged.

        Shards replay interleaved in one process, so per-shard
        ``run_seconds`` cannot be attributed individually; the replay's
        wall-clock is split evenly so ``FleetResult.total_run_seconds``
        stays the fleet-level truth.
        """
        topology = self.pool_topology
        n_shards = len(self.shard_configs)
        inputs: List[TraceInput] = [
            _shard_trace_input(
                cfg, traces[i] if traces is not None else None,
                self.stream_chunk_size,
            )
            for i, cfg in enumerate(self.shard_configs)
        ]
        policies = [
            policy_factory(i) if policy_factory is not None else None
            for i in range(n_shards)
        ]
        replay_policies = [
            # Forced per-VM-callback path (differential baseline): hide
            # decide_batch from the replay, keep the policy for stats.
            policy.__call__
            if (policy is not None and not batch
                and hasattr(policy, "decide_batch"))
            else policy
            for policy in policies
        ]
        start = time.perf_counter()
        results, ledger = replay_crossshard(
            inputs, replay_policies,
            [cfg.n_servers for cfg in self.shard_configs],
            [cfg.server_config for cfg in self.shard_configs],
            topology, self.pool_capacity_gb_per_group,
            self.constrain_memory, self.sample_interval_s,
            record_placements=False, online=online, faults=faults,
        )
        per_shard_seconds = (time.perf_counter() - start) / n_shards
        shards: List[FleetShardResult] = []
        for i, cfg in enumerate(self.shard_configs):
            baseline = baselines[i] if baselines is not None else None
            if baseline is None and compute_baseline:
                baseline = _shard_baseline_gb(
                    cfg, inputs[i], self.sample_interval_s,
                    self.scheduler_strategy, self.engine,
                )
            shards.append(FleetShardResult(
                shard_id=cfg.cluster_id,
                shard_index=i,
                n_vms=results[i].placed_vms + results[i].rejected_vms,
                n_servers=cfg.n_servers,
                sockets_per_server=cfg.server_config.sockets,
                pool_size_sockets=self.pool_size_sockets,
                result=results[i],
                baseline_required_dram_gb=baseline,
                policy_stats=getattr(policies[i], "stats", None),
                run_seconds=per_shard_seconds,
            ))
        return FleetResult(
            shards=shards,
            pool_topology=topology,
            fleet_pool_peak_gb=dict(ledger.peak_gb),
        )

    # -- fleet-level capacity search ---------------------------------------------------
    def _ensure_probe_session(
        self, inputs: Sequence[TraceInput]
    ) -> _FleetProbeSession:
        """The reusable parallel probe session for the cached inputs.

        One session serves every ``capacity_search`` call over the same
        trace-input set -- worker spawn and trace shipping are paid once per
        grid, not once per cell -- and is invalidated (closed and rebuilt)
        when the fleet configuration changes.  Input-set changes are handled
        by the caller alongside the capacity memos.
        """
        fingerprint = (
            tuple(self.shard_configs), self.sample_interval_s,
            self.scheduler_strategy, self.engine, self.max_workers,
        )
        if (self._probe_session is not None
                and self._probe_session_fingerprint == fingerprint):
            return self._probe_session
        if self._probe_session is not None:
            self._probe_session.close()
        self._probe_session = _FleetProbeSession(self, inputs)
        self._probe_session_fingerprint = fingerprint
        return self._probe_session

    def _close_probe_session(self) -> None:
        if self._probe_session is not None:
            self._probe_session.close()
            self._probe_session = None
            self._probe_session_fingerprint = None

    def capacity_search(
        self,
        policy_factory: Optional[PolicyFactory] = None,
        traces: Optional[Sequence[TraceInput]] = None,
        search_steps: int = 7,
        rejection_tolerance: float = 0.002,
        pool_headroom: float = 1.05,
        pool_size_sockets: Optional[int] = None,
        pool_topology: Optional[PoolTopology] = None,
    ) -> FleetCapacitySearchResult:
        """Fleet-level lift of ``PoolDimensioner``'s capacity search.

        Servers are bought with **one** DRAM configuration fleet-wide, so the
        binary search probes a *shared* candidate per-server DRAM size across
        every shard and aggregates the verdict: a candidate is feasible when
        the summed rejections of all shards' memory-constrained replays stay
        within one fleet-wide budget (per-shard core-only rejections summed,
        plus ``max(1, rejection_tolerance * total_vms)``).  The algorithm
        (DESIGN.md section 5):

        1. one memory-unconstrained no-pool replay per shard fixes the
           rejection budget (computed once, reused by both searches);
        2. binary search the smallest shared per-server DRAM with no pooling
           -- the baseline;
        3. one memory-unconstrained *pooled* replay per shard provisions each
           shard's pool groups at ``pool_headroom`` times the worst observed
           per-group peak (pools span shards only when a ``pool_topology``
           is given -- see below);
        4. binary search the smallest shared per-server DRAM with those
           pools in place.

        Shard replays are reused across search iterations: per-shard
        rejection counts are memoised per candidate DRAM size, and (in the
        sequential mode) the feasibility sum short-circuits as soon as the
        budget is exceeded, so later shards are not replayed for clearly
        infeasible candidates.  With ``stream_chunk_size`` set (and no
        pregenerated ``traces``), every probe replays lazy streams and the
        search never materialises a shard trace.

        With ``max_workers > 1`` the probes run on a process pool: the
        independent up-front replays (rejection budget, baseline upper
        bound, pool provisioning) start together, every candidate's shard
        replays run concurrently, and the bisections speculate their
        bracketing candidates (:func:`repro.cluster.pool.bisect_min_dram`).
        The returned ``PoolSavings`` are identical to the sequential
        search's -- the search path is a pure function of the deterministic
        per-candidate rejection counts.  ``policy_stats`` remains a
        diagnostic aggregate over the probes actually executed; the probe
        multiset differs between the modes (early-exited shards
        sequentially, speculative candidates in parallel), so its counts
        and mixing ratios can differ slightly.

        ``pool_size_sockets`` overrides the fleet's configured pool size for
        this call, so a pool-size sweep can reuse one ``FleetSimulator``:
        the pool-independent work (the rejection budget and the no-pool
        baseline search) is computed once per trace-input set and memoised
        across the sweep -- sound because the fleet's own inputs are
        deterministic per config, and a supplied ``traces`` sequence is
        tracked by identity (strong reference).

        For a single-shard fleet this returns exactly what
        ``PoolDimensioner.evaluate_capacity_search`` returns for the same
        trace, policy, and knobs (enforced by a differential test).  All
        shards must share one ``ServerConfig``: uniform fleet provisioning
        is the premise of the search.

        ``pool_topology`` (per call, or set on the fleet) provisions
        **cross-shard pool groups** instead: step 3 becomes one unconstrained
        cross-shard replay that sizes every fleet group at ``pool_headroom``
        times its provisioning domain's worst peak, and step 4's probes are
        full cross-shard constrained replays against that fleet-owned ledger,
        memoised per candidate DRAM size.  With ``max_workers > 1`` those
        replays ship to the persistent probe session as whole-fleet worker
        tasks: the provisioning replay warm-starts alongside the baseline
        search, and the bisection speculates bracketing candidates (a merged
        replay cannot be split by shard, so candidates -- not shards -- are
        the unit of parallelism).  Parallel and sequential topology searches
        return identical savings and dimensioning (differential-tested).
        A degenerate per-shard topology reproduces the classic search's
        savings and dimensioning byte-identically (differential-tested);
        ``policy_stats`` remains a diagnostic whose probe multiset differs.

        Probe executors are **reused across calls**: the parallel session
        ships the shard inputs to its workers once and survives until the
        trace-input set or the fleet configuration changes (or
        :meth:`close`), so a Figure-21-style grid pays worker spawn and
        trace shipping once, not once per cell.  Memoised probe outcomes
        survive with the session -- sound because probes are deterministic
        per key -- and any exception tears the session down before
        propagating.
        """
        if search_steps < 1:
            raise ValueError("search_steps must be >= 1")
        if rejection_tolerance < 0:
            raise ValueError("rejection_tolerance cannot be negative")
        if pool_headroom < 1.0:
            raise ValueError("pool_headroom must be >= 1.0")
        if traces is not None and len(traces) != len(self.shard_configs):
            raise ValueError(
                f"got {len(traces)} traces for {len(self.shard_configs)} shards"
            )
        server_config = self.shard_configs[0].server_config
        if any(cfg.server_config != server_config for cfg in self.shard_configs):
            raise ValueError(
                "capacity_search requires a homogeneous ServerConfig across "
                "shards (servers are provisioned with one DRAM size fleet-wide)"
            )
        n_shards = len(self.shard_configs)
        total_servers = sum(cfg.n_servers for cfg in self.shard_configs)
        topology = pool_topology if pool_topology is not None \
            else self.pool_topology
        if topology is not None:
            self._validate_topology(topology, self.shard_configs, self.engine)
            if pool_size_sockets is not None \
                    and pool_size_sockets != topology.pool_size_sockets:
                raise ValueError(
                    f"pool_size_sockets={pool_size_sockets} conflicts with "
                    f"the topology's {topology.pool_size_sockets}"
                )
            pool_size = topology.pool_size_sockets
        else:
            pool_size = self.pool_size_sockets if pool_size_sockets is None \
                else pool_size_sockets
        if traces is not self._capacity_cache_key:
            self._capacity_cache_key = traces
            self._capacity_core_stats = None
            self._capacity_baseline_cache = {}
            # The probe session shipped the previous input set to its
            # workers; a new input set invalidates both.
            self._capacity_inputs = None
            self._close_probe_session()

        # Per-shard replay inputs, resolved once per input set and cached so
        # repeated searches (and the reusable probe session) agree on input
        # identity: a pregenerated trace, a re-iterable lazy stream, or a
        # materialised trace (legacy default).
        if self._capacity_inputs is None:
            self._capacity_inputs = [
                _shard_trace_input(
                    cfg, traces[i] if traces is not None else None,
                    self.stream_chunk_size,
                )
                for i, cfg in enumerate(self.shard_configs)
            ]
        inputs = self._capacity_inputs
        parallel = bool(self.max_workers and self.max_workers > 1)
        session = self._ensure_probe_session(inputs) if parallel else None
        #: Parent-process policy instances for sequential probes (parallel
        #: probes -- per-shard and whole-fleet topology replays alike --
        #: rebuild their policies inside the worker).
        policies = [
            policy_factory(i)
            if policy_factory is not None and not parallel
            else None
            for i in range(n_shards)
        ]
        inf = float("inf")
        baseline_key = (search_steps, rejection_tolerance)
        try:
            if session is not None:
                # Warm start: every probe chain that does not depend on a
                # previous verdict begins immediately -- budget replays,
                # the baseline search's upper bound, and (classic path) the
                # pool provisioning replays all overlap.
                for shard in range(n_shards):
                    if self._capacity_core_stats is None:
                        session.submit(None, shard, 0, inf, None)
                    if baseline_key not in self._capacity_baseline_cache:
                        session.submit(
                            None, shard, 0, 0.0, server_config.total_dram_gb
                        )
                    if pool_size and topology is None:
                        session.submit(
                            policy_factory, shard, pool_size, inf, None
                        )
                if pool_size and topology is not None:
                    # The whole-fleet provisioning replay (step 3') depends
                    # on no verdict either; it overlaps the baseline search.
                    session.submit_topology(
                        policy_factory, topology, None, None
                    )

            def replay(shard: int, dram_per_server_gb: Optional[float],
                       pool_sockets: int, pool_capacity_gb: float,
                       policy) -> SimulationResult:
                cfg = self.shard_configs[shard]
                return capacity_probe_replay(
                    inputs[shard], policy, cfg.n_servers, cfg.server_config,
                    pool_sockets, pool_capacity_gb, dram_per_server_gb,
                    self.sample_interval_s, self.scheduler_strategy,
                    self.engine,
                )

            # 1. Rejection budget: core/NUMA-fragmentation rejections can
            # never be fixed by DRAM, so they are excluded from every
            # candidate's verdict.  Computed once, shared by both searches
            # (and memoised across calls for the fleet's own deterministic
            # inputs).
            if self._capacity_core_stats is not None:
                core_only_rejections, total_vms = self._capacity_core_stats
            else:
                total_vms = 0
                core_only_rejections = 0
                for shard in range(n_shards):
                    if session is not None:
                        outcome = session.outcome(None, shard, 0, inf, None)
                        core_only_rejections += outcome.rejected_vms
                        total_vms += outcome.placed_vms + outcome.rejected_vms
                    else:
                        result = replay(shard, None, 0, inf, None)
                        core_only_rejections += result.rejected_vms
                        total_vms += result.placed_vms + result.rejected_vms
                self._capacity_core_stats = (core_only_rejections, total_vms)
            budget = core_only_rejections + max(
                1, int(rejection_tolerance * total_vms)
            )

            #: (shard, dram, pooled?) -> rejections; search probes repeat
            #: candidates only rarely, but early-exited shards return cheaply.
            rejection_cache: Dict[Tuple[int, float, bool], int] = {}

            def total_rejections(dram: float,
                                 pool_caps: Optional[List[float]]) -> int:
                total = 0
                pooled = pool_caps is not None
                for shard in range(n_shards):
                    key = (shard, dram, pooled)
                    rejections = rejection_cache.get(key)
                    if rejections is None:
                        if pooled:
                            result = replay(
                                shard, dram, pool_size, pool_caps[shard],
                                policies[shard],
                            )
                        else:
                            result = replay(shard, dram, 0, 0.0, None)
                        rejections = result.rejected_vms
                        rejection_cache[key] = rejections
                    total += rejections
                    if total > budget:
                        break  # infeasible already; skip the remaining shards
                return total

            def min_shared_server_dram(pool_caps: Optional[List[float]]) -> float:
                """Smallest shared per-server DRAM that fits, via the common
                bisection helper.  Sequential probes early-exit the shard
                sum; parallel probes run every shard of a candidate (and the
                speculated next candidates) concurrently -- the verdicts,
                and therefore the result, are identical."""
                factory = policy_factory if pool_caps is not None else None
                if session is not None:
                    def rejections(dram: float) -> int:
                        return session.candidate_rejections(
                            factory, dram, pool_size, pool_caps
                        )

                    def prefetch(lo: float, hi: float) -> None:
                        session.prefetch_bisection(
                            factory, pool_size, pool_caps, lo, hi
                        )
                else:
                    def rejections(dram: float) -> int:
                        return total_rejections(dram, pool_caps)

                    prefetch = None
                return bisect_min_dram(
                    server_config.total_dram_gb, search_steps, budget,
                    rejections, prefetch,
                )

            # 2. No-pooling baseline under the shared-DRAM constraint
            # (pool-size- and policy-independent; memoised like the budget).
            if baseline_key in self._capacity_baseline_cache:
                baseline_per_server = self._capacity_baseline_cache[baseline_key]
            else:
                baseline_per_server = min_shared_server_dram(None)
                self._capacity_baseline_cache[baseline_key] = baseline_per_server
            baseline_gb = baseline_per_server * total_servers

            merged_stats = PolicyStats()
            if pool_size == 0:
                return FleetCapacitySearchResult(
                    savings=PoolSavings(
                        pool_size_sockets=0,
                        baseline_dram_gb=baseline_gb,
                        required_local_dram_gb=baseline_gb,
                        required_pool_dram_gb=0.0,
                        average_pool_fraction=0.0,
                    ),
                    baseline_per_server_gb=baseline_per_server,
                    pooled_per_server_gb=baseline_per_server,
                    per_shard_pool_capacity_gb=tuple(0.0 for _ in range(n_shards)),
                    total_vms=total_vms,
                    rejection_budget=budget,
                    policy_stats=merged_stats,
                    speculation=(
                        session.drain_speculation_stats()
                        if session is not None else None
                    ),
                )
            if topology is not None:
                # 3'. Provision the fleet's pool groups from one
                # unconstrained cross-shard replay: every group of a
                # provisioning domain is sized at headroom times the
                # domain's worst observed peak.  Parallel sessions ran the
                # replay on the worker pool (warm-started alongside the
                # baseline search); sequential searches run it here.
                n_servers_list = [cfg.n_servers for cfg in self.shard_configs]
                if session is not None:
                    provision = session.topology_outcome(
                        policy_factory, topology, None, None
                    )
                    peaks = provision.pool_peak_gb
                    total_pool_allocated = provision.total_pool_gb
                    total_memory_allocated = provision.total_memory_gb
                else:
                    server_cfg_list = [
                        cfg.server_config for cfg in self.shard_configs
                    ]
                    unconstrained_results, ledger = replay_crossshard(
                        inputs, policies, n_servers_list, server_cfg_list,
                        topology, inf, False, self.sample_interval_s,
                    )
                    peaks = ledger.peak_gb
                    total_pool_allocated = 0.0
                    total_memory_allocated = 0.0
                    for shard_result in unconstrained_results:
                        total_pool_allocated += (
                            shard_result.total_pool_gb_allocated
                        )
                        total_memory_allocated += (
                            shard_result.total_memory_gb_allocated
                        )
                caps, required_pool_gb = topology.provision_capacities(
                    peaks, pool_headroom
                )

                # 4'. Smallest shared per-server DRAM with the fleet pools
                # in place.  Every probe is a full cross-shard constrained
                # replay against the provisioned ledger, memoised per
                # candidate DRAM size; the parallel session overlaps each
                # verdict with speculated bracketing candidates (a merged
                # replay cannot be split by shard, so candidates -- not
                # shards -- are the unit of parallelism here).
                if session is not None:
                    caps_items = tuple(sorted(caps.items()))

                    def topo_candidate_rejections(dram: float) -> int:
                        return session.topology_outcome(
                            policy_factory, topology, caps_items, dram
                        ).rejected_vms

                    def topo_prefetch(lo: float, hi: float) -> None:
                        session.prefetch_topology_bisection(
                            policy_factory, topology, caps_items, lo, hi
                        )
                else:
                    topo_rejections: Dict[float, int] = {}

                    def topo_candidate_rejections(dram: float) -> int:
                        cached = topo_rejections.get(dram)
                        if cached is None:
                            candidate = capacity_candidate_config(
                                server_config, dram
                            )
                            probe_results, _ = replay_crossshard(
                                inputs, policies, n_servers_list,
                                [candidate] * n_shards, topology, caps, True,
                                self.sample_interval_s,
                            )
                            cached = sum(
                                r.rejected_vms for r in probe_results
                            )
                            topo_rejections[dram] = cached
                        return cached

                    topo_prefetch = None

                pooled_per_server = bisect_min_dram(
                    server_config.total_dram_gb, search_steps, budget,
                    topo_candidate_rejections, topo_prefetch,
                )
                if session is not None:
                    merged_stats = session.drain_stats(policy_factory)
                else:
                    for policy in policies:
                        stats = getattr(policy, "stats", None)
                        if stats is not None:
                            merged_stats.add(stats)
                if topology.is_per_shard:
                    per_shard_caps = tuple(
                        caps[topology.groups_of_shard(shard)[0]]
                        for shard in range(n_shards)
                    )
                else:
                    # A spanned group belongs to no single shard; read the
                    # provisioning off ``pool_capacity_gb_by_group``.
                    per_shard_caps = ()
                return FleetCapacitySearchResult(
                    savings=PoolSavings(
                        pool_size_sockets=pool_size,
                        baseline_dram_gb=baseline_gb,
                        required_local_dram_gb=(
                            pooled_per_server * total_servers
                        ),
                        required_pool_dram_gb=required_pool_gb,
                        average_pool_fraction=(
                            total_pool_allocated / total_memory_allocated
                            if total_memory_allocated else 0.0
                        ),
                    ),
                    baseline_per_server_gb=baseline_per_server,
                    pooled_per_server_gb=pooled_per_server,
                    per_shard_pool_capacity_gb=per_shard_caps,
                    total_vms=total_vms,
                    rejection_budget=budget,
                    policy_stats=merged_stats,
                    pool_topology=topology,
                    pool_capacity_gb_by_group=caps,
                    speculation=(
                        session.drain_speculation_stats()
                        if session is not None else None
                    ),
                )

            # 3. Provision each shard's pool groups from its unconstrained
            # peaks.
            pool_caps: List[float] = []
            required_pool_gb = 0.0
            total_pool_allocated = 0.0
            total_memory_allocated = 0.0
            for shard in range(n_shards):
                if session is not None:
                    outcome = session.outcome(
                        policy_factory, shard, pool_size, inf, None
                    )
                    peaks = outcome.pool_peak_gb
                    shard_pool_gb = outcome.total_pool_gb
                    shard_memory_gb = outcome.total_memory_gb
                else:
                    unconstrained = replay(
                        shard, None, pool_size, inf, policies[shard]
                    )
                    peaks = unconstrained.pool_peak_gb
                    shard_pool_gb = unconstrained.total_pool_gb_allocated
                    shard_memory_gb = unconstrained.total_memory_gb_allocated
                if peaks:
                    per_group = pool_headroom * max(peaks.values())
                    n_groups = len(peaks)
                else:
                    per_group = 0.0
                    n_groups = 0
                pool_caps.append(per_group)
                required_pool_gb += per_group * n_groups
                total_pool_allocated += shard_pool_gb
                total_memory_allocated += shard_memory_gb

            # 4. Smallest shared per-server DRAM with those pools in place.
            pooled_per_server = min_shared_server_dram(pool_caps)

            if session is not None:
                merged_stats = session.drain_stats(policy_factory)
            else:
                for policy in policies:
                    stats = getattr(policy, "stats", None)
                    if stats is not None:
                        merged_stats.add(stats)
            return FleetCapacitySearchResult(
                savings=PoolSavings(
                    pool_size_sockets=pool_size,
                    baseline_dram_gb=baseline_gb,
                    required_local_dram_gb=pooled_per_server * total_servers,
                    required_pool_dram_gb=required_pool_gb,
                    average_pool_fraction=(
                        total_pool_allocated / total_memory_allocated
                        if total_memory_allocated else 0.0
                    ),
                ),
                baseline_per_server_gb=baseline_per_server,
                pooled_per_server_gb=pooled_per_server,
                per_shard_pool_capacity_gb=tuple(pool_caps),
                total_vms=total_vms,
                rejection_budget=budget,
                policy_stats=merged_stats,
                speculation=(
                    session.drain_speculation_stats()
                    if session is not None else None
                ),
            )
        except BaseException:
            # Executor lifecycle hardening: a failed search must not leave
            # a half-used probe pool behind (the next call rebuilds one).
            self._close_probe_session()
            raise

"""VM arrival/departure trace format with CSV round-tripping.

A trace record mirrors the per-VM events in the Azure dataset the paper
analyses: "a trace from each cluster contains millions of per-VM
arrival/departure events, with the time, duration, resource demands, and
server-id" (Section 3.1).  Our synthetic traces add the opaque-VM metadata
fields (customer id, VM family, guest OS) that the untouched-memory model
consumes and, because the generator knows the ground truth, each record also
carries the VM's realised untouched-memory fraction and a workload name used
to look up latency sensitivity.
"""

from __future__ import annotations

import csv
from dataclasses import MISSING, dataclass, fields
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["VMTraceRecord", "ClusterTrace", "TraceColumns"]


@dataclass(frozen=True)
class VMTraceRecord:
    """One VM's lifetime in a cluster trace."""

    vm_id: str
    cluster_id: str
    arrival_s: float
    lifetime_s: float
    cores: int
    memory_gb: float
    customer_id: str = "anonymous"
    vm_family: str = "general"
    guest_os: str = "linux"
    region: str = "region-0"
    workload_name: str = ""
    untouched_fraction: float = 0.5
    server_id: str = ""

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival time cannot be negative")
        if self.lifetime_s <= 0:
            raise ValueError("lifetime must be positive")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.memory_gb <= 0:
            raise ValueError("memory must be positive")
        if not 0.0 <= self.untouched_fraction <= 1.0:
            raise ValueError("untouched_fraction must be in [0, 1]")

    @property
    def departure_s(self) -> float:
        return self.arrival_s + self.lifetime_s

    @property
    def touched_gb(self) -> float:
        return self.memory_gb * (1.0 - self.untouched_fraction)

    @property
    def untouched_gb(self) -> float:
        return self.memory_gb * self.untouched_fraction


@dataclass(frozen=True)
class TraceColumns:
    """Columnar view of a trace, in iteration (arrival) order.

    Built lazily by :meth:`ClusterTrace.columns` and cached on the trace, so
    batch policy evaluation and the simulator's precomputed-allocation path
    extract per-VM attributes once per trace instead of once per pass.
    """

    vm_ids: Tuple[str, ...]
    memory_gb: np.ndarray
    untouched_fraction: np.ndarray

    @property
    def untouched_gb(self) -> np.ndarray:
        return self.memory_gb * self.untouched_fraction


class ClusterTrace:
    """An ordered collection of VM trace records for one or more clusters."""

    def __init__(self, records: Sequence[VMTraceRecord], cluster_id: Optional[str] = None):
        self.records: List[VMTraceRecord] = sorted(records, key=lambda r: r.arrival_s)
        self._columns: Optional[TraceColumns] = None
        if cluster_id is not None:
            self.cluster_id = cluster_id
        elif self.records:
            self.cluster_id = self.records[0].cluster_id
        else:
            self.cluster_id = "empty"

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[VMTraceRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> VMTraceRecord:
        return self.records[index]

    def columns(self) -> TraceColumns:
        """Cached columnar view of the records, aligned with iteration order.

        The record list is treated as immutable once a columnar view has been
        built; callers that mutate ``records`` afterwards get stale columns.
        """
        if self._columns is None or len(self._columns.vm_ids) != len(self.records):
            n = len(self.records)
            self._columns = TraceColumns(
                vm_ids=tuple(r.vm_id for r in self.records),
                memory_gb=np.fromiter(
                    (r.memory_gb for r in self.records), dtype=np.float64, count=n
                ),
                untouched_fraction=np.fromiter(
                    (r.untouched_fraction for r in self.records), dtype=np.float64, count=n
                ),
            )
        return self._columns

    # -- derived properties -----------------------------------------------------------
    @property
    def duration_s(self) -> float:
        if not self.records:
            return 0.0
        return max(r.departure_s for r in self.records)

    @property
    def arrival_span_s(self) -> float:
        """Time of the last VM arrival (the observation window of the trace)."""
        if not self.records:
            return 0.0
        return max(r.arrival_s for r in self.records)

    @property
    def total_core_hours(self) -> float:
        return sum(r.cores * r.lifetime_s for r in self.records) / 3600.0

    @property
    def total_memory_gb_hours(self) -> float:
        return sum(r.memory_gb * r.lifetime_s for r in self.records) / 3600.0

    def clusters(self) -> List[str]:
        seen: List[str] = []
        for r in self.records:
            if r.cluster_id not in seen:
                seen.append(r.cluster_id)
        return seen

    def for_cluster(self, cluster_id: str) -> "ClusterTrace":
        return ClusterTrace(
            [r for r in self.records if r.cluster_id == cluster_id], cluster_id=cluster_id
        )

    def merge(self, other: "ClusterTrace") -> "ClusterTrace":
        return ClusterTrace(list(self.records) + list(other.records))

    # -- persistence ---------------------------------------------------------------------
    def to_csv(self, path) -> None:
        """Write the trace to a CSV file with a header row."""
        path = Path(path)
        field_names = [f.name for f in fields(VMTraceRecord)]
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=field_names)
            writer.writeheader()
            for record in self.records:
                writer.writerow({name: getattr(record, name) for name in field_names})

    #: Converters for the non-string record fields (CSV stores text only).
    _CSV_CONVERTERS = {
        "arrival_s": float,
        "lifetime_s": float,
        "cores": lambda value: int(float(value)),
        "memory_gb": float,
        "untouched_fraction": float,
    }

    @classmethod
    def from_csv(cls, path) -> "ClusterTrace":
        """Load a trace previously written by :meth:`to_csv`.

        Columns for optional :class:`VMTraceRecord` fields may be absent (or
        empty for non-string fields); the dataclass defaults are used, so
        external traces carrying only the required arrival/departure/demand
        columns load cleanly.  Missing *required* columns raise ``ValueError``.
        """
        path = Path(path)
        record_fields = fields(VMTraceRecord)
        records: List[VMTraceRecord] = []
        with path.open("r", newline="") as handle:
            reader = csv.DictReader(handle)
            for line, row in enumerate(reader, start=2):
                kwargs = {}
                for f in record_fields:
                    value = row.get(f.name)
                    required = f.default is MISSING
                    if value is None or value == "":
                        if required:
                            detail = (
                                f"empty value on line {line} for"
                                if value == "" else "missing"
                            )
                            raise ValueError(
                                f"{path}: {detail} required column {f.name!r}"
                            )
                        continue
                    converter = cls._CSV_CONVERTERS.get(f.name)
                    try:
                        kwargs[f.name] = converter(value) if converter else value
                    except ValueError as exc:
                        raise ValueError(
                            f"{path} line {line}: bad value {value!r} for "
                            f"column {f.name!r}"
                        ) from exc
                records.append(VMTraceRecord(**kwargs))
        return cls(records)

"""VM arrival/departure trace format with CSV round-tripping and streaming.

A trace record mirrors the per-VM events in the Azure dataset the paper
analyses: "a trace from each cluster contains millions of per-VM
arrival/departure events, with the time, duration, resource demands, and
server-id" (Section 3.1).  Our synthetic traces add the opaque-VM metadata
fields (customer id, VM family, guest OS) that the untouched-memory model
consumes and, because the generator knows the ground truth, each record also
carries the VM's realised untouched-memory fraction and a workload name used
to look up latency sensitivity.

Two trace representations coexist (see DESIGN.md section 4):

* :class:`ClusterTrace` -- the fully materialised record list, convenient for
  analysis and small studies.
* :class:`TraceStream` -- a chunked, re-iterable source of
  :class:`TraceColumns` blocks that never holds more than one chunk of
  records in memory.  The simulator and fleet runner consume either form;
  streams keep peak trace memory at O(chunk) -- plus one generation
  window for generator-backed streams -- for million-VM replays.
"""

from __future__ import annotations

import csv
import dataclasses
from contextlib import contextmanager
from dataclasses import MISSING, dataclass, fields
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "VMTraceRecord",
    "ClusterTrace",
    "TraceColumns",
    "TraceStream",
    "MaterializedTraceStream",
    "CsvTraceStream",
    "write_csv",
]


def _is_filelike(obj) -> bool:
    """True for open text handles (``io.StringIO``, files, sockets...).

    The CSV entry points accept either a path or an already-open text
    handle; a handle is recognised structurally (``read``/``write``), never
    by type, so wrappers and duck-typed streams work.
    """
    return hasattr(obj, "read") or hasattr(obj, "write")


def _stream_label(handle) -> str:
    """Human-readable source name for error messages on file-like inputs."""
    name = getattr(handle, "name", None)
    return name if isinstance(name, str) else "<stream>"


@contextmanager
def _open_text(path_or_file, mode: str):
    """Yield ``(handle, label)`` for a path or an open text handle.

    Paths are opened (``newline=""``, the csv-module contract) and closed on
    exit; file-like objects are yielded as-is and **never closed** -- the
    caller owns their lifetime, which is what lets ``to_csv(io.StringIO())``
    hand the buffer back for inspection.
    """
    if _is_filelike(path_or_file):
        yield path_or_file, _stream_label(path_or_file)
    else:
        path = Path(path_or_file)
        with path.open(mode, newline="") as handle:
            yield handle, str(path)


@dataclass(frozen=True)
class VMTraceRecord:
    """One VM's lifetime in a cluster trace."""

    vm_id: str
    cluster_id: str
    arrival_s: float
    lifetime_s: float
    cores: int
    memory_gb: float
    customer_id: str = "anonymous"
    vm_family: str = "general"
    guest_os: str = "linux"
    region: str = "region-0"
    workload_name: str = ""
    untouched_fraction: float = 0.5
    server_id: str = ""

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival time cannot be negative")
        if self.lifetime_s <= 0:
            raise ValueError("lifetime must be positive")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.memory_gb <= 0:
            raise ValueError("memory must be positive")
        if not 0.0 <= self.untouched_fraction <= 1.0:
            raise ValueError("untouched_fraction must be in [0, 1]")

    @property
    def departure_s(self) -> float:
        return self.arrival_s + self.lifetime_s

    @property
    def touched_gb(self) -> float:
        return self.memory_gb * (1.0 - self.untouched_fraction)

    @property
    def untouched_gb(self) -> float:
        return self.memory_gb * self.untouched_fraction


@dataclass(frozen=True)
class TraceColumns:
    """Columnar view of (a chunk of) a trace, in iteration (arrival) order.

    Two producers build these blocks:

    * :meth:`ClusterTrace.columns` -- a cached whole-trace view (``records``
      is ``None``; the owning trace already holds the records), so batch
      policy evaluation and the simulator's precomputed-allocation path
      extract per-VM attributes once per trace instead of once per pass.
    * :class:`TraceStream` chunks -- one block per chunk, carrying the
      chunk's ``records`` tuple as well, so the simulator can replay a chunk
      (and legacy per-record policies can run) without the stream ever
      materialising the full trace.
    """

    vm_ids: Tuple[str, ...]
    memory_gb: np.ndarray
    untouched_fraction: np.ndarray
    #: The chunk's records, present on stream chunks only (``None`` on the
    #: cached whole-trace view, which would otherwise cycle with its trace).
    records: Optional[Tuple[VMTraceRecord, ...]] = None
    #: Replay columns consumed by the array-engine simulator loop; always
    #: populated by :meth:`from_records` / :meth:`ClusterTrace.columns`
    #: (``None`` only on hand-built instances, which the simulator tolerates
    #: by falling back to the record objects).
    arrival_s: Optional[np.ndarray] = None
    departure_s: Optional[np.ndarray] = None
    cores: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.vm_ids)

    @property
    def untouched_gb(self) -> np.ndarray:
        return self.memory_gb * self.untouched_fraction

    @classmethod
    def from_records(cls, records: Iterable[VMTraceRecord]) -> "TraceColumns":
        """Build a self-contained block (columns + records) from records."""
        records = tuple(records)
        n = len(records)
        arrival = np.fromiter(
            (r.arrival_s for r in records), dtype=np.float64, count=n
        )
        lifetime = np.fromiter(
            (r.lifetime_s for r in records), dtype=np.float64, count=n
        )
        return cls(
            vm_ids=tuple(r.vm_id for r in records),
            memory_gb=np.fromiter(
                (r.memory_gb for r in records), dtype=np.float64, count=n
            ),
            untouched_fraction=np.fromiter(
                (r.untouched_fraction for r in records), dtype=np.float64, count=n
            ),
            records=records,
            arrival_s=arrival,
            # float64 addition matches VMTraceRecord.departure_s bit-for-bit.
            departure_s=arrival + lifetime,
            cores=np.fromiter((r.cores for r in records), dtype=np.int64, count=n),
        )


class ClusterTrace:
    """An ordered collection of VM trace records for one or more clusters."""

    def __init__(self, records: Sequence[VMTraceRecord], cluster_id: Optional[str] = None):
        self.records: List[VMTraceRecord] = sorted(records, key=lambda r: r.arrival_s)
        self._columns: Optional[TraceColumns] = None
        if cluster_id is not None:
            self.cluster_id = cluster_id
        elif self.records:
            self.cluster_id = self.records[0].cluster_id
        else:
            self.cluster_id = "empty"

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[VMTraceRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> VMTraceRecord:
        return self.records[index]

    def columns(self) -> TraceColumns:
        """Cached columnar view of the records, aligned with iteration order.

        The record list is treated as immutable once a columnar view has been
        built; callers that mutate ``records`` afterwards get stale columns.
        """
        if self._columns is None or len(self._columns.vm_ids) != len(self.records):
            # One column-building implementation (from_records); the cached
            # whole-trace view just drops the records backlink, which would
            # otherwise cycle with this trace.
            self._columns = dataclasses.replace(
                TraceColumns.from_records(self.records), records=None
            )
        return self._columns

    # -- derived properties -----------------------------------------------------------
    @property
    def duration_s(self) -> float:
        if not self.records:
            return 0.0
        return max(r.departure_s for r in self.records)

    @property
    def arrival_span_s(self) -> float:
        """Time of the last VM arrival (the observation window of the trace)."""
        if not self.records:
            return 0.0
        return max(r.arrival_s for r in self.records)

    @property
    def total_core_hours(self) -> float:
        return sum(r.cores * r.lifetime_s for r in self.records) / 3600.0

    @property
    def total_memory_gb_hours(self) -> float:
        return sum(r.memory_gb * r.lifetime_s for r in self.records) / 3600.0

    def clusters(self) -> List[str]:
        seen: List[str] = []
        for r in self.records:
            if r.cluster_id not in seen:
                seen.append(r.cluster_id)
        return seen

    def for_cluster(self, cluster_id: str) -> "ClusterTrace":
        """Records belonging to ``cluster_id``, as a new trace.

        The returned trace's ``cluster_id`` is always the requested id --
        even when no records match (an empty trace would otherwise fall back
        to the ``"empty"`` placeholder and lose the metadata).
        """
        return ClusterTrace(
            [r for r in self.records if r.cluster_id == cluster_id], cluster_id=cluster_id
        )

    def merge(self, other: "ClusterTrace") -> "ClusterTrace":
        """Merge two traces into one, preserving ``cluster_id`` metadata.

        The merged trace's ``cluster_id`` is: the shared id when both sides
        agree, the non-empty side's id when the other side has no records
        (merging with an empty trace is an identity for metadata), and
        otherwise ``"<self>+<other>"`` -- a deterministic multi-cluster
        label (the per-record ids stay intact and are enumerable via
        :meth:`clusters`).  Previously the id silently collapsed to the
        earliest-arriving record's cluster, which depended on arrival times.
        """
        if self.cluster_id == other.cluster_id:
            merged_id = self.cluster_id
        elif not self.records:
            merged_id = other.cluster_id
        elif not other.records:
            merged_id = self.cluster_id
        else:
            merged_id = f"{self.cluster_id}+{other.cluster_id}"
        return ClusterTrace(
            list(self.records) + list(other.records), cluster_id=merged_id
        )

    def stream(self, chunk_size: int = 8192) -> "MaterializedTraceStream":
        """A chunked :class:`TraceStream` view over this (in-memory) trace.

        Useful for differential tests and for feeding APIs that consume
        streams; it saves no memory by itself (the records already exist).
        """
        return MaterializedTraceStream(self, chunk_size=chunk_size)

    # -- persistence ---------------------------------------------------------------------
    def to_csv(self, path, chunk_size: int = 8192) -> None:
        """Write the trace as CSV (path or open text handle) with a header row.

        Delegates to :func:`write_csv`, which writes in ``chunk_size``-record
        chunks (the records are already in memory here, so chunking only
        bounds the writer's working set; streams use the same code path to
        export without materialising at all).  File-like targets such as
        ``io.StringIO`` are written in place and left open.
        """
        write_csv(self, path, chunk_size=chunk_size)

    #: Converters for the non-string record fields (CSV stores text only).
    _CSV_CONVERTERS = {
        "arrival_s": float,
        "lifetime_s": float,
        "cores": lambda value: int(float(value)),
        "memory_gb": float,
        "untouched_fraction": float,
    }

    @classmethod
    def from_csv(cls, path) -> "ClusterTrace":
        """Load a trace previously written by :meth:`to_csv`.

        ``path`` is a filesystem path or an open text handle (e.g.
        ``io.StringIO``); handles are read from their current position and
        left open.  Columns for optional :class:`VMTraceRecord` fields may
        be absent (or empty for non-string fields); the dataclass defaults
        are used, so external traces carrying only the required
        arrival/departure/demand columns load cleanly.  Missing *required*
        columns raise ``ValueError``.
        """
        record_fields = fields(VMTraceRecord)
        with _open_text(path, "r") as (handle, label):
            reader = csv.DictReader(handle)
            records = [
                _record_from_row(label, line, row, record_fields)
                for line, row in enumerate(reader, start=2)
            ]
        return cls(records)


def _record_from_row(label, line: int, row: dict, record_fields) -> VMTraceRecord:
    """One CSV row -> record, shared by ``from_csv`` and ``CsvTraceStream``.

    ``label`` names the source in error messages (a path, or a stream label
    for file-like inputs).
    """
    kwargs = {}
    for f in record_fields:
        value = row.get(f.name)
        required = f.default is MISSING
        if value is None or value == "":
            if required:
                detail = (
                    f"empty value on line {line} for" if value == "" else "missing"
                )
                raise ValueError(f"{label}: {detail} required column {f.name!r}")
            continue
        converter = ClusterTrace._CSV_CONVERTERS.get(f.name)
        try:
            kwargs[f.name] = converter(value) if converter else value
        except ValueError as exc:
            raise ValueError(
                f"{label} line {line}: bad value {value!r} for column {f.name!r}"
            ) from exc
    return VMTraceRecord(**kwargs)


def write_csv(source, path, chunk_size: int = 8192) -> int:
    """Stream a trace or :class:`TraceStream` to CSV; returns rows written.

    The streaming CSV *writer* counterpart of :class:`CsvTraceStream`: rows
    are written one chunk at a time, so exporting a generated fleet holds at
    most one chunk (plus, for generator-backed streams, one generation
    window) in memory instead of the whole trace.  The output is identical
    to the materialised ``ClusterTrace.to_csv`` for the same records, and
    round-trips through both ``ClusterTrace.from_csv`` and
    :class:`CsvTraceStream`.

    ``path`` is a filesystem path or an open text handle (e.g.
    ``io.StringIO``); handles are written at their current position and left
    open for the caller.
    """
    field_names = [f.name for f in fields(VMTraceRecord)]
    rows_written = 0
    if isinstance(source, ClusterTrace):
        def record_chunks():
            records = source.records
            for start in range(0, len(records), chunk_size):
                yield records[start:start + chunk_size]
    else:
        def record_chunks():
            for chunk in source.chunks():
                if chunk.records is None:
                    raise ValueError(
                        "stream chunks must carry records "
                        "(build them with TraceColumns.from_records)"
                    )
                yield chunk.records
    with _open_text(path, "w") as (handle, _label):
        writer = csv.writer(handle)
        writer.writerow(field_names)
        for records in record_chunks():
            writer.writerows(
                [getattr(record, name) for name in field_names]
                for record in records
            )
            rows_written += len(records)
    return rows_written


class TraceStream:
    """Chunked, re-iterable source of trace records (DESIGN.md section 4).

    The streaming contract:

    * :meth:`chunks` returns a **fresh** iterator of :class:`TraceColumns`
      blocks on every call (streams are re-iterable: the fleet runner replays
      the same stream for the pooled run and the no-pooling baseline, and the
      capacity search replays it once per binary-search probe).
    * Chunks are **self-contained**: each block carries its ``records`` tuple
      plus the columnar arrays batch policies consume, so consumers hold at
      most one chunk of records at a time.
    * Records are globally **sorted by arrival time** across chunk
      boundaries; the simulator verifies this while replaying.
    * Chunking is **content-neutral**: the concatenation of all chunks is
      identical record-for-record regardless of ``chunk_size``, and equal to
      the materialised trace the same source would produce
      (:meth:`materialize` gives exactly that trace).
    """

    cluster_id: str = "stream"
    chunk_size: int = 8192

    def chunks(self) -> Iterator[TraceColumns]:
        """Yield the trace as successive :class:`TraceColumns` blocks."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[TraceColumns]:
        return self.chunks()

    def materialize(self) -> ClusterTrace:
        """Collect every chunk into a :class:`ClusterTrace` (O(trace) memory)."""
        records: List[VMTraceRecord] = []
        for chunk in self.chunks():
            records.extend(chunk.records)
        return ClusterTrace(records, cluster_id=self.cluster_id)

    def to_csv(self, path) -> int:
        """Export the stream to CSV without materialising it; returns rows.

        One chunk is written at a time (see :func:`write_csv`), so a
        generated fleet trace can be persisted with O(chunk) memory.
        """
        return write_csv(self, path, chunk_size=self.chunk_size)

    @staticmethod
    def _validate_chunk_size(chunk_size: int) -> int:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        return chunk_size


class MaterializedTraceStream(TraceStream):
    """Chunked view over an already-materialised :class:`ClusterTrace`."""

    def __init__(self, trace: ClusterTrace, chunk_size: int = 8192) -> None:
        self.trace = trace
        self.chunk_size = self._validate_chunk_size(chunk_size)
        self.cluster_id = trace.cluster_id

    def chunks(self) -> Iterator[TraceColumns]:
        records = self.trace.records
        for start in range(0, len(records), self.chunk_size):
            yield TraceColumns.from_records(records[start:start + self.chunk_size])


class CsvTraceStream(TraceStream):
    """Incremental CSV parser yielding chunks without loading the whole file.

    The source must be sorted by ``arrival_s`` (true for anything written by
    :meth:`ClusterTrace.to_csv`, whose records are kept in arrival order);
    an out-of-order row raises ``ValueError`` naming the line, because a
    stream cannot globally re-sort without materialising.

    ``path`` is a filesystem path or an open text handle (``io.StringIO``,
    a file object...).  Paths are reopened on each :meth:`chunks` call, so
    the stream is re-iterable.  Handles are left open and rewound to their
    position at construction time on each iteration when seekable;
    non-seekable handles (pipes, sockets) support exactly one iteration and
    raise ``ValueError`` on the second.
    """

    def __init__(self, path, chunk_size: int = 8192,
                 cluster_id: Optional[str] = None) -> None:
        self.chunk_size = self._validate_chunk_size(chunk_size)
        if _is_filelike(path):
            self.path = None
            self._handle = path
            self._label = _stream_label(path)
            seekable = getattr(path, "seekable", None)
            self._seekable = bool(seekable()) if callable(seekable) else False
            self._start_pos = path.tell() if self._seekable else None
            self._consumed = False
            default_id = (
                Path(self._label).stem if self._label != "<stream>"
                else "csv-stream"
            )
        else:
            self.path = Path(path)
            self._handle = None
            self._label = str(self.path)
            default_id = self.path.stem
        self.cluster_id = cluster_id if cluster_id is not None else default_id

    @contextmanager
    def _reader_handle(self):
        """The source handle for one iteration (reopen, rewind, or one-shot)."""
        if self._handle is None:
            with self.path.open("r", newline="") as handle:
                yield handle
            return
        if self._seekable:
            self._handle.seek(self._start_pos)
        elif self._consumed:
            raise ValueError(
                f"{self._label}: non-seekable handle already consumed; "
                f"CsvTraceStream can iterate it only once"
            )
        self._consumed = True
        yield self._handle

    def chunks(self) -> Iterator[TraceColumns]:
        record_fields = fields(VMTraceRecord)
        buffer: List[VMTraceRecord] = []
        last_arrival = float("-inf")
        with self._reader_handle() as handle:
            reader = csv.DictReader(handle)
            for line, row in enumerate(reader, start=2):
                record = _record_from_row(self._label, line, row, record_fields)
                if record.arrival_s < last_arrival:
                    raise ValueError(
                        f"{self._label} line {line}: records are not sorted by "
                        f"arrival_s ({record.arrival_s} after {last_arrival}); "
                        f"sort the file or load it via ClusterTrace.from_csv"
                    )
                last_arrival = record.arrival_s
                buffer.append(record)
                if len(buffer) >= self.chunk_size:
                    yield TraceColumns.from_records(buffer)
                    buffer = []
        if buffer:
            yield TraceColumns.from_records(buffer)

"""Deterministic EMC fault injection and graceful pool degradation.

Pond's pool groups are real hardware failure domains: one external memory
controller (EMC) backs one group, and when it dies every GB it serves is
gone at once (paper Section 4.1; the permission table is *per EMC*, so
there is no partial survival story beyond multi-EMC groups losing a
fraction of their capacity).  This module carries the whole failure-domain
subsystem:

* :class:`FaultEvent` / :class:`FaultSchedule` -- timed ``fail`` /
  ``repair`` events for pool groups, either hand-built or generated from a
  seeded renewal process (:meth:`FaultSchedule.seeded`).  Schedules are
  plain data (picklable, hashable event tuples) so process-pool fleet
  workers replay the exact same failures as a serial fleet.
* :class:`FaultImpactStats` -- per-replay accounting (VMs affected /
  migrated / killed, GB stranded, capacity lost, recovery latency, blast
  radius per group), mergeable across fleet shards exactly like
  ``OnlineControlStats``.
* :class:`FaultInjector` -- the replay-side driver.  It owns the event
  cursor, transitions the :class:`~repro.cluster.pool_topology
  .PoolGroupLedger` to degraded capacity on ``fail`` and back on
  ``repair``, and runs the **degradation ladder** over the affected live
  VMs: first :meth:`ArrayPlacementEngine.migrate_pool_to_local` (the
  headroom-checked pool->local reconfiguration), then a live migration to
  any server with all-local headroom, then -- only after the configured
  retry budget is exhausted -- a recorded kill.  Nothing is ever silently
  dropped: every outcome lands in the stats.

The event-ordering contract (fault ticks vs QoS ticks vs samples) is
DESIGN.md section 11.  The injector is engine-agnostic on purpose: it
drives :class:`~repro.cluster.engine.ArrayPlacementEngine` methods only,
so the single-cluster online loop and the cross-shard pump share one
implementation, and the fault-free replay paths never touch this module.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "FaultImpactStats",
    "FaultInjector",
    "FAULT_KINDS",
]

#: Valid ``FaultEvent.kind`` values (EMC_FAIL / EMC_REPAIR in the issue's
#: terms; lower-case strings keep schedules JSON-friendly).
FAULT_KINDS = ("fail", "repair")


@dataclass(frozen=True)
class FaultEvent:
    """One timed pool-group fault transition.

    ``severity`` is the fraction of the group's healthy capacity lost on
    ``fail`` (``1.0`` = the whole EMC; ``0.5`` = half the blades of a
    multi-EMC group).  ``shard`` addresses the event in *shardwise* fleet
    runs (no :class:`PoolTopology`): group ids are shard-local there, so
    the schedule tags each event with the fleet shard it belongs to and
    :meth:`FaultSchedule.for_shard` routes it.  Topology replays use
    fleet-level group ids and ignore ``shard``.
    """

    time_s: float
    kind: str
    group: int
    severity: float = 1.0
    shard: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not self.time_s >= 0.0:
            raise ValueError("fault time_s cannot be negative")
        if not 0.0 < self.severity <= 1.0:
            raise ValueError("severity must be in (0, 1]")
        if self.group < 0:
            raise ValueError("group id cannot be negative")
        if self.shard < 0:
            raise ValueError("shard index cannot be negative")


class FaultSchedule:
    """An immutable, time-sorted sequence of :class:`FaultEvent`.

    ``migration_retry_budget`` caps the degradation ladder: each affected
    VM gets that many ladder attempts (the attempt at fail time plus
    retries on later evacuation ticks) before it is killed.  A budget of
    ``1`` kills at the first failed attempt; the default leaves room for
    departures to free headroom first.

    An **empty** schedule is valid and useful: it still routes the replay
    through the fault-aware engine-method loop, which the differential
    tests pin byte-identical to the static replay.
    """

    def __init__(self, events: Iterable[FaultEvent] = (),
                 migration_retry_budget: int = 3) -> None:
        if migration_retry_budget < 1:
            raise ValueError("migration_retry_budget must be >= 1")
        ordered = list(events)
        for event in ordered:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"expected FaultEvent, got {type(event)!r}")
        # Stable sort: events at equal times fire in authoring order.
        ordered.sort(key=lambda e: e.time_s)
        self.events: Tuple[FaultEvent, ...] = tuple(ordered)
        self.migration_retry_budget = migration_retry_budget

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self) -> str:
        return (f"FaultSchedule({len(self.events)} events, "
                f"retry_budget={self.migration_retry_budget})")

    @classmethod
    def seeded(
        cls,
        groups: Sequence[int],
        horizon_s: float,
        mean_time_between_failures_s: float,
        repair_delay_s: float,
        severity: float = 1.0,
        seed: int = 0,
        shard: int = 0,
        migration_retry_budget: int = 3,
    ) -> "FaultSchedule":
        """Seeded renewal process: per-group exponential fail inter-arrivals.

        Each group draws independent exponential gaps (mean
        ``mean_time_between_failures_s``) between *repair and next fail*,
        and every fail is repaired ``repair_delay_s`` later (repairs past
        ``horizon_s`` are dropped together with their fail, so every
        scheduled fail inside the horizon has a visible lifetime).  Uses
        ``random.Random(seed)`` only -- schedules are bit-identical across
        processes and ``PYTHONHASHSEED`` values.
        """
        if horizon_s <= 0.0:
            raise ValueError("horizon_s must be positive")
        if mean_time_between_failures_s <= 0.0:
            raise ValueError("mean_time_between_failures_s must be positive")
        if repair_delay_s < 0.0:
            raise ValueError("repair_delay_s cannot be negative")
        rng = random.Random(seed)
        rate = 1.0 / mean_time_between_failures_s
        events: List[FaultEvent] = []
        for group in groups:
            t = rng.expovariate(rate)
            while t < horizon_s:
                events.append(FaultEvent(t, "fail", group, severity, shard))
                repair_t = t + repair_delay_s
                if repair_t >= horizon_s:
                    break
                events.append(
                    FaultEvent(repair_t, "repair", group, severity, shard))
                t = repair_t + rng.expovariate(rate)
        return cls(events, migration_retry_budget=migration_retry_budget)

    def for_shard(self, shard: int) -> "FaultSchedule":
        """The sub-schedule addressed to one fleet shard, re-homed to 0.

        Shardwise fleet workers replay each shard as an independent
        single-cluster simulation, so the filtered events are re-tagged
        ``shard=0`` (their group ids are already shard-local).
        """
        return FaultSchedule(
            (FaultEvent(e.time_s, e.kind, e.group, e.severity, 0)
             for e in self.events if e.shard == shard),
            migration_retry_budget=self.migration_retry_budget,
        )

    def groups(self) -> Tuple[int, ...]:
        """Distinct group ids the schedule touches (ascending)."""
        return tuple(sorted({e.group for e in self.events}))


@dataclass
class FaultImpactStats:
    """Accounting for one faulted replay (mergeable across fleet shards).

    VM-level counters are attributed to the shard the VM runs in;
    event/group-level counters (events, capacity, stranding, recovery
    latency, blast radius) to the failing group's *home shard* -- the
    lowest-indexed shard attached to the group -- so merging shard stats
    never double-counts a spanning failure.
    """

    n_fail_events: int = 0
    n_repair_events: int = 0
    #: VMs the degradation ladder touched (= migrated + killed + pending).
    vms_affected: int = 0
    vms_migrated_local: int = 0
    vms_live_migrated: int = 0
    vms_killed: int = 0
    migrated_local_gb: float = 0.0
    live_migrated_gb: float = 0.0
    killed_gb: float = 0.0
    #: Pool GB in use beyond the surviving capacity at each fail instant --
    #: the demand the failure strands until evacuation or repair.
    stranded_gb: float = 0.0
    #: Healthy capacity removed by fail events (finite groups only).
    capacity_lost_gb: float = 0.0
    recovery_latency_s_total: float = 0.0
    recovery_latency_s_max: float = 0.0
    n_recoveries: int = 0
    #: Fail events with no matching repair by the end of the replay.
    n_unrecovered: int = 0
    #: group id -> VMs its failures pushed onto the ladder.
    blast_radius_by_group: Dict[int, int] = field(default_factory=dict)
    killed_vm_ids: List[str] = field(default_factory=list)

    @property
    def mean_recovery_latency_s(self) -> float:
        if not self.n_recoveries:
            return 0.0
        return self.recovery_latency_s_total / self.n_recoveries

    @property
    def survival_rate(self) -> float:
        """Fraction of ladder-affected VMs that were *not* killed."""
        if not self.vms_affected:
            return 1.0
        return 1.0 - self.vms_killed / self.vms_affected

    def add(self, other: "FaultImpactStats") -> "FaultImpactStats":
        """Accumulate another stats block (e.g. merging fleet shards)."""
        self.n_fail_events += other.n_fail_events
        self.n_repair_events += other.n_repair_events
        self.vms_affected += other.vms_affected
        self.vms_migrated_local += other.vms_migrated_local
        self.vms_live_migrated += other.vms_live_migrated
        self.vms_killed += other.vms_killed
        self.migrated_local_gb += other.migrated_local_gb
        self.live_migrated_gb += other.live_migrated_gb
        self.killed_gb += other.killed_gb
        self.stranded_gb += other.stranded_gb
        self.capacity_lost_gb += other.capacity_lost_gb
        self.recovery_latency_s_total += other.recovery_latency_s_total
        self.recovery_latency_s_max = max(
            self.recovery_latency_s_max, other.recovery_latency_s_max)
        self.n_recoveries += other.n_recoveries
        self.n_unrecovered += other.n_unrecovered
        for group, count in other.blast_radius_by_group.items():
            self.blast_radius_by_group[group] = (
                self.blast_radius_by_group.get(group, 0) + count)
        self.killed_vm_ids.extend(other.killed_vm_ids)
        return self

    def as_dict(self) -> Dict[str, object]:
        """Canonical plain-data view (determinism checks, BENCH reports).

        Dict keys are emitted in sorted order so serialised comparisons are
        independent of accumulation order (and of ``PYTHONHASHSEED``).
        """
        return {
            "n_fail_events": self.n_fail_events,
            "n_repair_events": self.n_repair_events,
            "vms_affected": self.vms_affected,
            "vms_migrated_local": self.vms_migrated_local,
            "vms_live_migrated": self.vms_live_migrated,
            "vms_killed": self.vms_killed,
            "migrated_local_gb": self.migrated_local_gb,
            "live_migrated_gb": self.live_migrated_gb,
            "killed_gb": self.killed_gb,
            "stranded_gb": self.stranded_gb,
            "capacity_lost_gb": self.capacity_lost_gb,
            "recovery_latency_s_total": self.recovery_latency_s_total,
            "recovery_latency_s_max": self.recovery_latency_s_max,
            "n_recoveries": self.n_recoveries,
            "n_unrecovered": self.n_unrecovered,
            "blast_radius_by_group": {
                str(g): self.blast_radius_by_group[g]
                for g in sorted(self.blast_radius_by_group)
            },
            "killed_vm_ids": list(self.killed_vm_ids),
        }


class FaultInjector:
    """Drives one replay's fault schedule against engines over a ledger.

    Constructed by the fault-aware replay loops (single-cluster
    ``_run_array_online`` and the cross-shard pump); never by users.  The
    loops route every placement and departure through the injector's
    **token** indirection: the departure heap stores a stable token, and
    the injector maps it to the VM's current engine handle -- live
    migration rewrites the mapping, a kill voids it (``-1``), so a
    departure of a migrated VM releases the right placement and a departure
    of a killed VM is a no-op instead of corrupting a recycled handle.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        ledger,
        engines: Sequence[object],
        at_risk: Sequence[Dict[int, str]],
        stats: Sequence[FaultImpactStats],
        group_shards: Optional[Dict[int, Tuple[int, ...]]] = None,
        done: Optional[Sequence[bool]] = None,
    ) -> None:
        self.schedule = schedule
        self.ledger = ledger
        self.engines = list(engines)
        self.at_risk = list(at_risk)
        self.stats = list(stats)
        known = ledger.capacity_gb
        unknown = sorted({e.group for e in schedule.events
                          if e.group not in known})
        if unknown:
            raise ValueError(
                f"fault schedule names pool groups {unknown[:8]} that do not "
                f"exist in this replay (known groups: "
                f"{sorted(known)[:8]}{'...' if len(known) > 8 else ''})"
            )
        #: group -> shards attached to it (blast-radius / liveness gating).
        #: Single-cluster replays pass None: everything lives in shard 0.
        self.group_shards = group_shards or {g: (0,) for g in known}
        #: Cross-shard replays share their per-shard ``done`` flags so fault
        #: and retry work stops exactly where the single-cluster replay's
        #: horizon would stop it (per-shard parity).  ``None``: never done.
        self.done = done

        self._cursor = 0
        #: token -> current engine handle (-1 once killed or departed).
        self._token_handle: List[int] = []
        self._token_shard: List[int] = []
        #: group -> {token: vm_id} of live pool-exposed VMs, insertion order.
        self._pool_vms: Dict[int, Dict[int, str]] = {g: {} for g in known}
        self._token_group: Dict[int, int] = {}
        #: token -> failed ladder attempts so far (insertion ordered).
        self._pending: Dict[int, int] = {}
        #: group -> earliest unrepaired fail time (recovery latency).
        self._open_failures: Dict[int, float] = {}

    # -- schedule cursor ---------------------------------------------------------
    @property
    def next_time(self) -> float:
        """Arrival time of the next unfired event (``inf`` when drained)."""
        events = self.schedule.events
        if self._cursor >= len(events):
            return math.inf
        return events[self._cursor].time_s

    def _home_stats(self, group: int) -> FaultImpactStats:
        return self.stats[self.group_shards[group][0]]

    def _live_group(self, group: int) -> bool:
        done = self.done
        if done is None:
            return True
        return any(not done[s] for s in self.group_shards[group])

    # -- loop callbacks ----------------------------------------------------------
    def note_place(self, shard: int, handle: int, vm_id: str,
                   pool_gb: float) -> int:
        """Register a successful placement; returns its departure token."""
        token = len(self._token_handle)
        self._token_handle.append(handle)
        self._token_shard.append(shard)
        if pool_gb > 0.0:
            engine = self.engines[shard]
            group = engine.group_of[engine.vm_server[handle]]
            if group >= 0:
                self._pool_vms[group][token] = vm_id
                self._token_group[token] = group
        return token

    def on_departure(self, token: int) -> None:
        """Process one departure event by token (kill-aware)."""
        handle = self._token_handle[token]
        if handle < 0:
            return  # killed earlier; the heap entry is stale
        shard = self._token_shard[token]
        self.at_risk[shard].pop(handle, None)
        self._drop_pool_vm(token)
        self.engines[shard].remove(handle)
        self._token_handle[token] = -1
        self.resync_degraded()

    def resync_degraded(self) -> None:
        """Re-clamp ``free = max(0, capacity - used)`` on degraded groups.

        The engines' unmediated ``pool_free += released`` on departures and
        pool->local migrations can overshoot a degraded group's surviving
        capacity; the loops call this after any engine operation that
        releases pool memory.  A no-op while nothing is degraded, so the
        empty-schedule replay's arithmetic is untouched.
        """
        ledger = self.ledger
        for group in ledger.degraded_groups:
            ledger.resync(group)

    # -- event firing ------------------------------------------------------------
    def fire_next(self) -> None:
        """Fire the event at the cursor (fail -> degrade + ladder; repair)."""
        event = self.schedule.events[self._cursor]
        self._cursor += 1
        if not self._live_group(event.group):
            # Every shard attached to the group is past its replay horizon:
            # the single-cluster replay would never have fired this event.
            return
        if event.kind == "fail":
            self._fire_fail(event)
        else:
            self._fire_repair(event)

    def _fire_fail(self, event: FaultEvent) -> None:
        ledger = self.ledger
        group = event.group
        stats = self._home_stats(group)
        stats.n_fail_events += 1
        before = ledger.capacity_gb[group]
        deficit = ledger.degrade(group, event.severity)
        after = ledger.capacity_gb[group]
        if not math.isinf(before):
            lost = before - after
            if lost > 0.0:
                stats.capacity_lost_gb += lost
        if deficit > 0.0:
            stats.stranded_gb += deficit
        if group not in self._open_failures:
            self._open_failures[group] = event.time_s
        self._evacuate(group)

    def _fire_repair(self, event: FaultEvent) -> None:
        ledger = self.ledger
        group = event.group
        stats = self._home_stats(group)
        stats.n_repair_events += 1
        if not ledger.is_degraded(group):
            return
        ledger.repair(group)
        fail_time = self._open_failures.pop(group, None)
        if fail_time is not None:
            latency = event.time_s - fail_time
            stats.recovery_latency_s_total += latency
            if latency > stats.recovery_latency_s_max:
                stats.recovery_latency_s_max = latency
            stats.n_recoveries += 1
        # Pending evacuations of a repaired group are cancelled: the VMs
        # keep running against the restored capacity.
        for token in [t for t, g in self._token_group.items()  # repro: noqa DET007 -- tokens are inserted in placement order, which is deterministic replay order
                      if g == group and t in self._pending]:
            self._pending.pop(token, None)

    def _evacuate(self, group: int) -> None:
        """Run the ladder over the group's pool VMs until demand fits."""
        victims = self._pool_vms.get(group)
        if not victims:
            return
        ledger = self.ledger
        for token in list(victims):
            if ledger.used_gb[group] <= ledger.capacity_gb[group] + 1e-9:
                break  # surviving capacity absorbs the remaining demand
            self._touch(token, first=True)

    def retry_tick(self, shard: int) -> None:
        """Retry pending evacuations of one shard (after its QoS tick)."""
        if not self._pending:
            return
        ledger = self.ledger
        for token in list(self._pending):
            if self._token_shard[token] != shard:
                continue
            group = self._token_group[token]
            if (not ledger.is_degraded(group)
                    or ledger.used_gb[group]
                    <= ledger.capacity_gb[group] + 1e-9):
                # Repaired, or departures cleared the deficit: the VM stays.
                self._pending.pop(token, None)
                continue
            self._touch(token, first=False)

    def _touch(self, token: int, first: bool) -> None:
        """One ladder attempt; books keeping for affected/pending/kill."""
        shard = self._token_shard[token]
        if self.engines[shard].vm_pool_gb[self._token_handle[token]] <= 0.0:
            # Already all-local (e.g. the QoS tick mitigated it since
            # placement): the failure cannot touch it; retire it quietly.
            self._drop_pool_vm(token)
            return
        if first:
            group = self._token_group[token]
            stats = self.stats[shard]
            stats.vms_affected += 1
            home = self._home_stats(group)
            home.blast_radius_by_group[group] = (
                home.blast_radius_by_group.get(group, 0) + 1)
        if self._attempt(token):
            self._pending.pop(token, None)
            return
        attempts = self._pending.get(token, 0) + 1
        if attempts >= self.schedule.migration_retry_budget:
            self._pending.pop(token, None)
            self._kill(token)
        else:
            self._pending[token] = attempts

    def _attempt(self, token: int) -> bool:
        """Ladder rungs 1+2: pool->local reconfigure, then live migration."""
        shard = self._token_shard[token]
        engine = self.engines[shard]
        handle = self._token_handle[token]
        moved = engine.migrate_pool_to_local(handle)
        stats = self.stats[shard]
        if moved >= 0.0:
            stats.vms_migrated_local += 1
            stats.migrated_local_gb += moved
            self.at_risk[shard].pop(handle, None)
            self._drop_pool_vm(token)
            self.resync_degraded()
            return True
        # No NUMA-node headroom in place: live-migrate to any server that
        # fits the VM all-local (pre-copy model: the new placement commits
        # before the old one releases, so the transient double-occupancy is
        # accounted like a real live migration would occupy both hosts).
        cores = engine.vm_cores[handle]
        total_gb = engine.vm_local_gb[handle] + engine.vm_pool_gb[handle]
        new_handle = engine.place(cores, total_gb, 0.0)
        if new_handle < 0:
            return False
        engine.remove(handle)
        self._token_handle[token] = new_handle
        self.at_risk[shard].pop(handle, None)
        stats.vms_live_migrated += 1
        stats.live_migrated_gb += total_gb
        self._drop_pool_vm(token)
        self.resync_degraded()
        return True

    def _kill(self, token: int) -> None:
        """Ladder rung 3: recorded kill (never a silent drop)."""
        shard = self._token_shard[token]
        engine = self.engines[shard]
        handle = self._token_handle[token]
        group = self._token_group[token]
        vm_id = self._pool_vms[group].get(token, "")
        gb = engine.vm_local_gb[handle] + engine.vm_pool_gb[handle]
        self.at_risk[shard].pop(handle, None)
        self._drop_pool_vm(token)
        engine.remove(handle)
        self._token_handle[token] = -1
        stats = self.stats[shard]
        stats.vms_killed += 1
        stats.killed_gb += gb
        stats.killed_vm_ids.append(vm_id)
        self.resync_degraded()

    def _drop_pool_vm(self, token: int) -> None:
        group = self._token_group.pop(token, None)
        if group is not None:
            self._pool_vms[group].pop(token, None)
        self._pending.pop(token, None)

    # -- end of replay -----------------------------------------------------------
    def finalize(self) -> None:
        """Close the books: unrepaired failures become ``n_unrecovered``."""
        for group in self._open_failures:
            self._home_stats(group).n_unrecovered += 1
        self._open_failures.clear()

"""Event-driven cluster simulator.

The simulator replays a VM trace against a cluster of servers, mirroring the
paper's evaluation methodology: "The simulator implements different memory
allocation policies and tracks each server and each pool's memory capacity at
second accuracy" (Section 6.1).

Two usage modes matter:

* **Stranding analysis** (Figure 2): memory-constrained placement with no
  pool; the simulator samples core utilisation and stranded memory over time.
* **Pool dimensioning** (Figures 3 and 21): placement constrained by cores
  (memory effectively unconstrained), with a per-VM allocation policy deciding
  how much of each VM's memory goes to the pool.  The per-server local peaks
  and per-pool-group peaks then give the DRAM that *would have to be
  provisioned* under that policy, which is how DRAM savings are computed.

The main loop consumes one merged, time-ordered stream of arrival, departure,
and sample events.  At equal timestamps the order is departures, then the
sample, then the arrival: a snapshot at time *t* therefore reflects exactly
the VMs running at *t* (departures up to and including *t* applied, arrivals
at *t* not yet placed), which VM traces with millions of events rely on for
correct time series.  The one exception is the final horizon sample, which is
taken after every arrival has been placed so it captures the cluster's true
end state.  Samples are stored in preallocated numpy columns rather
than per-sample objects so multi-year traces sample cheaply.

Pool allocations come from the batch policy engine: policies exposing
``decide_batch`` (see DESIGN.md) are evaluated once per run as a vectorized
array, and ``run`` also accepts a precomputed ``pool_gb`` array directly, so
the hot loop never calls back into Python per VM.  Plain per-record
callables remain supported as the legacy differential-testing path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.scheduler import PlacementError, VMScheduler, validate_strategy
from repro.cluster.server import ClusterServer, ServerConfig
from repro.cluster.trace import ClusterTrace, TraceStream, VMTraceRecord

__all__ = ["ClusterSimulator", "SimulationResult", "SimulationSample"]

#: A policy maps a trace record to the GB of the VM's memory placed on the pool.
PoolPolicy = Callable[[VMTraceRecord], float]

#: ``ClusterSimulator.run`` replays either a materialised trace or a stream.
TraceInput = Union[ClusterTrace, TraceStream]

#: Column order of the sample buffer; must match SimulationSample's fields.
_SAMPLE_COLUMNS = (
    "time_s",
    "core_utilization",
    "scheduled_cores_percent",
    "used_local_gb",
    "used_pool_gb",
    "stranded_gb",
    "stranded_percent",
    "running_vms",
)


@dataclass(frozen=True)
class SimulationSample:
    """One periodic snapshot of cluster state."""

    time_s: float
    core_utilization: float
    scheduled_cores_percent: float
    used_local_gb: float
    used_pool_gb: float
    stranded_gb: float
    stranded_percent: float
    running_vms: int


class SampleBuffer:
    """Preallocated columnar storage for simulation samples.

    Appending writes one row into a (capacity, n_columns) float array that
    doubles when full, so recording a sample is O(1) with no per-sample object
    allocation.  Columns are exposed as numpy views.
    """

    def __init__(self, initial_capacity: int = 256) -> None:
        if initial_capacity < 1:
            raise ValueError("initial capacity must be >= 1")
        self._data = np.empty((initial_capacity, len(_SAMPLE_COLUMNS)), dtype=np.float64)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def append_row(self, row: Sequence[float]) -> None:
        if self._count == self._data.shape[0]:
            grown = np.empty((2 * self._data.shape[0], self._data.shape[1]),
                             dtype=np.float64)
            grown[: self._count] = self._data
            self._data = grown
        self._data[self._count] = row
        self._count += 1

    def drop_last(self) -> None:
        if self._count < 1:
            raise IndexError("no samples to drop")
        self._count -= 1

    def column(self, name: str) -> np.ndarray:
        try:
            col = _SAMPLE_COLUMNS.index(name)
        except ValueError:
            raise AttributeError(f"unknown sample attribute {name!r}") from None
        return self._data[: self._count, col]

    def rows(self) -> np.ndarray:
        return self._data[: self._count]


@dataclass
class SimulationResult:
    """Output of one simulation run."""

    sample_buffer: SampleBuffer = field(default_factory=SampleBuffer)
    server_peak_local_gb: Dict[str, float] = field(default_factory=dict)
    server_peak_total_gb: Dict[str, float] = field(default_factory=dict)
    pool_peak_gb: Dict[int, float] = field(default_factory=dict)
    #: vm_id -> server_id for every placed VM (differential-testing hook).
    placements: Dict[str, str] = field(default_factory=dict)
    placed_vms: int = 0
    rejected_vms: int = 0
    total_pool_gb_allocated: float = 0.0
    total_memory_gb_allocated: float = 0.0
    _samples_cache: Optional[List[SimulationSample]] = field(
        default=None, repr=False, compare=False
    )

    # -- sample access -----------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return len(self.sample_buffer)

    @property
    def samples(self) -> List[SimulationSample]:
        """Materialised per-sample view (compatibility with older callers).

        The list is built lazily from the columnar buffer and cached, so
        repeated access after a run costs nothing beyond the first call.
        """
        if (self._samples_cache is not None
                and len(self._samples_cache) == len(self.sample_buffer)):
            return self._samples_cache
        rows = self.sample_buffer.rows()
        self._samples_cache = [
            SimulationSample(
                time_s=float(r[0]),
                core_utilization=float(r[1]),
                scheduled_cores_percent=float(r[2]),
                used_local_gb=float(r[3]),
                used_pool_gb=float(r[4]),
                stranded_gb=float(r[5]),
                stranded_percent=float(r[6]),
                running_vms=int(r[7]),
            )
            for r in rows
        ]
        return self._samples_cache

    def sample_array(self, attribute: str) -> np.ndarray:
        column = self.sample_buffer.column(attribute)
        if attribute == "running_vms":
            return column.astype(np.int64)
        return column.copy()

    # -- aggregate views ---------------------------------------------------------
    @property
    def required_local_dram_gb(self) -> float:
        """DRAM that must be provisioned across servers (sum of local peaks)."""
        return float(sum(self.server_peak_local_gb.values()))

    @property
    def required_pool_dram_gb(self) -> float:
        """DRAM that must be provisioned across pools (sum of pool peaks)."""
        return float(sum(self.pool_peak_gb.values()))

    @property
    def required_total_dram_gb(self) -> float:
        return self.required_local_dram_gb + self.required_pool_dram_gb

    @property
    def uniform_required_local_dram_gb(self) -> float:
        """Local DRAM when every server is provisioned identically.

        Servers are bought with one DRAM configuration, so without pooling the
        fleet must size *every* server for the worst per-server peak it might
        see -- which is exactly why the average server strands memory.  This
        is the provisioning model behind the paper's Figures 3 and 21.
        """
        if not self.server_peak_local_gb:
            return 0.0
        return float(len(self.server_peak_local_gb) * max(self.server_peak_local_gb.values()))

    @property
    def uniform_required_total_dram_gb(self) -> float:
        """Uniform per-server provisioning plus per-pool peaks."""
        return self.uniform_required_local_dram_gb + self.required_pool_dram_gb

    @property
    def average_pool_fraction(self) -> float:
        """Average fraction of allocated VM memory placed on pools."""
        if self.total_memory_gb_allocated <= 0:
            return 0.0
        return self.total_pool_gb_allocated / self.total_memory_gb_allocated


class ClusterSimulator:
    """Replays one cluster trace against a simulated cluster."""

    def __init__(
        self,
        n_servers: int,
        server_config: Optional[ServerConfig] = None,
        pool_size_sockets: int = 0,
        pool_capacity_gb_per_group: float = float("inf"),
        constrain_memory: bool = True,
        sample_interval_s: float = 3600.0,
        scheduler_strategy: str = "indexed",
        record_placements: bool = True,
    ) -> None:
        if n_servers < 1:
            raise ValueError("need at least one server")
        if sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        if pool_size_sockets < 0:
            raise ValueError("pool size cannot be negative")
        validate_strategy(scheduler_strategy)
        self.server_config = server_config or ServerConfig()
        if pool_size_sockets and pool_size_sockets % self.server_config.sockets != 0:
            raise ValueError(
                "pool_size_sockets must be a multiple of the server socket count"
            )
        self.n_servers = n_servers
        self.pool_size_sockets = pool_size_sockets
        self.pool_capacity_gb_per_group = pool_capacity_gb_per_group
        self.constrain_memory = constrain_memory
        self.sample_interval_s = sample_interval_s
        self.scheduler_strategy = scheduler_strategy
        #: Recording vm_id -> server_id costs one dict insert per placement
        #: (and O(n_vms) memory); searches that never read it can turn it off.
        self.record_placements = record_placements

    # -- construction of the simulated cluster -----------------------------------
    def _build_cluster(self) -> Tuple[List[ClusterServer], Dict[str, int], Dict[int, float]]:
        config = self.server_config
        if not self.constrain_memory:
            # Memory-unconstrained placement: provision servers with effectively
            # unlimited DRAM so the peak-tracking determines requirements.
            config = ServerConfig(
                name=config.name + "-unconstrained",
                sockets=config.sockets,
                cores_per_socket=config.cores_per_socket,
                dram_per_socket_gb=1e9,
            )
        servers = [
            ClusterServer(server_id=f"server-{i:04d}", config=config)
            for i in range(self.n_servers)
        ]
        server_pool_group: Dict[str, int] = {}
        pool_free: Dict[int, float] = {}
        if self.pool_size_sockets:
            servers_per_group = max(1, self.pool_size_sockets // self.server_config.sockets)
            for i, server in enumerate(servers):
                group = i // servers_per_group
                server_pool_group[server.server_id] = group
                pool_free.setdefault(group, self.pool_capacity_gb_per_group)
        return servers, server_pool_group, pool_free

    # -- trace/stream normalisation ---------------------------------------------------
    def _iter_blocks(
        self,
        trace: TraceInput,
        policy: Optional[PoolPolicy],
        pool_gb: Optional[np.ndarray],
        use_pool: bool,
    ) -> Iterator[Tuple[Sequence[VMTraceRecord], Optional[List[float]]]]:
        """Normalise the input into ``(records, pool_allocations)`` blocks.

        A materialised trace is one block (its columnar view is cached on the
        trace, so this path is identical to the pre-streaming fast path); a
        stream yields one block per chunk, with ``decide_batch`` evaluated
        per chunk so at most one chunk's allocations exist at a time.
        Allocations are clipped to ``[0, memory_gb]`` on both paths; blocks
        without precomputed allocations return ``None`` and fall back to the
        per-record ``policy`` callback in the main loop.
        """
        batch = use_pool and policy is not None and hasattr(policy, "decide_batch")

        def resolve(block, n, memory_gb, segment) -> Optional[List[float]]:
            """One block's allocations: clipped ``pool_gb`` segment, clipped
            ``decide_batch`` output, or ``None`` (per-record callback or no
            pool).  Single definition so the materialised and streamed paths
            cannot drift apart (the byte-for-byte equivalence contract).
            ``tolist()`` yields plain floats once, keeping the main loop free
            of per-record numpy scalar boxing."""
            if segment is not None:
                if not use_pool:
                    return None  # validated but unused, as before streaming
                return np.clip(segment, 0.0, memory_gb()).tolist()
            if batch:
                decided = np.asarray(policy.decide_batch(block), dtype=np.float64)
                if decided.shape != (n,):
                    raise ValueError(
                        f"decide_batch must return one entry per record "
                        f"({n}), got shape {decided.shape}"
                    )
                return np.clip(decided, 0.0, memory_gb()).tolist()
            return None

        if isinstance(trace, ClusterTrace):
            if pool_gb is not None and pool_gb.shape != (len(trace),):
                raise ValueError(
                    f"pool_gb must have one entry per trace record "
                    f"({len(trace)}), got shape {pool_gb.shape}"
                )
            yield trace.records, resolve(
                trace, len(trace), lambda: trace.columns().memory_gb, pool_gb
            )
            return
        offset = 0
        for chunk in trace.chunks():
            records = chunk.records
            if records is None:
                raise ValueError(
                    "stream chunks must carry records "
                    "(build them with TraceColumns.from_records)"
                )
            n = len(records)
            segment = None
            if pool_gb is not None:
                segment = pool_gb[offset:offset + n]
                if segment.shape[0] != n:
                    raise ValueError(
                        f"pool_gb has {pool_gb.shape[0]} entries but the "
                        f"stream yielded more records"
                    )
            offset += n
            yield records, resolve(chunk, n, lambda: chunk.memory_gb, segment)
        if pool_gb is not None and offset != pool_gb.shape[0]:
            raise ValueError(
                f"pool_gb has {pool_gb.shape[0]} entries but the stream "
                f"yielded only {offset} records"
            )

    # -- main loop --------------------------------------------------------------------
    def run(self, trace: TraceInput, policy: Optional[PoolPolicy] = None,
            horizon_s: Optional[float] = None,
            pool_gb: Optional[np.ndarray] = None) -> SimulationResult:
        """Replay ``trace``; ``policy`` decides each VM's pool memory in GB.

        ``trace`` is either a materialised :class:`ClusterTrace` or a
        :class:`~repro.cluster.trace.TraceStream`.  Streams are replayed one
        chunk at a time -- batch policies are evaluated per chunk -- so peak
        trace memory is O(chunk + live VMs) on the simulator side -- a
        ``GeneratedTraceStream`` additionally buffers one generation window
        internally -- instead of O(trace); the result
        is identical to replaying the materialised trace (the batch policy
        contract keys every decision on the VM id, not on batch boundaries).

        ``pool_gb`` is the batch-engine fast path: a precomputed array of
        per-VM pool allocations aligned with the trace's iteration order.
        When given (or when ``policy`` exposes ``decide_batch``, which is used
        to compute it), the hot loop indexes the array instead of calling
        back into Python for every VM.  Allocations are clipped to
        ``[0, memory_gb]`` exactly like the per-record path.

        ``horizon_s`` bounds the sampling window; by default it is the time of
        the last VM arrival, so long-lived VMs departing far in the future do
        not dilute the time series with an emptying cluster.
        """
        use_pool = bool(self.pool_size_sockets)
        streaming = not isinstance(trace, ClusterTrace)
        if pool_gb is not None:
            pool_gb = np.asarray(pool_gb, dtype=np.float64)
            policy = None  # precomputed allocations replace the callback
        servers, server_pool_group, pool_free = self._build_cluster()
        scheduler = VMScheduler(
            servers, pool_free, server_pool_group, strategy=self.scheduler_strategy
        )
        result = SimulationResult()
        buffer = result.sample_buffer

        # Departure events: (time, sequence, vm_id, server).
        departures: List[Tuple[float, int, str, ClusterServer]] = []
        seq = 0
        sample_interval = self.sample_interval_s
        next_sample_time = 0.0
        last_sample_time: Optional[float] = None
        pool_used: Dict[int, float] = {g: 0.0 for g in pool_free}
        pool_peak: Dict[int, float] = {g: 0.0 for g in pool_free}
        record_placements = self.record_placements
        total_cores = scheduler.total_cores
        total_dram = self.n_servers * self.server_config.total_dram_gb
        inf = float("inf")

        def process_one_departure() -> None:
            _, _, vm_id, server = heapq.heappop(departures)
            group = server_pool_group.get(server.server_id)
            if group is not None:
                pool_gb = server.placement(vm_id)[3]
                remaining = pool_used[group] - pool_gb
                if remaining < 0.0:
                    # Clamp the tiny negative float drift repeated +=/-= of
                    # policy fractions accumulates; real imbalances stay loud.
                    if remaining < -1e-6:
                        raise RuntimeError(
                            f"pool group {group} accounting went negative "
                            f"({remaining} GB) -- simulator bug"
                        )
                    remaining = 0.0
                pool_used[group] = remaining
            scheduler.remove(vm_id, server)

        def take_sample(time_s: float) -> None:
            nonlocal last_sample_time
            used_cores = scheduler.used_cores
            stranded = scheduler.stranded_gb
            if stranded < 0.0:
                stranded = 0.0
            buffer.append_row((
                time_s,
                used_cores / total_cores,
                100.0 * used_cores / total_cores,
                scheduler.used_local_gb,
                sum(pool_used.values()),
                stranded,
                100.0 * stranded / total_dram,
                scheduler.running_vms,
            ))
            last_sample_time = time_s

        def advance_to(time_s: float) -> None:
            """Apply all departure and sample events up to ``time_s``.

            The merged stream pops whichever of the two pending event times is
            smaller; on a tie the departure goes first, so a sample at *t*
            counts exactly the VMs still running at *t*.
            """
            nonlocal next_sample_time
            while True:
                departure_time = departures[0][0] if departures else inf
                if departure_time <= next_sample_time:
                    if departure_time > time_s:
                        return
                    process_one_departure()
                else:
                    if next_sample_time > time_s:
                        return
                    take_sample(next_sample_time)
                    next_sample_time += sample_interval

        # Starting the order check at 0.0 is safe because VMTraceRecord
        # rejects negative arrival times, and it doubles as the default
        # horizon for an empty trace (matching arrival_span_s == 0.0).
        last_arrival = 0.0
        for records, allocations in self._iter_blocks(trace, policy, pool_gb, use_pool):
            for index, record in enumerate(records):
                arrival_s = record.arrival_s
                if streaming and arrival_s < last_arrival:
                    raise ValueError(
                        f"stream records must be sorted by arrival time "
                        f"({record.vm_id!r} arrives at {arrival_s} after "
                        f"{last_arrival})"
                    )
                last_arrival = arrival_s
                advance_to(arrival_s)

                vm_pool_gb = 0.0
                if allocations is not None:
                    vm_pool_gb = allocations[index]
                elif policy is not None and use_pool:
                    vm_pool_gb = float(np.clip(policy(record), 0.0, record.memory_gb))
                local_gb = record.memory_gb - vm_pool_gb

                try:
                    server = scheduler.place(
                        record.vm_id, record.cores, local_gb, vm_pool_gb
                    )
                except PlacementError:
                    result.rejected_vms += 1
                    continue

                result.placed_vms += 1
                if record_placements:
                    result.placements[record.vm_id] = server.server_id
                result.total_memory_gb_allocated += record.memory_gb
                result.total_pool_gb_allocated += vm_pool_gb
                group = server_pool_group.get(server.server_id)
                if group is not None and vm_pool_gb > 0:
                    pool_used[group] += vm_pool_gb
                    if pool_used[group] > pool_peak[group]:
                        pool_peak[group] = pool_used[group]
                seq += 1
                heapq.heappush(
                    departures, (record.departure_s, seq, record.vm_id, server)
                )

        # Drain remaining departures and finish sampling up to the horizon,
        # then capture the final cluster state at the horizon exactly once.
        # Unlike grid samples, the horizon sample always reflects *post*-
        # arrival state (every arrival has been placed by now); if the grid
        # landed exactly on the horizon, that earlier pre-arrival row is
        # replaced so the series stays strictly time-ordered without
        # understating the endpoint.
        #
        # Records are sorted by arrival on both input paths, so the last
        # arrival seen is the trace's arrival span -- the stream case's only
        # way to know it without materialising.
        end_time = horizon_s if horizon_s is not None else last_arrival
        advance_to(end_time)
        if last_sample_time is None or last_sample_time <= end_time:
            if last_sample_time is not None and last_sample_time == end_time:
                buffer.drop_last()
            take_sample(end_time)
        while departures:
            process_one_departure()

        for server in servers:
            result.server_peak_local_gb[server.server_id] = server.peak_local_gb
            result.server_peak_total_gb[server.server_id] = (
                server.peak_local_gb + server.peak_pool_gb
            )
        result.pool_peak_gb = dict(pool_peak)
        return result

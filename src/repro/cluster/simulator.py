"""Event-driven cluster simulator.

The simulator replays a VM trace against a cluster of servers, mirroring the
paper's evaluation methodology: "The simulator implements different memory
allocation policies and tracks each server and each pool's memory capacity at
second accuracy" (Section 6.1).

Two usage modes matter:

* **Stranding analysis** (Figure 2): memory-constrained placement with no
  pool; the simulator samples core utilisation and stranded memory over time.
* **Pool dimensioning** (Figures 3 and 21): placement constrained by cores
  (memory effectively unconstrained), with a per-VM allocation policy deciding
  how much of each VM's memory goes to the pool.  The per-server local peaks
  and per-pool-group peaks then give the DRAM that *would have to be
  provisioned* under that policy, which is how DRAM savings are computed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.scheduler import PlacementError, VMScheduler
from repro.cluster.server import ClusterServer, ServerConfig
from repro.cluster.trace import ClusterTrace, VMTraceRecord

__all__ = ["ClusterSimulator", "SimulationResult", "SimulationSample"]

#: A policy maps a trace record to the GB of the VM's memory placed on the pool.
PoolPolicy = Callable[[VMTraceRecord], float]


@dataclass(frozen=True)
class SimulationSample:
    """One periodic snapshot of cluster state."""

    time_s: float
    core_utilization: float
    scheduled_cores_percent: float
    used_local_gb: float
    used_pool_gb: float
    stranded_gb: float
    stranded_percent: float
    running_vms: int


@dataclass
class SimulationResult:
    """Output of one simulation run."""

    samples: List[SimulationSample] = field(default_factory=list)
    server_peak_local_gb: Dict[str, float] = field(default_factory=dict)
    server_peak_total_gb: Dict[str, float] = field(default_factory=dict)
    pool_peak_gb: Dict[int, float] = field(default_factory=dict)
    placed_vms: int = 0
    rejected_vms: int = 0
    total_pool_gb_allocated: float = 0.0
    total_memory_gb_allocated: float = 0.0

    # -- aggregate views ---------------------------------------------------------
    @property
    def required_local_dram_gb(self) -> float:
        """DRAM that must be provisioned across servers (sum of local peaks)."""
        return float(sum(self.server_peak_local_gb.values()))

    @property
    def required_pool_dram_gb(self) -> float:
        """DRAM that must be provisioned across pools (sum of pool peaks)."""
        return float(sum(self.pool_peak_gb.values()))

    @property
    def required_total_dram_gb(self) -> float:
        return self.required_local_dram_gb + self.required_pool_dram_gb

    @property
    def uniform_required_local_dram_gb(self) -> float:
        """Local DRAM when every server is provisioned identically.

        Servers are bought with one DRAM configuration, so without pooling the
        fleet must size *every* server for the worst per-server peak it might
        see -- which is exactly why the average server strands memory.  This
        is the provisioning model behind the paper's Figures 3 and 21.
        """
        if not self.server_peak_local_gb:
            return 0.0
        return float(len(self.server_peak_local_gb) * max(self.server_peak_local_gb.values()))

    @property
    def uniform_required_total_dram_gb(self) -> float:
        """Uniform per-server provisioning plus per-pool peaks."""
        return self.uniform_required_local_dram_gb + self.required_pool_dram_gb

    @property
    def average_pool_fraction(self) -> float:
        """Average fraction of allocated VM memory placed on pools."""
        if self.total_memory_gb_allocated <= 0:
            return 0.0
        return self.total_pool_gb_allocated / self.total_memory_gb_allocated

    def sample_array(self, attribute: str) -> np.ndarray:
        return np.array([getattr(s, attribute) for s in self.samples])


class ClusterSimulator:
    """Replays one cluster trace against a simulated cluster."""

    def __init__(
        self,
        n_servers: int,
        server_config: Optional[ServerConfig] = None,
        pool_size_sockets: int = 0,
        pool_capacity_gb_per_group: float = float("inf"),
        constrain_memory: bool = True,
        sample_interval_s: float = 3600.0,
    ) -> None:
        if n_servers < 1:
            raise ValueError("need at least one server")
        if sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        if pool_size_sockets < 0:
            raise ValueError("pool size cannot be negative")
        self.server_config = server_config or ServerConfig()
        if pool_size_sockets and pool_size_sockets % self.server_config.sockets != 0:
            raise ValueError(
                "pool_size_sockets must be a multiple of the server socket count"
            )
        self.n_servers = n_servers
        self.pool_size_sockets = pool_size_sockets
        self.pool_capacity_gb_per_group = pool_capacity_gb_per_group
        self.constrain_memory = constrain_memory
        self.sample_interval_s = sample_interval_s

    # -- construction of the simulated cluster -----------------------------------
    def _build_cluster(self) -> Tuple[List[ClusterServer], Dict[str, int], Dict[int, float]]:
        config = self.server_config
        if not self.constrain_memory:
            # Memory-unconstrained placement: provision servers with effectively
            # unlimited DRAM so the peak-tracking determines requirements.
            config = ServerConfig(
                name=config.name + "-unconstrained",
                sockets=config.sockets,
                cores_per_socket=config.cores_per_socket,
                dram_per_socket_gb=1e9,
            )
        servers = [
            ClusterServer(server_id=f"server-{i:04d}", config=config)
            for i in range(self.n_servers)
        ]
        server_pool_group: Dict[str, int] = {}
        pool_free: Dict[int, float] = {}
        if self.pool_size_sockets:
            servers_per_group = max(1, self.pool_size_sockets // self.server_config.sockets)
            for i, server in enumerate(servers):
                group = i // servers_per_group
                server_pool_group[server.server_id] = group
                pool_free.setdefault(group, self.pool_capacity_gb_per_group)
        return servers, server_pool_group, pool_free

    # -- main loop --------------------------------------------------------------------
    def run(self, trace: ClusterTrace, policy: Optional[PoolPolicy] = None,
            horizon_s: Optional[float] = None) -> SimulationResult:
        """Replay ``trace``; ``policy`` decides each VM's pool memory in GB.

        ``horizon_s`` bounds the sampling window; by default it is the time of
        the last VM arrival, so long-lived VMs departing far in the future do
        not dilute the time series with an emptying cluster.
        """
        servers, server_pool_group, pool_free = self._build_cluster()
        scheduler = VMScheduler(servers, pool_free, server_pool_group)
        result = SimulationResult()

        # Departure events: (time, sequence, vm_id, server).
        departures: List[Tuple[float, int, str, ClusterServer]] = []
        seq = 0
        next_sample_time = 0.0
        pool_used: Dict[int, float] = {g: 0.0 for g in pool_free}
        pool_peak: Dict[int, float] = {g: 0.0 for g in pool_free}

        def process_departures(until_s: float) -> None:
            nonlocal pool_used
            while departures and departures[0][0] <= until_s:
                _, _, vm_id, server = heapq.heappop(departures)
                group = server_pool_group.get(server.server_id)
                if group is not None and server.has_vm(vm_id):
                    pool_gb = server._placements[vm_id][3]
                    pool_used[group] -= pool_gb
                scheduler.remove(vm_id, server)

        def take_sample(time_s: float) -> None:
            total_cores = sum(s.total_cores for s in servers)
            used_cores = sum(s.used_cores for s in servers)
            used_local = sum(s.used_local_gb for s in servers)
            used_pool = sum(pool_used.values())
            stranded = sum(s.stranded_gb for s in servers)
            total_dram = self.n_servers * self.server_config.total_dram_gb
            result.samples.append(
                SimulationSample(
                    time_s=time_s,
                    core_utilization=used_cores / total_cores,
                    scheduled_cores_percent=100.0 * used_cores / total_cores,
                    used_local_gb=used_local,
                    used_pool_gb=used_pool,
                    stranded_gb=stranded,
                    stranded_percent=100.0 * stranded / total_dram,
                    running_vms=sum(s.n_vms for s in servers),
                )
            )

        for record in trace:
            process_departures(record.arrival_s)
            while next_sample_time <= record.arrival_s:
                take_sample(next_sample_time)
                next_sample_time += self.sample_interval_s

            pool_gb = 0.0
            if policy is not None and self.pool_size_sockets:
                pool_gb = float(np.clip(policy(record), 0.0, record.memory_gb))
            local_gb = record.memory_gb - pool_gb

            try:
                server = scheduler.place(record.vm_id, record.cores, local_gb, pool_gb)
            except PlacementError:
                result.rejected_vms += 1
                continue

            result.placed_vms += 1
            result.total_memory_gb_allocated += record.memory_gb
            result.total_pool_gb_allocated += pool_gb
            group = server_pool_group.get(server.server_id)
            if group is not None and pool_gb > 0:
                pool_used[group] += pool_gb
                pool_peak[group] = max(pool_peak[group], pool_used[group])
            seq += 1
            heapq.heappush(departures, (record.departure_s, seq, record.vm_id, server))

        # Drain remaining departures and finish sampling up to the horizon.
        end_time = horizon_s if horizon_s is not None else trace.arrival_span_s
        while next_sample_time <= end_time:
            process_departures(next_sample_time)
            take_sample(next_sample_time)
            next_sample_time += self.sample_interval_s
        # Always capture the final cluster state at the horizon so short traces
        # (shorter than one sample interval) still produce a meaningful sample.
        process_departures(end_time)
        take_sample(end_time)
        process_departures(float("inf"))

        for server in servers:
            result.server_peak_local_gb[server.server_id] = server.peak_local_gb
            result.server_peak_total_gb[server.server_id] = (
                server.peak_local_gb + server.peak_pool_gb
            )
        result.pool_peak_gb = dict(pool_peak)
        return result

"""Event-driven cluster simulator.

The simulator replays a VM trace against a cluster of servers, mirroring the
paper's evaluation methodology: "The simulator implements different memory
allocation policies and tracks each server and each pool's memory capacity at
second accuracy" (Section 6.1).

Two usage modes matter:

* **Stranding analysis** (Figure 2): memory-constrained placement with no
  pool; the simulator samples core utilisation and stranded memory over time.
* **Pool dimensioning** (Figures 3 and 21): placement constrained by cores
  (memory effectively unconstrained), with a per-VM allocation policy deciding
  how much of each VM's memory goes to the pool.  The per-server local peaks
  and per-pool-group peaks then give the DRAM that *would have to be
  provisioned* under that policy, which is how DRAM savings are computed.

The main loop consumes one merged, time-ordered stream of arrival, departure,
and sample events.  At equal timestamps the order is departures, then the
sample, then the arrival: a snapshot at time *t* therefore reflects exactly
the VMs running at *t* (departures up to and including *t* applied, arrivals
at *t* not yet placed), which VM traces with millions of events rely on for
correct time series.  The one exception is the final horizon sample, which is
taken after every arrival has been placed so it captures the cluster's true
end state.  Samples are stored in preallocated numpy columns rather
than per-sample objects so multi-year traces sample cheaply.

Pool allocations come from the batch policy engine: policies exposing
``decide_batch`` (see DESIGN.md) are evaluated once per run as a vectorized
array, and ``run`` also accepts a precomputed ``pool_gb`` array directly, so
the hot loop never calls back into Python per VM.  Plain per-record
callables remain supported as the legacy differential-testing path.
"""

from __future__ import annotations

import gc
import heapq
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.engine import ArrayPlacementEngine, resolve_engine
from repro.cluster.faults import FaultImpactStats, FaultInjector, FaultSchedule
from repro.cluster.scheduler import PlacementError, VMScheduler, validate_strategy
from repro.cluster.server import ClusterServer, ServerConfig
from repro.cluster.trace import ClusterTrace, TraceStream, VMTraceRecord
from repro.core.control_plane.online import (
    OnlineControlConfig,
    OnlineControlStats,
    estimate_slowdown_batch,
)

__all__ = [
    "ClusterSimulator",
    "SimulationResult",
    "SimulationSample",
    "iter_policy_blocks",
    "block_replay_columns",
    "effective_server_config",
]

#: A policy maps a trace record to the GB of the VM's memory placed on the pool.
PoolPolicy = Callable[[VMTraceRecord], float]

#: ``ClusterSimulator.run`` replays either a materialised trace or a stream.
TraceInput = Union[ClusterTrace, TraceStream]

#: Calendar-queue window for the array loop's departure events.  Purely a
#: performance knob (the processing order is (time, seq) regardless); one
#: hour keeps bins in the thousands of events at fleet scale.
_DEPARTURE_BIN_S = 3600.0

#: Column order of the sample buffer; must match SimulationSample's fields.
_SAMPLE_COLUMNS = (
    "time_s",
    "core_utilization",
    "scheduled_cores_percent",
    "used_local_gb",
    "used_pool_gb",
    "stranded_gb",
    "stranded_percent",
    "running_vms",
)


@dataclass(frozen=True)
class SimulationSample:
    """One periodic snapshot of cluster state."""

    time_s: float
    core_utilization: float
    scheduled_cores_percent: float
    used_local_gb: float
    used_pool_gb: float
    stranded_gb: float
    stranded_percent: float
    running_vms: int


class SampleBuffer:
    """Preallocated columnar storage for simulation samples.

    Appending writes one row into a (capacity, n_columns) float array that
    doubles when full, so recording a sample is O(1) with no per-sample object
    allocation.  Columns are exposed as numpy views.
    """

    def __init__(self, initial_capacity: int = 256) -> None:
        if initial_capacity < 1:
            raise ValueError("initial capacity must be >= 1")
        self._data = np.empty((initial_capacity, len(_SAMPLE_COLUMNS)), dtype=np.float64)
        self._count = 0
        self._version = 0

    def __len__(self) -> int:
        return self._count

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumps on every append or drop.

        Consumers caching derived views (``SimulationResult.samples``) key
        their cache on this, not on ``len``: a ``drop_last`` followed by an
        ``append_row`` changes the contents without changing the length.
        """
        return self._version

    def append_row(self, row: Sequence[float]) -> None:
        if self._count == self._data.shape[0]:
            grown = np.empty((2 * self._data.shape[0], self._data.shape[1]),
                             dtype=np.float64)
            grown[: self._count] = self._data
            self._data = grown
        self._data[self._count] = row
        self._count += 1
        self._version += 1

    def drop_last(self) -> None:
        if self._count < 1:
            raise IndexError("no samples to drop")
        self._count -= 1
        self._version += 1

    def column(self, name: str) -> np.ndarray:
        try:
            col = _SAMPLE_COLUMNS.index(name)
        except ValueError:
            raise AttributeError(f"unknown sample attribute {name!r}") from None
        return self._data[: self._count, col]

    def rows(self) -> np.ndarray:
        return self._data[: self._count]


@dataclass
class SimulationResult:
    """Output of one simulation run."""

    sample_buffer: SampleBuffer = field(default_factory=SampleBuffer)
    server_peak_local_gb: Dict[str, float] = field(default_factory=dict)
    server_peak_total_gb: Dict[str, float] = field(default_factory=dict)
    pool_peak_gb: Dict[int, float] = field(default_factory=dict)
    placed_vms: int = 0
    rejected_vms: int = 0
    total_pool_gb_allocated: float = 0.0
    total_memory_gb_allocated: float = 0.0
    #: Accounting of the online QoS/mitigation stage; ``None`` for static
    #: replays.  Excluded from equality so an online replay with mitigation
    #: disabled compares equal to the static replay it must reproduce.
    online_stats: Optional[OnlineControlStats] = field(
        default=None, repr=False, compare=False
    )
    #: Accounting of EMC fault injection (``faults=...``); ``None`` for
    #: fault-free replays.  Excluded from equality so a replay with an
    #: empty schedule compares equal to the static replay it reproduces.
    fault_stats: Optional[FaultImpactStats] = field(
        default=None, repr=False, compare=False
    )
    _samples_cache: Optional[List[SimulationSample]] = field(
        default=None, repr=False, compare=False
    )
    #: Buffer version the cache was built from (see SampleBuffer.version);
    #: -1 means "never built".  Length alone is not a valid key: dropping a
    #: row and appending a different one keeps the count but changes content.
    _samples_cache_version: int = field(default=-1, repr=False, compare=False)
    #: Columnar placement log (array engine): placed vm ids + server indices
    #: into ``_placement_server_ids``.  ``placements`` materialises the dict
    #: view lazily, so recording a placement in the hot loop is two list
    #: appends instead of a string-keyed dict insert.
    _placed_vm_ids: Optional[List[str]] = field(
        default=None, repr=False, compare=False
    )
    _placed_server_idx: Optional[List[int]] = field(
        default=None, repr=False, compare=False
    )
    _placement_server_ids: Optional[List[str]] = field(
        default=None, repr=False, compare=False
    )
    _placements_dict: Optional[Dict[str, str]] = field(
        default=None, repr=False, compare=False
    )

    # -- placements --------------------------------------------------------------
    @property
    def placements(self) -> Dict[str, str]:
        """vm_id -> server_id for every placed VM (differential-testing hook).

        Built lazily from the columnar placement log when the array engine
        recorded it; a plain (mutable) dict otherwise.  Repeated placements of
        the same vm id keep the last server, like a direct dict insert would.
        """
        if self._placements_dict is None:
            if self._placed_vm_ids is not None:
                server_ids = self._placement_server_ids
                self._placements_dict = {
                    vm_id: server_ids[idx]
                    for vm_id, idx in zip(
                        self._placed_vm_ids, self._placed_server_idx
                    )
                }
            else:
                self._placements_dict = {}
        return self._placements_dict

    # -- sample access -----------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return len(self.sample_buffer)

    @property
    def samples(self) -> List[SimulationSample]:
        """Materialised per-sample view (compatibility with older callers).

        The list is built lazily from the columnar buffer and cached; the
        cache is invalidated by any buffer mutation, so repeated access after
        a run costs nothing beyond the first call.
        """
        if (self._samples_cache is not None
                and self._samples_cache_version == self.sample_buffer.version):
            return self._samples_cache
        self._samples_cache_version = self.sample_buffer.version
        rows = self.sample_buffer.rows()
        self._samples_cache = [
            SimulationSample(
                time_s=float(r[0]),
                core_utilization=float(r[1]),
                scheduled_cores_percent=float(r[2]),
                used_local_gb=float(r[3]),
                used_pool_gb=float(r[4]),
                stranded_gb=float(r[5]),
                stranded_percent=float(r[6]),
                running_vms=int(r[7]),
            )
            for r in rows
        ]
        return self._samples_cache

    def sample_array(self, attribute: str) -> np.ndarray:
        column = self.sample_buffer.column(attribute)
        if attribute == "running_vms":
            return column.astype(np.int64)
        return column.copy()

    # -- aggregate views ---------------------------------------------------------
    @property
    def required_local_dram_gb(self) -> float:
        """DRAM that must be provisioned across servers (sum of local peaks)."""
        return float(sum(self.server_peak_local_gb.values()))

    @property
    def required_pool_dram_gb(self) -> float:
        """DRAM that must be provisioned across pools (sum of pool peaks)."""
        return float(sum(self.pool_peak_gb.values()))

    @property
    def required_total_dram_gb(self) -> float:
        return self.required_local_dram_gb + self.required_pool_dram_gb

    @property
    def uniform_required_local_dram_gb(self) -> float:
        """Local DRAM when every server is provisioned identically.

        Servers are bought with one DRAM configuration, so without pooling the
        fleet must size *every* server for the worst per-server peak it might
        see -- which is exactly why the average server strands memory.  This
        is the provisioning model behind the paper's Figures 3 and 21.
        """
        if not self.server_peak_local_gb:
            return 0.0
        return float(len(self.server_peak_local_gb) * max(self.server_peak_local_gb.values()))

    @property
    def uniform_required_total_dram_gb(self) -> float:
        """Uniform per-server provisioning plus per-pool peaks."""
        return self.uniform_required_local_dram_gb + self.required_pool_dram_gb

    @property
    def average_pool_fraction(self) -> float:
        """Average fraction of allocated VM memory placed on pools."""
        if self.total_memory_gb_allocated <= 0:
            return 0.0
        return self.total_pool_gb_allocated / self.total_memory_gb_allocated


def effective_server_config(config: ServerConfig,
                            constrain_memory: bool) -> ServerConfig:
    """The replayed server shape (unconstrained replays get huge DRAM).

    Shared by :class:`ClusterSimulator` and the cross-shard fleet replay so
    memory-unconstrained engines are built byte-identically on both paths.
    """
    if constrain_memory:
        return config
    # Memory-unconstrained placement: provision servers with effectively
    # unlimited DRAM so the peak-tracking determines requirements.
    return ServerConfig(
        name=config.name + "-unconstrained",
        sockets=config.sockets,
        cores_per_socket=config.cores_per_socket,
        dram_per_socket_gb=1e9,
    )


def iter_policy_blocks(
    trace: TraceInput,
    policy: Optional[PoolPolicy],
    pool_gb: Optional[np.ndarray],
    use_pool: bool,
) -> Iterator[Tuple[object, Sequence[VMTraceRecord], Optional[List[float]]]]:
    """Normalise a trace input into ``(block, records, pool_allocations)``.

    ``block`` is the columnar carrier (the trace itself, or one
    :class:`TraceColumns` chunk); the array-engine loop reads its replay
    columns instead of touching record objects.

    A materialised trace is one block (its columnar view is cached on the
    trace, so this path is identical to the pre-streaming fast path); a
    stream yields one block per chunk, with ``decide_batch`` evaluated
    per chunk so at most one chunk's allocations exist at a time.
    Allocations are clipped to ``[0, memory_gb]`` on both paths; blocks
    without precomputed allocations return ``None`` and fall back to the
    per-record ``policy`` callback in the main loop.

    Shared by :meth:`ClusterSimulator.run` and the cross-shard fleet replay
    (:mod:`repro.cluster.pool_topology`), so both resolve allocations with
    identical arithmetic.
    """
    batch = use_pool and policy is not None and hasattr(policy, "decide_batch")

    def resolve(block, n, memory_gb, segment) -> Optional[List[float]]:
        """One block's allocations: clipped ``pool_gb`` segment, clipped
        ``decide_batch`` output, or ``None`` (per-record callback or no
        pool).  Single definition so the materialised and streamed paths
        cannot drift apart (the byte-for-byte equivalence contract).
        ``tolist()`` yields plain floats once, keeping the main loop free
        of per-record numpy scalar boxing."""
        if segment is not None:
            if not use_pool:
                return None  # validated but unused, as before streaming
            return np.clip(segment, 0.0, memory_gb()).tolist()
        if batch:
            decided = np.asarray(policy.decide_batch(block), dtype=np.float64)
            if decided.shape != (n,):
                raise ValueError(
                    f"decide_batch must return one entry per record "
                    f"({n}), got shape {decided.shape}"
                )
            return np.clip(decided, 0.0, memory_gb()).tolist()
        return None

    if isinstance(trace, ClusterTrace):
        if pool_gb is not None and pool_gb.shape != (len(trace),):
            raise ValueError(
                f"pool_gb must have one entry per trace record "
                f"({len(trace)}), got shape {pool_gb.shape}"
            )
        yield trace, trace.records, resolve(
            trace, len(trace), lambda: trace.columns().memory_gb, pool_gb
        )
        return
    offset = 0
    for chunk in trace.chunks():
        records = chunk.records
        if records is None:
            raise ValueError(
                "stream chunks must carry records "
                "(build them with TraceColumns.from_records)"
            )
        n = len(records)
        segment = None
        if pool_gb is not None:
            segment = pool_gb[offset:offset + n]
            if segment.shape[0] != n:
                raise ValueError(
                    f"pool_gb has {pool_gb.shape[0]} entries but the "
                    f"stream yielded more records"
                )
        offset += n
        yield chunk, records, resolve(chunk, n, lambda: chunk.memory_gb, segment)
    if pool_gb is not None and offset != pool_gb.shape[0]:
        raise ValueError(
            f"pool_gb has {pool_gb.shape[0]} entries but the stream "
            f"yielded only {offset} records"
        )


def block_replay_columns(block, records):
    """(vm_ids, arrival, departure, cores, memory) lists for one block.

    Prefers the block's replay columns (``tolist`` converts to plain
    Python scalars at C speed); falls back to reading the record objects
    for hand-built :class:`TraceColumns` without them.  Either way the
    values are bit-identical to the record attributes.
    """
    if isinstance(block, ClusterTrace):
        block = block.columns()
        vm_ids = block.vm_ids
    else:
        vm_ids = block.vm_ids
    if block.arrival_s is not None:
        return (
            vm_ids,
            block.arrival_s.tolist(),
            block.departure_s.tolist(),
            block.cores.tolist(),
            block.memory_gb.tolist(),
        )
    return (
        vm_ids,
        [r.arrival_s for r in records],
        [r.departure_s for r in records],
        [r.cores for r in records],
        [r.memory_gb for r in records],
    )


class ClusterSimulator:
    """Replays one cluster trace against a simulated cluster."""

    def __init__(
        self,
        n_servers: int,
        server_config: Optional[ServerConfig] = None,
        pool_size_sockets: int = 0,
        pool_capacity_gb_per_group: float = float("inf"),
        constrain_memory: bool = True,
        sample_interval_s: float = 3600.0,
        scheduler_strategy: str = "indexed",
        engine: Optional[str] = None,
        record_placements: bool = True,
    ) -> None:
        if n_servers < 1:
            raise ValueError("need at least one server")
        if sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        if pool_size_sockets < 0:
            raise ValueError("pool size cannot be negative")
        validate_strategy(scheduler_strategy)
        #: "array" (default under the indexed strategy: struct-of-arrays hot
        #: path) or "object" (ClusterServer/VMScheduler objects; required by
        #: and default under strategy="linear").  Both produce byte-identical
        #: results; the object path is kept for differential testing.
        self.engine = resolve_engine(engine, scheduler_strategy)
        self.server_config = server_config or ServerConfig()
        if pool_size_sockets and pool_size_sockets % self.server_config.sockets != 0:
            raise ValueError(
                "pool_size_sockets must be a multiple of the server socket count"
            )
        self.n_servers = n_servers
        self.pool_size_sockets = pool_size_sockets
        self.pool_capacity_gb_per_group = pool_capacity_gb_per_group
        self.constrain_memory = constrain_memory
        self.sample_interval_s = sample_interval_s
        self.scheduler_strategy = scheduler_strategy
        #: Recording vm_id -> server_id costs one dict insert per placement
        #: (and O(n_vms) memory); searches that never read it can turn it off.
        self.record_placements = record_placements

    # -- construction of the simulated cluster -----------------------------------
    def _effective_config(self) -> ServerConfig:
        """The replayed server shape (unconstrained replays get huge DRAM)."""
        return effective_server_config(self.server_config, self.constrain_memory)

    def _build_cluster(self) -> Tuple[List[ClusterServer], Dict[str, int], Dict[int, float]]:
        config = self._effective_config()
        servers = [
            ClusterServer(server_id=f"server-{i:04d}", config=config)
            for i in range(self.n_servers)
        ]
        server_pool_group: Dict[str, int] = {}
        pool_free: Dict[int, float] = {}
        if self.pool_size_sockets:
            servers_per_group = max(1, self.pool_size_sockets // self.server_config.sockets)
            for i, server in enumerate(servers):
                group = i // servers_per_group
                server_pool_group[server.server_id] = group
                pool_free.setdefault(group, self.pool_capacity_gb_per_group)
        return servers, server_pool_group, pool_free

    # -- trace/stream normalisation ---------------------------------------------------
    def _iter_blocks(
        self,
        trace: TraceInput,
        policy: Optional[PoolPolicy],
        pool_gb: Optional[np.ndarray],
        use_pool: bool,
    ) -> Iterator[Tuple[object, Sequence[VMTraceRecord], Optional[List[float]]]]:
        """Normalise the input into ``(block, records, pool_allocations)``.

        Delegates to the module-level :func:`iter_policy_blocks`, which the
        cross-shard fleet replay shares so both consumers resolve policy
        allocations identically.
        """
        return iter_policy_blocks(trace, policy, pool_gb, use_pool)

    # -- main loop --------------------------------------------------------------------
    def run(self, trace: TraceInput, policy: Optional[PoolPolicy] = None,
            horizon_s: Optional[float] = None,
            pool_gb: Optional[np.ndarray] = None,
            online: Optional[OnlineControlConfig] = None,
            faults: Optional[FaultSchedule] = None) -> SimulationResult:
        """Replay ``trace``; ``policy`` decides each VM's pool memory in GB.

        ``trace`` is either a materialised :class:`ClusterTrace` or a
        :class:`~repro.cluster.trace.TraceStream`.  Streams are replayed one
        chunk at a time -- batch policies are evaluated per chunk -- so peak
        trace memory is O(chunk + live VMs) on the simulator side -- a
        ``GeneratedTraceStream`` additionally buffers one generation window
        internally -- instead of O(trace); the result
        is identical to replaying the materialised trace (the batch policy
        contract keys every decision on the VM id, not on batch boundaries).

        ``pool_gb`` is the batch-engine fast path: a precomputed array of
        per-VM pool allocations aligned with the trace's iteration order.
        When given (or when ``policy`` exposes ``decide_batch``, which is used
        to compute it), the hot loop indexes the array instead of calling
        back into Python for every VM.  Allocations are clipped to
        ``[0, memory_gb]`` exactly like the per-record path.

        ``horizon_s`` bounds the sampling window; by default it is the time of
        the last VM arrival, so long-lived VMs departing far in the future do
        not dilute the time series with an emptying cluster.

        With ``engine="array"`` (the default) the replay runs on the
        struct-of-arrays engine (:mod:`repro.cluster.engine`); results are
        byte-identical to the object path, which ``engine="object"`` keeps
        for differential testing.

        ``online`` activates the online QoS/mitigation stage (array engine
        only): after every grid sample a QoS tick scans live pool-exposed
        VMs whose estimated slowdown exceeds the configured threshold and
        migrates their pool share to local DRAM (see DESIGN.md section 10).
        With mitigation disabled (``qos_threshold_percent=inf``) the result
        is byte-identical to the static replay.

        ``faults`` activates deterministic EMC fault injection (array
        engine only): a :class:`~repro.cluster.faults.FaultSchedule` fires
        timed fail/repair events for pool groups inside the merged event
        stream, degrading the group ledger and running the degradation
        ladder over affected VMs (DESIGN.md section 11).  With an empty
        schedule the replay is byte-identical to the static replay
        (differential-tested); impact accounting lands on
        ``result.fault_stats``.
        """
        if online is not None or faults is not None:
            if self.engine != "array":
                what = ("the online control loop" if online is not None
                        else "fault injection")
                raise ValueError(f"{what} requires engine='array'")
            return self._run_array_online(trace, policy, horizon_s, pool_gb,
                                          online, faults)
        if self.engine == "array":
            return self._run_array(trace, policy, horizon_s, pool_gb)
        use_pool = bool(self.pool_size_sockets)
        streaming = not isinstance(trace, ClusterTrace)
        if pool_gb is not None:
            pool_gb = np.asarray(pool_gb, dtype=np.float64)
            policy = None  # precomputed allocations replace the callback
        servers, server_pool_group, pool_free = self._build_cluster()
        scheduler = VMScheduler(
            servers, pool_free, server_pool_group, strategy=self.scheduler_strategy
        )
        result = SimulationResult()
        buffer = result.sample_buffer

        # Departure events: (time, sequence, vm_id, server).
        departures: List[Tuple[float, int, str, ClusterServer]] = []
        seq = 0
        sample_interval = self.sample_interval_s
        next_sample_time = 0.0
        last_sample_time: Optional[float] = None
        pool_used: Dict[int, float] = {g: 0.0 for g in pool_free}
        pool_peak: Dict[int, float] = {g: 0.0 for g in pool_free}
        record_placements = self.record_placements
        placements = result.placements
        total_cores = scheduler.total_cores
        total_dram = self.n_servers * self.server_config.total_dram_gb
        inf = float("inf")

        def process_one_departure() -> None:
            _, _, vm_id, server = heapq.heappop(departures)
            group = server_pool_group.get(server.server_id)
            if group is not None:
                pool_gb = server.placement(vm_id)[3]
                remaining = pool_used[group] - pool_gb
                if remaining < 0.0:
                    # Clamp the tiny negative float drift repeated +=/-= of
                    # policy fractions accumulates; real imbalances stay loud.
                    if remaining < -1e-6:
                        raise RuntimeError(
                            f"pool group {group} accounting went negative "
                            f"({remaining} GB) -- simulator bug"
                        )
                    remaining = 0.0
                pool_used[group] = remaining
            scheduler.remove(vm_id, server)

        def take_sample(time_s: float) -> None:
            nonlocal last_sample_time
            used_cores = scheduler.used_cores
            stranded = scheduler.stranded_gb
            if stranded < 0.0:
                stranded = 0.0
            buffer.append_row((
                time_s,
                used_cores / total_cores,
                100.0 * used_cores / total_cores,
                scheduler.used_local_gb,
                sum(pool_used.values()),
                stranded,
                100.0 * stranded / total_dram,
                scheduler.running_vms,
            ))
            last_sample_time = time_s

        def advance_to(time_s: float) -> None:
            """Apply all departure and sample events up to ``time_s``.

            The merged stream pops whichever of the two pending event times is
            smaller; on a tie the departure goes first, so a sample at *t*
            counts exactly the VMs still running at *t*.
            """
            nonlocal next_sample_time
            while True:
                departure_time = departures[0][0] if departures else inf
                if departure_time <= next_sample_time:
                    if departure_time > time_s:
                        return
                    process_one_departure()
                else:
                    if next_sample_time > time_s:
                        return
                    take_sample(next_sample_time)
                    next_sample_time += sample_interval

        # Starting the order check at 0.0 is safe because VMTraceRecord
        # rejects negative arrival times, and it doubles as the default
        # horizon for an empty trace (matching arrival_span_s == 0.0).
        last_arrival = 0.0
        for _block, records, allocations in self._iter_blocks(trace, policy, pool_gb, use_pool):
            for index, record in enumerate(records):
                arrival_s = record.arrival_s
                if streaming and arrival_s < last_arrival:
                    raise ValueError(
                        f"stream records must be sorted by arrival time "
                        f"({record.vm_id!r} arrives at {arrival_s} after "
                        f"{last_arrival})"
                    )
                last_arrival = arrival_s
                advance_to(arrival_s)

                vm_pool_gb = 0.0
                if allocations is not None:
                    vm_pool_gb = allocations[index]
                elif policy is not None and use_pool:
                    vm_pool_gb = float(np.clip(policy(record), 0.0, record.memory_gb))
                local_gb = record.memory_gb - vm_pool_gb

                try:
                    server = scheduler.place(
                        record.vm_id, record.cores, local_gb, vm_pool_gb
                    )
                except PlacementError:
                    result.rejected_vms += 1
                    continue

                result.placed_vms += 1
                if record_placements:
                    placements[record.vm_id] = server.server_id
                result.total_memory_gb_allocated += record.memory_gb
                result.total_pool_gb_allocated += vm_pool_gb
                group = server_pool_group.get(server.server_id)
                if group is not None and vm_pool_gb > 0:
                    pool_used[group] += vm_pool_gb
                    if pool_used[group] > pool_peak[group]:
                        pool_peak[group] = pool_used[group]
                seq += 1
                heapq.heappush(
                    departures, (record.departure_s, seq, record.vm_id, server)
                )

        # Drain remaining departures and finish sampling up to the horizon,
        # then capture the final cluster state at the horizon exactly once.
        # Unlike grid samples, the horizon sample always reflects *post*-
        # arrival state (every arrival has been placed by now); if the grid
        # landed exactly on the horizon, that earlier pre-arrival row is
        # replaced so the series stays strictly time-ordered without
        # understating the endpoint.
        #
        # Records are sorted by arrival on both input paths, so the last
        # arrival seen is the trace's arrival span -- the stream case's only
        # way to know it without materialising.
        end_time = horizon_s if horizon_s is not None else last_arrival
        advance_to(end_time)
        if last_sample_time is None or last_sample_time <= end_time:
            if last_sample_time is not None and last_sample_time == end_time:
                buffer.drop_last()
            take_sample(end_time)
        while departures:
            process_one_departure()

        for server in servers:
            result.server_peak_local_gb[server.server_id] = server.peak_local_gb
            result.server_peak_total_gb[server.server_id] = (
                server.peak_local_gb + server.peak_pool_gb
            )
        result.pool_peak_gb = dict(pool_peak)
        return result

    # -- array-engine hot loop ---------------------------------------------------------
    def _block_replay_columns(self, block, records):
        """(vm_ids, arrival, departure, cores, memory) lists for one block.

        Delegates to the module-level :func:`block_replay_columns` (shared
        with the cross-shard fleet replay).
        """
        return block_replay_columns(block, records)

    def _run_array(self, trace: TraceInput, policy: Optional[PoolPolicy],
                   horizon_s: Optional[float],
                   pool_gb: Optional[np.ndarray]) -> SimulationResult:
        """:meth:`run` on the struct-of-arrays engine (dispatcher).

        Materialised traces whose departures all fall strictly after their
        arrivals -- every real trace -- run on the **presorted-departure**
        loop (:meth:`_run_array_presorted`): departure order is a stable
        argsort computed once up front, so the hot loop sheds the calendar
        queue entirely.  Streams (departure times cross block boundaries)
        and degenerate traces (zero/negative lifetimes, zero-core VMs) keep
        the calendar-queue loop (:meth:`_run_array_calendar`).  Both produce
        byte-identical results (differential-tested, like
        ``engine="object"``).
        """
        if isinstance(trace, ClusterTrace):
            columns = trace.columns()
            arrivals = columns.arrival_s
            if arrivals is not None:
                n = arrivals.shape[0]
                if n == 0 or (
                    bool((columns.departure_s > arrivals).all())
                    and int(columns.cores.min()) >= 1
                ):
                    return self._run_array_presorted(trace, policy, horizon_s,
                                                     pool_gb)
        return self._run_array_calendar(trace, policy, horizon_s, pool_gb)

    def _run_array_online(self, trace: TraceInput,
                          policy: Optional[PoolPolicy],
                          horizon_s: Optional[float],
                          pool_gb: Optional[np.ndarray],
                          online: Optional[OnlineControlConfig],
                          faults: Optional[FaultSchedule] = None,
                          ) -> SimulationResult:
        """:meth:`run` with the online QoS/mitigation stage (array engine).

        Same merged event stream and arithmetic as the static loops, driven
        through :class:`ArrayPlacementEngine` methods (the structure the
        cross-shard event loop already pins byte-identical to the inlined
        paths).  One extra event type rides along: after every *grid* sample
        a QoS tick walks the at-risk set -- live VMs whose pool share is
        positive and whose estimated slowdown exceeds the threshold -- and
        migrates each one's pool share to NUMA-local DRAM
        (:meth:`ArrayPlacementEngine.migrate_pool_to_local`).  The sample
        row itself is appended *before* the tick, so samples always show the
        pre-mitigation state; the horizon sample never ticks (the replay is
        over).  Failed migrations (insufficient node headroom) stay in the
        at-risk set and are retried on every later tick.

        With mitigation disabled (``qos_threshold_percent=inf``) no tick
        does any work and the result is byte-identical to the static replay
        (differential-tested).

        ``faults`` adds deterministic EMC fault injection (``online`` may
        then be ``None``).  Fault events merge into the same stream --
        after departures, before the grid sample at equal timestamps -- and
        an evacuation-retry tick runs after each grid sample's QoS tick;
        fault events past the replay horizon never fire (DESIGN.md section
        11).  The departure heap then stores injector *tokens* instead of
        raw handles, so live migrations and kills mid-replay cannot corrupt
        recycled handles.  With an empty schedule the loop's arithmetic is
        untouched and the result stays byte-identical to the static replay.
        """
        use_pool = bool(self.pool_size_sockets)
        streaming = not isinstance(trace, ClusterTrace)
        #: The policy keeps estimating slowdowns even when precomputed
        #: allocations replace its decide path.
        slowdown_policy = policy
        if pool_gb is not None:
            pool_gb = np.asarray(pool_gb, dtype=np.float64)
            policy = None  # precomputed allocations replace the callback
        result = SimulationResult()
        buffer = result.sample_buffer
        if online is not None:
            stats = OnlineControlStats()
            result.online_stats = stats
            mitigate = online.mitigation_enabled
            threshold = online.qos_threshold_percent
            cost_per_gb = online.migration_cost_s_per_gb
        else:
            stats = None
            mitigate = False
            threshold = cost_per_gb = 0.0

        if faults is None:
            injector = None
            engine = ArrayPlacementEngine.for_cluster(
                self.n_servers,
                self._effective_config(),
                pool_size_sockets=self.pool_size_sockets,
                pool_capacity_gb_per_group=self.pool_capacity_gb_per_group,
                base_sockets=self.server_config.sockets,
            )
        else:
            # Build the engine over a PoolGroupLedger so fault events can
            # transition group capacity.  The capacity dict is built with
            # for_cluster's exact setdefault-in-server-order idiom: sample
            # rows sum pool usage in dict insertion order, so a reordered
            # dict would change float summation order and break the
            # empty-schedule byte-identity contract.
            from repro.cluster.pool_topology import PoolGroupLedger

            group_of: Optional[List[int]] = None
            capacities: Dict[int, float] = {}
            if self.pool_size_sockets:
                servers_per_group = max(
                    1, self.pool_size_sockets // self.server_config.sockets)
                group_of = [i // servers_per_group
                            for i in range(self.n_servers)]
                for group in group_of:
                    capacities.setdefault(
                        group, self.pool_capacity_gb_per_group)
            ledger = PoolGroupLedger(capacities)
            engine = ArrayPlacementEngine(
                self.n_servers,
                self._effective_config(),
                group_of=group_of,
                pool_free_gb=ledger.free_gb,
                pool_used_gb=ledger.used_gb,
                pool_peak_gb=ledger.peak_gb,
            )

        pool_used = engine.pool_used_gb
        total_cores = engine.total_cores
        total_dram = self.n_servers * self.server_config.total_dram_gb
        inf = float("inf")

        # Departure events: (time, sequence, handle-or-token).
        departures: List[Tuple[float, int, int]] = []
        seq = 0
        sample_interval = self.sample_interval_s
        next_sample_time = 0.0
        last_sample_time: Optional[float] = None
        record_placements = self.record_placements
        placed_ids: List[str] = []
        placed_srv: List[int] = []
        #: handle -> vm_id of live VMs flagged at placement time, in
        #: placement order (mitigation processes oldest flags first).
        at_risk: Dict[int, str] = {}
        if faults is not None:
            fstats = FaultImpactStats()
            result.fault_stats = fstats
            injector = FaultInjector(
                faults, ledger, [engine], [at_risk], [fstats])

        def process_one_departure() -> None:
            _, _, token = heapq.heappop(departures)
            if injector is not None:
                # Token-indirected: kills void the mapping, live migrations
                # rewrite it, and the injector re-clamps degraded groups
                # after the release.
                injector.on_departure(token)
                return
            # Departed VMs leave the at-risk set before the handle is
            # recycled, or a later placement reusing the handle would
            # inherit the stale flag.
            at_risk.pop(token, None)
            engine.remove(token)

        def take_sample(time_s: float) -> None:
            nonlocal last_sample_time
            used_cores = engine.used_cores
            stranded = engine.stranded_gb
            if stranded < 0.0:
                stranded = 0.0
            buffer.append_row((
                time_s,
                used_cores / total_cores,
                100.0 * used_cores / total_cores,
                engine.used_local_gb,
                sum(pool_used.values()),
                stranded,
                100.0 * stranded / total_dram,
                engine.running_vms,
            ))
            last_sample_time = time_s

        def qos_tick() -> None:
            stats.n_ticks += 1
            if not at_risk:
                return
            stats.n_checks += len(at_risk)
            for handle in list(at_risk):
                moved = engine.migrate_pool_to_local(handle)
                if moved < 0.0:
                    # No node headroom right now; retried next tick.
                    stats.n_failed_mitigations += 1
                    continue
                stats.n_mitigations += 1
                stats.migrated_gb += moved
                stats.migration_time_s += cost_per_gb * moved
                stats.mitigated_vm_ids.append(at_risk.pop(handle))
            if injector is not None:
                # QoS mitigations release pool memory with an unmediated
                # free += gb; re-clamp any degraded group.
                injector.resync_degraded()

        def advance_to(time_s: float) -> None:
            """Apply departures, fault events, and samples up to ``time_s``.

            At equal timestamps: departures, then fault events, then the
            grid sample, then the QoS tick, then the evacuation-retry tick
            (DESIGN.md sections 10 and 11).  With no fault schedule the
            fault clauses never fire and the stream reduces to the online
            loop's two-way merge.
            """
            nonlocal next_sample_time
            while True:
                departure_time = departures[0][0] if departures else inf
                fault_time = injector.next_time if injector is not None else inf
                if departure_time <= next_sample_time and \
                        departure_time <= fault_time:
                    if departure_time > time_s:
                        return
                    process_one_departure()
                elif fault_time <= next_sample_time:
                    if fault_time > time_s:
                        return
                    injector.fire_next()
                else:
                    if next_sample_time > time_s:
                        return
                    take_sample(next_sample_time)
                    next_sample_time += sample_interval
                    if mitigate:
                        qos_tick()
                    if injector is not None:
                        injector.retry_tick(0)

        last_arrival = 0.0
        for block, records, allocations in self._iter_blocks(
            trace, policy, pool_gb, use_pool
        ):
            vm_ids, arrivals, departs, cores_col, memory_col = (
                self._block_replay_columns(block, records)
            )
            n_block = len(vm_ids)
            if streaming and n_block:
                prev = last_arrival
                for index in range(n_block):
                    arrival = arrivals[index]
                    if arrival < prev:
                        raise ValueError(
                            f"stream records must be sorted by arrival time "
                            f"({vm_ids[index]!r} arrives at {arrival} after "
                            f"{prev})"
                        )
                    prev = arrival
                last_arrival = prev
            elif n_block:
                last_arrival = arrivals[n_block - 1]
            if allocations is None:
                if policy is not None and use_pool:
                    allocations = [
                        float(np.clip(policy(r), 0.0, r.memory_gb))
                        for r in records
                    ]
                else:
                    allocations = [0.0] * n_block

            slowdowns = None
            if mitigate and n_block:
                slowdowns = estimate_slowdown_batch(
                    slowdown_policy, block,
                    np.asarray(allocations, dtype=np.float64),
                ).tolist()

            for index in range(n_block):
                advance_to(arrivals[index])
                vm_pool_gb = allocations[index]
                memory_gb = memory_col[index]
                local_gb = memory_gb - vm_pool_gb
                try:
                    handle = engine.place(cores_col[index], local_gb,
                                          vm_pool_gb)
                except PlacementError:
                    # Group-less pool request corner: counted as a
                    # rejection, peaks keep the transient placement
                    # (object-path parity).
                    handle = -1
                if handle < 0:
                    result.rejected_vms += 1
                    continue
                result.placed_vms += 1
                if record_placements:
                    placed_ids.append(vm_ids[index])
                    placed_srv.append(engine.vm_server[handle])
                result.total_memory_gb_allocated += memory_gb
                result.total_pool_gb_allocated += vm_pool_gb
                seq += 1
                if injector is not None:
                    token = injector.note_place(0, handle, vm_ids[index],
                                                vm_pool_gb)
                    heapq.heappush(departures, (departs[index], seq, token))
                else:
                    heapq.heappush(departures, (departs[index], seq, handle))
                if (slowdowns is not None and vm_pool_gb > 0.0
                        and slowdowns[index] > threshold):
                    at_risk[handle] = vm_ids[index]

        end_time = horizon_s if horizon_s is not None else last_arrival
        advance_to(end_time)
        if last_sample_time is None or last_sample_time <= end_time:
            if last_sample_time is not None and last_sample_time == end_time:
                buffer.drop_last()
            take_sample(end_time)
        while departures:
            process_one_departure()
        if injector is not None:
            injector.finalize()

        if record_placements:
            result._placed_vm_ids = placed_ids
            result._placed_server_idx = placed_srv
            result._placement_server_ids = engine.server_ids
        result.server_peak_local_gb, result.server_peak_total_gb = (
            engine.server_peaks()
        )
        result.pool_peak_gb = dict(engine.pool_peak_by_group)
        return result

    def _run_array_calendar(self, trace: TraceInput,
                            policy: Optional[PoolPolicy],
                            horizon_s: Optional[float],
                            pool_gb: Optional[np.ndarray]) -> SimulationResult:
        """:meth:`run` on the struct-of-arrays engine (calendar-queue loop).

        Same merged event stream, same event ordering, same arithmetic as the
        object loop -- but the per-event work is fully inlined over local
        bindings of the engine's flat arrays:

        * block columns are bulk-converted to plain Python scalars once per
          block (``tolist``), so the loop never touches record objects;
        * the best-fit bucket walk, the commit, and the departure release
          mirror :meth:`ArrayPlacementEngine.place` / ``remove`` statement
          for statement (two-socket servers get an unrolled NUMA check);
        * placements are logged as columnar (vm id, server index) appends and
          materialised into the ``placements`` dict lazily;
        * departures live in a **calendar queue**: events carry their
          placement data in ``(time, seq, server, node, cores, local_gb,
          pool_gb)`` tuples, binned by coarse time window and Timsorted once
          per bin.  The ``(time, seq)`` prefix is unique, so the bin-by-bin
          order is exactly the heap order the object loop pops -- at an
          amortised cost per departure far below a heap sift.

        Two exact-arithmetic shortcuts keep byte equality while dropping
        work: a placement target always has a free core, so its
        ``stranded_before`` is exactly ``0.0`` (the object path computes it
        anyway), and a removal always leaves a free core, so its
        ``stranded_after`` is exactly ``0.0``; adding/subtracting those
        zeros is an IEEE no-op, so the branches can be skipped.  The object
        path (``engine="object"``) and the engine's own method-based
        implementation are pinned to this loop by differential tests.
        """
        use_pool = bool(self.pool_size_sockets)
        streaming = not isinstance(trace, ClusterTrace)
        if pool_gb is not None:
            pool_gb = np.asarray(pool_gb, dtype=np.float64)
            policy = None  # precomputed allocations replace the callback
        engine = ArrayPlacementEngine.for_cluster(
            self.n_servers,
            self._effective_config(),
            pool_size_sockets=self.pool_size_sockets,
            pool_capacity_gb_per_group=self.pool_capacity_gb_per_group,
            base_sockets=self.server_config.sockets,
        )
        result = SimulationResult()
        buffer = result.sample_buffer
        append_row = buffer.append_row

        # -- engine state as locals (the whole point of the array path) ------
        node_cores = engine.node_used_cores
        node_gb = engine.node_used_gb
        used_cores_srv = engine.used_cores_srv
        used_gb_srv = engine.used_gb_srv
        pool_used_srv = engine.pool_used_srv
        peak_local = engine.peak_local_gb
        peak_pool = engine.peak_pool_gb
        group_of = engine.group_of
        pool_free = engine.pool_free_gb
        pool_used = engine.pool_used_gb
        pool_peak = engine.pool_peak_by_group
        buckets = engine._buckets
        n_buckets = len(buckets)
        server_ids = engine.server_ids
        sockets = engine.sockets
        two_sockets = sockets == 2
        cores_per_socket = engine.cores_per_socket
        dram_per_socket = engine.dram_per_socket_gb
        stc = engine.server_total_cores
        std = engine.server_total_dram_gb
        pooled = bool(pool_free)

        bisect = bisect_left
        insort_ = insort

        # -- aggregates as plain locals (identical accumulation order) -------
        agg_used_cores = 0
        agg_used_gb = 0.0
        agg_stranded = 0.0
        agg_running = 0
        total_cores = engine.total_cores
        total_dram = self.n_servers * self.server_config.total_dram_gb

        # -- calendar departure queue ----------------------------------------
        # ``dep_bins[b]`` holds unsorted events for time window
        # [b*bin_w, (b+1)*bin_w); ``active`` is the current window, sorted,
        # consumed through ``cursor``.  Same-window pushes insort into the
        # unconsumed tail, so the global processing order is exactly the
        # (time, seq) order of the object loop's heap.
        bin_w = _DEPARTURE_BIN_S
        dep_bins: Dict[int, List[Tuple[float, int, int, int, int, float, float]]] = {}
        active: List[Tuple[float, int, int, int, int, float, float]] = []
        cursor = 0
        active_len = 0
        current_bin = -1
        #: Lower bound on the next departure time (exact when ``active`` has
        #: unconsumed events; the next window start otherwise).
        next_dep_hint = 0.0

        seq = 0
        sample_interval = self.sample_interval_s
        next_sample_time = 0.0
        last_sample_time: Optional[float] = None
        record_placements = self.record_placements
        placed_ids: List[str] = []
        placed_srv: List[int] = []
        append_placed_id = placed_ids.append
        append_placed_srv = placed_srv.append
        placed_vms = 0
        rejected_vms = 0
        total_memory_allocated = 0.0
        total_pool_allocated = 0.0
        inf = float("inf")

        last_arrival = 0.0
        for block, records, allocations in self._iter_blocks(
            trace, policy, pool_gb, use_pool
        ):
            vm_ids, arrivals, departs, cores_col, memory_col = (
                self._block_replay_columns(block, records)
            )
            n_block = len(vm_ids)
            if streaming and n_block:
                # Bulk order check per block (same error as the object loop).
                prev = last_arrival
                for index in range(n_block):
                    arrival = arrivals[index]
                    if arrival < prev:
                        raise ValueError(
                            f"stream records must be sorted by arrival time "
                            f"({vm_ids[index]!r} arrives at {arrival} after "
                            f"{prev})"
                        )
                    prev = arrival
                last_arrival = prev
            elif n_block:
                last_arrival = arrivals[n_block - 1]
            if allocations is None:
                if policy is not None and use_pool:
                    # Legacy per-record callback, evaluated in record order
                    # (decisions only see the record, so this matches the
                    # object loop's interleaved calls).
                    allocations = [
                        float(np.clip(policy(r), 0.0, r.memory_gb))
                        for r in records
                    ]
                else:
                    allocations = [0.0] * n_block

            for vm_id, arrival_s, departure_s, cores_r, memory_gb, vm_pool_gb in zip(
                vm_ids, arrivals, departs, cores_col, memory_col, allocations
            ):
                # -- merged departures/samples up to arrival_s ---------------
                if next_dep_hint <= arrival_s or next_sample_time <= arrival_s:
                    while True:
                        if cursor < active_len:
                            departure_time = active[cursor][0]
                        else:
                            # Refill: step to the next window that can hold a
                            # departure <= min(arrival_s, next_sample_time).
                            departure_time = inf
                            limit = (
                                arrival_s
                                if arrival_s <= next_sample_time
                                else next_sample_time
                            )
                            while True:
                                next_bin = current_bin + 1
                                if next_bin * bin_w > limit:
                                    break
                                current_bin = next_bin
                                pending = dep_bins.pop(next_bin, None)
                                if pending is not None:
                                    pending.sort()
                                    active = pending
                                    active_len = len(pending)
                                    cursor = 0
                                    departure_time = pending[0][0]
                                    break
                        if departure_time <= next_sample_time:
                            if departure_time > arrival_s:
                                next_dep_hint = departure_time
                                break
                            # ---- departure (ArrayPlacementEngine.remove) ---
                            _t, _s, sidx, d_node, d_cores, d_local, d_pool = (
                                active[cursor]
                            )
                            cursor += 1
                            if pooled:
                                group = group_of[sidx]
                                if group >= 0:
                                    remaining = pool_used[group] - d_pool
                                    if remaining < 0.0:
                                        # Clamp tiny negative float drift;
                                        # real imbalances stay loud.
                                        if remaining < -1e-6:
                                            raise RuntimeError(
                                                f"pool group {group} accounting "
                                                f"went negative ({remaining} GB) "
                                                f"-- simulator bug"
                                            )
                                        remaining = 0.0
                                    pool_used[group] = remaining
                                    if d_pool > 0:
                                        pool_free[group] += d_pool
                                    pool_used_srv[sidx] -= d_pool
                            before_cores = used_cores_srv[sidx]
                            old_gb = used_gb_srv[sidx]
                            pos = sidx * sockets + d_node
                            node_cores[pos] -= d_cores
                            node_gb[pos] -= d_local
                            new_cores = before_cores - d_cores
                            used_cores_srv[sidx] = new_cores
                            new_gb = old_gb - d_local
                            used_gb_srv[sidx] = new_gb
                            agg_used_cores -= d_cores
                            agg_used_gb -= d_local
                            if before_cores >= stc:
                                # stranded_after is exactly 0.0 here.
                                agg_stranded += 0.0 - (std - old_gb)
                            agg_running -= 1
                            # Reindex: free cores always change (cores >= 1);
                            # the old key is recomputed from the exact
                            # pre-update state (same floats as when indexed).
                            bucket = buckets[stc - before_cores]
                            del bucket[bisect(bucket, (std - old_gb, sidx))]
                            insort_(
                                buckets[stc - new_cores], (std - new_gb, sidx)
                            )
                        else:
                            if next_sample_time > arrival_s:
                                if cursor < active_len:
                                    next_dep_hint = active[cursor][0]
                                else:
                                    next_dep_hint = (current_bin + 1) * bin_w
                                break
                            # ---- grid sample -------------------------------
                            stranded = agg_stranded
                            if stranded < 0.0:
                                stranded = 0.0
                            append_row((
                                next_sample_time,
                                agg_used_cores / total_cores,
                                100.0 * agg_used_cores / total_cores,
                                agg_used_gb,
                                sum(pool_used.values()),
                                stranded,
                                100.0 * stranded / total_dram,
                                agg_running,
                            ))
                            last_sample_time = next_sample_time
                            next_sample_time += sample_interval

                local_gb = memory_gb - vm_pool_gb

                # -- best-fit bucket walk (ArrayPlacementEngine.place) -------
                cores_limit = cores_per_socket - cores_r
                gb_limit = dram_per_socket - local_gb + 1e-9
                need_pool = vm_pool_gb > 0
                sidx = -1
                best_node = -1
                base = 0
                for free in range(cores_r, n_buckets):
                    for _key_gb, idx in buckets[free]:
                        if need_pool:
                            group = group_of[idx]
                            avail = pool_free.get(group, 0.0) if group >= 0 else 0.0
                            if vm_pool_gb > avail + 1e-9:
                                continue
                        base = idx * sockets
                        if two_sockets:
                            used0 = node_cores[base]
                            used1 = node_cores[base + 1]
                            # Fullest feasible node; ties go to node 0
                            # (find_numa_node's strict ``>`` comparison).
                            if used1 > used0:
                                if (used1 <= cores_limit
                                        and node_gb[base + 1] <= gb_limit):
                                    sidx = idx
                                    best_node = 1
                                    break
                                if (used0 <= cores_limit
                                        and node_gb[base] <= gb_limit):
                                    sidx = idx
                                    best_node = 0
                                    break
                            else:
                                if (used0 <= cores_limit
                                        and node_gb[base] <= gb_limit):
                                    sidx = idx
                                    best_node = 0
                                    break
                                if (used1 <= cores_limit
                                        and node_gb[base + 1] <= gb_limit):
                                    sidx = idx
                                    best_node = 1
                                    break
                        else:
                            cand_node = -1
                            cand_used = -1
                            for node in range(sockets):
                                used = node_cores[base + node]
                                if (used <= cores_limit and used > cand_used
                                        and node_gb[base + node] <= gb_limit):
                                    cand_node = node
                                    cand_used = used
                            if cand_node >= 0:
                                sidx = idx
                                best_node = cand_node
                                break
                    if sidx >= 0:
                        break
                if sidx < 0:
                    rejected_vms += 1
                    continue

                # -- commit (ArrayPlacementEngine.place, inlined) ------------
                pos = base + best_node
                node_cores[pos] += cores_r
                node_gb[pos] += local_gb
                before_cores = used_cores_srv[sidx]
                old_gb = used_gb_srv[sidx]
                new_cores = before_cores + cores_r
                used_cores_srv[sidx] = new_cores
                new_gb = old_gb + local_gb
                used_gb_srv[sidx] = new_gb
                if new_gb > peak_local[sidx]:
                    peak_local[sidx] = new_gb
                if need_pool:
                    pool_srv = pool_used_srv[sidx] + vm_pool_gb
                    pool_used_srv[sidx] = pool_srv
                    if pool_srv > peak_pool[sidx]:
                        peak_pool[sidx] = pool_srv
                    group = group_of[sidx]
                    if group < 0:
                        # Group-less pool request corner: the object path
                        # transiently places, rolls usage back (peaks stay),
                        # and counts a rejection.
                        node_cores[pos] -= cores_r
                        node_gb[pos] -= local_gb
                        used_cores_srv[sidx] = new_cores - cores_r
                        used_gb_srv[sidx] = new_gb - local_gb
                        pool_used_srv[sidx] = pool_srv - vm_pool_gb
                        rejected_vms += 1
                        continue
                    pool_free[group] -= vm_pool_gb
                    group_used = pool_used[group] + vm_pool_gb
                    pool_used[group] = group_used
                    if group_used > pool_peak[group]:
                        pool_peak[group] = group_used

                agg_used_cores += cores_r
                agg_used_gb += local_gb
                if new_cores >= stc:
                    # stranded_before is exactly 0.0 here (the server had a
                    # free core); adding "after - 0.0" keeps byte equality.
                    agg_stranded += (std - new_gb) - 0.0
                agg_running += 1

                # Reindex: free cores always change (cores >= 1), and the old
                # key is recomputed from the exact pre-update state (the same
                # floats as when the server was last indexed).
                bucket = buckets[stc - before_cores]
                del bucket[bisect(bucket, (std - old_gb, sidx))]
                insort_(buckets[stc - new_cores], (std - new_gb, sidx))

                placed_vms += 1
                if record_placements:
                    append_placed_id(vm_id)
                    append_placed_srv(sidx)
                total_memory_allocated += memory_gb
                total_pool_allocated += vm_pool_gb
                seq += 1
                entry = (
                    departure_s, seq, sidx, best_node, cores_r,
                    local_gb, vm_pool_gb,
                )
                dep_bin = int(departure_s / bin_w)
                if dep_bin > current_bin:
                    pending = dep_bins.get(dep_bin)
                    if pending is None:
                        dep_bins[dep_bin] = [entry]
                    else:
                        pending.append(entry)
                else:
                    # Departure falls into the window being consumed: insert
                    # into the unconsumed tail at its (time, seq) position.
                    insort_(active, entry, cursor)
                    active_len += 1
                if departure_s < next_dep_hint:
                    next_dep_hint = departure_s

        # -- horizon: finish sampling, replace an on-grid horizon sample -----
        end_time = horizon_s if horizon_s is not None else last_arrival
        while True:
            if cursor < active_len:
                departure_time = active[cursor][0]
            else:
                departure_time = inf
                limit = end_time if end_time <= next_sample_time else next_sample_time
                while True:
                    next_bin = current_bin + 1
                    if next_bin * bin_w > limit:
                        break
                    current_bin = next_bin
                    pending = dep_bins.pop(next_bin, None)
                    if pending is not None:
                        pending.sort()
                        active = pending
                        active_len = len(pending)
                        cursor = 0
                        departure_time = pending[0][0]
                        break
            if departure_time <= next_sample_time:
                if departure_time > end_time:
                    break
                entry = active[cursor]
                cursor += 1
                agg_used_cores, agg_used_gb, agg_stranded, agg_running = (
                    self._release_entry(
                        engine, entry, pooled,
                        agg_used_cores, agg_used_gb, agg_stranded, agg_running,
                    )
                )
            else:
                if next_sample_time > end_time:
                    break
                stranded = agg_stranded
                if stranded < 0.0:
                    stranded = 0.0
                append_row((
                    next_sample_time,
                    agg_used_cores / total_cores,
                    100.0 * agg_used_cores / total_cores,
                    agg_used_gb,
                    sum(pool_used.values()),
                    stranded,
                    100.0 * stranded / total_dram,
                    agg_running,
                ))
                last_sample_time = next_sample_time
                next_sample_time += sample_interval
        if last_sample_time is None or last_sample_time <= end_time:
            if last_sample_time is not None and last_sample_time == end_time:
                buffer.drop_last()
            stranded = agg_stranded
            if stranded < 0.0:
                stranded = 0.0
            append_row((
                end_time,
                agg_used_cores / total_cores,
                100.0 * agg_used_cores / total_cores,
                agg_used_gb,
                sum(pool_used.values()),
                stranded,
                100.0 * stranded / total_dram,
                agg_running,
            ))
        # Drain: remaining windows in time order (bin order, sorted per bin).
        while True:
            for index in range(cursor, active_len):
                agg_used_cores, agg_used_gb, agg_stranded, agg_running = (
                    self._release_entry(
                        engine, active[index], pooled,
                        agg_used_cores, agg_used_gb, agg_stranded, agg_running,
                    )
                )
            if not dep_bins:
                break
            next_bin = min(dep_bins)
            pending = dep_bins.pop(next_bin)
            pending.sort()
            active = pending
            active_len = len(pending)
            cursor = 0
            current_bin = next_bin

        # Hand the mutated aggregates and bucket keys back to the engine so
        # its state stays coherent for callers inspecting it after the run.
        engine.used_cores = agg_used_cores
        engine.used_local_gb = agg_used_gb
        engine.stranded_gb = agg_stranded
        engine.running_vms = agg_running
        engine._bucket_key = [
            (stc - cores, std - gb)
            for cores, gb in zip(used_cores_srv, used_gb_srv)
        ]

        result.placed_vms = placed_vms
        result.rejected_vms = rejected_vms
        result.total_memory_gb_allocated = total_memory_allocated
        result.total_pool_gb_allocated = total_pool_allocated
        if record_placements:
            result._placed_vm_ids = placed_ids
            result._placed_server_idx = placed_srv
            result._placement_server_ids = server_ids
        result.server_peak_local_gb, result.server_peak_total_gb = engine.server_peaks()
        result.pool_peak_gb = dict(engine.pool_peak_by_group)
        return result

    @staticmethod
    def _release_entry(engine, entry, pooled, agg_used_cores, agg_used_gb,
                       agg_stranded, agg_running):
        """Release one departure-heap entry (the non-hot removal sites).

        Same statements as the inlined departure block in :meth:`_run_array`
        (which handles the per-arrival hot path); used for the horizon
        advance and the end-of-run drain, where call overhead is irrelevant.
        Returns the updated aggregate tuple.
        """
        _t, _s, sidx, d_node, d_cores, d_local, d_pool = entry
        if pooled:
            group = engine.group_of[sidx]
            if group >= 0:
                pool_used = engine.pool_used_gb
                remaining = pool_used[group] - d_pool
                if remaining < 0.0:
                    if remaining < -1e-6:
                        raise RuntimeError(
                            f"pool group {group} accounting went negative "
                            f"({remaining} GB) -- simulator bug"
                        )
                    remaining = 0.0
                pool_used[group] = remaining
                if d_pool > 0:
                    engine.pool_free_gb[group] += d_pool
                engine.pool_used_srv[sidx] -= d_pool
        used_cores_srv = engine.used_cores_srv
        used_gb_srv = engine.used_gb_srv
        stc = engine.server_total_cores
        std = engine.server_total_dram_gb
        before_cores = used_cores_srv[sidx]
        old_gb = used_gb_srv[sidx]
        pos = sidx * engine.sockets + d_node
        engine.node_used_cores[pos] -= d_cores
        engine.node_used_gb[pos] -= d_local
        new_cores = before_cores - d_cores
        used_cores_srv[sidx] = new_cores
        new_gb = old_gb - d_local
        used_gb_srv[sidx] = new_gb
        agg_used_cores -= d_cores
        agg_used_gb -= d_local
        if before_cores >= stc:
            agg_stranded += 0.0 - (std - old_gb)
        agg_running -= 1
        buckets = engine._buckets
        bucket = buckets[stc - before_cores]
        del bucket[bisect_left(bucket, (std - old_gb, sidx))]
        insort(buckets[stc - new_cores], (std - new_gb, sidx))
        return agg_used_cores, agg_used_gb, agg_stranded, agg_running

    @staticmethod
    def _release_payload(engine, entry, pooled, agg_used_cores, agg_used_gb,
                         agg_stranded, agg_running):
        """Release one presorted-loop placement payload (non-hot sites).

        Same statements as the inlined drain in :meth:`_run_array_presorted`
        (which handles the per-arrival hot path); used for the horizon
        advance and the end-of-run drain.  Payload layout is ``(sidx, pos,
        cores, local_gb, pool_gb)`` -- the node offset is precomputed at
        placement, unlike the calendar entries :meth:`_release_entry` takes.
        Observes the presorted loop's full-server elision: servers with no
        free cores are not indexed (``buckets[0]`` is rebuilt at the end of
        the run), so a departure from a full server skips the delete.
        """
        sidx, pos, d_cores, d_local, d_pool = entry
        if pooled:
            group = engine.group_of[sidx]
            if group >= 0:
                pool_used = engine.pool_used_gb
                remaining = pool_used[group] - d_pool
                if remaining < 0.0:
                    if remaining < -1e-6:
                        raise RuntimeError(
                            f"pool group {group} accounting went negative "
                            f"({remaining} GB) -- simulator bug"
                        )
                    remaining = 0.0
                pool_used[group] = remaining
                if d_pool > 0:
                    engine.pool_free_gb[group] += d_pool
                engine.pool_used_srv[sidx] -= d_pool
        used_cores_srv = engine.used_cores_srv
        used_gb_srv = engine.used_gb_srv
        stc = engine.server_total_cores
        std = engine.server_total_dram_gb
        before_cores = used_cores_srv[sidx]
        old_gb = used_gb_srv[sidx]
        engine.node_used_cores[pos] -= d_cores
        engine.node_used_gb[pos] -= d_local
        new_cores = before_cores - d_cores
        used_cores_srv[sidx] = new_cores
        new_gb = old_gb - d_local
        used_gb_srv[sidx] = new_gb
        agg_used_cores -= d_cores
        agg_used_gb -= d_local
        if before_cores >= stc:
            agg_stranded += 0.0 - (std - old_gb)
        agg_running -= 1
        buckets = engine._buckets
        if before_cores < stc:
            bucket = buckets[stc - before_cores]
            del bucket[bisect_left(bucket, (std - old_gb, sidx))]
        insort(buckets[stc - new_cores], (std - new_gb, sidx))
        return agg_used_cores, agg_used_gb, agg_stranded, agg_running

    def _run_array_presorted(self, trace: ClusterTrace,
                             policy: Optional[PoolPolicy],
                             horizon_s: Optional[float],
                             pool_gb: Optional[np.ndarray]) -> SimulationResult:
        """:meth:`run` on the struct-of-arrays engine, presorted departures.

        The calendar loop discovers departure order dynamically because a
        VM's departure enters the queue only when it is placed.  But for a
        materialised trace every departure time is known up front, and when
        departures fall strictly after their arrivals the processing order
        is a **pure function of the trace**: a stable argsort of the
        departure column orders equal-time departures by trace position,
        which (placements happen in arrival order) is exactly the calendar
        loop's ``(time, seq)`` heap order.  On top of that ordering insight
        the loop makes three structural cuts:

        * placement no longer builds event tuples, bins them, or insorts
          into an active window -- it stores its payload ``(sidx, pos,
          cores, local_gb, pool_gb)`` at the VM's trace position, and the
          drain follows the precomputed order through a pointer.  A drained
          entry whose payload is still ``None`` is a rejected VM ("not yet
          arrived" is impossible: the dispatcher guarantees ``departure >
          arrival``).  Departures drain in **batched slices** bounded by
          one ``bisect_right`` on the presorted time list, and the
          pump-entry test folds into a single ``next_event`` compare.
        * **full-server elision**: the best-fit walk starts at ``free >=
          cores >= 1``, so ``buckets[0]`` -- servers with no free cores --
          is never read.  A placement that fills a server skips the insort
          and a departure from a full server skips the delete (at high
          utilisation that is the vast majority of reindex traffic, because
          best-fit deliberately drains buckets to empty); ``buckets[0]`` is
          rebuilt canonically once at the end, so the engine's indexed
          state is exactly what method-based placement would have left.
        * the cyclic GC is paused for the duration of the loop (restored in
          a ``finally``): the payload and bucket-key tuples allocated per
          event otherwise trigger repeated young-generation scans over the
          engine's long-lived state.

        The per-event arithmetic is statement-for-statement the calendar
        loop's, so results are byte-identical (differential-tested).
        """
        use_pool = bool(self.pool_size_sockets)
        if pool_gb is not None:
            pool_gb = np.asarray(pool_gb, dtype=np.float64)
            policy = None  # precomputed allocations replace the callback
        engine = ArrayPlacementEngine.for_cluster(
            self.n_servers,
            self._effective_config(),
            pool_size_sockets=self.pool_size_sockets,
            pool_capacity_gb_per_group=self.pool_capacity_gb_per_group,
            base_sockets=self.server_config.sockets,
        )
        result = SimulationResult()
        buffer = result.sample_buffer
        append_row = buffer.append_row

        # -- engine state as locals (identical to the calendar loop) ---------
        node_cores = engine.node_used_cores
        node_gb = engine.node_used_gb
        used_cores_srv = engine.used_cores_srv
        used_gb_srv = engine.used_gb_srv
        pool_used_srv = engine.pool_used_srv
        peak_local = engine.peak_local_gb
        peak_pool = engine.peak_pool_gb
        group_of = engine.group_of
        pool_free = engine.pool_free_gb
        pool_used = engine.pool_used_gb
        pool_peak = engine.pool_peak_by_group
        buckets = engine._buckets
        n_buckets = len(buckets)
        server_ids = engine.server_ids
        sockets = engine.sockets
        two_sockets = sockets == 2
        cores_per_socket = engine.cores_per_socket
        dram_per_socket = engine.dram_per_socket_gb
        stc = engine.server_total_cores
        std = engine.server_total_dram_gb
        pooled = bool(pool_free)

        bisect = bisect_left
        insort_ = insort
        bisect_r = bisect_right

        agg_used_cores = 0
        agg_used_gb = 0.0
        agg_stranded = 0.0
        agg_running = 0
        total_cores = engine.total_cores
        total_dram = self.n_servers * self.server_config.total_dram_gb

        # -- the one block of a materialised trace ---------------------------
        block, records, allocations = next(
            iter(self._iter_blocks(trace, policy, pool_gb, use_pool))
        )
        vm_ids, arrivals, departs, cores_col, memory_col = (
            self._block_replay_columns(block, records)
        )
        n_block = len(vm_ids)
        last_arrival = arrivals[n_block - 1] if n_block else 0.0
        if allocations is None:
            if policy is not None and use_pool:
                allocations = [
                    float(np.clip(policy(r), 0.0, r.memory_gb))
                    for r in records
                ]
            else:
                allocations = [0.0] * n_block

        # -- presorted departures --------------------------------------------
        dep_np = trace.columns().departure_s
        dep_argsort = np.argsort(dep_np, kind="stable")
        dep_order = dep_argsort.tolist()
        dep_times = dep_np[dep_argsort].tolist()
        #: Placement payload at each VM's trace position; ``None`` after the
        #: arrival was processed means the VM was rejected.
        payload: List[Optional[Tuple[int, int, int, float, float]]] = (
            [None] * n_block
        )
        n_dep = n_block
        p = 0

        inf = float("inf")
        next_dep = dep_times[0] if n_dep else inf
        sample_interval = self.sample_interval_s
        next_sample_time = 0.0
        next_event = next_dep if next_dep <= next_sample_time else next_sample_time
        last_sample_time: Optional[float] = None
        record_placements = self.record_placements
        placed_ids: List[str] = []
        placed_srv: List[int] = []
        append_placed_id = placed_ids.append
        append_placed_srv = placed_srv.append
        placed_vms = 0
        rejected_vms = 0
        total_memory_allocated = 0.0
        total_pool_allocated = 0.0

        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            j = -1
            for vm_id, arrival_s, departure_s, cores_r, memory_gb, vm_pool_gb in zip(
                vm_ids, arrivals, departs, cores_col, memory_col, allocations
            ):
                j += 1
                # -- merged departures/samples up to arrival_s ---------------
                if next_event <= arrival_s:
                    while True:
                        limit = (
                            arrival_s
                            if arrival_s <= next_sample_time
                            else next_sample_time
                        )
                        if next_dep <= limit:
                            end = bisect_r(dep_times, limit, p)
                            for m in dep_order[p:end]:
                                entry = payload[m]
                                if entry is None:
                                    continue  # rejected VM: nothing placed
                                # -- departure (ArrayPlacementEngine.remove) -
                                sidx, pos, d_cores, d_local, d_pool = entry
                                if pooled:
                                    group = group_of[sidx]
                                    if group >= 0:
                                        remaining = pool_used[group] - d_pool
                                        if remaining < 0.0:
                                            # Clamp tiny negative float
                                            # drift; real imbalances stay
                                            # loud.
                                            if remaining < -1e-6:
                                                raise RuntimeError(
                                                    f"pool group {group} "
                                                    f"accounting went "
                                                    f"negative ({remaining} "
                                                    f"GB) -- simulator bug"
                                                )
                                            remaining = 0.0
                                        pool_used[group] = remaining
                                        if d_pool > 0:
                                            pool_free[group] += d_pool
                                        pool_used_srv[sidx] -= d_pool
                                before_cores = used_cores_srv[sidx]
                                old_gb = used_gb_srv[sidx]
                                node_cores[pos] -= d_cores
                                node_gb[pos] -= d_local
                                new_cores = before_cores - d_cores
                                used_cores_srv[sidx] = new_cores
                                new_gb = old_gb - d_local
                                used_gb_srv[sidx] = new_gb
                                agg_used_cores -= d_cores
                                agg_used_gb -= d_local
                                if before_cores >= stc:
                                    # stranded_after is exactly 0.0 here;
                                    # a full server is also unindexed
                                    # (full-server elision), so there is no
                                    # bucket entry to delete.
                                    agg_stranded += 0.0 - (std - old_gb)
                                else:
                                    bucket = buckets[stc - before_cores]
                                    del bucket[
                                        bisect(bucket, (std - old_gb, sidx))
                                    ]
                                insort_(
                                    buckets[stc - new_cores],
                                    (std - new_gb, sidx),
                                )
                                agg_running -= 1
                            p = end
                            next_dep = dep_times[p] if p < n_dep else inf
                        if next_sample_time > arrival_s:
                            break
                        # ---- grid sample -------------------------------
                        stranded = agg_stranded
                        if stranded < 0.0:
                            stranded = 0.0
                        append_row((
                            next_sample_time,
                            agg_used_cores / total_cores,
                            100.0 * agg_used_cores / total_cores,
                            agg_used_gb,
                            sum(pool_used.values()),
                            stranded,
                            100.0 * stranded / total_dram,
                            agg_running,
                        ))
                        last_sample_time = next_sample_time
                        next_sample_time += sample_interval
                    next_event = (
                        next_dep
                        if next_dep <= next_sample_time
                        else next_sample_time
                    )

                local_gb = memory_gb - vm_pool_gb

                # -- best-fit bucket walk (ArrayPlacementEngine.place) -------
                cores_limit = cores_per_socket - cores_r
                gb_limit = dram_per_socket - local_gb + 1e-9
                need_pool = vm_pool_gb > 0
                sidx = -1
                best_node = -1
                base = 0
                for free in range(cores_r, n_buckets):
                    for _key_gb, idx in buckets[free]:
                        if need_pool:
                            group = group_of[idx]
                            avail = (
                                pool_free.get(group, 0.0) if group >= 0 else 0.0
                            )
                            if vm_pool_gb > avail + 1e-9:
                                continue
                        base = idx * sockets
                        if two_sockets:
                            used0 = node_cores[base]
                            used1 = node_cores[base + 1]
                            # Fullest feasible node; ties go to node 0
                            # (find_numa_node's strict ``>`` comparison).
                            if used1 > used0:
                                if (used1 <= cores_limit
                                        and node_gb[base + 1] <= gb_limit):
                                    sidx = idx
                                    best_node = 1
                                    break
                                if (used0 <= cores_limit
                                        and node_gb[base] <= gb_limit):
                                    sidx = idx
                                    best_node = 0
                                    break
                            else:
                                if (used0 <= cores_limit
                                        and node_gb[base] <= gb_limit):
                                    sidx = idx
                                    best_node = 0
                                    break
                                if (used1 <= cores_limit
                                        and node_gb[base + 1] <= gb_limit):
                                    sidx = idx
                                    best_node = 1
                                    break
                        else:
                            cand_node = -1
                            cand_used = -1
                            for node in range(sockets):
                                used = node_cores[base + node]
                                if (used <= cores_limit and used > cand_used
                                        and node_gb[base + node] <= gb_limit):
                                    cand_node = node
                                    cand_used = used
                            if cand_node >= 0:
                                sidx = idx
                                best_node = cand_node
                                break
                    if sidx >= 0:
                        break
                if sidx < 0:
                    rejected_vms += 1
                    continue

                # -- commit (ArrayPlacementEngine.place, inlined) ------------
                pos = base + best_node
                node_cores[pos] += cores_r
                node_gb[pos] += local_gb
                before_cores = used_cores_srv[sidx]
                old_gb = used_gb_srv[sidx]
                new_cores = before_cores + cores_r
                used_cores_srv[sidx] = new_cores
                new_gb = old_gb + local_gb
                used_gb_srv[sidx] = new_gb
                if new_gb > peak_local[sidx]:
                    peak_local[sidx] = new_gb
                if need_pool:
                    pool_srv = pool_used_srv[sidx] + vm_pool_gb
                    pool_used_srv[sidx] = pool_srv
                    if pool_srv > peak_pool[sidx]:
                        peak_pool[sidx] = pool_srv
                    group = group_of[sidx]
                    if group < 0:
                        # Group-less pool request corner: the object path
                        # transiently places, rolls usage back (peaks stay),
                        # and counts a rejection.
                        node_cores[pos] -= cores_r
                        node_gb[pos] -= local_gb
                        used_cores_srv[sidx] = new_cores - cores_r
                        used_gb_srv[sidx] = new_gb - local_gb
                        pool_used_srv[sidx] = pool_srv - vm_pool_gb
                        rejected_vms += 1
                        continue
                    pool_free[group] -= vm_pool_gb
                    group_used = pool_used[group] + vm_pool_gb
                    pool_used[group] = group_used
                    if group_used > pool_peak[group]:
                        pool_peak[group] = group_used

                agg_used_cores += cores_r
                agg_used_gb += local_gb
                # Reindex: the old key is recomputed from the exact
                # pre-update state (the same floats as when the server was
                # last indexed).  A placement that fills the server skips
                # the insert -- buckets[0] is never read by the walk
                # (full-server elision; rebuilt canonically at the end).
                bucket = buckets[stc - before_cores]
                del bucket[bisect(bucket, (std - old_gb, sidx))]
                if new_cores >= stc:
                    # stranded_before is exactly 0.0 here (the server had a
                    # free core); adding "after - 0.0" keeps byte equality.
                    agg_stranded += (std - new_gb) - 0.0
                else:
                    insort_(buckets[stc - new_cores], (std - new_gb, sidx))
                agg_running += 1

                placed_vms += 1
                if record_placements:
                    append_placed_id(vm_id)
                    append_placed_srv(sidx)
                total_memory_allocated += memory_gb
                total_pool_allocated += vm_pool_gb
                # The departure is already at its presorted position past
                # the drain pointer (departure > arrival >= every drained
                # time), so "pushing" it is just storing the payload.
                payload[j] = (sidx, pos, cores_r, local_gb, vm_pool_gb)

            # -- horizon: finish sampling, replace an on-grid sample ---------
            end_time = horizon_s if horizon_s is not None else last_arrival
            while True:
                limit = (
                    end_time if end_time <= next_sample_time else next_sample_time
                )
                if next_dep <= limit:
                    end = bisect_r(dep_times, limit, p)
                    for m in dep_order[p:end]:
                        entry = payload[m]
                        if entry is None:
                            continue
                        (agg_used_cores, agg_used_gb, agg_stranded,
                         agg_running) = self._release_payload(
                            engine, entry, pooled,
                            agg_used_cores, agg_used_gb, agg_stranded,
                            agg_running,
                        )
                    p = end
                    next_dep = dep_times[p] if p < n_dep else inf
                if next_sample_time > end_time:
                    break
                stranded = agg_stranded
                if stranded < 0.0:
                    stranded = 0.0
                append_row((
                    next_sample_time,
                    agg_used_cores / total_cores,
                    100.0 * agg_used_cores / total_cores,
                    agg_used_gb,
                    sum(pool_used.values()),
                    stranded,
                    100.0 * stranded / total_dram,
                    agg_running,
                ))
                last_sample_time = next_sample_time
                next_sample_time += sample_interval
            if last_sample_time is None or last_sample_time <= end_time:
                if last_sample_time is not None and last_sample_time == end_time:
                    buffer.drop_last()
                stranded = agg_stranded
                if stranded < 0.0:
                    stranded = 0.0
                append_row((
                    end_time,
                    agg_used_cores / total_cores,
                    100.0 * agg_used_cores / total_cores,
                    agg_used_gb,
                    sum(pool_used.values()),
                    stranded,
                    100.0 * stranded / total_dram,
                    agg_running,
                ))
            # Drain: remaining departures in presorted (time, trace
            # position) order -- exactly the calendar drain's (time, seq).
            for m in dep_order[p:]:
                entry = payload[m]
                if entry is None:
                    continue
                agg_used_cores, agg_used_gb, agg_stranded, agg_running = (
                    self._release_payload(
                        engine, entry, pooled,
                        agg_used_cores, agg_used_gb, agg_stranded, agg_running,
                    )
                )
        finally:
            if gc_was_enabled:
                gc.enable()

        # Rebuild the unmaintained full-server bucket (full-server elision):
        # a full server's key is exactly its state at fill time (nothing
        # changes while it has no free core), so sorting the recomputed keys
        # reproduces the canonical index byte-for-byte.
        buckets[0] = sorted(
            (std - used_gb_srv[i], i)
            for i in range(self.n_servers)
            if used_cores_srv[i] >= stc
        )

        # Hand the mutated aggregates and bucket keys back to the engine so
        # its state stays coherent for callers inspecting it after the run.
        engine.used_cores = agg_used_cores
        engine.used_local_gb = agg_used_gb
        engine.stranded_gb = agg_stranded
        engine.running_vms = agg_running
        engine._bucket_key = [
            (stc - cores, std - gb)
            for cores, gb in zip(used_cores_srv, used_gb_srv)
        ]

        result.placed_vms = placed_vms
        result.rejected_vms = rejected_vms
        result.total_memory_gb_allocated = total_memory_allocated
        result.total_pool_gb_allocated = total_pool_allocated
        if record_placements:
            result._placed_vm_ids = placed_ids
            result._placed_server_idx = placed_srv
            result._placement_server_ids = server_ids
        result.server_peak_local_gb, result.server_peak_total_gb = engine.server_peaks()
        result.pool_peak_gb = dict(engine.pool_peak_by_group)
        return result

"""Cluster substrate: traces, scheduling, and datacenter-scale simulation.

The paper's stranding analysis (Section 3.1) and end-to-end savings results
(Section 6.5) are driven by VM-to-server traces from 100 Azure clusters over
75 days.  Those traces are proprietary; this package provides:

* :mod:`repro.cluster.server` / :mod:`repro.cluster.vm_types` -- server and VM
  SKU definitions matching the paper's hardware (two-socket servers, a mix of
  VM sizes with varying DRAM-to-core ratios).
* :mod:`repro.cluster.trace` -- the VM arrival/departure trace format with
  CSV round-tripping, plus the chunked ``TraceStream`` protocol that replays
  traces from generators or CSV files without materialising them.
* :mod:`repro.cluster.tracegen` -- a synthetic trace generator whose knobs
  (target core utilisation, DRAM:core skew, lifetime distribution, customer
  mix) reproduce the statistical conditions that cause stranding; its
  ``generate_bulk`` path draws everything vectorized for 10^5..10^6-VM traces.
* :mod:`repro.cluster.scheduler` -- the NUMA-aware bin-packing VM scheduler,
  with an indexed candidate structure (default) and a legacy linear scan kept
  for differential testing.
* :mod:`repro.cluster.engine` -- the struct-of-arrays placement engine behind
  ``engine="array"`` (the default hot path): flat per-node/per-server arrays,
  integer VM handles, and the same best-fit bucket walk as the indexed
  scheduler, byte-identical to the object path.
* :mod:`repro.cluster.simulator` -- an event-driven cluster simulator tracking
  per-server and per-pool memory at VM-event granularity over one merged
  arrival/departure/sample event stream.
* :mod:`repro.cluster.stranding` -- stranding metrics (Figure 2).
* :mod:`repro.cluster.pool` -- pool dimensioning / DRAM-savings estimation
  (Figures 3 and 21).
* :mod:`repro.cluster.fleet` -- sharded fleet simulator merging N independent
  cluster replays (with batch policy evaluation, optional streaming, and a
  fleet-level capacity search) for million-VM studies.
* :mod:`repro.cluster.pool_topology` -- fleet-level pool topologies: pool
  groups that span cluster shards, a fleet-owned group ledger, and the
  merged cross-shard event replay behind ``FleetSimulator(pool_topology=)``.
* :mod:`repro.cluster.faults` -- deterministic EMC fault injection: seeded
  ``FaultSchedule`` timelines, graceful pool-group degradation through the
  ledger, the mitigate/migrate/kill degradation ladder, and per-replay
  ``FaultImpactStats`` (DESIGN.md section 11).
"""

from repro.cluster.engine import ArrayPlacementEngine, PLACEMENT_ENGINES
from repro.cluster.faults import FaultEvent, FaultImpactStats, FaultSchedule
from repro.cluster.server import ServerConfig, ClusterServer
from repro.cluster.vm_types import VMType, VM_TYPE_CATALOG, sample_vm_type
from repro.cluster.pool_topology import PoolGroupLedger, PoolTopology
from repro.cluster.trace import (
    VMTraceRecord,
    ClusterTrace,
    TraceColumns,
    TraceStream,
    MaterializedTraceStream,
    CsvTraceStream,
    write_csv,
)
from repro.cluster.tracegen import TraceGenerator, TraceGenConfig, GeneratedTraceStream
from repro.cluster.scheduler import VMScheduler, PlacementError, SCHEDULER_STRATEGIES
from repro.cluster.simulator import ClusterSimulator, SimulationResult
from repro.cluster.stranding import StrandingAnalyzer, stranding_vs_utilization
from repro.cluster.pool import PoolDimensioner, PoolSavings

_FLEET_EXPORTS = ("FleetSimulator", "FleetResult", "FleetShardResult",
                  "FleetCapacitySearchResult")


def __getattr__(name):
    # repro.cluster.fleet builds on repro.core.policies, which itself imports
    # repro.cluster.trace -- importing fleet eagerly here would make the
    # package cycle on itself when repro.core initialises first.  Resolve the
    # fleet exports lazily instead (PEP 562).
    if name in _FLEET_EXPORTS:
        from repro.cluster import fleet

        return getattr(fleet, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FleetSimulator",
    "FleetResult",
    "FleetShardResult",
    "FleetCapacitySearchResult",
    "ArrayPlacementEngine",
    "PLACEMENT_ENGINES",
    "FaultEvent",
    "FaultSchedule",
    "FaultImpactStats",
    "PoolTopology",
    "PoolGroupLedger",
    "write_csv",
    "ServerConfig",
    "ClusterServer",
    "VMType",
    "VM_TYPE_CATALOG",
    "sample_vm_type",
    "VMTraceRecord",
    "ClusterTrace",
    "TraceColumns",
    "TraceStream",
    "MaterializedTraceStream",
    "CsvTraceStream",
    "GeneratedTraceStream",
    "TraceGenerator",
    "TraceGenConfig",
    "VMScheduler",
    "PlacementError",
    "SCHEDULER_STRATEGIES",
    "ClusterSimulator",
    "SimulationResult",
    "StrandingAnalyzer",
    "stranding_vs_utilization",
    "PoolDimensioner",
    "PoolSavings",
]

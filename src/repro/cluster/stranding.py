"""Stranding analysis over simulation results (paper Figure 2).

Memory is *stranded* when a server's cores are fully rented but free DRAM
remains; that DRAM is technically available but practically unrentable.  The
helpers here aggregate the simulator's time-series samples the same way the
paper presents them:

* :func:`stranding_vs_utilization` -- daily-average stranded memory bucketed
  by the percentage of scheduled CPU cores, with 5th/95th percentile error
  bars (Figure 2a).
* :class:`StrandingAnalyzer` -- per-cluster summaries and rack-level time
  series (Figure 2b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.simulator import SimulationResult

__all__ = ["StrandingBucket", "stranding_vs_utilization", "StrandingAnalyzer"]


@dataclass(frozen=True)
class StrandingBucket:
    """Aggregate stranding statistics for one scheduled-cores bucket."""

    scheduled_cores_percent: float
    mean_stranded_percent: float
    p5_stranded_percent: float
    p95_stranded_percent: float
    n_samples: int


def stranding_vs_utilization(
    results: Sequence[SimulationResult],
    bucket_edges: Sequence[float] = (55, 65, 75, 85, 95, 100),
    min_samples: int = 1,
) -> List[StrandingBucket]:
    """Bucket stranding samples by scheduled-core percentage (Figure 2a).

    Each bucket is labelled by its centre; samples from all provided
    simulation results are merged before bucketing.
    """
    if len(bucket_edges) < 2:
        raise ValueError("need at least two bucket edges")
    scheduled = np.concatenate(
        [r.sample_array("scheduled_cores_percent") for r in results]
    ) if results else np.array([])
    stranded = np.concatenate(
        [r.sample_array("stranded_percent") for r in results]
    ) if results else np.array([])
    buckets: List[StrandingBucket] = []
    for lo, hi in zip(bucket_edges[:-1], bucket_edges[1:]):
        mask = (scheduled >= lo) & (scheduled < hi)
        count = int(mask.sum())
        if count < min_samples:
            continue
        values = stranded[mask]
        buckets.append(
            StrandingBucket(
                scheduled_cores_percent=(lo + hi) / 2.0,
                mean_stranded_percent=float(values.mean()),
                p5_stranded_percent=float(np.percentile(values, 5)),
                p95_stranded_percent=float(np.percentile(values, 95)),
                n_samples=count,
            )
        )
    return buckets


class StrandingAnalyzer:
    """Per-cluster stranding summaries and rack-level time series."""

    def __init__(self, results: Dict[str, SimulationResult]) -> None:
        if not results:
            raise ValueError("need at least one simulation result")
        self.results = dict(results)

    def cluster_mean_stranding(self) -> Dict[str, float]:
        """Mean stranded-memory percentage per cluster."""
        return {
            cluster: float(result.sample_array("stranded_percent").mean())
            if result.n_samples else 0.0
            for cluster, result in self.results.items()
        }

    def fleet_percentile(self, percentile: float) -> float:
        """Percentile of stranding across all samples of all clusters."""
        values = np.concatenate(
            [r.sample_array("stranded_percent") for r in self.results.values()  # repro: noqa DET007 -- results are inserted in cluster-id submission order, fixed by the study config
             if r.n_samples]
        )
        if values.size == 0:
            raise RuntimeError("no samples available")
        return float(np.percentile(values, percentile))

    def time_series(self, cluster: str) -> Tuple[np.ndarray, np.ndarray]:
        """(time_days, stranded_percent) series for one cluster (Figure 2b)."""
        result = self.results.get(cluster)
        if result is None:
            raise KeyError(f"unknown cluster {cluster!r}")
        times = result.sample_array("time_s") / 86_400.0
        stranded = result.sample_array("stranded_percent")
        return times, stranded

    def daily_average(self, cluster: str) -> Tuple[np.ndarray, np.ndarray]:
        """Average the stranding series per day (the paper's daily averages)."""
        times, stranded = self.time_series(cluster)
        if times.size == 0:
            return np.array([]), np.array([])
        days = np.floor(times).astype(int)
        unique_days = np.unique(days)
        averages = np.array([stranded[days == d].mean() for d in unique_days])
        return unique_days.astype(float), averages

    def stranding_increase_after(self, cluster: str, day: float) -> float:
        """Change in mean stranding after ``day`` vs before (Figure 2b shift)."""
        days, averages = self.daily_average(cluster)
        if days.size == 0:
            raise RuntimeError("no samples for cluster")
        before = averages[days < day]
        after = averages[days >= day]
        if before.size == 0 or after.size == 0:
            raise ValueError("day splits the series into an empty half")
        return float(after.mean() - before.mean())

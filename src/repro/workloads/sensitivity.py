"""Workload slowdown models under CXL latency and under zNUMA spill.

Two behaviours are modelled, corresponding to the paper's two experiment
families:

1. **Full-pool slowdown** (Figures 4, 5): when a workload's entire memory is
   pool-backed, its slowdown is driven by the latency ratio of pool vs local
   DRAM plus a bandwidth term (the CXL x8 link offers ~3/8 of the local
   socket's bandwidth on the evaluation machines).

2. **Spill slowdown** (Figure 16): when untouched memory is overpredicted,
   part of the *touched* working set lands on the zNUMA node.  Slowdown
   appears as soon as any working set spills and grows towards the full-pool
   slowdown as the spilled fraction approaches 1.

Both are deterministic functions of the workload's latent parameters, with an
optional run-to-run noise term to reproduce the small variation the paper
observes between repetitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cxl.latency import LOCAL_DRAM_LATENCY_NS
from repro.workloads.catalog import Workload

__all__ = [
    "LatencyScenario",
    "SCENARIO_182",
    "SCENARIO_222",
    "noise_generator",
    "slowdown_under_latency",
    "slowdown_under_spill",
    "scenario_for_pool_size",
]


@dataclass(frozen=True)
class LatencyScenario:
    """An emulated CXL latency configuration (paper Section 6.1)."""

    name: str
    local_latency_ns: float
    pool_latency_ns: float
    local_bandwidth_gbps: float = 80.0
    pool_bandwidth_gbps: float = 30.0

    def __post_init__(self) -> None:
        if self.local_latency_ns <= 0 or self.pool_latency_ns <= 0:
            raise ValueError("latencies must be positive")
        if self.pool_latency_ns < self.local_latency_ns:
            raise ValueError("pool latency cannot be lower than local latency")
        if self.local_bandwidth_gbps <= 0 or self.pool_bandwidth_gbps <= 0:
            raise ValueError("bandwidths must be positive")

    @property
    def latency_ratio(self) -> float:
        """Pool latency as a multiple of local latency (1.82, 2.22, ...)."""
        return self.pool_latency_ns / self.local_latency_ns

    @property
    def latency_increase_percent(self) -> float:
        """The paper's "182 %" / "222 %" style figure."""
        return 100.0 * self.latency_ratio

    @property
    def excess_latency_ratio(self) -> float:
        """(pool - local) / local; the driver of latency-bound slowdown."""
        return self.latency_ratio - 1.0

    @property
    def bandwidth_penalty(self) -> float:
        """Fractional bandwidth loss of the pool relative to local DRAM."""
        return max(0.0, 1.0 - self.pool_bandwidth_gbps / self.local_bandwidth_gbps)


#: The Intel evaluation configuration: 78 ns local, 142 ns remote (182 %).
SCENARIO_182 = LatencyScenario(
    name="intel-skylake-182",
    local_latency_ns=78.0,
    pool_latency_ns=142.0,
    local_bandwidth_gbps=80.0,
    pool_bandwidth_gbps=30.0,
)

#: The AMD evaluation configuration: 115 ns local, 255 ns remote (222 %).
SCENARIO_222 = LatencyScenario(
    name="amd-epyc-222",
    local_latency_ns=115.0,
    pool_latency_ns=255.0,
    local_bandwidth_gbps=80.0,
    pool_bandwidth_gbps=30.0,
)

#: Slowdown reduction for NUMA-aware workloads (the proprietary services
#: include data-placement optimisations, paper Section 3.3).
_NUMA_AWARE_RELIEF = 0.65


def slowdown_under_latency(
    workload: Workload,
    scenario: LatencyScenario,
    noise_rng: Optional[np.random.Generator] = None,
    noise_std_percent: float = 0.4,
) -> float:
    """Percent slowdown of ``workload`` when fully backed by pool memory.

    The model is ``latency_sensitivity * excess_latency + bandwidth_sensitivity
    * bandwidth_penalty`` expressed in percent, with a NUMA-awareness relief
    factor for the proprietary workloads and optional run-to-run noise.
    """
    latency_term = workload.latency_sensitivity * scenario.excess_latency_ratio
    bandwidth_term = workload.bandwidth_sensitivity * scenario.bandwidth_penalty
    slowdown = 100.0 * (latency_term + bandwidth_term)
    if workload.numa_aware:
        slowdown *= _NUMA_AWARE_RELIEF
    if noise_rng is not None and noise_std_percent > 0:
        slowdown += float(noise_rng.normal(0.0, noise_std_percent))
    return max(0.0, slowdown)


def slowdown_under_spill(
    workload: Workload,
    scenario: LatencyScenario,
    spill_fraction: float,
    noise_rng: Optional[np.random.Generator] = None,
    noise_std_percent: float = 0.4,
) -> float:
    """Percent slowdown when ``spill_fraction`` of the working set is on zNUMA.

    ``spill_fraction`` is the fraction of the *touched* working set that lands
    on the pool (0 = correctly sized zNUMA, 1 = fully pool-backed).  The
    fraction of memory accesses hitting the pool follows ``spill_fraction **
    access_skew``; a skew below 1 produces the "immediate impact" shape of
    Figure 16 (the spilled pages are accessed more than proportionally).
    """
    if not 0.0 <= spill_fraction <= 1.0:
        raise ValueError("spill_fraction must be in [0, 1]")
    if spill_fraction == 0.0:
        base = 0.0
    else:
        access_fraction = spill_fraction ** workload.access_skew
        base = slowdown_under_latency(workload, scenario) * access_fraction
    if noise_rng is not None and noise_std_percent > 0:
        base += abs(float(noise_rng.normal(0.0, noise_std_percent)))
    return max(0.0, base)


def scenario_for_pool_size(
    pool_sockets: int,
    local_latency_ns: float = LOCAL_DRAM_LATENCY_NS,
    local_bandwidth_gbps: float = 80.0,
    pool_bandwidth_gbps: float = 30.0,
) -> LatencyScenario:
    """Build a scenario whose pool latency comes from the CXL topology model."""
    from repro.cxl.latency import pond_pool_latency_ns

    pool_ns = pond_pool_latency_ns(pool_sockets) if pool_sockets > 1 else local_latency_ns
    pool_ns = max(pool_ns, local_latency_ns)
    return LatencyScenario(
        name=f"pond-{pool_sockets}-sockets",
        local_latency_ns=local_latency_ns,
        pool_latency_ns=pool_ns,
        local_bandwidth_gbps=local_bandwidth_gbps,
        pool_bandwidth_gbps=pool_bandwidth_gbps,
    )


def noise_generator(seed: Optional[int]) -> Optional[np.random.Generator]:
    """The one documented seed-``None`` contract for sensitivity noise.

    ``None`` means *no measurement noise at all* (the deterministic analytic
    slowdown), never "noise from OS entropy".  Every optional-seed path in
    the sensitivity studies routes through here so the fallback cannot
    silently drift back to an unseeded RNG (lint rule DET004).
    """
    if seed is None:
        return None
    return np.random.default_rng(seed)


def slowdown_distribution(
    workloads: Sequence[Workload],
    scenario: LatencyScenario,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Slowdowns (percent) of a workload collection under ``scenario``."""
    rng = noise_generator(seed)
    return np.array(
        [slowdown_under_latency(w, scenario, noise_rng=rng) for w in workloads]
    )

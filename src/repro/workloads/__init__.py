"""Workload substrate: the 158-workload study and its behavioural models.

The paper characterises 158 cloud workloads (Redis, VoltDB, Spark, GAPBS,
TPC-H, SPEC CPU 2017, PARSEC, SPLASH2x, and 13 proprietary Azure workloads)
under emulated CXL latency.  The real measurements require the authors'
two-socket testbed; this package synthesises an equivalent workload catalog
whose *distributions* match the fractions the paper reports:

* :mod:`repro.workloads.catalog` -- the 158 named workloads with latent
  latency/bandwidth sensitivity, footprints, and class labels.
* :mod:`repro.workloads.sensitivity` -- slowdown as a function of memory
  latency and of how much of the working set spills onto the pool.
* :mod:`repro.workloads.generator` -- synthesises core-PMU (TMA) counter
  features that are *correlated but not identical* to the true sensitivity,
  which is what makes the Figure 17 prediction problem non-trivial.
* :mod:`repro.workloads.memory_behavior` -- untouched-memory behaviour of VM
  populations (Section 3.2) used to train the untouched-memory model.
"""

from repro.workloads.catalog import (
    Workload,
    WorkloadCatalog,
    WorkloadClass,
    build_catalog,
)
from repro.workloads.sensitivity import (
    LatencyScenario,
    SCENARIO_182,
    SCENARIO_222,
    slowdown_under_latency,
    slowdown_under_spill,
)
from repro.workloads.generator import PMUFeatureGenerator
from repro.workloads.memory_behavior import UntouchedMemoryModel, VMMemoryBehavior

__all__ = [
    "Workload",
    "WorkloadCatalog",
    "WorkloadClass",
    "build_catalog",
    "LatencyScenario",
    "SCENARIO_182",
    "SCENARIO_222",
    "slowdown_under_latency",
    "slowdown_under_spill",
    "PMUFeatureGenerator",
    "UntouchedMemoryModel",
    "VMMemoryBehavior",
]

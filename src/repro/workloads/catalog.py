"""The 158-workload catalog (paper Figure 4 / Section 6.1).

Each :class:`Workload` carries the latent behavioural parameters the rest of
the reproduction consumes:

* ``latency_sensitivity`` -- the fraction of execution time that scales with
  additional memory latency (roughly the "true" DRAM-latency-bound fraction
  amplified by memory-level-parallelism effects).  A workload fully backed by
  pool memory slows down by ``latency_sensitivity * (latency_ratio - 1)``.
* ``bandwidth_sensitivity`` -- extra slowdown from the pool's lower bandwidth
  (a CXL x8 link provides ~3/4 of a DDR5 channel); this component is *not*
  visible in the DRAM-latency-bound counter, which is why simple threshold
  heuristics have false positives (paper Finding 4).
* ``access_skew`` -- shape parameter controlling how quickly accesses reach
  memory that spills onto the zNUMA node (Figure 16).
* ``footprint_gb`` and ``untouched_fraction`` -- memory footprint and the
  fraction the workload never touches.

The catalog is deterministic: the same seed always produces the same 158
workloads, and the global sensitivity distribution is constructed by
stratified inversion of the paper's reported slowdown buckets, so the
Figure 4/5 shapes hold by construction rather than by luck.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

__all__ = ["WorkloadClass", "Workload", "WorkloadCatalog", "build_catalog"]


class WorkloadClass(str, enum.Enum):
    """The workload suites of Figure 4."""

    PROPRIETARY = "proprietary"
    REDIS = "redis"
    VOLTDB = "voltdb"
    SPARK = "spark"
    GAPBS = "gapbs"
    TPCH = "tpch"
    SPEC = "spec_cpu_2017"
    PARSEC = "parsec"
    SPLASH2X = "splash2x"


#: Number of workloads per class; totals 158 like the paper's study.
CLASS_SIZES: Dict[WorkloadClass, int] = {
    WorkloadClass.PROPRIETARY: 13,
    WorkloadClass.REDIS: 6,
    WorkloadClass.VOLTDB: 6,
    WorkloadClass.SPARK: 13,
    WorkloadClass.GAPBS: 20,
    WorkloadClass.TPCH: 22,
    WorkloadClass.SPEC: 43,
    WorkloadClass.PARSEC: 20,
    WorkloadClass.SPLASH2X: 15,
}

#: Workload name templates per class (cycled / indexed as needed).
_CLASS_NAMES: Dict[WorkloadClass, Sequence[str]] = {
    WorkloadClass.PROPRIETARY: [f"P{i}" for i in range(1, 14)],
    WorkloadClass.REDIS: [f"redis-ycsb-{c}" for c in "abcdef"],
    WorkloadClass.VOLTDB: [f"voltdb-ycsb-{c}" for c in "abcdef"],
    WorkloadClass.SPARK: [
        "spark-wordcount", "spark-sort", "spark-terasort", "spark-pagerank",
        "spark-kmeans", "spark-bayes", "spark-nweight", "spark-als",
        "spark-svd", "spark-lda", "spark-linear", "spark-gbt", "spark-join",
    ],
    WorkloadClass.GAPBS: [
        f"gapbs-{kernel}-{graph}"
        for kernel in ("bc", "bfs", "cc", "pr", "sssp")
        for graph in ("twitter", "web", "road", "kron")
    ],
    WorkloadClass.TPCH: [f"tpch-q{i}" for i in range(1, 23)],
    WorkloadClass.SPEC: [
        "500.perlbench_r", "502.gcc_r", "503.bwaves_r", "505.mcf_r",
        "507.cactuBSSN_r", "508.namd_r", "510.parest_r", "511.povray_r",
        "519.lbm_r", "520.omnetpp_r", "521.wrf_r", "523.xalancbmk_r",
        "525.x264_r", "526.blender_r", "527.cam4_r", "531.deepsjeng_r",
        "538.imagick_r", "541.leela_r", "544.nab_r", "548.exchange2_r",
        "549.fotonik3d_r", "554.roms_r", "557.xz_r", "600.perlbench_s",
        "602.gcc_s", "603.bwaves_s", "605.mcf_s", "607.cactuBSSN_s",
        "619.lbm_s", "620.omnetpp_s", "621.wrf_s", "623.xalancbmk_s",
        "625.x264_s", "627.cam4_s", "628.pop2_s", "631.deepsjeng_s",
        "638.imagick_s", "641.leela_s", "644.nab_s", "648.exchange2_s",
        "649.fotonik3d_s", "654.roms_s", "657.xz_s",
    ],
    WorkloadClass.PARSEC: [
        "parsec-blackscholes", "parsec-bodytrack", "parsec-canneal",
        "parsec-dedup", "parsec-facesim", "parsec-ferret",
        "parsec-fluidanimate", "parsec-freqmine", "parsec-raytrace",
        "parsec-streamcluster", "parsec-swaptions", "parsec-vips",
        "parsec-x264", "parsec-netdedup", "parsec-netferret",
        "parsec-netstreamcluster", "parsec-splash2x-barnes",
        "parsec-splash2x-fmm", "parsec-splash2x-ocean", "parsec-splash2x-radix",
    ],
    WorkloadClass.SPLASH2X: [
        "splash2x-barnes", "splash2x-cholesky", "splash2x-fft", "splash2x-fmm",
        "splash2x-lu_cb", "splash2x-lu_ncb", "splash2x-ocean_cp",
        "splash2x-ocean_ncp", "splash2x-radiosity", "splash2x-radix",
        "splash2x-raytrace", "splash2x-volrend", "splash2x-water_nsquared",
        "splash2x-water_spatial", "splash2x-lu_extra",
    ],
}

#: Class-level bias applied when assigning sensitivity quantiles.  Positive
#: values push the class towards higher sensitivity (GAPBS graph kernels),
#: negative towards lower (the NUMA-aware proprietary services).
_CLASS_SENSITIVITY_BIAS: Dict[WorkloadClass, float] = {
    WorkloadClass.PROPRIETARY: -0.22,
    WorkloadClass.REDIS: -0.05,
    WorkloadClass.VOLTDB: 0.00,
    WorkloadClass.SPARK: 0.02,
    WorkloadClass.GAPBS: 0.18,
    WorkloadClass.TPCH: 0.05,
    WorkloadClass.SPEC: 0.00,
    WorkloadClass.PARSEC: -0.05,
    WorkloadClass.SPLASH2X: -0.08,
}

#: Typical memory footprints per class in GB (mean of a lognormal).
_CLASS_FOOTPRINT_GB: Dict[WorkloadClass, float] = {
    WorkloadClass.PROPRIETARY: 48.0,
    WorkloadClass.REDIS: 32.0,
    WorkloadClass.VOLTDB: 24.0,
    WorkloadClass.SPARK: 40.0,
    WorkloadClass.GAPBS: 28.0,
    WorkloadClass.TPCH: 36.0,
    WorkloadClass.SPEC: 8.0,
    WorkloadClass.PARSEC: 12.0,
    WorkloadClass.SPLASH2X: 6.0,
}

#: Breakpoints of the global sensitivity distribution, chosen so that under a
#: 182 % latency ratio (excess 0.82) the slowdown buckets match Section 3.3:
#: ~26 % of workloads below 1 % slowdown, ~43 % below 5 %, ~21 % above 25 %.
_SENSITIVITY_QUANTILE_BREAKS = (
    (0.00, 0.000),
    (0.26, 0.012),
    (0.43, 0.061),
    (0.79, 0.300),
    (0.95, 0.700),
    (1.00, 1.050),
)


def _sensitivity_from_quantile(u: float) -> float:
    """Piecewise-linear inverse CDF mapping a quantile to a sensitivity value."""
    u = float(np.clip(u, 0.0, 1.0))
    breaks = _SENSITIVITY_QUANTILE_BREAKS
    for (u0, s0), (u1, s1) in zip(breaks[:-1], breaks[1:]):
        if u <= u1:
            if u1 == u0:
                return s1
            t = (u - u0) / (u1 - u0)
            return s0 + t * (s1 - s0)
    return breaks[-1][1]


@dataclass(frozen=True)
class Workload:
    """One of the 158 study workloads with its latent behavioural parameters."""

    name: str
    workload_class: WorkloadClass
    latency_sensitivity: float
    bandwidth_sensitivity: float
    access_skew: float
    footprint_gb: float
    untouched_fraction: float
    numa_aware: bool = False

    def __post_init__(self) -> None:
        if self.latency_sensitivity < 0:
            raise ValueError("latency_sensitivity cannot be negative")
        if self.bandwidth_sensitivity < 0:
            raise ValueError("bandwidth_sensitivity cannot be negative")
        if not 0.1 <= self.access_skew <= 3.0:
            raise ValueError("access_skew must be in [0.1, 3.0]")
        if self.footprint_gb <= 0:
            raise ValueError("footprint must be positive")
        if not 0.0 <= self.untouched_fraction < 1.0:
            raise ValueError("untouched_fraction must be in [0, 1)")


class WorkloadCatalog:
    """An immutable collection of workloads with lookup and filtering helpers."""

    def __init__(self, workloads: Sequence[Workload]) -> None:
        if not workloads:
            raise ValueError("catalog cannot be empty")
        names = [w.name for w in workloads]
        if len(set(names)) != len(names):
            raise ValueError("duplicate workload names in catalog")
        self._workloads: List[Workload] = list(workloads)
        self._by_name: Dict[str, Workload] = {w.name: w for w in workloads}

    def __len__(self) -> int:
        return len(self._workloads)

    def __iter__(self) -> Iterator[Workload]:
        return iter(self._workloads)

    def __getitem__(self, name: str) -> Workload:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def names(self) -> List[str]:
        return [w.name for w in self._workloads]

    def by_class(self, workload_class: WorkloadClass) -> List[Workload]:
        return [w for w in self._workloads if w.workload_class is workload_class]

    def classes(self) -> List[WorkloadClass]:
        seen: List[WorkloadClass] = []
        for w in self._workloads:
            if w.workload_class not in seen:
                seen.append(w.workload_class)
        return seen

    def sensitivities(self) -> np.ndarray:
        return np.array([w.latency_sensitivity for w in self._workloads])


def build_catalog(seed: int = 7, n_workloads: Optional[int] = None) -> WorkloadCatalog:
    """Build the deterministic 158-workload catalog.

    Parameters
    ----------
    seed:
        Seed controlling the per-workload jitter; the *global* sensitivity
        distribution is stratified so the Figure 4/5 buckets hold regardless.
    n_workloads:
        Optionally truncate the catalog (useful for fast tests); ``None``
        builds all 158.
    """
    rng = np.random.default_rng(seed)
    total = sum(CLASS_SIZES.values())

    # Stratified global quantiles: one per workload, evenly covering (0, 1),
    # then shuffled so classes interleave across the sensitivity range.
    quantiles = (np.arange(total) + 0.5) / total
    rng.shuffle(quantiles)

    workloads: List[Workload] = []
    cursor = 0
    for workload_class, size in CLASS_SIZES.items():  # repro: noqa DET007 -- CLASS_SIZES is a module-level literal; insertion order is part of the catalog contract
        names = list(_CLASS_NAMES[workload_class])[:size]
        if len(names) < size:
            names += [f"{workload_class.value}-extra-{i}" for i in range(size - len(names))]
        bias = _CLASS_SENSITIVITY_BIAS[workload_class]
        mean_footprint = _CLASS_FOOTPRINT_GB[workload_class]
        for i, name in enumerate(names):
            u = float(np.clip(quantiles[cursor] + bias, 0.001, 0.999))
            cursor += 1
            sensitivity = _sensitivity_from_quantile(u)
            # Small multiplicative jitter keeps workloads within a class distinct.
            sensitivity *= float(rng.uniform(0.9, 1.1))
            # Bandwidth sensitivity: usually a small fraction of the latency
            # sensitivity so the latency term dominates the slowdown buckets;
            # a minority of already-affected workloads are bandwidth-heavy even
            # though their DRAM-latency-bound counter is modest (the paper's
            # "high slowdown at 2 % DRAM boundedness" outliers, Finding 4).
            if u > 0.26 and rng.uniform() < 0.18:
                bandwidth = float(rng.uniform(0.10, 0.35))
            else:
                bandwidth = float(sensitivity * rng.uniform(0.0, 0.08))
            footprint = float(
                np.clip(rng.lognormal(np.log(mean_footprint), 0.5), 0.5, 512.0)
            )
            untouched = float(np.clip(rng.beta(2.0, 2.0), 0.0, 0.95))
            numa_aware = workload_class is WorkloadClass.PROPRIETARY and rng.uniform() < 0.7
            workloads.append(
                Workload(
                    name=name,
                    workload_class=workload_class,
                    latency_sensitivity=float(sensitivity),
                    bandwidth_sensitivity=bandwidth,
                    access_skew=float(rng.uniform(0.5, 1.3)),
                    footprint_gb=footprint,
                    untouched_fraction=untouched,
                    numa_aware=numa_aware,
                )
            )

    if n_workloads is not None:
        if n_workloads < 1:
            raise ValueError("n_workloads must be >= 1")
        workloads = workloads[:n_workloads]
    return WorkloadCatalog(workloads)

"""Untouched-memory behaviour of VM populations (paper Section 3.2).

The paper measures that ~50 % of VMs touch less than 50 % of their rented
memory, that behaviour varies widely across clusters, and -- crucially for the
untouched-memory model -- that VMs from the same customer tend to behave
similarly (which is why customer-history percentiles are the model's most
important feature).

:class:`UntouchedMemoryModel` is the *generative* model of this behaviour used
to synthesise labelled data: every customer has a latent mean untouched
fraction and consistency, every VM type shifts it, and each VM's realised
untouched fraction is drawn around that.  :class:`VMMemoryBehavior` converts a
fraction into a time series of touched memory for one VM (ramp-up towards the
final working set), which drives the access-bit scanning and the
guest-committed counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["UntouchedMemoryModel", "VMMemoryBehavior", "CustomerProfile"]


@dataclass(frozen=True)
class CustomerProfile:
    """Latent untouched-memory behaviour of one customer."""

    customer_id: str
    mean_untouched_fraction: float
    consistency: float  # 0 = erratic, 1 = every VM behaves identically

    def __post_init__(self) -> None:
        if not 0.0 <= self.mean_untouched_fraction <= 0.98:
            raise ValueError("mean untouched fraction must be in [0, 0.98]")
        if not 0.0 <= self.consistency <= 1.0:
            raise ValueError("consistency must be in [0, 1]")


#: Shift applied to a customer's untouched fraction per VM type.  Memory-
#: optimised VMs tend to be sized for peak datasets (more untouched); compute-
#: optimised VMs tend to use what they rent.
_VM_TYPE_SHIFT: Dict[str, float] = {
    "general": 0.0,
    "memory_optimized": 0.10,
    "compute_optimized": -0.10,
    "burstable": 0.05,
    "gpu": -0.05,
}


class UntouchedMemoryModel:
    """Generative model for per-VM untouched-memory fractions.

    The population is tuned so the 50th percentile of untouched memory is
    roughly 50 % (Section 3.2) while clusters/customers differ widely.
    """

    def __init__(self, n_customers: int = 200, seed: int = 23) -> None:
        if n_customers < 1:
            raise ValueError("need at least one customer")
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.customers: Dict[str, CustomerProfile] = {}
        for i in range(n_customers):
            customer_id = f"customer-{i:04d}"
            # Beta(1.6, 1.6) has median 0.5 and substantial spread.
            mean_untouched = float(np.clip(self._rng.beta(1.6, 1.6), 0.02, 0.95))
            # Customers are fairly consistent across their VMs -- the paper's
            # justification for using customer history as the dominant feature.
            consistency = float(np.clip(self._rng.beta(6.0, 1.8), 0.2, 0.98))
            self.customers[customer_id] = CustomerProfile(
                customer_id=customer_id,
                mean_untouched_fraction=mean_untouched,
                consistency=consistency,
            )

    @property
    def customer_ids(self) -> List[str]:
        return sorted(self.customers.keys())

    def profile(self, customer_id: str) -> CustomerProfile:
        if customer_id not in self.customers:
            raise KeyError(f"unknown customer {customer_id!r}")
        return self.customers[customer_id]

    def sample_customer(self, rng: Optional[np.random.Generator] = None) -> str:
        rng = rng or self._rng
        return str(rng.choice(self.customer_ids))

    @staticmethod
    def _centre_and_spread(mean_untouched, consistency, vm_type_shift):
        """Shared centre/spread formula; accepts scalars or numpy arrays."""
        centre = np.clip(mean_untouched + vm_type_shift, 0.01, 0.97)
        # Higher consistency -> tighter spread around the customer's centre.
        spread = 0.30 * (1.0 - consistency) + 0.02
        return centre, spread

    def sample_untouched_fraction(
        self,
        customer_id: str,
        vm_type: str = "general",
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Draw one VM's untouched fraction for the given customer and type."""
        rng = rng or self._rng
        profile = self.profile(customer_id)
        centre, spread = self._centre_and_spread(
            profile.mean_untouched_fraction,
            profile.consistency,
            _VM_TYPE_SHIFT.get(vm_type, 0.0),
        )
        value = rng.normal(float(centre), float(spread))
        return float(np.clip(value, 0.0, 0.98))

    def sample_untouched_fractions_bulk(
        self,
        customer_ids: Sequence[str],
        vm_types: Sequence[str],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Vectorized :meth:`sample_untouched_fraction` over aligned arrays.

        Uses the same centre/spread formula as the scalar path (so the two
        stay statistically equivalent by construction) but draws all normals
        in one call, which bulk trace generation relies on.
        """
        if len(customer_ids) != len(vm_types):
            raise ValueError("customer_ids and vm_types must be aligned")
        rng = rng or self._rng
        means = np.array(
            [self.profile(c).mean_untouched_fraction for c in customer_ids]
        )
        consistency = np.array([self.profile(c).consistency for c in customer_ids])
        shifts = np.array([_VM_TYPE_SHIFT.get(t, 0.0) for t in vm_types])
        centres, spreads = self._centre_and_spread(means, consistency, shifts)
        values = rng.normal(centres, spreads)
        return np.clip(values, 0.0, 0.98)

    def customer_history_percentiles(
        self,
        customer_id: str,
        n_previous_vms: int = 20,
        percentiles: Sequence[float] = (0, 25, 50, 75, 100),
        vm_type: str = "general",
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Feature vector: untouched-fraction percentiles of recent VMs.

        This is the "percentiles of memory usage in previous VMs by the same
        customer" feature of Figure 14.  Customers with no prior VMs should be
        handled by the caller (Pond falls back to local-only placement).
        """
        rng = rng or self._rng
        samples = np.array([
            self.sample_untouched_fraction(customer_id, vm_type, rng)
            for _ in range(max(1, n_previous_vms))
        ])
        return np.percentile(samples, percentiles)


@dataclass
class VMMemoryBehavior:
    """Touched-memory trajectory of one VM over its lifetime.

    The VM ramps from an initial touched fraction up to its final working set
    (``1 - untouched_fraction`` of its memory) over ``ramp_hours``; after that
    the working set stays flat.  This matches the paper's observation that the
    minimum untouched memory over the lifetime is the right label.
    """

    memory_gb: float
    untouched_fraction: float
    ramp_hours: float = 2.0
    initial_touched_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.memory_gb <= 0:
            raise ValueError("memory must be positive")
        if not 0.0 <= self.untouched_fraction <= 1.0:
            raise ValueError("untouched_fraction must be in [0, 1]")
        if self.ramp_hours <= 0:
            raise ValueError("ramp_hours must be positive")
        if not 0.0 <= self.initial_touched_fraction <= 1.0:
            raise ValueError("initial_touched_fraction must be in [0, 1]")

    @property
    def final_touched_gb(self) -> float:
        return self.memory_gb * (1.0 - self.untouched_fraction)

    def touched_gb_at(self, hours_since_start: float) -> float:
        """Touched memory (GB) ``hours_since_start`` hours into the VM's life."""
        if hours_since_start < 0:
            raise ValueError("time cannot be negative")
        initial = min(self.initial_touched_fraction * self.memory_gb,
                      self.final_touched_gb)
        if hours_since_start >= self.ramp_hours:
            return self.final_touched_gb
        progress = hours_since_start / self.ramp_hours
        return initial + (self.final_touched_gb - initial) * progress

    def untouched_gb_at(self, hours_since_start: float) -> float:
        return self.memory_gb - self.touched_gb_at(hours_since_start)

    def minimum_untouched_fraction(self, lifetime_hours: float) -> float:
        """The training label: minimum untouched fraction over the lifetime."""
        if lifetime_hours <= 0:
            raise ValueError("lifetime must be positive")
        return self.untouched_gb_at(lifetime_hours) / self.memory_gb

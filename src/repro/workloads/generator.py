"""Synthesis of core-PMU (TMA) features for the 158 workloads.

Pond's latency-insensitivity model is trained on hardware-counter features
(TMA pipeline-slot breakdowns, LLC MPI, bandwidth, memory-level parallelism)
with offline slowdown measurements as labels (paper Figure 12).  Reproducing
that pipeline requires counter values that are *correlated with but not equal
to* the true sensitivity:

* the DRAM-latency-bound counter tracks the latency-sensitivity component
  with measurement noise,
* the bandwidth counter tracks the bandwidth-sensitivity component (which the
  DRAM-bound heuristic cannot see -- the source of its false positives),
* memory-bound and backend-bound include store and non-memory stalls, making
  them weaker predictors (Finding 5: DRAM-bound beats memory-bound, and the
  RandomForest beats both).

:class:`PMUFeatureGenerator` produces per-workload feature vectors and whole
sample sets (multiple noisy observations per workload) for model training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.hypervisor.telemetry import TMACounters, TMA_FEATURE_NAMES
from repro.workloads.catalog import Workload, WorkloadCatalog
from repro.workloads.sensitivity import LatencyScenario, slowdown_under_latency

__all__ = ["PMUFeatureGenerator", "TrainingSet"]


@dataclass
class TrainingSet:
    """Feature matrix, slowdown labels (percent), and workload names."""

    features: np.ndarray
    slowdowns: np.ndarray
    names: List[str]
    feature_names: Tuple[str, ...] = TMA_FEATURE_NAMES

    def insensitive_labels(self, pdm_percent: float) -> np.ndarray:
        """Binary labels: 1 when the slowdown is within the PDM."""
        return (self.slowdowns <= pdm_percent).astype(int)

    def __len__(self) -> int:
        return len(self.names)


class PMUFeatureGenerator:
    """Generates TMA counter features correlated with workload sensitivity."""

    def __init__(self, seed: int = 11, counter_noise: float = 0.015) -> None:
        if counter_noise < 0:
            raise ValueError("counter noise cannot be negative")
        self.seed = seed
        self.counter_noise = counter_noise

    # -- single-workload synthesis ------------------------------------------------
    def counters_for(self, workload: Workload,
                     rng: Optional[np.random.Generator] = None) -> TMACounters:
        """One TMA counter snapshot for ``workload``.

        The latent latency sensitivity includes memory-level-parallelism
        amplification, so the *observable* DRAM-latency-bound fraction is the
        sensitivity compressed back into [0, 1] with noise.
        """
        rng = rng or np.random.default_rng(self.seed)
        noise = lambda scale: float(rng.normal(0.0, scale))  # noqa: E731

        dram_bound = float(np.clip(
            workload.latency_sensitivity / (1.0 + workload.latency_sensitivity)
            + noise(self.counter_noise),
            0.0, 0.9,
        ))
        # Store-boundedness is mostly unrelated to CXL latency sensitivity
        # (stores complete asynchronously), which is what makes the broader
        # "memory bound" metric a *weaker* predictor than "DRAM bound".
        store_bound = float(np.clip(
            abs(rng.normal(0.08, 0.06)) + noise(self.counter_noise),
            0.0, 0.5,
        ))
        memory_bound = float(np.clip(
            dram_bound + store_bound + abs(rng.normal(0.05, 0.05)),
            dram_bound, 0.95,
        ))
        backend_bound = float(np.clip(
            memory_bound + 0.1 + abs(noise(self.counter_noise)),
            memory_bound, 1.0,
        ))
        llc_mpi = float(np.clip(
            30.0 * workload.latency_sensitivity + 10.0 * workload.bandwidth_sensitivity
            + abs(noise(1.0)),
            0.0, 100.0,
        ))
        bandwidth = float(np.clip(
            5.0 + 200.0 * workload.bandwidth_sensitivity
            + 20.0 * workload.latency_sensitivity + abs(noise(2.0)),
            0.0, 120.0,
        ))
        parallelism = float(np.clip(
            2.0 + 10.0 * workload.latency_sensitivity + abs(noise(0.5)),
            1.0, 32.0,
        ))
        return TMACounters(
            backend_bound=backend_bound,
            memory_bound=memory_bound,
            store_bound=store_bound,
            dram_latency_bound=dram_bound,
            llc_mpi=llc_mpi,
            memory_bandwidth_gbps=bandwidth,
            memory_parallelism=parallelism,
        )

    def feature_vector(self, workload: Workload,
                       rng: Optional[np.random.Generator] = None) -> np.ndarray:
        return self.counters_for(workload, rng).as_vector()

    # -- training-set synthesis -----------------------------------------------------
    def training_set(
        self,
        catalog: WorkloadCatalog,
        scenario: LatencyScenario,
        samples_per_workload: int = 3,
        label_noise_percent: float = 0.4,
    ) -> TrainingSet:
        """Build the offline-run training set of Figure 12.

        Every workload contributes ``samples_per_workload`` (feature, label)
        pairs; features vary with counter noise and labels with run-to-run
        noise, mimicking repeated A/B test runs.
        """
        if samples_per_workload < 1:
            raise ValueError("samples_per_workload must be >= 1")
        rng = np.random.default_rng(self.seed)
        rows: List[np.ndarray] = []
        labels: List[float] = []
        names: List[str] = []
        for workload in catalog:
            for _ in range(samples_per_workload):
                rows.append(self.feature_vector(workload, rng))
                labels.append(
                    slowdown_under_latency(
                        workload, scenario, noise_rng=rng,
                        noise_std_percent=label_noise_percent,
                    )
                )
                names.append(workload.name)
        return TrainingSet(
            features=np.vstack(rows),
            slowdowns=np.array(labels),
            names=names,
        )

    def workload_level_set(
        self,
        catalog: WorkloadCatalog,
        scenario: LatencyScenario,
    ) -> TrainingSet:
        """One noiseless sample per workload (used for evaluation sweeps)."""
        rng = np.random.default_rng(self.seed + 1)
        rows = [self.feature_vector(w, rng) for w in catalog]
        labels = [slowdown_under_latency(w, scenario) for w in catalog]
        return TrainingSet(
            features=np.vstack(rows),
            slowdowns=np.array(labels),
            names=list(catalog.names),
        )

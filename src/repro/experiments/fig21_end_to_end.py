"""Figure 21: end-to-end DRAM savings under performance constraints.

The end-to-end simulation evaluates, per pool size, the DRAM required when
VM memory is split between local and pool DRAM by:

* **Pond** at the operating point its combined model chooses under the
  configured PDM/TP (for both the 182 % and 222 % latency scenarios -- the
  higher latency makes the insensitivity model more conservative and thus
  saves less), and
* the **static** strawman that puts 15 % of every VM's memory on the pool.

The scheduling-misprediction rate of every policy is also tracked to verify
the TP constraint holds.

Runs on the batch policy engine: each policy's pool allocations are computed
once per replay as a vectorized array (``decide_batch``), so the simulator's
hot loop never calls back into Python per VM.  With ``n_shards > 1`` the
study scales out through the sharded :class:`FleetSimulator` -- one
independent cluster per shard, savings summed across the fleet -- which is
how the paper's ~100-cluster evaluation shape is reproduced.  The sharded
mode streams every shard trace by default (``stream_chunk_size``), so the
fleet's peak trace memory stays O(generation window + chunk) no matter
how many VMs the study replays; ``provisioning="capacity"`` switches the savings model from
peak-observation to the constrained capacity search (fleet-level via
``FleetSimulator.capacity_search`` when sharded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cluster.fleet import (
    FleetSimulator,
    PolicyFactory,
    PoolTopology,
    pond_policy_factory,
    prediction_policy_factory,
    static_policy_factory,
)
from repro.cluster.pool import PoolDimensioner, PoolSavings
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator
from repro.core.config import PondConfig
from repro.core.control_plane.online import (
    OnlineControlConfig,
    OnlineControlStats,
)
from repro.core.prediction.combined import CombinedOperatingPoint

__all__ = ["EndToEndStudy", "run_end_to_end_study", "format_end_to_end_table"]

DEFAULT_POOL_SIZES = (2, 8, 16, 32, 64)

#: Default operating points used when the caller does not supply solved ones.
#: They match the paper's Figure 20 outcome at a ~2 % misprediction target:
#: the 182 % scenario can place more VMs fully on the pool than the 222 % one.
DEFAULT_OPERATING_POINTS: Dict[str, CombinedOperatingPoint] = {
    "182": CombinedOperatingPoint(fp_percent=1.5, op_percent=2.0,
                                  li_percent=30.0, um_percent=22.0),
    "222": CombinedOperatingPoint(fp_percent=1.5, op_percent=2.0,
                                  li_percent=18.0, um_percent=22.0),
}


@dataclass
class EndToEndStudy:
    """Required-DRAM percentages per policy and pool size (Figure 21)."""

    pool_sizes: List[int]
    #: policy label -> list of PoolSavings aligned with ``pool_sizes``.
    savings: Dict[str, List[PoolSavings]]
    #: policy label -> scheduling misprediction percent observed.
    misprediction_percent: Dict[str, float]
    #: policy label -> online QoS/mitigation accounting accumulated over the
    #: pool-size sweep (``mode="online"`` runs only; ``None`` otherwise).
    online_stats: Optional[Dict[str, OnlineControlStats]] = None

    def required_dram_percent(self, policy: str, pool_size: int) -> float:
        for entry in self.savings[policy]:
            if entry.pool_size_sockets == pool_size:
                return entry.required_dram_percent
        raise KeyError(f"no entry for policy {policy!r} at pool size {pool_size}")

    def savings_percent(self, policy: str, pool_size: int) -> float:
        return 100.0 - self.required_dram_percent(policy, pool_size)


def run_end_to_end_study(
    config: Optional[PondConfig] = None,
    n_servers: int = 32,
    duration_days: float = 3.0,
    target_utilization: float = 0.85,
    pool_sizes: Sequence[int] = DEFAULT_POOL_SIZES,
    operating_points: Optional[Dict[str, CombinedOperatingPoint]] = None,
    static_fraction: float = 0.15,
    seed: int = 61,
    n_shards: int = 1,
    max_workers: Optional[int] = None,
    stream_chunk_size: Optional[int] = 16384,
    provisioning: str = "peaks",
    pool_scope: str = "cluster",
    mode: str = "static",
    qos_threshold_percent: float = 5.0,
    migration_cost_s_per_gb: float = 0.2,
) -> EndToEndStudy:
    """Run the Figure 21 sweep.

    ``n_shards == 1`` (default) evaluates one synthetic cluster trace through
    the :class:`PoolDimensioner`; ``n_shards > 1`` shards the study across a
    fleet of independent clusters (``n_servers`` each) and sums the per-shard
    savings, optionally fanning shards out over ``max_workers`` processes.
    The sharded mode replays lazy trace streams by default (peak trace
    memory O(``stream_chunk_size``)); pass ``stream_chunk_size=None`` to
    pregenerate and reuse materialised shard traces across the grid
    (faster when the fleet fits in memory, since streams regenerate per
    replay).

    ``provisioning`` selects the savings model: ``"peaks"`` (default) uses
    uniform peak-observation provisioning; ``"capacity"`` runs the
    constrained capacity search instead -- per cluster through
    ``PoolDimensioner.evaluate_capacity_search``, or fleet-wide through
    ``FleetSimulator.capacity_search`` when sharded.

    ``pool_scope`` selects where pool groups may live: ``"cluster"``
    (default) confines every group to one shard, the paper's per-cluster
    deployment; ``"fleet"`` lets groups span shard boundaries
    (``PoolTopology.spanning``, requires ``n_shards > 1``) -- the rack-scale
    regime where one pool serves servers from two clusters.

    ``mode="online"`` runs the full prediction-driven control loop instead
    of the one-shot allocation replay: a trained
    :class:`~repro.core.policies.PredictionPolicy` joins the policy grid
    (label ``"prediction"``), every pooled replay runs with the online
    QoS/mitigation stage (``qos_threshold_percent`` /
    ``migration_cost_s_per_gb``), and per-policy mitigation accounting is
    returned in :attr:`EndToEndStudy.online_stats`.  Online mode uses peak
    provisioning (the capacity search replays are static by construction).
    """
    if provisioning not in ("peaks", "capacity"):
        raise ValueError("provisioning must be 'peaks' or 'capacity'")
    if pool_scope not in ("cluster", "fleet"):
        raise ValueError("pool_scope must be 'cluster' or 'fleet'")
    if pool_scope == "fleet" and n_shards < 2:
        raise ValueError("pool_scope='fleet' needs n_shards > 1 to span")
    if mode not in ("static", "online"):
        raise ValueError("mode must be 'static' or 'online'")
    online: Optional[OnlineControlConfig] = None
    if mode == "online":
        if provisioning != "peaks":
            raise ValueError("mode='online' requires provisioning='peaks'")
        online = OnlineControlConfig(
            qos_threshold_percent=qos_threshold_percent,
            migration_cost_s_per_gb=migration_cost_s_per_gb,
        )
    config = config or PondConfig()
    points = operating_points or DEFAULT_OPERATING_POINTS
    cfg = TraceGenConfig(
        cluster_id="end-to-end",
        n_servers=n_servers,
        duration_days=duration_days,
        target_core_utilization=target_utilization,
        seed=seed,
    )
    usable_sizes = [s for s in pool_sizes if s <= n_servers * cfg.server_config.sockets]
    factories: Dict[str, PolicyFactory] = {
        "pond_182": pond_policy_factory(
            points["182"], slice_gb=config.slice_gb, seed=seed
        ),
        "pond_222": pond_policy_factory(
            points["222"], slice_gb=config.slice_gb, seed=seed + 1
        ),
        "static_15pct": static_policy_factory(
            fraction=static_fraction, seed=seed + 2
        ),
    }
    if mode == "online":
        # Trained once here; the models ship to every shard worker with the
        # factory, so all shards decide from identical model state.
        factories["prediction"] = prediction_policy_factory(
            seed=seed, policy_seed=seed + 3
        )

    savings: Dict[str, List[PoolSavings]] = {}
    mispredictions: Dict[str, float] = {}
    online_stats: Optional[Dict[str, OnlineControlStats]] = (
        {} if online is not None else None
    )
    if n_shards > 1 or online is not None:
        fleet_kwargs = dict(
            max_workers=max_workers, stream_chunk_size=stream_chunk_size
        )

        def topology_for(size: int) -> Optional[PoolTopology]:
            if pool_scope != "fleet":
                return None
            return PoolTopology.spanning(
                [n_servers] * n_shards, cfg.server_config.sockets, size
            )

        base_fleet = FleetSimulator.sharded(n_shards, cfg, **fleet_kwargs)
        # Streaming mode regenerates shard traces lazily per replay; the
        # materialised mode pregenerates them once and reuses them.
        fleet_traces = None if stream_chunk_size is not None \
            else base_fleet.generate_traces()
        if provisioning == "capacity":
            # One fleet for the whole grid: capacity_search takes the pool
            # size (or spanning topology) per call and memoises the pool-
            # and policy-independent work (rejection budget, no-pool
            # baseline search) across cells; its probe-pool session is
            # likewise reused across every cell of the grid and released
            # when the grid is done (even on failure).
            with base_fleet:
                for label, factory in factories.items():  # repro: noqa DET007 -- policy grid dict is built in fixed literal order
                    savings[label] = []
                    for size in usable_sizes:
                        search = base_fleet.capacity_search(
                            factory, traces=fleet_traces,
                            pool_size_sockets=(
                                size if pool_scope == "cluster" else None
                            ),
                            pool_topology=topology_for(size),
                        )
                        savings[label].append(search.savings)
                        mispredictions[label] = (
                            search.policy_stats.misprediction_percent
                        )
        else:
            # The no-pooling baseline is pool-size- and policy-independent:
            # replay it once per shard and reuse it across the whole grid.
            # Per-cell fleets are closed deterministically so their
            # persistent shard pools never outlive the cell.
            with base_fleet:
                baselines = base_fleet.compute_baselines(fleet_traces)
            for label, factory in factories.items():  # repro: noqa DET007 -- policy grid dict is built in fixed literal order
                savings[label] = []
                for size in usable_sizes:
                    with FleetSimulator.sharded(
                        n_shards, cfg,
                        pool_size_sockets=(
                            size if pool_scope == "cluster" else 0
                        ),
                        pool_topology=topology_for(size),
                        **fleet_kwargs,
                    ) as fleet:
                        fleet_result = fleet.run(
                            factory, traces=fleet_traces, baselines=baselines,
                            online=online,
                        )
                    savings[label].append(fleet_result.savings)
                    mispredictions[label] = (
                        fleet_result.policy_stats.misprediction_percent
                    )
                    if online_stats is not None:
                        online_stats.setdefault(
                            label, OnlineControlStats()
                        ).add(fleet_result.online_stats)
    else:
        trace = TraceGenerator(cfg).generate_bulk()
        dimensioner = PoolDimensioner(n_servers=n_servers)
        for label, factory in factories.items():
            policy = factory(0)
            if provisioning == "capacity":
                savings[label] = [
                    dimensioner.evaluate_capacity_search(trace, size, policy)
                    for size in usable_sizes
                ]
            else:
                savings[label] = dimensioner.sweep_pool_sizes(
                    trace, usable_sizes, policy
                )
            mispredictions[label] = policy.stats.misprediction_percent

    return EndToEndStudy(
        pool_sizes=list(usable_sizes),
        savings=savings,
        misprediction_percent=mispredictions,
        online_stats=online_stats,
    )


def format_end_to_end_table(study: EndToEndStudy) -> str:
    """Text table matching the Figure 21 presentation."""
    lines = [
        "Figure 21 -- required overall DRAM [%] vs pool size",
        "policy \\ sockets    " + " ".join(f"{s:>7d}" for s in study.pool_sizes),
    ]
    for policy in study.savings:
        row = [f"{policy:>18} "]
        for size in study.pool_sizes:
            row.append(f"{study.required_dram_percent(policy, size):>7.1f}")
        lines.append(" ".join(row))
    lines.append("")
    for policy, rate in study.misprediction_percent.items():  # repro: noqa DET007 -- keyed in the study's fixed policy order
        lines.append(f"  {policy}: {rate:.2f}% scheduling mispredictions")
    if study.online_stats:
        lines.append("")
        for policy, stats in study.online_stats.items():  # repro: noqa DET007 -- keyed in the study's fixed policy order
            lines.append(
                f"  {policy}: {stats.n_mitigations} mitigations "
                f"({stats.migrated_gb:.0f} GB pool->local, "
                f"{stats.mean_mitigation_s:.2f} s each, "
                f"{stats.n_failed_mitigations} deferred)"
            )
    return "\n".join(lines)

"""Figure 21: end-to-end DRAM savings under performance constraints.

The end-to-end simulation evaluates, per pool size, the DRAM required when
VM memory is split between local and pool DRAM by:

* **Pond** at the operating point its combined model chooses under the
  configured PDM/TP (for both the 182 % and 222 % latency scenarios -- the
  higher latency makes the insensitivity model more conservative and thus
  saves less), and
* the **static** strawman that puts 15 % of every VM's memory on the pool.

The scheduling-misprediction rate of every policy is also tracked to verify
the TP constraint holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.pool import PoolDimensioner, PoolSavings
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator
from repro.core.config import PondConfig
from repro.core.policies import PondTracePolicy, StaticFractionPolicy
from repro.core.prediction.combined import CombinedOperatingPoint
from repro.workloads.sensitivity import SCENARIO_182, SCENARIO_222

__all__ = ["EndToEndStudy", "run_end_to_end_study", "format_end_to_end_table"]

DEFAULT_POOL_SIZES = (2, 8, 16, 32, 64)

#: Default operating points used when the caller does not supply solved ones.
#: They match the paper's Figure 20 outcome at a ~2 % misprediction target:
#: the 182 % scenario can place more VMs fully on the pool than the 222 % one.
DEFAULT_OPERATING_POINTS: Dict[str, CombinedOperatingPoint] = {
    "182": CombinedOperatingPoint(fp_percent=1.5, op_percent=2.0,
                                  li_percent=30.0, um_percent=22.0),
    "222": CombinedOperatingPoint(fp_percent=1.5, op_percent=2.0,
                                  li_percent=18.0, um_percent=22.0),
}


@dataclass
class EndToEndStudy:
    """Required-DRAM percentages per policy and pool size (Figure 21)."""

    pool_sizes: List[int]
    #: policy label -> list of PoolSavings aligned with ``pool_sizes``.
    savings: Dict[str, List[PoolSavings]]
    #: policy label -> scheduling misprediction percent observed.
    misprediction_percent: Dict[str, float]

    def required_dram_percent(self, policy: str, pool_size: int) -> float:
        for entry in self.savings[policy]:
            if entry.pool_size_sockets == pool_size:
                return entry.required_dram_percent
        raise KeyError(f"no entry for policy {policy!r} at pool size {pool_size}")

    def savings_percent(self, policy: str, pool_size: int) -> float:
        return 100.0 - self.required_dram_percent(policy, pool_size)


def run_end_to_end_study(
    config: Optional[PondConfig] = None,
    n_servers: int = 32,
    duration_days: float = 3.0,
    target_utilization: float = 0.85,
    pool_sizes: Sequence[int] = DEFAULT_POOL_SIZES,
    operating_points: Optional[Dict[str, CombinedOperatingPoint]] = None,
    static_fraction: float = 0.15,
    seed: int = 61,
) -> EndToEndStudy:
    """Run the Figure 21 sweep on one synthetic cluster trace."""
    config = config or PondConfig()
    points = operating_points or DEFAULT_OPERATING_POINTS
    cfg = TraceGenConfig(
        cluster_id="end-to-end",
        n_servers=n_servers,
        duration_days=duration_days,
        target_core_utilization=target_utilization,
        seed=seed,
    )
    trace = TraceGenerator(cfg).generate()
    dimensioner = PoolDimensioner(n_servers=n_servers)
    usable_sizes = [s for s in pool_sizes if s <= n_servers * cfg.server_config.sockets]

    savings: Dict[str, List[PoolSavings]] = {}
    mispredictions: Dict[str, float] = {}

    policies = {
        "pond_182": PondTracePolicy(points["182"], slice_gb=config.slice_gb, seed=seed),
        "pond_222": PondTracePolicy(points["222"], slice_gb=config.slice_gb, seed=seed + 1),
        "static_15pct": StaticFractionPolicy(fraction=static_fraction, seed=seed + 2),
    }
    for label, policy in policies.items():
        savings[label] = dimensioner.sweep_pool_sizes(trace, usable_sizes, policy)
        mispredictions[label] = policy.stats.misprediction_percent

    return EndToEndStudy(
        pool_sizes=list(usable_sizes),
        savings=savings,
        misprediction_percent=mispredictions,
    )


def format_end_to_end_table(study: EndToEndStudy) -> str:
    """Text table matching the Figure 21 presentation."""
    lines = [
        "Figure 21 -- required overall DRAM [%] vs pool size",
        "policy \\ sockets    " + " ".join(f"{s:>7d}" for s in study.pool_sizes),
    ]
    for policy in study.savings:
        row = [f"{policy:>18} "]
        for size in study.pool_sizes:
            row.append(f"{study.required_dram_percent(policy, size):>7.1f}")
        lines.append(" ".join(row))
    lines.append("")
    for policy, rate in study.misprediction_percent.items():
        lines.append(f"  {policy}: {rate:.2f}% scheduling mispredictions")
    return "\n".join(lines)

"""Figure 17: the latency-insensitivity model vs counter heuristics.

The RandomForest over all TMA counters is compared against threshold
heuristics on the memory-bound and DRAM-latency-bound counters.  The figure
sweeps the fraction of workloads labelled insensitive against the resulting
false-positive rate (insensitive labels given to workloads that actually
exceed the PDM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.prediction.latency_model import (
    DramBoundHeuristic,
    LatencyInsensitivityModel,
    MemoryBoundHeuristic,
    TradeoffCurve,
)
from repro.ml.model_selection import train_test_split
from repro.workloads.catalog import WorkloadCatalog, build_catalog
from repro.workloads.generator import PMUFeatureGenerator
from repro.workloads.sensitivity import LatencyScenario, SCENARIO_182

__all__ = ["LatencyModelStudy", "run_latency_model_study", "format_latency_model_table"]


@dataclass
class LatencyModelStudy:
    """Trade-off curves of the three predictors plus headline numbers."""

    pdm_percent: float
    curves: Dict[str, TradeoffCurve]
    #: Insensitive share achievable at a 2 % false-positive budget, per predictor.
    insensitive_at_2pct_fp: Dict[str, float]


def run_latency_model_study(
    catalog: Optional[WorkloadCatalog] = None,
    scenario: LatencyScenario = SCENARIO_182,
    pdm_percent: float = 5.0,
    samples_per_workload: int = 3,
    test_size: float = 0.5,
    seed: int = 31,
) -> LatencyModelStudy:
    """Train the models on offline runs and evaluate their trade-off curves."""
    catalog = catalog or build_catalog()
    generator = PMUFeatureGenerator(seed=seed)
    training = generator.training_set(
        catalog, scenario, samples_per_workload=samples_per_workload
    )
    X_train, X_test, y_train, y_test = train_test_split(
        training.features, training.slowdowns, test_size=test_size, random_state=seed
    )

    forest = LatencyInsensitivityModel(pdm_percent=pdm_percent, random_state=seed)
    forest.fit(X_train, y_train)

    dram = DramBoundHeuristic(pdm_percent=pdm_percent)
    memory = MemoryBoundHeuristic(pdm_percent=pdm_percent)

    curves = {
        "RandomForest": forest.tradeoff_curve(X_test, y_test),
        "DRAM-bound": dram.tradeoff_curve(X_test, y_test),
        "Memory-bound": memory.tradeoff_curve(X_test, y_test),
    }
    at_2pct = {
        name: curve.max_insensitive_at_fp(2.0) for name, curve in curves.items()
    }
    return LatencyModelStudy(
        pdm_percent=pdm_percent,
        curves=curves,
        insensitive_at_2pct_fp=at_2pct,
    )


def format_latency_model_table(study: LatencyModelStudy) -> str:
    """Text summary matching the Figure 17 narrative."""
    lines = [
        f"Figure 17 -- latency insensitivity model (PDM = {study.pdm_percent:.0f}%)",
        f"{'predictor':>14} {'insensitive @ 2% FP':>21}",
    ]
    for name, value in study.insensitive_at_2pct_fp.items():  # repro: noqa DET007 -- keyed in the study's fixed predictor order
        lines.append(f"{name:>14} {value:>20.1f}%")
    lines.append("")
    lines.append("trade-off curves (insensitive% -> FP%):")
    for name, curve in study.curves.items():  # repro: noqa DET007 -- keyed in the study's fixed predictor order
        points = list(zip(curve.insensitive_percent, curve.false_positive_percent))
        sampled = points[:: max(1, len(points) // 6)]
        rendered = ", ".join(f"{x:.0f}%->{y:.1f}%" for x, y in sampled)
        lines.append(f"  {name}: {rendered}")
    return "\n".join(lines)

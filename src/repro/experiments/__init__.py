"""Experiment drivers: one module per paper table/figure.

Every driver exposes a ``run_*`` function returning a plain data object with
the same rows/series the paper reports, plus a ``format_*`` helper producing a
text table.  ``run_all_experiments`` executes the full set (with a ``quick``
flag for CI-sized runs) and is used by EXPERIMENTS.md and the benchmark
harness.

| Driver                                   | Paper reference            |
|------------------------------------------|----------------------------|
| :mod:`repro.experiments.fig2_stranding`  | Figure 2a / 2b             |
| :mod:`repro.experiments.fig3_pool_size`  | Figure 3                   |
| :mod:`repro.experiments.fig4_5_sensitivity` | Figures 4 and 5         |
| :mod:`repro.experiments.untouched_distribution` | Section 3.2          |
| :mod:`repro.experiments.fig7_8_latency`  | Figures 7 and 8            |
| :mod:`repro.experiments.fig15_znuma`     | Figure 15                  |
| :mod:`repro.experiments.fig16_spill`     | Figure 16                  |
| :mod:`repro.experiments.fig17_latency_model` | Figure 17              |
| :mod:`repro.experiments.fig18_19_untouched`  | Figures 18 and 19      |
| :mod:`repro.experiments.fig20_combined`  | Figure 20                  |
| :mod:`repro.experiments.fig21_end_to_end` | Figure 21                 |
| :mod:`repro.experiments.offlining`       | Finding 10                 |
| :mod:`repro.experiments.fig_failure_domains` | Section 4.1 (EMC failure domains) |
"""

from repro.experiments.runner import run_all_experiments

__all__ = ["run_all_experiments"]

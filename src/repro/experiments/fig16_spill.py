"""Figure 16: slowdown under different pool allocations (zNUMA sizing study).

Each workload is run with 7 zNUMA sizes expressed as the percentage of its
memory footprint that spills onto the pool: 0 % (correct prediction) plus
10/20/40/60/75/100 %.  With a correct prediction the slowdown distribution
matches all-local (run-to-run noise only); as soon as the working set spills,
slowdowns appear and grow with the spilled fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.workloads.catalog import WorkloadCatalog, build_catalog
from repro.workloads.sensitivity import (
    LatencyScenario,
    SCENARIO_182,
    slowdown_under_spill,
)

__all__ = ["SpillStudy", "run_spill_study", "format_spill_table"]

#: The paper's seven pool-allocation settings (percent of footprint spilled),
#: plus the all-local baseline handled separately.
DEFAULT_SPILL_PERCENTS = (0.0, 10.0, 20.0, 40.0, 60.0, 75.0, 100.0)


@dataclass
class SpillStudy:
    """Slowdown distributions per spilled-percentage setting."""

    spill_percents: List[float]
    #: spill percent -> slowdown array over the catalog workloads.
    slowdowns: Dict[float, np.ndarray]
    all_local_noise: np.ndarray

    def distribution_stats(self, spill_percent: float) -> Dict[str, float]:
        values = self.slowdowns[spill_percent]
        return {
            "median": float(np.median(values)),
            "p90": float(np.percentile(values, 90)),
            "max": float(values.max()),
        }


def run_spill_study(
    catalog: Optional[WorkloadCatalog] = None,
    scenario: LatencyScenario = SCENARIO_182,
    spill_percents: Sequence[float] = DEFAULT_SPILL_PERCENTS,
    noise_std_percent: float = 0.4,
    seed: int = 21,
) -> SpillStudy:
    """Evaluate slowdown for every (workload, zNUMA size) combination."""
    catalog = catalog or build_catalog()
    rng = np.random.default_rng(seed)
    slowdowns: Dict[float, np.ndarray] = {}
    for percent in spill_percents:
        values = [
            slowdown_under_spill(
                w, scenario, percent / 100.0,
                noise_rng=rng, noise_std_percent=noise_std_percent,
            )
            for w in catalog
        ]
        slowdowns[percent] = np.array(values)
    # The all-local baseline only has run-to-run noise.
    all_local = np.abs(rng.normal(0.0, noise_std_percent, size=len(catalog)))
    return SpillStudy(
        spill_percents=list(spill_percents),
        slowdowns=slowdowns,
        all_local_noise=all_local,
    )


def format_spill_table(study: SpillStudy) -> str:
    """Text table matching the Figure 16 violin-plot summary."""
    lines = [
        "Figure 16 -- slowdown vs pool memory (spilled working set)",
        f"{'pool memory [%]':>16} {'median [%]':>11} {'p90 [%]':>9} {'max [%]':>9}",
        f"{'all local':>16} {np.median(study.all_local_noise):>11.1f} "
        f"{np.percentile(study.all_local_noise, 90):>9.1f} "
        f"{study.all_local_noise.max():>9.1f}",
    ]
    for percent in study.spill_percents:
        stats = study.distribution_stats(percent)
        lines.append(
            f"{percent:>16.0f} {stats['median']:>11.1f} {stats['p90']:>9.1f} "
            f"{stats['max']:>9.1f}"
        )
    return "\n".join(lines)

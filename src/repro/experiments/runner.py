"""Run every paper experiment and collect the formatted outputs.

``run_all_experiments(quick=True)`` uses reduced problem sizes so the full
sweep completes in a couple of minutes (used by tests and the EXPERIMENTS.md
regeneration); ``quick=False`` uses the paper-scale defaults of each driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments import fig2_stranding
from repro.experiments import fig3_pool_size
from repro.experiments import fig4_5_sensitivity
from repro.experiments import fig7_8_latency
from repro.experiments import fig15_znuma
from repro.experiments import fig16_spill
from repro.experiments import fig17_latency_model
from repro.experiments import fig18_19_untouched
from repro.experiments import fig20_combined
from repro.experiments import fig21_end_to_end
from repro.experiments import fig_failure_domains
from repro.experiments import offlining
from repro.experiments import untouched_distribution
from repro.workloads.catalog import build_catalog
from repro.workloads.sensitivity import SCENARIO_182, SCENARIO_222

__all__ = ["ExperimentReport", "run_all_experiments"]


@dataclass
class ExperimentReport:
    """Raw result objects plus formatted text, keyed by experiment id."""

    results: Dict[str, object] = field(default_factory=dict)
    formatted: Dict[str, str] = field(default_factory=dict)

    def text(self) -> str:
        blocks = [self.formatted[key] for key in sorted(self.formatted)]
        return "\n\n".join(blocks)


def run_all_experiments(quick: bool = True, seed: int = 7) -> ExperimentReport:
    """Execute every figure driver and collect results.

    Parameters
    ----------
    quick:
        Use reduced cluster/model sizes (minutes instead of hours).
    seed:
        Base seed shared across drivers for reproducibility.
    """
    report = ExperimentReport()
    catalog = build_catalog(seed=seed)

    # Figure 2 -- stranding.
    stranding = fig2_stranding.run_stranding_study(
        n_clusters=6 if quick else 20,
        n_servers=12 if quick else 40,
        duration_days=2.0 if quick else 10.0,
        seed=seed,
    )
    report.results["fig2_stranding"] = stranding
    report.formatted["fig2_stranding"] = fig2_stranding.format_stranding_table(stranding)

    # Figure 3 -- pool size sweep.
    pool_study = fig3_pool_size.run_pool_size_study(
        n_servers=16 if quick else 32,
        duration_days=1.5 if quick else 5.0,
        seed=seed,
    )
    report.results["fig3_pool_size"] = pool_study
    report.formatted["fig3_pool_size"] = fig3_pool_size.format_pool_size_table(pool_study)

    # Figures 4/5 -- workload sensitivity.
    sensitivity = fig4_5_sensitivity.run_sensitivity_study(catalog=catalog)
    report.results["fig4_5_sensitivity"] = sensitivity
    report.formatted["fig4_5_sensitivity"] = (
        fig4_5_sensitivity.format_sensitivity_summary(sensitivity)
    )

    # Section 3.2 -- untouched memory distribution.
    untouched_dist = untouched_distribution.run_untouched_distribution(
        n_clusters=5 if quick else 20,
        vms_per_cluster=300 if quick else 2000,
        seed=seed,
    )
    report.results["untouched_distribution"] = untouched_dist
    report.formatted["untouched_distribution"] = (
        untouched_distribution.format_untouched_distribution(untouched_dist)
    )

    # Figures 7/8 -- latency.
    latency = fig7_8_latency.run_latency_study()
    report.results["fig7_8_latency"] = latency
    report.formatted["fig7_8_latency"] = fig7_8_latency.format_latency_table(latency)

    # Figure 15 -- zNUMA.
    znuma = fig15_znuma.run_znuma_study()
    report.results["fig15_znuma"] = znuma
    report.formatted["fig15_znuma"] = fig15_znuma.format_znuma_table(znuma)

    # Figure 16 -- spill.
    spill = fig16_spill.run_spill_study(catalog=catalog)
    report.results["fig16_spill"] = spill
    report.formatted["fig16_spill"] = fig16_spill.format_spill_table(spill)

    # Figure 17 -- latency insensitivity model.
    latency_model = fig17_latency_model.run_latency_model_study(
        catalog=catalog,
        samples_per_workload=2 if quick else 3,
        seed=seed,
    )
    report.results["fig17_latency_model"] = latency_model
    report.formatted["fig17_latency_model"] = (
        fig17_latency_model.format_latency_model_table(latency_model)
    )

    # Figures 18/19 -- untouched memory model.
    untouched_dataset = fig18_19_untouched.build_untouched_dataset(
        n_vms=800 if quick else 3000, seed=seed
    )
    untouched_model = fig18_19_untouched.run_untouched_model_study(
        dataset=untouched_dataset,
        n_estimators=30 if quick else 80,
        seed=seed,
    )
    report.results["fig18_untouched_model"] = untouched_model
    report.formatted["fig18_untouched_model"] = (
        fig18_19_untouched.format_untouched_model_table(untouched_model)
    )
    timeline = fig18_19_untouched.run_production_timeline(
        n_days=6 if quick else 20,
        vms_per_day=120 if quick else 400,
        seed=seed,
    )
    report.results["fig19_production_timeline"] = timeline
    report.formatted["fig19_production_timeline"] = "\n".join([
        "Figure 19 -- untouched memory model in production",
        *(
            f"  day {int(day)}: untouched {avg:.1f}%, overpredictions {op:.1f}% "
            f"(target {timeline.op_target_percent:.0f}%)"
            for day, avg, op in zip(
                timeline.days, timeline.average_untouched_percent,
                timeline.overprediction_percent,
            )
        ),
    ])

    # Figure 20 -- combined model.
    combined_182 = fig20_combined.run_combined_model_study(
        scenario=SCENARIO_182, catalog=catalog, seed=seed
    )
    combined_222 = fig20_combined.run_combined_model_study(
        scenario=SCENARIO_222, catalog=catalog, seed=seed
    )
    report.results["fig20_combined"] = [combined_182, combined_222]
    report.formatted["fig20_combined"] = fig20_combined.format_combined_table(
        [combined_182, combined_222]
    )

    # Figure 21 -- end-to-end savings.
    end_to_end = fig21_end_to_end.run_end_to_end_study(
        n_servers=16 if quick else 48,
        duration_days=1.5 if quick else 5.0,
        seed=seed,
    )
    report.results["fig21_end_to_end"] = end_to_end
    report.formatted["fig21_end_to_end"] = fig21_end_to_end.format_end_to_end_table(end_to_end)

    # Section 4.1 -- EMC failure domains and survivability.
    failure_domains = fig_failure_domains.run_failure_domain_study(
        duration_days=0.6 if quick else 2.0,
        pool_sizes=(8,) if quick else (8, 16),
        mtbf_hours=(4.0,) if quick else (4.0, 12.0),
        seed=seed,
    )
    report.results["failure_domains"] = failure_domains
    report.formatted["failure_domains"] = (
        fig_failure_domains.format_failure_domain_table(failure_domains)
    )

    # Finding 10 -- offlining speeds.
    offline_study = offlining.run_offlining_study(
        n_vm_cycles=150 if quick else 1000, seed=seed
    )
    report.results["offlining"] = offline_study
    report.formatted["offlining"] = offlining.format_offlining_table(offline_study)

    return report


def main() -> None:  # pragma: no cover - convenience CLI
    report = run_all_experiments(quick=True)
    print(report.text())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Figure 3: required DRAM vs pool size for fixed pool-memory percentages.

With a fixed 10 %, 30 %, or 50 % of every VM's memory allocated on the pool,
the required overall DRAM (relative to no pooling) falls as the pool spans
more sockets, with diminishing returns beyond 16-32 sockets.

Runs on the batch policy engine: the fixed-fraction policies expose
``decide_batch``, so every dimensioning replay consumes a precomputed pool
allocation array instead of calling back into Python per VM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cluster.pool import PoolDimensioner, PoolSavings
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator

__all__ = ["PoolSizeStudy", "run_pool_size_study", "format_pool_size_table"]

DEFAULT_POOL_SIZES = (2, 8, 16, 32, 64)
DEFAULT_FRACTIONS = (0.10, 0.30, 0.50)


@dataclass
class PoolSizeStudy:
    """Required-DRAM percentages per (pool fraction, pool size)."""

    pool_sizes: List[int]
    fractions: List[float]
    #: fraction -> list of PoolSavings aligned with ``pool_sizes``.
    savings: Dict[float, List[PoolSavings]]

    def required_dram_percent(self, fraction: float, pool_size: int) -> float:
        row = self.savings[fraction]
        for entry in row:
            if entry.pool_size_sockets == pool_size:
                return entry.required_dram_percent
        raise KeyError(f"no entry for pool size {pool_size}")


def run_pool_size_study(
    n_servers: int = 32,
    duration_days: float = 3.0,
    target_utilization: float = 0.85,
    pool_sizes: Sequence[int] = DEFAULT_POOL_SIZES,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    seed: int = 13,
) -> PoolSizeStudy:
    """Run the Figure 3 sweep on one synthetic cluster trace."""
    cfg = TraceGenConfig(
        cluster_id="pool-study",
        n_servers=n_servers,
        duration_days=duration_days,
        target_core_utilization=target_utilization,
        seed=seed,
    )
    trace = TraceGenerator(cfg).generate_bulk()
    dimensioner = PoolDimensioner(n_servers=n_servers)
    usable_sizes = [s for s in pool_sizes if s <= n_servers * cfg.server_config.sockets]
    savings = dimensioner.sweep_fixed_fractions(trace, usable_sizes, fractions)
    return PoolSizeStudy(
        pool_sizes=list(usable_sizes),
        fractions=list(fractions),
        savings=savings,
    )


def format_pool_size_table(study: PoolSizeStudy) -> str:
    """Text table matching the Figure 3 presentation."""
    header = "Figure 3 -- required overall DRAM [%] vs pool size"
    columns = "pool frac \\ sockets " + " ".join(f"{s:>7d}" for s in study.pool_sizes)
    lines = [header, columns]
    for fraction in study.fractions:
        row = [f"{int(round(fraction * 100)):>18d}% "]
        for size in study.pool_sizes:
            row.append(f"{study.required_dram_percent(fraction, size):>7.1f}")
        lines.append(" ".join(row))
    return "\n".join(lines)

"""Figures 4 and 5: workload slowdowns under emulated CXL latency.

Figure 4 shows per-workload slowdowns (158 workloads) under the 182 % and
222 % latency scenarios; Figure 5 shows the CDF of those slowdowns.  The
summary statistics the paper quotes in Section 3.3 (share of workloads below
1 %, below 5 %, above 25 % slowdown) are computed here as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.workloads.catalog import WorkloadCatalog, WorkloadClass, build_catalog
from repro.workloads.sensitivity import (
    LatencyScenario,
    SCENARIO_182,
    SCENARIO_222,
    noise_generator,
    slowdown_under_latency,
)

__all__ = [
    "SensitivityStudy",
    "run_sensitivity_study",
    "slowdown_cdf",
    "format_sensitivity_summary",
]


@dataclass
class SensitivityStudy:
    """Per-workload slowdowns for both latency scenarios."""

    workload_names: List[str]
    workload_classes: List[str]
    slowdowns_182: np.ndarray
    slowdowns_222: np.ndarray

    def bucket_fractions(self, scenario: str = "182") -> Dict[str, float]:
        """The Section 3.3 buckets: <1 %, 1-5 %, >25 % slowdown."""
        values = self.slowdowns_182 if scenario == "182" else self.slowdowns_222
        return {
            "below_1_percent": float((values < 1.0).mean()),
            "below_5_percent": float((values < 5.0).mean()),
            "above_25_percent": float((values > 25.0).mean()),
        }

    def class_summary(self, scenario: str = "182") -> Dict[str, Dict[str, float]]:
        """Per-class min/median/max slowdown (the Figure 4 grouping)."""
        values = self.slowdowns_182 if scenario == "182" else self.slowdowns_222
        classes = np.array(self.workload_classes)
        out: Dict[str, Dict[str, float]] = {}
        for cls in sorted(set(self.workload_classes)):
            mask = classes == cls
            sub = values[mask]
            out[cls] = {
                "min": float(sub.min()),
                "median": float(np.median(sub)),
                "max": float(sub.max()),
                "n": int(mask.sum()),
            }
        return out


def run_sensitivity_study(
    catalog: Optional[WorkloadCatalog] = None,
    scenario_a: LatencyScenario = SCENARIO_182,
    scenario_b: LatencyScenario = SCENARIO_222,
    seed: Optional[int] = 17,
) -> SensitivityStudy:
    """Measure every catalog workload under both latency scenarios."""
    catalog = catalog or build_catalog()
    rng = noise_generator(seed)
    names: List[str] = []
    classes: List[str] = []
    slow_a: List[float] = []
    slow_b: List[float] = []
    for workload in catalog:
        names.append(workload.name)
        classes.append(workload.workload_class.value)
        slow_a.append(slowdown_under_latency(workload, scenario_a, noise_rng=rng))
        slow_b.append(slowdown_under_latency(workload, scenario_b, noise_rng=rng))
    return SensitivityStudy(
        workload_names=names,
        workload_classes=classes,
        slowdowns_182=np.array(slow_a),
        slowdowns_222=np.array(slow_b),
    )


def slowdown_cdf(slowdowns: np.ndarray,
                 grid: Optional[np.ndarray] = None) -> Tuple[np.ndarray, np.ndarray]:
    """Figure 5: CDF of slowdowns evaluated on a percent grid."""
    slowdowns = np.asarray(slowdowns, dtype=float)
    if slowdowns.size == 0:
        raise ValueError("empty slowdown array")
    if grid is None:
        grid = np.linspace(0.0, max(100.0, float(slowdowns.max())), 201)
    cdf = np.array([(slowdowns <= x).mean() for x in grid])
    return grid, cdf


def format_sensitivity_summary(study: SensitivityStudy) -> str:
    """Text summary matching the Section 3.3 narrative."""
    lines = ["Figures 4/5 -- workload sensitivity to memory latency"]
    for label, scenario in (("182%", "182"), ("222%", "222")):
        buckets = study.bucket_fractions(scenario)
        lines.append(
            f"  at {label} latency: "
            f"{100 * buckets['below_1_percent']:.0f}% of workloads <1% slowdown, "
            f"{100 * buckets['below_5_percent']:.0f}% <5%, "
            f"{100 * buckets['above_25_percent']:.0f}% >25%"
        )
    lines.append(f"{'class':>16} {'min':>7} {'median':>8} {'max':>8}  (at 182%)")
    for cls, stats in study.class_summary("182").items():  # repro: noqa DET007 -- class_summary inserts keys in sorted(set(...)) order
        lines.append(
            f"{cls:>16} {stats['min']:>7.1f} {stats['median']:>8.1f} {stats['max']:>8.1f}"
        )
    return "\n".join(lines)

"""Figure 20: the combined prediction model (Eq.(1)) trade-off.

The combined model balances the latency-insensitivity model's false-positive
budget against the untouched-memory model's overprediction budget, maximising
the average share of DRAM that can be placed on pools for a given scheduling
misprediction target.  The figure sweeps that target and plots pool DRAM share
vs the resulting misprediction rate, for the 182 % and 222 % latency
scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.prediction.combined import CombinedModelOptimizer, CombinedOperatingPoint
from repro.experiments.fig17_latency_model import run_latency_model_study
from repro.experiments.fig18_19_untouched import (
    build_untouched_dataset,
    run_untouched_model_study,
)
from repro.workloads.catalog import WorkloadCatalog, build_catalog
from repro.workloads.sensitivity import LatencyScenario, SCENARIO_182, SCENARIO_222

__all__ = ["CombinedModelStudy", "run_combined_model_study", "format_combined_table"]


@dataclass
class CombinedModelStudy:
    """Figure 20 outputs for one latency scenario."""

    scenario_name: str
    error_budgets: np.ndarray
    pool_dram_percent: np.ndarray
    misprediction_percent: np.ndarray
    operating_point_at_2pct: CombinedOperatingPoint

    def pool_dram_at_misprediction(self, target_percent: float) -> float:
        """Largest pool-DRAM share whose misprediction rate is within the target."""
        mask = self.misprediction_percent <= target_percent + 1e-9
        if not mask.any():
            return 0.0
        return float(self.pool_dram_percent[mask].max())


def build_optimizer(
    catalog: Optional[WorkloadCatalog] = None,
    scenario: LatencyScenario = SCENARIO_182,
    pdm_percent: float = 5.0,
    seed: int = 51,
) -> CombinedModelOptimizer:
    """Construct the Eq.(1) optimiser from the two models' measured curves."""
    catalog = catalog or build_catalog()
    latency_study = run_latency_model_study(
        catalog=catalog, scenario=scenario, pdm_percent=pdm_percent, seed=seed
    )
    li_curve_obj = latency_study.curves["RandomForest"]
    li_curve = li_curve_obj.max_insensitive_at_fp

    untouched_study = run_untouched_model_study(
        dataset=build_untouched_dataset(n_vms=1200, seed=seed), seed=seed
    )
    um_avg, um_op = untouched_study.gbm_curve
    um_curve = CombinedModelOptimizer.curve_from_points(um_op, um_avg)

    return CombinedModelOptimizer(li_curve=li_curve, um_curve=um_curve)


def run_combined_model_study(
    scenario: LatencyScenario = SCENARIO_182,
    catalog: Optional[WorkloadCatalog] = None,
    pdm_percent: float = 5.0,
    error_budgets: Sequence[float] = tuple(np.linspace(0.0, 10.0, 21)),
    seed: int = 51,
) -> CombinedModelStudy:
    """Sweep the error budget and report the Figure 20 curve."""
    optimizer = build_optimizer(
        catalog=catalog, scenario=scenario, pdm_percent=pdm_percent, seed=seed
    )
    pool, mispred = optimizer.sweep(error_budgets)
    point = optimizer.solve(2.0)
    return CombinedModelStudy(
        scenario_name=scenario.name,
        error_budgets=np.asarray(error_budgets, dtype=float),
        pool_dram_percent=pool,
        misprediction_percent=mispred,
        operating_point_at_2pct=point,
    )


def format_combined_table(studies: List[CombinedModelStudy]) -> str:
    """Text summary matching the Figure 20 narrative."""
    lines = ["Figure 20 -- combined model: pool DRAM vs scheduling mispredictions"]
    for study in studies:
        lines.append(f"  scenario {study.scenario_name}:")
        for budget, pool, mispred in zip(
            study.error_budgets, study.pool_dram_percent, study.misprediction_percent
        ):
            lines.append(
                f"    error budget {budget:>5.1f}% -> pool DRAM {pool:>5.1f}%, "
                f"mispredictions {mispred:>4.2f}%"
            )
        lines.append(
            f"    at a 2% misprediction target: "
            f"{study.pool_dram_at_misprediction(2.0):.1f}% of DRAM on pools"
        )
    return "\n".join(lines)

"""Figure 15: effectiveness of zNUMA at containing memory accesses.

Four latency-sensitive internal workloads are given a local vNUMA node large
enough for their working set plus a zNUMA node holding the remaining (unused)
memory.  Access-bit scans then show that only a tiny fraction of memory
accesses (0.06-0.38 % in the paper) land on the zNUMA node -- mostly guest
kernel metadata that Linux allocates on every node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cxl.latency import pond_pool_latency_ns
from repro.hypervisor.guest_os import GuestMemoryAllocator
from repro.hypervisor.numa import build_vm_topology

__all__ = ["ZNUMAWorkloadResult", "run_znuma_study", "format_znuma_table"]

#: The four internal workloads of Figure 15 with representative VM shapes:
#: (vm_memory_gb, working_set_gb, kernel metadata access weight).
INTERNAL_WORKLOADS: Dict[str, Dict[str, float]] = {
    "video": {"vm_memory_gb": 64.0, "working_set_gb": 36.0, "kernel_weight": 1.2},
    "database": {"vm_memory_gb": 128.0, "working_set_gb": 80.0, "kernel_weight": 0.4},
    "kv_store": {"vm_memory_gb": 64.0, "working_set_gb": 40.0, "kernel_weight": 0.7},
    "analytics": {"vm_memory_gb": 96.0, "working_set_gb": 52.0, "kernel_weight": 1.8},
}


@dataclass(frozen=True)
class ZNUMAWorkloadResult:
    """Traffic split of one workload with a correctly sized zNUMA node."""

    workload: str
    vm_memory_gb: float
    local_gb: float
    znuma_gb: float
    znuma_traffic_percent: float


def run_znuma_study(
    pool_sockets: int = 16,
    cores: int = 16,
    workloads: Optional[Dict[str, Dict[str, float]]] = None,
) -> List[ZNUMAWorkloadResult]:
    """Run the Figure 15 experiment with correct untouched-memory predictions.

    The local vNUMA node is sized to the workload's working set (rounded up to
    the next GB); the remaining memory is on the zNUMA node.
    """
    workloads = workloads or INTERNAL_WORKLOADS
    pool_ns = pond_pool_latency_ns(pool_sockets)
    results: List[ZNUMAWorkloadResult] = []
    for name, params in workloads.items():  # repro: noqa DET007 -- INTERNAL_WORKLOADS is a module-level literal with fixed insertion order
        vm_memory = float(params["vm_memory_gb"])
        working_set = float(params["working_set_gb"])
        if working_set > vm_memory:
            raise ValueError(f"workload {name!r}: working set exceeds VM memory")
        # Correct prediction: local node covers the working set (GB-aligned up).
        local_gb = float(min(vm_memory, float(int(working_set) + 1)))
        znuma_gb = vm_memory - local_gb
        topology = build_vm_topology(
            cores=cores,
            local_memory_gb=local_gb,
            pool_memory_gb=znuma_gb,
            pool_latency_ns=pool_ns,
        )
        allocator = GuestMemoryAllocator(topology)
        profile = allocator.run_workload(
            working_set_gb=working_set,
            kernel_access_weight=float(params.get("kernel_weight", 1.0)),
        )
        traffic = profile.znuma_traffic_fraction(topology) * 100.0
        results.append(
            ZNUMAWorkloadResult(
                workload=name,
                vm_memory_gb=vm_memory,
                local_gb=local_gb,
                znuma_gb=znuma_gb,
                znuma_traffic_percent=traffic,
            )
        )
    return results


def format_znuma_table(results: List[ZNUMAWorkloadResult]) -> str:
    """Text table matching Figure 15's "traffic to zNUMA" column."""
    lines = [
        "Figure 15 -- traffic to the zNUMA node (correct prediction)",
        f"{'workload':>12} {'VM mem [GB]':>12} {'zNUMA [GB]':>11} {'traffic to zNUMA':>17}",
    ]
    for r in results:
        lines.append(
            f"{r.workload:>12} {r.vm_memory_gb:>12.0f} {r.znuma_gb:>11.0f} "
            f"{r.znuma_traffic_percent:>16.2f}%"
        )
    return "\n".join(lines)

"""Section 3.2: the distribution of untouched memory across VMs and clusters.

The paper reports that roughly 50 % of VMs touch less than half of their
rented memory (the 50th percentile of untouched memory is ~50 %), that the
behaviour varies widely across clusters, and that even the cluster with the
least untouched memory still has over half of its VMs with more than 20 %
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.workloads.memory_behavior import UntouchedMemoryModel

__all__ = ["UntouchedDistributionStudy", "run_untouched_distribution", "format_untouched_distribution"]


@dataclass
class UntouchedDistributionStudy:
    """Untouched-memory distributions per cluster and fleet-wide."""

    #: cluster id -> untouched fractions of its VMs.
    per_cluster: Dict[str, np.ndarray]

    @property
    def fleet_values(self) -> np.ndarray:
        return np.concatenate(list(self.per_cluster.values()))

    def fleet_percentile(self, percentile: float) -> float:
        return float(np.percentile(self.fleet_values, percentile)) * 100.0

    def cluster_median(self, cluster: str) -> float:
        return float(np.median(self.per_cluster[cluster])) * 100.0

    def min_cluster_share_above(self, threshold_fraction: float) -> float:
        """Across clusters, the minimum share of VMs above the threshold."""
        shares = [  # repro: noqa DET007 -- feeds min() below, which is iteration-order insensitive
            float((values > threshold_fraction).mean())
            for values in self.per_cluster.values()
        ]
        return min(shares) * 100.0


def run_untouched_distribution(
    n_clusters: int = 10,
    vms_per_cluster: int = 800,
    seed: int = 71,
) -> UntouchedDistributionStudy:
    """Sample per-cluster VM populations from the generative behaviour model."""
    if n_clusters < 1 or vms_per_cluster < 1:
        raise ValueError("cluster and VM counts must be positive")
    per_cluster: Dict[str, np.ndarray] = {}
    for i in range(n_clusters):
        model = UntouchedMemoryModel(n_customers=80, seed=seed + i)
        rng = np.random.default_rng(seed + 1000 + i)
        values = np.array([
            model.sample_untouched_fraction(model.sample_customer(rng), rng=rng)
            for _ in range(vms_per_cluster)
        ])
        per_cluster[f"cluster-{i:02d}"] = values
    return UntouchedDistributionStudy(per_cluster=per_cluster)


def format_untouched_distribution(study: UntouchedDistributionStudy) -> str:
    """Text summary matching the Section 3.2 narrative."""
    lines = [
        "Section 3.2 -- untouched memory across VMs",
        f"  fleet P50 untouched memory: {study.fleet_percentile(50):.0f}%",
        f"  fleet P25 / P75: {study.fleet_percentile(25):.0f}% / {study.fleet_percentile(75):.0f}%",
        f"  minimum per-cluster share of VMs with >20% untouched: "
        f"{study.min_cluster_share_above(0.20):.0f}%",
    ]
    for cluster in sorted(study.per_cluster):
        lines.append(f"  {cluster}: median untouched {study.cluster_median(cluster):.0f}%")
    return "\n".join(lines)

"""Failure-domain survivability study: EMC faults vs pod size and scope.

Pond's pool groups are hardware failure domains -- an external memory
controller (EMC) that dies takes its whole pool slice with it (paper
Section 4.1; ROADMAP "EMC-failure injection").  This family measures what
the paper's provisioning story presumes: that the fleet degrades
*gracefully* when a group fails.  The sweep crosses

* **pod size** -- ``pool_size_sockets``, i.e. how many servers share one
  EMC group: bigger pods save more DRAM but widen the blast radius;
* **pool scope** -- per-shard groups (the paper's per-cluster deployment)
  vs spanning groups that cross cluster seams (the rack-scale regime of
  Octopus-style sparse topologies), replayed through the same merged
  cross-shard pump;
* **failure rate** -- seeded mean time between EMC failures, with a fixed
  repair delay.

Every cell replays the same traces through
:func:`repro.cluster.pool_topology.replay_crossshard` with a seeded
:class:`~repro.cluster.faults.FaultSchedule` and reports the merged
:class:`~repro.cluster.faults.FaultImpactStats`: the survivability curve
is ``survival_rate`` (affected VMs not killed) against failure rate, per
pod size and scope; blast radius and stranded GB quantify the
per-failure cost the pod-size lever trades against DRAM savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster.faults import FaultImpactStats, FaultSchedule
from repro.cluster.pool_topology import PoolTopology, replay_crossshard
from repro.cluster.server import ServerConfig
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator
from repro.core.policies import StaticFractionPolicy

__all__ = [
    "FailureDomainRow",
    "FailureDomainStudy",
    "run_failure_domain_study",
    "format_failure_domain_table",
]

DEFAULT_POOL_SIZES = (8, 16)
DEFAULT_MTBF_HOURS = (4.0, 12.0)
SCOPES = ("per_shard", "spanning")


@dataclass(frozen=True)
class FailureDomainRow:
    """One cell of the sweep: a (pod size, scope, failure rate) replay."""

    pool_size_sockets: int
    scope: str
    mtbf_hours: float
    n_groups: int
    n_fail_events: int
    n_repair_events: int
    vms_affected: int
    vms_migrated_local: int
    vms_live_migrated: int
    vms_killed: int
    survival_rate: float
    stranded_gb: float
    killed_gb: float
    mean_recovery_latency_s: float
    #: Mean VMs pushed onto the degradation ladder per failing group.
    mean_blast_radius: float


@dataclass
class FailureDomainStudy:
    """Survivability curves across pod size x scope x failure rate."""

    rows: List[FailureDomainRow]
    n_shards: int
    n_servers_per_shard: int
    duration_days: float
    repair_delay_s: float

    def row(self, pool_size: int, scope: str,
            mtbf_hours: float) -> FailureDomainRow:
        for entry in self.rows:
            if (entry.pool_size_sockets == pool_size
                    and entry.scope == scope
                    and entry.mtbf_hours == mtbf_hours):
                return entry
        raise KeyError(
            f"no row for pool_size={pool_size} scope={scope!r} "
            f"mtbf={mtbf_hours}"
        )

    def survival_curve(self, pool_size: int,
                       scope: str) -> List[tuple]:
        """``(mtbf_hours, survival_rate)`` points, fastest failures first."""
        points = [
            (entry.mtbf_hours, entry.survival_rate)
            for entry in self.rows
            if entry.pool_size_sockets == pool_size and entry.scope == scope
        ]
        return sorted(points)


def run_failure_domain_study(
    n_shards: int = 2,
    n_servers: int = 10,
    duration_days: float = 1.0,
    pool_sizes: Sequence[int] = DEFAULT_POOL_SIZES,
    mtbf_hours: Sequence[float] = DEFAULT_MTBF_HOURS,
    repair_delay_s: float = 2.0 * 3600.0,
    pool_capacity_gb_per_group: float = 500.0,
    static_fraction: float = 0.6,
    dram_per_socket_gb: float = 48.0,
    migration_retry_budget: int = 2,
    seed: int = 83,
    server_config: Optional[ServerConfig] = None,
) -> FailureDomainStudy:
    """Run the failure-domain sweep.

    Servers are deliberately DRAM-tight (``dram_per_socket_gb``) and the
    policy pool-heavy (``static_fraction``), so a group failure cannot
    always be absorbed by the first ladder rung and the sweep exercises
    live migration and kills -- the regime where pod size matters.  All
    cells replay the same per-shard traces; only the topology and the
    seeded fault timeline (one schedule per distinct group count, same
    ``seed``) vary, so differences between rows are attributable to the
    swept axes.  Deterministic end to end: traces, schedules, and replays
    all derive from ``seed``.
    """
    if n_shards < 2:
        raise ValueError("the scope axis needs n_shards >= 2 to span")
    server_config = server_config or ServerConfig(
        name="failure-domain", sockets=2, cores_per_socket=24,
        dram_per_socket_gb=dram_per_socket_gb,
    )
    configs = [
        TraceGenConfig(
            cluster_id=f"fd-{i:02d}", n_servers=n_servers,
            duration_days=duration_days, mean_lifetime_hours=6.0,
            target_core_utilization=0.95, seed=seed + i,
            server_config=server_config,
        )
        for i in range(n_shards)
    ]
    traces = [TraceGenerator(cfg).generate_bulk() for cfg in configs]
    horizon_s = duration_days * 86400.0
    shard_sizes = [n_servers] * n_shards
    rows: List[FailureDomainRow] = []
    for pool_size in pool_sizes:
        for scope in SCOPES:
            topology = getattr(PoolTopology, scope)(
                shard_sizes, server_config.sockets, pool_size
            )
            for mtbf in mtbf_hours:
                schedule = FaultSchedule.seeded(
                    groups=range(topology.n_groups),
                    horizon_s=horizon_s,
                    mean_time_between_failures_s=mtbf * 3600.0,
                    repair_delay_s=repair_delay_s,
                    seed=seed,
                    migration_retry_budget=migration_retry_budget,
                )
                policies = [
                    StaticFractionPolicy(fraction=static_fraction,
                                         seed=seed)
                    for _ in range(n_shards)
                ]
                results, _ = replay_crossshard(
                    traces, policies, shard_sizes,
                    [cfg.server_config for cfg in configs], topology,
                    pool_capacity_gb_per_group, True, 3600.0,
                    faults=schedule,
                )
                merged = FaultImpactStats()
                for result in results:
                    merged.add(result.fault_stats)
                blast = merged.blast_radius_by_group
                rows.append(FailureDomainRow(
                    pool_size_sockets=pool_size,
                    scope=scope,
                    mtbf_hours=mtbf,
                    n_groups=topology.n_groups,
                    n_fail_events=merged.n_fail_events,
                    n_repair_events=merged.n_repair_events,
                    vms_affected=merged.vms_affected,
                    vms_migrated_local=merged.vms_migrated_local,
                    vms_live_migrated=merged.vms_live_migrated,
                    vms_killed=merged.vms_killed,
                    survival_rate=merged.survival_rate,
                    stranded_gb=merged.stranded_gb,
                    killed_gb=merged.killed_gb,
                    mean_recovery_latency_s=merged.mean_recovery_latency_s,
                    mean_blast_radius=(
                        sum(blast.values()) / len(blast) if blast else 0.0
                    ),
                ))
    return FailureDomainStudy(
        rows=rows,
        n_shards=n_shards,
        n_servers_per_shard=n_servers,
        duration_days=duration_days,
        repair_delay_s=repair_delay_s,
    )


def format_failure_domain_table(study: FailureDomainStudy) -> str:
    """Text table: one row per sweep cell, survivability last."""
    lines = [
        "Failure domains -- EMC fault injection survivability "
        f"({study.n_shards} shards x {study.n_servers_per_shard} servers, "
        f"{study.duration_days:g} days, repair "
        f"{study.repair_delay_s / 3600.0:g} h)",
        "pod  scope      MTBF[h]  groups  fails  affected  local  live  "
        "killed  stranded[GB]  blast  survival",
    ]
    for row in study.rows:
        lines.append(
            f"{row.pool_size_sockets:>3d}  {row.scope:<9s}  "
            f"{row.mtbf_hours:>7.1f}  {row.n_groups:>6d}  "
            f"{row.n_fail_events:>5d}  {row.vms_affected:>8d}  "
            f"{row.vms_migrated_local:>5d}  {row.vms_live_migrated:>4d}  "
            f"{row.vms_killed:>6d}  {row.stranded_gb:>12.1f}  "
            f"{row.mean_blast_radius:>5.1f}  {row.survival_rate:>8.3f}"
        )
    return "\n".join(lines)

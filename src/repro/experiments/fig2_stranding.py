"""Figure 2: memory stranding at fleet scale.

(a) Daily-average stranded memory bucketed by the percentage of scheduled CPU
    cores, with 5th/95th-percentile error bars.
(b) Stranding over time for a set of racks, including a workload-shift event
    that suddenly increases stranding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.fleet import FleetSimulator
from repro.cluster.simulator import ClusterSimulator
from repro.cluster.stranding import StrandingAnalyzer, StrandingBucket, stranding_vs_utilization
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator

__all__ = ["StrandingStudy", "run_stranding_study", "run_rack_timeseries", "format_stranding_table"]


@dataclass
class StrandingStudy:
    """Results backing Figure 2a plus fleet-level percentiles."""

    buckets: List[StrandingBucket]
    fleet_p5: float
    fleet_p95: float
    fleet_max: float
    n_clusters: int


def run_stranding_study(
    n_clusters: int = 12,
    n_servers: int = 24,
    duration_days: float = 4.0,
    utilization_range: Tuple[float, float] = (0.55, 0.97),
    seed: int = 5,
    max_workers: Optional[int] = None,
    stream_chunk_size: Optional[int] = 16384,
) -> StrandingStudy:
    """Simulate a fleet of clusters and aggregate stranding (Figure 2a).

    The fleet is run through the sharded :class:`FleetSimulator` (one shard
    per cluster, memory-constrained, no pool); ``max_workers`` optionally
    fans the shards out over a process pool.  By default each shard replays
    a lazy trace stream (``stream_chunk_size`` records per chunk) rather
    than materialising its trace -- the results are identical (streamed and
    materialised generation produce the same records), only peak memory
    changes; pass ``stream_chunk_size=None`` for the materialised path.
    """
    base = TraceGenConfig(
        n_servers=n_servers,
        duration_days=duration_days,
        mean_lifetime_hours=6.0,
    )
    fleet = FleetSimulator.utilization_sweep(
        n_clusters,
        base,
        utilization_range=utilization_range,
        seed=seed,
        constrain_memory=True,
        sample_interval_s=3600.0,
        max_workers=max_workers,
        stream_chunk_size=stream_chunk_size,
    )
    results = fleet.run().results()
    analyzer = StrandingAnalyzer(results)
    buckets = stranding_vs_utilization(list(results.values()))
    all_samples = np.concatenate(
        [r.sample_array("stranded_percent") for r in results.values() if r.n_samples]  # repro: noqa DET007 -- results are inserted in cluster submission order, fixed by the study config
    )
    return StrandingStudy(
        buckets=buckets,
        fleet_p5=float(np.percentile(all_samples, 5)),
        fleet_p95=float(np.percentile(all_samples, 95)),
        fleet_max=float(all_samples.max()),
        n_clusters=n_clusters,
    )


def run_rack_timeseries(
    n_racks: int = 8,
    n_servers: int = 16,
    duration_days: float = 8.0,
    shift_day: float = 4.0,
    seed: int = 9,
    stream_chunk_size: int = 16384,
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Stranding-over-time series for a set of racks (Figure 2b).

    Half of the racks experience a workload change at ``shift_day`` that
    increases the share of memory-optimised VMs, driving stranding up.
    Each rack's trace is replayed as a lazy stream, so only one chunk of
    records exists at a time.
    """
    series: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for rack in range(n_racks):
        shifted = rack % 2 == 0
        cfg = TraceGenConfig(
            cluster_id=f"rack-{rack}",
            n_servers=n_servers,
            duration_days=duration_days,
            target_core_utilization=0.85,
            shift_day=shift_day if shifted else None,
            shift_memory_factor=3.0,
            seed=seed + rack,
        )
        simulator = ClusterSimulator(
            n_servers=n_servers, constrain_memory=True, sample_interval_s=3600.0
        )
        result = simulator.run(TraceGenerator(cfg).stream(stream_chunk_size))
        analyzer = StrandingAnalyzer({cfg.cluster_id: result})
        series[cfg.cluster_id] = analyzer.daily_average(cfg.cluster_id)
    return series


def format_stranding_table(study: StrandingStudy) -> str:
    """Text table matching the Figure 2a presentation."""
    lines = [
        "Figure 2a -- stranded memory vs scheduled CPU cores",
        f"{'cores sched [%]':>16} {'mean stranded [%]':>19} {'p5 [%]':>8} {'p95 [%]':>9}",
    ]
    for bucket in study.buckets:
        lines.append(
            f"{bucket.scheduled_cores_percent:>16.0f} "
            f"{bucket.mean_stranded_percent:>19.1f} "
            f"{bucket.p5_stranded_percent:>8.1f} "
            f"{bucket.p95_stranded_percent:>9.1f}"
        )
    lines.append(
        f"fleet: p5={study.fleet_p5:.1f}%  p95={study.fleet_p95:.1f}%  "
        f"max={study.fleet_max:.1f}%  ({study.n_clusters} clusters)"
    )
    return "\n".join(lines)

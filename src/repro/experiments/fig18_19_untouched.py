"""Figures 18 and 19: the untouched-memory model.

Figure 18 compares the GBM quantile regressor against the fixed-fraction
strawman on the overprediction-rate vs harvested-untouched-memory trade-off.
Figure 19 tracks a production-style deployment over time: the model is
retrained nightly on the preceding days and evaluated on the next day, with a
fixed overprediction target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.prediction.untouched_model import (
    FixedFractionBaseline,
    UntouchedMemoryPredictor,
)
from repro.workloads.memory_behavior import UntouchedMemoryModel

__all__ = [
    "UntouchedDataset",
    "build_untouched_dataset",
    "UntouchedModelStudy",
    "run_untouched_model_study",
    "ProductionTimelineStudy",
    "run_production_timeline",
    "format_untouched_model_table",
]


@dataclass
class UntouchedDataset:
    """Metadata rows plus ground-truth untouched fractions for a VM population."""

    metadata_rows: List[Dict]
    untouched_fractions: np.ndarray

    def __len__(self) -> int:
        return len(self.metadata_rows)

    def split(self, test_size: float = 0.5, seed: int = 0) -> Tuple["UntouchedDataset", "UntouchedDataset"]:
        rng = np.random.default_rng(seed)
        n = len(self)
        perm = rng.permutation(n)
        n_test = max(1, int(round(test_size * n)))
        test_idx = set(perm[:n_test].tolist())
        train_rows, train_y, test_rows, test_y = [], [], [], []
        for i in range(n):
            if i in test_idx:
                test_rows.append(self.metadata_rows[i])
                test_y.append(self.untouched_fractions[i])
            else:
                train_rows.append(self.metadata_rows[i])
                train_y.append(self.untouched_fractions[i])
        return (
            UntouchedDataset(train_rows, np.array(train_y)),
            UntouchedDataset(test_rows, np.array(test_y)),
        )


_VM_FAMILIES = ("general", "memory_optimized", "compute_optimized", "burstable")
_GUEST_OSES = ("linux", "windows")
_REGIONS = ("region-0", "region-1", "region-2")
_MEMORY_SIZES = (8.0, 16.0, 32.0, 64.0, 128.0)


def build_untouched_dataset(
    n_vms: int = 2000,
    n_customers: int = 150,
    history_vms: int = 12,
    seed: int = 41,
    behavior_model: Optional[UntouchedMemoryModel] = None,
) -> UntouchedDataset:
    """Synthesise a labelled VM population from the generative behaviour model.

    Each VM's features are its metadata plus the untouched-memory percentiles
    of ``history_vms`` earlier VMs from the same customer (drawn from the same
    generative model, i.e. genuinely informative but noisy history).
    """
    if n_vms < 1:
        raise ValueError("need at least one VM")
    model = behavior_model or UntouchedMemoryModel(n_customers=n_customers, seed=seed)
    rng = np.random.default_rng(seed + 1)
    rows: List[Dict] = []
    labels: List[float] = []
    customer_ids = model.customer_ids
    for _ in range(n_vms):
        customer = customer_ids[int(rng.integers(0, len(customer_ids)))]
        family = str(rng.choice(_VM_FAMILIES))
        history = model.customer_history_percentiles(
            customer, n_previous_vms=history_vms, vm_type=family, rng=rng
        )
        actual = model.sample_untouched_fraction(customer, family, rng)
        rows.append(
            {
                "memory_gb": float(rng.choice(_MEMORY_SIZES)),
                "cores": int(rng.choice((2, 4, 8, 16))),
                "vm_family": family,
                "guest_os": str(rng.choice(_GUEST_OSES)),
                "region": str(rng.choice(_REGIONS)),
                "history_percentiles": history.tolist(),
            }
        )
        labels.append(actual)
    return UntouchedDataset(rows, np.array(labels))


@dataclass
class UntouchedModelStudy:
    """Figure 18 outputs: curves and headline comparison points."""

    gbm_curve: Tuple[np.ndarray, np.ndarray]
    fixed_curve: Tuple[np.ndarray, np.ndarray]
    gbm_overprediction_percent: float
    gbm_average_untouched_percent: float
    fixed_overprediction_at_same_untouched: float

    @property
    def accuracy_gain(self) -> float:
        """How many times fewer overpredictions the GBM makes vs the strawman."""
        if self.gbm_overprediction_percent <= 0:
            return float("inf")
        return self.fixed_overprediction_at_same_untouched / self.gbm_overprediction_percent


def run_untouched_model_study(
    dataset: Optional[UntouchedDataset] = None,
    quantile: float = 0.03,
    n_estimators: int = 60,
    seed: int = 43,
) -> UntouchedModelStudy:
    """Train the GBM and compare it against the fixed-fraction strawman."""
    dataset = dataset or build_untouched_dataset(seed=seed)
    train, test = dataset.split(test_size=0.5, seed=seed)

    predictor = UntouchedMemoryPredictor(
        quantile=quantile, n_estimators=n_estimators, random_state=seed
    )
    predictor.fit(train.metadata_rows, train.untouched_fractions)

    gbm_curve = predictor.tradeoff_curve(test.metadata_rows, test.untouched_fractions)
    baseline = FixedFractionBaseline(fraction=0.15)
    fixed_curve = baseline.tradeoff_curve(test.metadata_rows, test.untouched_fractions)

    gbm_op = predictor.overprediction_rate(test.metadata_rows, test.untouched_fractions)
    gbm_avg = predictor.average_untouched_percent(test.metadata_rows)

    # Fixed-fraction overprediction rate when harvesting the same average amount.
    same_fraction = gbm_avg / 100.0
    fixed_same = FixedFractionBaseline(fraction=min(1.0, same_fraction))
    fixed_op = fixed_same.overprediction_rate(test.metadata_rows, test.untouched_fractions)

    return UntouchedModelStudy(
        gbm_curve=gbm_curve,
        fixed_curve=fixed_curve,
        gbm_overprediction_percent=gbm_op,
        gbm_average_untouched_percent=gbm_avg,
        fixed_overprediction_at_same_untouched=fixed_op,
    )


@dataclass
class ProductionTimelineStudy:
    """Figure 19 outputs: per-day untouched memory and overprediction rates."""

    days: np.ndarray
    average_untouched_percent: np.ndarray
    overprediction_percent: np.ndarray
    op_target_percent: float


def run_production_timeline(
    n_days: int = 20,
    vms_per_day: int = 250,
    op_target_percent: float = 4.0,
    quantiles: Sequence[float] = (0.02, 0.03, 0.05, 0.08, 0.12),
    seed: int = 47,
) -> ProductionTimelineStudy:
    """Nightly retraining over a stream of days (Figure 19).

    Each day a new batch of VMs arrives.  The model is retrained on all prior
    days; its prediction quantile is chosen (from ``quantiles``) as the most
    aggressive one whose overprediction rate on the training data stays within
    the target.  It is then evaluated on the new day's VMs.
    """
    if n_days < 2:
        raise ValueError("need at least two days")
    behaviour = UntouchedMemoryModel(n_customers=120, seed=seed)
    daily = [
        build_untouched_dataset(
            n_vms=vms_per_day, seed=seed + 100 + day, behavior_model=behaviour
        )
        for day in range(n_days)
    ]

    days: List[int] = []
    averages: List[float] = []
    ops: List[float] = []
    for day in range(1, n_days):
        train_rows: List[Dict] = []
        train_labels: List[float] = []
        for past in daily[:day]:
            train_rows.extend(past.metadata_rows)
            train_labels.extend(past.untouched_fractions.tolist())
        test = daily[day]

        best_predictor: Optional[UntouchedMemoryPredictor] = None
        for quantile in sorted(quantiles, reverse=True):
            predictor = UntouchedMemoryPredictor(
                quantile=quantile, n_estimators=40, random_state=seed + day
            )
            predictor.fit(train_rows, train_labels)
            train_op = predictor.overprediction_rate(train_rows, train_labels)
            if train_op <= op_target_percent:
                best_predictor = predictor
                break
        if best_predictor is None:
            best_predictor = UntouchedMemoryPredictor(
                quantile=min(quantiles), n_estimators=40, random_state=seed + day
            )
            best_predictor.fit(train_rows, train_labels)

        days.append(day)
        averages.append(best_predictor.average_untouched_percent(test.metadata_rows))
        ops.append(
            best_predictor.overprediction_rate(test.metadata_rows, test.untouched_fractions)
        )
    return ProductionTimelineStudy(
        days=np.array(days, dtype=float),
        average_untouched_percent=np.array(averages),
        overprediction_percent=np.array(ops),
        op_target_percent=op_target_percent,
    )


def format_untouched_model_table(study: UntouchedModelStudy) -> str:
    """Text summary matching the Figure 18 narrative."""
    lines = [
        "Figure 18 -- untouched memory model",
        f"  GBM: {study.gbm_average_untouched_percent:.1f}% average untouched memory "
        f"at {study.gbm_overprediction_percent:.1f}% overpredictions",
        f"  Fixed fraction at the same untouched amount: "
        f"{study.fixed_overprediction_at_same_untouched:.1f}% overpredictions",
        f"  GBM accuracy gain: {study.accuracy_gain:.1f}x fewer overpredictions",
    ]
    return "\n".join(lines)

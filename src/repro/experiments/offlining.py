"""Finding 10: pool memory offlining speeds stay low across VM starts.

Pond's asynchronous release strategy means VM starts never wait on slice
offlining; the simulation here replays a stream of VM departures/starts
through the Pool Manager and verifies that the offlining speed required stays
below 1 GB/s for 99.99 % of VM starts (and below 10 GB/s for 99.999 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cxl.emc import EMCDevice
from repro.core.control_plane.pool_manager import PoolManager
from repro.hypervisor.host import Host
from repro.hypervisor.slices import SliceTransitionModel

__all__ = ["OffliningStudy", "run_offlining_study", "format_offlining_table"]


@dataclass
class OffliningStudy:
    """Offlining-speed percentiles across simulated VM start/stop churn."""

    speeds_gb_per_s: np.ndarray
    p9999_gb_per_s: float
    p99999_gb_per_s: float
    total_offlined_gb: int

    def percentile(self, percentile: float) -> float:
        return float(np.percentile(self.speeds_gb_per_s, percentile))


def run_offlining_study(
    n_hosts: int = 8,
    pool_capacity_gb: int = 512,
    n_vm_cycles: int = 400,
    mean_pool_gb_per_vm: float = 8.0,
    seed: int = 81,
) -> OffliningStudy:
    """Churn VMs through a pool and measure per-release offlining speeds."""
    if n_vm_cycles < 1:
        raise ValueError("need at least one VM cycle")
    rng = np.random.default_rng(seed)
    emc = EMCDevice("emc-offline", capacity_gb=pool_capacity_gb, n_ports=max(n_hosts, 8))
    transitions = SliceTransitionModel(seed=seed)
    manager = PoolManager(emc, transition_model=transitions)
    hosts = []
    for i in range(n_hosts):
        host = Host(host_id=f"host-{i}", total_cores=48, local_memory_gb=384.0)
        manager.register_host(host)
        hosts.append(host)

    for _ in range(n_vm_cycles):
        host = hosts[int(rng.integers(0, n_hosts))]
        slices = max(1, int(rng.poisson(mean_pool_gb_per_vm)))
        slices = min(slices, manager.unassigned_pool_gb)
        if slices <= 0:
            # Pool exhausted: drain the asynchronous release queue first.
            manager.process_releases()
            continue
        manager.add_capacity(host.host_id, slices)
        # The VM departs; its slices become free on the host and are queued for
        # asynchronous release, then processed off the critical path.
        manager.queue_release(host.host_id, slices)
        manager.process_releases()

    records = transitions.offline_records()
    speeds = np.array([r.gb_per_second for r in records]) if records else np.array([0.0])
    return OffliningStudy(
        speeds_gb_per_s=speeds,
        p9999_gb_per_s=float(np.percentile(speeds, 99.99)) if records else 0.0,
        p99999_gb_per_s=float(np.percentile(speeds, 99.999)) if records else 0.0,
        total_offlined_gb=int(sum(r.slice_count for r in records)),
    )


def format_offlining_table(study: OffliningStudy) -> str:
    """Text summary matching Finding 10."""
    return "\n".join([
        "Finding 10 -- pool memory offlining speeds",
        f"  offlined {study.total_offlined_gb} GB across {len(study.speeds_gb_per_s)} releases",
        f"  median offlining speed: {study.percentile(50):.2f} GB/s",
        f"  99.99th percentile: {study.p9999_gb_per_s:.2f} GB/s",
        f"  99.999th percentile: {study.p99999_gb_per_s:.2f} GB/s",
    ])

"""Figures 7 and 8: pool access latency vs pool size and design.

Figure 7 breaks Pond's end-to-end pool latency into its components for pool
sizes of 1 (local), 8, 16, and 32/64 sockets.  Figure 8 compares Pond's
multi-headed-EMC design with a switch-only design across pool sizes; Pond is
about one third faster for the small pools it targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cxl.latency import LatencyBreakdown, LatencyModel, LOCAL_DRAM_LATENCY_NS

__all__ = ["LatencyStudy", "run_latency_study", "format_latency_table"]

DEFAULT_POOL_SIZES = (1, 8, 16, 32, 64)


@dataclass
class LatencyStudy:
    """Per-pool-size latency breakdowns and the Pond vs switch-only comparison."""

    pool_sizes: List[int]
    pond_breakdowns: Dict[int, LatencyBreakdown]
    switch_only_ns: Dict[int, float]
    local_ns: float

    def pond_ns(self, pool_size: int) -> float:
        if pool_size <= 1:
            return self.local_ns
        return self.pond_breakdowns[pool_size].total_ns

    def pond_percent_of_local(self, pool_size: int) -> float:
        return 100.0 * self.pond_ns(pool_size) / self.local_ns

    def reduction_vs_switch_only(self, pool_size: int) -> float:
        """Fractional latency reduction of Pond vs the switch-only design."""
        if pool_size <= 1:
            return 0.0
        switch = self.switch_only_ns[pool_size]
        return (switch - self.pond_ns(pool_size)) / switch


def run_latency_study(pool_sizes: Sequence[int] = DEFAULT_POOL_SIZES) -> LatencyStudy:
    """Compute the Figure 7/8 latency numbers from the composition model."""
    model = LatencyModel()
    breakdowns: Dict[int, LatencyBreakdown] = {}
    switch_only: Dict[int, float] = {}
    for size in pool_sizes:
        if size > 1:
            breakdowns[size] = model.pond_pool(size)
            switch_only[size] = model.switch_only_pool(size).total_ns
        else:
            switch_only[size] = model.local_dram().total_ns
    return LatencyStudy(
        pool_sizes=list(pool_sizes),
        pond_breakdowns=breakdowns,
        switch_only_ns=switch_only,
        local_ns=model.local_dram().total_ns,
    )


def format_latency_table(study: LatencyStudy) -> str:
    """Text table matching the Figure 7/8 presentation."""
    lines = [
        "Figures 7/8 -- pool access latency",
        f"{'pool sockets':>13} {'Pond [ns]':>10} {'% of local':>11} "
        f"{'switch-only [ns]':>17} {'Pond saves':>11}",
    ]
    for size in study.pool_sizes:
        pond = study.pond_ns(size)
        lines.append(
            f"{size:>13d} {pond:>10.0f} {study.pond_percent_of_local(size):>10.0f}% "
            f"{study.switch_only_ns[size]:>17.0f} "
            f"{100 * study.reduction_vs_switch_only(size):>10.0f}%"
        )
    lines.append("")
    lines.append("Latency breakdown (Figure 7):")
    for size, breakdown in study.pond_breakdowns.items():  # repro: noqa DET007 -- keyed by pool size in the study's fixed sweep order
        parts = ", ".join(f"{name}={ns:.0f}ns" for name, ns in breakdown.items)
        lines.append(f"  {size}-socket Pond: {parts} -> {breakdown.total_ns:.0f}ns")
    return "\n".join(lines)

"""Pond: CXL-based memory pooling for cloud platforms -- full-stack reproduction.

This library reproduces the system described in "Pond: CXL-Based Memory
Pooling Systems for Cloud Platforms" (ASPLOS 2023).  The public API is
organised by layer:

* :mod:`repro.cxl` -- the hardware layer (latency model, EMC, topologies).
* :mod:`repro.hypervisor` -- the system-software layer (zNUMA, page tables,
  telemetry, hosts).
* :mod:`repro.cluster` -- the datacenter substrate (traces, scheduling,
  simulation, stranding).
* :mod:`repro.workloads` -- the 158-workload study and behavioural models.
* :mod:`repro.ml` -- the from-scratch ML substrate (random forest, GBM).
* :mod:`repro.core` -- Pond proper: prediction models, the Eq.(1) optimiser,
  the control plane, and allocation policies.
* :mod:`repro.experiments` -- drivers that regenerate every paper figure.

Quickstart::

    from repro.core import PondConfig
    from repro.experiments import run_all_experiments

    results = run_all_experiments(quick=True)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]


def _maybe_enable_sanitizer() -> None:
    """Opt-in runtime invariant checks: ``REPRO_SANITIZE=1``.

    Installed at import time so process-pool workers (which inherit the
    environment) sanitize their replays too.  Free when the variable is
    unset: one ``os.environ`` lookup, no analysis imports.
    """
    import os

    if os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
        "1", "true", "yes", "on"
    ):
        from repro.analysis.sanitizer import install

        install()


_maybe_enable_sanitizer()

"""Pond: CXL-based memory pooling for cloud platforms -- full-stack reproduction.

This library reproduces the system described in "Pond: CXL-Based Memory
Pooling Systems for Cloud Platforms" (ASPLOS 2023).  The public API is
organised by layer:

* :mod:`repro.cxl` -- the hardware layer (latency model, EMC, topologies).
* :mod:`repro.hypervisor` -- the system-software layer (zNUMA, page tables,
  telemetry, hosts).
* :mod:`repro.cluster` -- the datacenter substrate (traces, scheduling,
  simulation, stranding).
* :mod:`repro.workloads` -- the 158-workload study and behavioural models.
* :mod:`repro.ml` -- the from-scratch ML substrate (random forest, GBM).
* :mod:`repro.core` -- Pond proper: prediction models, the Eq.(1) optimiser,
  the control plane, and allocation policies.
* :mod:`repro.experiments` -- drivers that regenerate every paper figure.

Quickstart::

    from repro.core import PondConfig
    from repro.experiments import run_all_experiments

    results = run_all_experiments(quick=True)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""Analytic CXL latency composition model (paper Figures 7 and 8).

The paper derives pool access latency by composing per-component latencies
measured or estimated for CXL hardware:

===========================  ======  ==================================
Component                    ns      Notes
===========================  ======  ==================================
Core/LLC/Fabric              40      on-CPU portion of any DRAM access
Memory controller + DRAM     45      either local MC or the EMC's MC
CXL port (round trip)        25      Intel Sapphire Rapids measurement
Flight time (<500 mm)        5       board propagation
Retimer (>500 mm)            5+20+5  propagation + retimer both directions
EMC address check + NOC      15      ACL 5 ns + on-chip network 10 ns
Switch (ports + ARB + NOC)   70      25+10+10+25
===========================  ======  ==================================

The resulting end-to-end figures match the paper:

* local DRAM: 85 ns,
* 8-socket Pond: 155 ns (182 % of local),
* 16-socket Pond: 180 ns (212 %),
* 32/64-socket Pond: >270 ns (318 %),
* a switch-only design is roughly 1/3 slower than Pond's multi-headed EMC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = [
    "LatencyComponents",
    "LatencyBreakdown",
    "LatencyModel",
    "LOCAL_DRAM_LATENCY_NS",
    "pond_pool_latency_ns",
    "switch_only_latency_ns",
]


@dataclass(frozen=True)
class LatencyComponents:
    """Per-component latencies (nanoseconds) used to compose access paths."""

    core_llc_fabric_ns: float = 40.0
    mc_dram_ns: float = 45.0
    cxl_port_ns: float = 25.0
    flight_time_ns: float = 5.0
    retimer_ns: float = 30.0  # 5 ns propagation + 20 ns retimer + 5 ns propagation
    emc_acl_ns: float = 5.0
    emc_noc_ns: float = 10.0
    switch_port_ns: float = 25.0
    switch_arb_ns: float = 10.0
    switch_noc_ns: float = 10.0

    @property
    def emc_internal_ns(self) -> float:
        """Address-check plus on-chip-network latency inside the EMC."""
        return self.emc_acl_ns + self.emc_noc_ns

    @property
    def switch_ns(self) -> float:
        """Total latency added by one CXL switch (two ports + ARB + NOC)."""
        return 2 * self.switch_port_ns + self.switch_arb_ns + self.switch_noc_ns


#: Default components; LOCAL_DRAM_LATENCY_NS is the 85 ns paper baseline.
DEFAULT_COMPONENTS = LatencyComponents()
LOCAL_DRAM_LATENCY_NS = (
    DEFAULT_COMPONENTS.core_llc_fabric_ns + DEFAULT_COMPONENTS.mc_dram_ns
)

#: Pool sizes (sockets) that fit a single multi-headed EMC without retimers.
MAX_SOCKETS_WITHOUT_RETIMER = 8
#: Pool sizes (sockets) that fit a single multi-headed EMC (with retimers).
MAX_SOCKETS_DIRECT_EMC = 16


@dataclass
class LatencyBreakdown:
    """An itemised access path, preserving the order of traversed components."""

    items: List = field(default_factory=list)  # list of (name, ns)

    def add(self, name: str, ns: float) -> "LatencyBreakdown":
        self.items.append((name, float(ns)))
        return self

    @property
    def total_ns(self) -> float:
        return float(sum(ns for _, ns in self.items))

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name, ns in self.items:
            out[name] = out.get(name, 0.0) + ns
        return out

    def percent_of_local(self, local_ns: float = LOCAL_DRAM_LATENCY_NS) -> float:
        """Total latency expressed as a percentage of the local baseline."""
        return 100.0 * self.total_ns / local_ns


class LatencyModel:
    """Builds latency breakdowns for local DRAM and different pool designs."""

    def __init__(self, components: LatencyComponents = DEFAULT_COMPONENTS) -> None:
        self.components = components

    # -- baselines ------------------------------------------------------------
    def local_dram(self) -> LatencyBreakdown:
        c = self.components
        return (
            LatencyBreakdown()
            .add("core_llc_fabric", c.core_llc_fabric_ns)
            .add("mc_dram", c.mc_dram_ns)
        )

    # -- Pond multi-headed EMC designs -----------------------------------------
    def pond_pool(self, pool_sockets: int) -> LatencyBreakdown:
        """Access path for a Pond pool of ``pool_sockets`` CPU sockets.

        Up to 8 sockets connect to the EMC over short traces (no retimer);
        9-16 sockets need retimers; beyond 16 sockets a CXL switch layer is
        inserted between the hosts and multiple EMCs.
        """
        if pool_sockets < 1:
            raise ValueError("pool size must be >= 1 socket")
        c = self.components
        b = LatencyBreakdown()
        b.add("core_llc_fabric", c.core_llc_fabric_ns)
        b.add("host_cxl_port", c.cxl_port_ns)
        if pool_sockets <= MAX_SOCKETS_WITHOUT_RETIMER:
            b.add("flight_time", c.flight_time_ns)
        else:
            b.add("retimer", c.retimer_ns)
        if pool_sockets > MAX_SOCKETS_DIRECT_EMC:
            b.add("switch", c.switch_ns)
            b.add("retimer", c.retimer_ns)
        b.add("emc_cxl_port", c.cxl_port_ns)
        b.add("emc_acl_noc", c.emc_internal_ns)
        b.add("mc_dram", c.mc_dram_ns)
        return b

    # -- switch-only comparison design ------------------------------------------
    def switch_only_pool(self, pool_sockets: int) -> LatencyBreakdown:
        """Access path for a design that pools only through CXL switches.

        Every pool size pays at least one switch traversal (single-headed
        memory devices hang off the switch); very large pools (>32 sockets)
        need a second switch level, and any pool larger than 8 sockets needs
        retimers for distance.
        """
        if pool_sockets < 1:
            raise ValueError("pool size must be >= 1 socket")
        c = self.components
        b = LatencyBreakdown()
        b.add("core_llc_fabric", c.core_llc_fabric_ns)
        b.add("host_cxl_port", c.cxl_port_ns)
        if pool_sockets <= MAX_SOCKETS_WITHOUT_RETIMER:
            b.add("flight_time", c.flight_time_ns)
        else:
            b.add("retimer", c.retimer_ns)
        b.add("switch", c.switch_ns)
        if pool_sockets > 32:
            b.add("switch", c.switch_ns)
        if pool_sockets > MAX_SOCKETS_WITHOUT_RETIMER:
            b.add("retimer", c.retimer_ns)
        b.add("device_cxl_port", c.cxl_port_ns)
        b.add("device_internal", c.emc_internal_ns)
        b.add("mc_dram", c.mc_dram_ns)
        return b

    # -- figure-level sweeps -----------------------------------------------------
    def latency_vs_pool_size(self, pool_sizes=(1, 8, 16, 32, 64)) -> Dict[int, Dict[str, float]]:
        """Figure 8 data: latency of Pond vs switch-only per pool size.

        Pool size 1 means no pooling (local DRAM) for both designs.
        """
        out: Dict[int, Dict[str, float]] = {}
        for size in pool_sizes:
            if size <= 1:
                local = self.local_dram().total_ns
                out[size] = {"pond_ns": local, "switch_only_ns": local}
            else:
                out[size] = {
                    "pond_ns": self.pond_pool(size).total_ns,
                    "switch_only_ns": self.switch_only_pool(size).total_ns,
                }
        return out


def pond_pool_latency_ns(pool_sockets: int, components: LatencyComponents = DEFAULT_COMPONENTS) -> float:
    """Convenience wrapper returning Pond's end-to-end pool latency in ns."""
    return LatencyModel(components).pond_pool(pool_sockets).total_ns


def switch_only_latency_ns(pool_sockets: int, components: LatencyComponents = DEFAULT_COMPONENTS) -> float:
    """Convenience wrapper returning the switch-only design latency in ns."""
    return LatencyModel(components).switch_only_pool(pool_sockets).total_ns

"""External Memory Controller (EMC) device model (paper Section 4.1).

The EMC is a multi-headed CXL memory device: it exposes multiple x8 CXL ports
(one per host), a set of DDR5 channels behind on-chip memory controllers, and
a slice permission table that enforces Pond's ownership model.  Memory is
assigned to hosts in 1 GB slices; each slice belongs to at most one host at a
time and any access from a non-owner is a fatal memory error.

The model tracks:

* per-port host attachment,
* the permission table (slice -> owner host id),
* per-slice assignment history (for offlining-latency accounting),
* capacity bookkeeping queried by the Pool Manager.

Paper sizing note: "Tracking 1024 slices (1 TB) and 64 hosts (6 bits) requires
768 B of EMC state" -- :meth:`EMCDevice.permission_table_bytes` reproduces the
arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

__all__ = ["EMCDevice", "EMCError", "SlicePermissionError", "EMCPort"]


class EMCError(RuntimeError):
    """Raised for invalid EMC management operations."""


class SlicePermissionError(EMCError):
    """Raised when a host accesses a slice it does not own (fatal memory error)."""


@dataclass
class EMCPort:
    """One x8 CXL port of the EMC, attachable to a single host."""

    port_id: int
    host_id: Optional[str] = None

    @property
    def attached(self) -> bool:
        return self.host_id is not None


@dataclass
class _SliceState:
    owner: Optional[str] = None
    assignments: int = 0


class EMCDevice:
    """A multi-headed EMC with ``capacity_gb`` of DDR5 behind ``n_ports`` ports."""

    def __init__(
        self,
        emc_id: str,
        capacity_gb: int,
        n_ports: int = 16,
        slice_gb: int = 1,
        ddr5_channels: int = 12,
    ) -> None:
        if capacity_gb <= 0:
            raise ValueError("capacity_gb must be positive")
        if n_ports < 1:
            raise ValueError("n_ports must be >= 1")
        if slice_gb <= 0 or capacity_gb % slice_gb != 0:
            raise ValueError("capacity must be a positive multiple of slice_gb")
        self.emc_id = emc_id
        self.capacity_gb = capacity_gb
        self.slice_gb = slice_gb
        self.ddr5_channels = ddr5_channels
        self.n_slices = capacity_gb // slice_gb
        self.ports: List[EMCPort] = [EMCPort(port_id=i) for i in range(n_ports)]
        self._slices: List[_SliceState] = [_SliceState() for _ in range(self.n_slices)]
        self._host_slices: Dict[str, Set[int]] = {}

    # -- port management -------------------------------------------------------
    def attach_host(self, host_id: str) -> int:
        """Attach ``host_id`` to the first free port and return the port id."""
        if host_id in self._attached_hosts():
            raise EMCError(f"host {host_id!r} is already attached to {self.emc_id}")
        for port in self.ports:
            if not port.attached:
                port.host_id = host_id
                self._host_slices.setdefault(host_id, set())
                return port.port_id
        raise EMCError(f"no free CXL port on EMC {self.emc_id}")

    def detach_host(self, host_id: str) -> None:
        """Detach a host; all of its slices are returned to the free pool.

        Slice release happens *before* the port is freed, in ascending
        slice order, so no ``_SliceState`` is ever left owned by a departed
        host: after this returns the host holds no slices, its port is
        reusable, and a later :meth:`attach_host` of the same id starts
        from a clean state.  Raises :class:`EMCError` when ``host_id`` is
        not attached (detaching is not idempotent -- a double detach is a
        control-plane bug worth surfacing).
        """
        if host_id not in self._attached_hosts():
            raise EMCError(f"host {host_id!r} is not attached to {self.emc_id}")
        for slice_index in sorted(self._host_slices.get(host_id, set())):
            self.release_slice(host_id, slice_index)
        for port in self.ports:
            if port.host_id == host_id:
                port.host_id = None
        self._host_slices.pop(host_id, None)

    def _attached_hosts(self) -> Set[str]:
        return {p.host_id for p in self.ports if p.attached}

    @property
    def attached_hosts(self) -> List[str]:
        return sorted(self._attached_hosts())

    # -- slice assignment --------------------------------------------------------
    def assign_slice(self, host_id: str, slice_index: Optional[int] = None) -> int:
        """Assign a free slice to ``host_id`` (Add_capacity in the paper).

        If ``slice_index`` is ``None`` the lowest-numbered free slice is used.
        Returns the assigned slice index.
        """
        if host_id not in self._attached_hosts():
            raise EMCError(f"host {host_id!r} is not attached to EMC {self.emc_id}")
        if slice_index is None:
            slice_index = self._first_free_slice()
            if slice_index is None:
                raise EMCError(f"EMC {self.emc_id} has no free slices")
        self._check_slice(slice_index)
        state = self._slices[slice_index]
        if state.owner is not None:
            raise EMCError(
                f"slice {slice_index} already owned by {state.owner!r}"
            )
        state.owner = host_id
        state.assignments += 1
        self._host_slices[host_id].add(slice_index)
        return slice_index

    def release_slice(self, host_id: str, slice_index: int) -> None:
        """Release a slice back to the pool (Release_capacity in the paper)."""
        self._check_slice(slice_index)
        state = self._slices[slice_index]
        if state.owner != host_id:
            raise EMCError(
                f"slice {slice_index} is owned by {state.owner!r}, not {host_id!r}"
            )
        state.owner = None
        self._host_slices[host_id].discard(slice_index)

    def _first_free_slice(self) -> Optional[int]:
        for i, state in enumerate(self._slices):
            if state.owner is None:
                return i
        return None

    def _check_slice(self, slice_index: int) -> None:
        if not 0 <= slice_index < self.n_slices:
            raise IndexError(
                f"slice index {slice_index} out of range (0..{self.n_slices - 1})"
            )

    # -- access permission check ----------------------------------------------
    def check_access(self, host_id: str, slice_index: int) -> None:
        """Validate a load/store from ``host_id`` to ``slice_index``.

        Mirrors the EMC's per-access permission check; a mismatch is a fatal
        memory error, modelled here as :class:`SlicePermissionError`.
        """
        self._check_slice(slice_index)
        owner = self._slices[slice_index].owner
        if owner != host_id:
            raise SlicePermissionError(
                f"host {host_id!r} accessed slice {slice_index} owned by {owner!r}"
            )

    # -- bookkeeping -------------------------------------------------------------
    def owner_of(self, slice_index: int) -> Optional[str]:
        self._check_slice(slice_index)
        return self._slices[slice_index].owner

    def slices_of(self, host_id: str) -> List[int]:
        return sorted(self._host_slices.get(host_id, set()))

    @property
    def free_slices(self) -> int:
        return sum(1 for s in self._slices if s.owner is None)

    @property
    def free_gb(self) -> int:
        return self.free_slices * self.slice_gb

    @property
    def assigned_gb(self) -> int:
        return (self.n_slices - self.free_slices) * self.slice_gb

    def utilization(self) -> float:
        """Fraction of EMC capacity currently assigned to hosts."""
        return self.assigned_gb / self.capacity_gb

    def permission_table_bytes(self, n_hosts: Optional[int] = None) -> int:
        """State needed to track slice ownership, per the paper's arithmetic.

        Each slice needs ``ceil(log2(n_hosts))`` bits to store its owner; the
        paper's example (1024 slices, 64 hosts) yields 768 bytes.
        """
        hosts = n_hosts if n_hosts is not None else max(len(self.ports), 2)
        bits_per_slice = max(1, math.ceil(math.log2(hosts)))
        return math.ceil(self.n_slices * bits_per_slice / 8)

    def summary(self) -> Dict[str, float]:
        return {
            "capacity_gb": float(self.capacity_gb),
            "assigned_gb": float(self.assigned_gb),
            "free_gb": float(self.free_gb),
            "attached_hosts": float(len(self.attached_hosts)),
            "utilization": self.utilization(),
        }

"""CXL hardware layer: latency model, pool topologies, and the EMC device.

This package models the hardware layer of Pond (paper Section 4.1):

* :mod:`repro.cxl.latency` -- the analytic latency composition behind
  Figures 7 and 8 (port, retimer, switch, EMC NOC, memory controller).
* :mod:`repro.cxl.topology` -- constructs pool topologies (direct attach,
  multi-headed EMC, switch-only, switch + EMC) for a given pool size.
* :mod:`repro.cxl.emc` -- the External Memory Controller device model: CXL
  ports, the HDM decoder address range per host, and the 1 GB slice permission
  table with dynamic slice assignment.
* :mod:`repro.cxl.hdm` -- host-managed device memory decoders mapping EMC
  capacity into each host's physical address space.
"""

from repro.cxl.latency import (
    LatencyComponents,
    LatencyModel,
    LOCAL_DRAM_LATENCY_NS,
    pond_pool_latency_ns,
    switch_only_latency_ns,
)
from repro.cxl.topology import PoolTopology, TopologyKind, build_topology
from repro.cxl.emc import EMCDevice, EMCError, SlicePermissionError
from repro.cxl.hdm import HDMDecoder, AddressRange

__all__ = [
    "LatencyComponents",
    "LatencyModel",
    "LOCAL_DRAM_LATENCY_NS",
    "pond_pool_latency_ns",
    "switch_only_latency_ns",
    "PoolTopology",
    "TopologyKind",
    "build_topology",
    "EMCDevice",
    "EMCError",
    "SlicePermissionError",
    "HDMDecoder",
    "AddressRange",
]

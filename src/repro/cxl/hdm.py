"""Host-managed Device Memory (HDM) decoders and address ranges.

CXL.mem maps device memory into a host's physical address space through HDM
decoders programmed at boot (paper Section 4.2: "Hosts discover local and pool
capacity through CXL device discovery and map them to their address space").
This module models that mapping at 1 GB-slice granularity so that the EMC and
the hypervisor agree on which host physical addresses belong to the pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["AddressRange", "HDMDecoder"]

GB = 1024**3


@dataclass(frozen=True)
class AddressRange:
    """A half-open physical address range ``[base, base + size)`` in bytes."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise ValueError("address range must have base >= 0 and size > 0")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.base < other.end and other.base < self.end

    @property
    def size_gb(self) -> float:
        return self.size / GB


class HDMDecoder:
    """Maps EMC slices into a host's physical address space.

    The decoder exposes the EMC's entire capacity as a contiguous
    hot-pluggable range beginning at ``pool_base``.  Individual 1 GB slices
    start "offline" and are enabled/disabled as the Pool Manager assigns and
    reclaims them.
    """

    def __init__(self, pool_base: int, capacity_gb: int, slice_gb: int = 1) -> None:
        if capacity_gb <= 0:
            raise ValueError("capacity_gb must be positive")
        if slice_gb <= 0:
            raise ValueError("slice_gb must be positive")
        if capacity_gb % slice_gb != 0:
            raise ValueError("capacity must be a multiple of the slice size")
        self.pool_range = AddressRange(pool_base, capacity_gb * GB)
        self.slice_gb = slice_gb
        self.n_slices = capacity_gb // slice_gb
        self._online: List[bool] = [False] * self.n_slices

    # -- slice/address translation ------------------------------------------
    def slice_range(self, slice_index: int) -> AddressRange:
        """Physical address range backing slice ``slice_index``."""
        self._check_slice(slice_index)
        base = self.pool_range.base + slice_index * self.slice_gb * GB
        return AddressRange(base, self.slice_gb * GB)

    def slice_of_address(self, address: int) -> Optional[int]:
        """Slice index containing ``address``, or ``None`` if outside the pool."""
        if not self.pool_range.contains(address):
            return None
        return (address - self.pool_range.base) // (self.slice_gb * GB)

    # -- online state ----------------------------------------------------------
    def online(self, slice_index: int) -> None:
        self._check_slice(slice_index)
        self._online[slice_index] = True

    def offline(self, slice_index: int) -> None:
        self._check_slice(slice_index)
        self._online[slice_index] = False

    def is_online(self, slice_index: int) -> bool:
        self._check_slice(slice_index)
        return self._online[slice_index]

    def online_slices(self) -> List[int]:
        return [i for i, state in enumerate(self._online) if state]

    @property
    def online_capacity_gb(self) -> int:
        return sum(self._online) * self.slice_gb

    def _check_slice(self, slice_index: int) -> None:
        if not 0 <= slice_index < self.n_slices:
            raise IndexError(
                f"slice index {slice_index} out of range (0..{self.n_slices - 1})"
            )

    def summary(self) -> Dict[str, float]:
        return {
            "capacity_gb": self.n_slices * self.slice_gb,
            "online_gb": self.online_capacity_gb,
            "offline_gb": self.n_slices * self.slice_gb - self.online_capacity_gb,
        }

"""Pool topology construction for different pool sizes (paper Figure 6).

The optimal Pond design point depends on the pool size (number of CPU sockets
sharing a pool):

* **<= 8 sockets** -- one multi-headed EMC, 64 PCIe 5.0 lanes, 6 DDR5
  channels (half an AMD Genoa IO-die of silicon area).
* **<= 16 sockets** -- one multi-headed EMC, 128 lanes, 12 DDR5 channels
  (comparable to a full Genoa IOD); retimers are needed for trace length.
* **32-64 sockets** -- CXL switches in front of multiple multi-headed EMCs.

A *switch-only* comparison topology (single-headed memory devices behind
switches) is also supported for the Figure 8 latency comparison.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from repro.cxl.emc import EMCDevice
from repro.cxl.latency import LatencyModel, LatencyComponents, DEFAULT_COMPONENTS

__all__ = ["TopologyKind", "PoolTopology", "build_topology"]

#: PCIe 5.0 lanes per x8 CXL host link.
LANES_PER_HOST_LINK = 8
#: DDR5 channels provisioned per 8 attached sockets (matches Figure 6).
DDR5_CHANNELS_PER_8_SOCKETS = 6
#: Approximate silicon area of an AMD Genoa IO-die in mm^2 (Figure 6).
GENOA_IOD_AREA_MM2 = 397.0


class TopologyKind(str, enum.Enum):
    """How hosts reach pool memory."""

    DIRECT_EMC = "direct_emc"          # hosts wired straight to a multi-headed EMC
    SWITCHED_EMC = "switched_emc"      # hosts -> CXL switches -> multi-headed EMCs
    SWITCH_ONLY = "switch_only"        # hosts -> CXL switches -> single-headed devices


@dataclass
class PoolTopology:
    """A constructed pool: EMC devices, switch count, lane/channel budget."""

    kind: TopologyKind
    pool_sockets: int
    emcs: List[EMCDevice] = field(default_factory=list)
    n_switches: int = 0
    retimers_required: bool = False
    components: LatencyComponents = DEFAULT_COMPONENTS

    @property
    def total_pool_capacity_gb(self) -> int:
        return sum(emc.capacity_gb for emc in self.emcs)

    @property
    def pcie5_lanes(self) -> int:
        """Host-facing PCIe 5.0 lanes required across the pool's EMCs/switches."""
        return self.pool_sockets * LANES_PER_HOST_LINK

    @property
    def ddr5_channels(self) -> int:
        return sum(emc.ddr5_channels for emc in self.emcs)

    @property
    def estimated_emc_area_mm2(self) -> float:
        """Rough EMC silicon area scaled against the Genoa IOD reference."""
        # A 16-socket EMC ~ one IOD; an 8-socket EMC ~ half an IOD.
        area = 0.0
        for emc in self.emcs:
            ports = len(emc.ports)
            area += GENOA_IOD_AREA_MM2 * min(1.0, ports / 16.0)
        return area

    def access_latency_ns(self) -> float:
        """End-to-end pool access latency for this topology."""
        model = LatencyModel(self.components)
        if self.kind is TopologyKind.SWITCH_ONLY:
            return model.switch_only_pool(self.pool_sockets).total_ns
        return model.pond_pool(self.pool_sockets).total_ns

    def summary(self) -> Dict[str, float]:
        return {
            "pool_sockets": float(self.pool_sockets),
            "n_emcs": float(len(self.emcs)),
            "n_switches": float(self.n_switches),
            "capacity_gb": float(self.total_pool_capacity_gb),
            "pcie5_lanes": float(self.pcie5_lanes),
            "ddr5_channels": float(self.ddr5_channels),
            "latency_ns": self.access_latency_ns(),
        }


def build_topology(
    pool_sockets: int,
    pool_capacity_gb: int,
    kind: TopologyKind = None,
    components: LatencyComponents = DEFAULT_COMPONENTS,
) -> PoolTopology:
    """Construct the pool topology the paper recommends for ``pool_sockets``.

    Parameters
    ----------
    pool_sockets:
        Number of CPU sockets sharing the pool (2-64 in the paper).
    pool_capacity_gb:
        Total pool DRAM capacity behind the EMC(s).
    kind:
        Force a topology kind; by default small pools use DIRECT_EMC and
        pools above 16 sockets use SWITCHED_EMC.
    """
    if pool_sockets < 2:
        raise ValueError("a pool needs at least 2 sockets")
    if pool_capacity_gb <= 0:
        raise ValueError("pool capacity must be positive")

    if kind is None:
        kind = TopologyKind.DIRECT_EMC if pool_sockets <= 16 else TopologyKind.SWITCHED_EMC

    topo = PoolTopology(
        kind=kind,
        pool_sockets=pool_sockets,
        retimers_required=pool_sockets > 8,
        components=components,
    )

    if kind is TopologyKind.DIRECT_EMC:
        if pool_sockets > 16:
            raise ValueError("a single multi-headed EMC supports at most 16 sockets")
        ports = 8 if pool_sockets <= 8 else 16
        channels = DDR5_CHANNELS_PER_8_SOCKETS * (1 if pool_sockets <= 8 else 2)
        topo.emcs = [
            EMCDevice(
                emc_id="emc-0",
                capacity_gb=pool_capacity_gb,
                n_ports=ports,
                ddr5_channels=channels,
            )
        ]
        topo.n_switches = 0
    elif kind is TopologyKind.SWITCHED_EMC:
        # Figure 6: hosts connect through switches to 4 multi-headed EMCs.
        n_emcs = 4
        per_emc = max(1, pool_capacity_gb // n_emcs)
        topo.emcs = [
            EMCDevice(
                emc_id=f"emc-{i}",
                capacity_gb=per_emc,
                n_ports=16,
                ddr5_channels=2 * DDR5_CHANNELS_PER_8_SOCKETS,
            )
            for i in range(n_emcs)
        ]
        # One switch per 8 hosts (x8 links into the switch fabric).
        topo.n_switches = max(1, (pool_sockets + 7) // 8)
    elif kind is TopologyKind.SWITCH_ONLY:
        # Single-headed devices: one device per 4 sockets of capacity share.
        n_devices = max(1, pool_sockets // 4)
        per_device = max(1, pool_capacity_gb // n_devices)
        topo.emcs = [
            EMCDevice(
                emc_id=f"dev-{i}",
                capacity_gb=per_device,
                n_ports=1,
                ddr5_channels=2,
            )
            for i in range(n_devices)
        ]
        topo.n_switches = max(1, (pool_sockets + 15) // 16)
        if pool_sockets > 32:
            topo.n_switches += 1
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown topology kind: {kind}")

    return topo

"""The determinism lint: AST rules over library code.

Every rule encodes one determinism incident class from this repo's history:

========  ==========================================================
``DET001``  ``hash()`` in a key or fingerprint (``PYTHONHASHSEED``-dependent
            for str/bytes; PR 2's policy RNG draws).
``DET002``  ``id()`` used as a mapping key, memo key, or identity fingerprint
            (recycled addresses alias entries; PR 1's dimensioner caches).
``DET003``  unseeded RNG construction reachable from library code --
            ``default_rng()`` / ``Random()`` with no seed, a literal ``None``,
            or a parameter whose default is ``None`` and is not proven
            non-None first.
``DET004``  conditional RNG fallback (``default_rng(seed) if seed is not
            None else None``): ``seed=None`` silently switches behaviour.
``DET005``  iteration over a ``set`` feeding ordered accumulation or emitted
            results (hash-order-dependent output).
``DET006``  wall-clock reads (``time.time`` / ``datetime.now``) in simulation
            logic (replay results must not depend on when they run).
``DET007``  dict-view iteration feeding ordered accumulation: safe only when
            the dict's *insertion order* is itself deterministic; the
            suppression reason must say why it is.
========  ==========================================================

Findings are suppressed inline with ``# repro: noqa DET00x -- reason``
(see :mod:`repro.analysis.findings`).  ``time.perf_counter`` is deliberately
not flagged: elapsed-time telemetry does not feed simulation results.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, apply_suppressions

__all__ = ["RULES", "lint_source", "lint_file", "lint_paths", "iter_python_files"]

#: rule code -> (summary, fix-it hint).  The lint report and DESIGN.md
#: section 12 both render from this table.
RULES: Dict[str, Tuple[str, str]] = {
    "DET001": (
        "hash() in a key or fingerprint",
        "hash() of str/bytes changes with PYTHONHASHSEED; use zlib.crc32 or "
        "hashlib over canonical bytes (see repro.core.policies digests)",
    ),
    "DET002": (
        "id() used as a key or fingerprint",
        "id() values are recycled addresses: entries alias once the object "
        "dies; key on the value, a weakref (PR 1 fix), or pin the object "
        "alive for the mapping's lifetime",
    ),
    "DET003": (
        "unseeded RNG construction in library code",
        "pass an explicit seed; if None must be accepted, make the None "
        "contract explicit at one documented place instead of falling "
        "through to OS entropy",
    ),
    "DET004": (
        "conditional RNG fallback on an optional seed",
        "seed=None silently switches behaviour (no noise vs OS entropy); "
        "centralise the None contract in one documented helper",
    ),
    "DET005": (
        "set iteration feeding ordered accumulation",
        "set order follows the hash seed; iterate sorted(...) or keep a "
        "dict/list keyed in insertion order",
    ),
    "DET006": (
        "wall-clock read in simulation logic",
        "replay results must not depend on when they run; take times from "
        "the event stream (time.perf_counter is fine for telemetry)",
    ),
    "DET007": (
        "dict-view iteration feeding ordered accumulation",
        "dict order is insertion order: deterministic only if insertions "
        "are; sort, or suppress with a reason stating the insertion-order "
        "provenance",
    ),
}

_RNG_CTOR_ATTRS = {"default_rng", "Random", "RandomState"}
_KEYED_METHODS = {"get", "setdefault", "pop"}
_ORDER_SINKS = {"append", "extend", "insert"}
#: calls whose result does not depend on the argument's iteration order.
_ORDER_FREE_CALLS = {"sorted", "min", "max", "len", "any", "all", "set",
                     "frozenset", "sum"}


# -- small AST helpers -------------------------------------------------------------


def _is_name_call(node: ast.AST, names: Set[str]) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in names)


def _is_rng_ctor(node: ast.AST) -> bool:
    """Call to ``default_rng`` / ``random.Random`` / ``RandomState``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _RNG_CTOR_ATTRS
    if isinstance(func, ast.Attribute):
        return func.attr in _RNG_CTOR_ATTRS
    return False


def _is_none(node: Optional[ast.AST]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _is_set_expr(node: ast.AST) -> bool:
    return isinstance(node, ast.Set) or _is_name_call(node, {"set", "frozenset"})


def _is_dict_view(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            and node.func.attr in {"values", "keys", "items"}
            and not node.args and not node.keywords)


def _none_compare(test: ast.AST) -> Optional[Tuple[str, bool]]:
    """``(name, is_not)`` for a ``<name> is [not] None`` test, else None."""
    if (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.left, ast.Name) and _is_none(test.comparators[0])):
        if isinstance(test.ops[0], ast.IsNot):
            return test.left.id, True
        if isinstance(test.ops[0], ast.Is):
            return test.left.id, False
    return None


def _terminates(stmts: Sequence[ast.stmt]) -> bool:
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def _contains_id_call(node: ast.AST) -> Optional[ast.Call]:
    for sub in ast.walk(node):
        if _is_name_call(sub, {"id"}):
            return sub
    return None


class _ParentMap:
    def __init__(self, tree: ast.AST) -> None:
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def lineage(self, node: ast.AST) -> Iterable[Tuple[ast.AST, ast.AST]]:
        """Yield ``(child, parent)`` pairs climbing until a statement."""
        child = node
        while True:
            parent = self._parents.get(child)
            if parent is None:
                return
            yield child, parent
            if isinstance(parent, ast.stmt):
                return
            child = parent


def _in_key_position(node: ast.AST, parents: _ParentMap) -> bool:
    """True when ``node`` sits in a mapping-key / membership position."""
    for child, parent in parents.lineage(node):
        if isinstance(parent, ast.Subscript) and child is parent.slice:
            return True
        if isinstance(parent, (ast.Dict, ast.DictComp)):
            keys = parent.keys if isinstance(parent, ast.Dict) else [parent.key]
            if child in keys:
                return True
        if isinstance(parent, ast.Compare):
            return True
        if (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Attribute)
                and parent.func.attr in _KEYED_METHODS
                and child in parent.args):
            return True
    return False


def _order_exempt(node: ast.AST, parents: _ParentMap) -> bool:
    """True when an unordered iterable feeds an order-insensitive consumer."""
    for child, parent in parents.lineage(node):
        if (isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_FREE_CALLS
                and child in parent.args):
            return True
    return False


def _feeds_order(body: Sequence[ast.stmt]) -> bool:
    """Loop body appends/extends/yields -- builds an ordered result."""
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                return True
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _ORDER_SINKS):
                return True
    return False


def _wall_clock_call(node: ast.Call) -> Optional[str]:
    """Dotted name for a wall-clock read, or None."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    base_name = None
    if isinstance(base, ast.Name):
        base_name = base.id
    elif isinstance(base, ast.Attribute):
        base_name = base.attr
    if func.attr in {"time", "time_ns"} and base_name == "time":
        return f"time.{func.attr}"
    if func.attr in {"now", "utcnow"} and base_name in {"datetime", "date"}:
        return f"{base_name}.{func.attr}"
    if func.attr == "today" and base_name in {"datetime", "date"}:
        return f"{base_name}.today"
    return None


# -- the lint pass -----------------------------------------------------------------


class _DetLinter:
    def __init__(self, source: str, path: str) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.findings: List[Finding] = []
        self._seen: Set[Tuple[str, int]] = set()
        #: RNG-ctor call nodes already reported as part of a DET004 pattern.
        self._det004_calls: Set[int] = set()

    def _snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def _add(self, rule: str, node: ast.AST, message: str) -> None:
        key = (rule, node.lineno)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(Finding(
            rule=rule, path=self.path, line=node.lineno, message=message,
            hint=RULES[rule][1], snippet=self._snippet(node.lineno),
        ))

    # -- pass A: parent-map rules --------------------------------------------------
    def run(self, tree: ast.AST) -> List[Finding]:
        parents = _ParentMap(tree)

        # DET004 first, so its RNG calls are excluded from DET003.
        for node in ast.walk(tree):
            if isinstance(node, ast.IfExp):
                arms = ((node.body, node.orelse), (node.orelse, node.body))
                for rng_arm, none_arm in arms:
                    if _is_rng_ctor(rng_arm) and _is_none(none_arm):
                        self._add(
                            "DET004", node,
                            "RNG constructed on one branch, None on the "
                            "other: the optional seed silently switches "
                            "behaviour",
                        )
                        self._det004_calls.add(id(rng_arm))

        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                self._check_call(node, parents)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._check_for(node, parents)
            elif isinstance(node, ast.ListComp):
                self._check_listcomp(node, parents)

        # DET002 via taint + DET003 maybe-None params need scope walks.
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_id_taint(node, parents)
                self._check_optional_seed(node)

        self.findings.sort(key=lambda f: (f.line, f.rule))
        return self.findings

    def _check_call(self, node: ast.Call, parents: _ParentMap) -> None:
        if _is_name_call(node, {"hash"}):
            self._add("DET001", node,
                      "hash() is PYTHONHASHSEED-dependent for str/bytes")
        if _is_name_call(node, {"id"}) and _in_key_position(node, parents):
            self._add("DET002", node,
                      "id() used as a key: recycled addresses alias entries")
        if _is_rng_ctor(node) and id(node) not in self._det004_calls:  # repro: noqa DET002 -- AST node identity within one in-memory pass; the tree pins every node alive
            if not node.args and not node.keywords:
                self._add("DET003", node,
                          "RNG constructed without a seed (OS entropy)")
            elif node.args and _is_none(node.args[0]):
                self._add("DET003", node,
                          "RNG constructed with literal None seed (OS entropy)")
        clock = _wall_clock_call(node)
        if clock is not None:
            self._add("DET006", node,
                      f"{clock}() read in library code: results depend on "
                      "when the run happens")
        # list(set(...)) / tuple(set(...)) emit hash-ordered sequences.
        if (_is_name_call(node, {"list", "tuple"}) and len(node.args) == 1
                and _is_set_expr(node.args[0])):
            self._add("DET005", node,
                      f"{node.func.id}() over a set emits hash-ordered "  # type: ignore[attr-defined]
                      "elements")

    def _check_for(self, node: ast.stmt, parents: _ParentMap) -> None:
        iter_expr = node.iter  # type: ignore[attr-defined]
        body = node.body  # type: ignore[attr-defined]
        if _order_exempt(iter_expr, parents) or not _feeds_order(body):
            return
        if _is_set_expr(iter_expr):
            self._add("DET005", node,
                      "loop over a set feeds ordered accumulation")
        elif _is_dict_view(iter_expr):
            self._add("DET007", node,
                      "loop over a dict view feeds ordered accumulation; "
                      "order is whatever the insertions were")

    def _check_listcomp(self, node: ast.ListComp, parents: _ParentMap) -> None:
        if _order_exempt(node, parents):
            return
        for gen in node.generators:
            if _is_set_expr(gen.iter):
                self._add("DET005", node,
                          "list built by iterating a set is hash-ordered")
            elif _is_dict_view(gen.iter):
                self._add("DET007", node,
                          "list built by iterating a dict view follows "
                          "insertion order")

    # -- DET002 taint: name = id(...), later used as a key -------------------------
    def _check_id_taint(self, fn: ast.AST, parents: _ParentMap) -> None:
        tainted: Set[str] = set()
        for stmt in self._own_statements(fn):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and _contains_id_call(stmt.value):
                    tainted.add(target.id)
        if not tainted:
            return
        for stmt in self._own_statements(fn):
            for sub in ast.walk(stmt):
                if (isinstance(sub, ast.Name) and sub.id in tainted
                        and isinstance(sub.ctx, ast.Load)
                        and _in_key_position(sub, parents)):
                    self._add(
                        "DET002", sub,
                        f"{sub.id!r} holds an id() and is used as a key: "
                        "recycled addresses alias entries",
                    )

    def _own_statements(self, fn: ast.AST) -> Iterable[ast.stmt]:
        """Statements of ``fn``, not descending into nested defs/classes."""
        stack = list(fn.body)  # type: ignore[attr-defined]
        while stack:
            stmt = stack.pop()
            yield stmt
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    stack.append(child)
                else:
                    stack.extend(
                        c for c in ast.walk(child) if isinstance(c, ast.stmt)
                    )

    # -- DET003 maybe-None seed params, with narrowing -----------------------------
    def _check_optional_seed(self, fn: ast.AST) -> None:
        args = fn.args  # type: ignore[attr-defined]
        optional: Set[str] = set()
        positional = args.posonlyargs + args.args
        for arg, default in zip(positional[len(positional) - len(args.defaults):],
                                args.defaults):
            if _is_none(default):
                optional.add(arg.arg)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None and _is_none(default):
                optional.add(arg.arg)
        if not optional:
            return
        self._walk_block(fn.body, optional, set())  # type: ignore[attr-defined]

    def _walk_block(self, stmts: Sequence[ast.stmt], optional: Set[str],
                    narrowed: Set[str]) -> None:
        narrowed = set(narrowed)
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scopes check their own params
            if isinstance(stmt, ast.If):
                cond = _none_compare(stmt.test)
                if cond is not None:
                    name, is_not = cond
                    if is_not:
                        self._scan_expr(stmt.test, optional, narrowed)
                        self._walk_block(stmt.body, optional, narrowed | {name})
                        self._walk_block(stmt.orelse, optional, narrowed)
                    else:
                        self._scan_expr(stmt.test, optional, narrowed)
                        self._walk_block(stmt.body, optional, narrowed)
                        self._walk_block(stmt.orelse, optional,
                                         narrowed | {name})
                        if _terminates(stmt.body):
                            narrowed.add(name)
                    continue
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    continue
                if isinstance(child, ast.expr):
                    self._scan_expr(child, optional, narrowed)
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if isinstance(inner, list) and inner and \
                        isinstance(inner[0], ast.stmt):
                    self._walk_block(inner, optional, narrowed)
            for handler in getattr(stmt, "handlers", ()):
                self._walk_block(handler.body, optional, narrowed)

    def _scan_expr(self, node: ast.expr, optional: Set[str],
                   narrowed: Set[str]) -> None:
        if isinstance(node, ast.IfExp):
            cond = _none_compare(node.test)
            self._scan_expr(node.test, optional, narrowed)
            if cond is not None:
                name, is_not = cond
                body_narrow = narrowed | {name} if is_not else narrowed
                orelse_narrow = narrowed if is_not else narrowed | {name}
                self._scan_expr(node.body, optional, body_narrow)
                self._scan_expr(node.orelse, optional, orelse_narrow)
            else:
                self._scan_expr(node.body, optional, narrowed)
                self._scan_expr(node.orelse, optional, narrowed)
            return
        if (_is_rng_ctor(node) and id(node) not in self._det004_calls  # repro: noqa DET002 -- AST node identity within one in-memory pass; the tree pins every node alive
                and node.args and isinstance(node.args[0], ast.Name)):  # type: ignore[attr-defined]
            seed = node.args[0].id  # type: ignore[attr-defined]
            if seed in optional and seed not in narrowed:
                self._add(
                    "DET003", node,
                    f"RNG seeded from {seed!r}, whose default is None: "
                    "callers fall through to OS entropy",
                )
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan_expr(child, optional, narrowed)
            elif isinstance(child, ast.comprehension):
                self._scan_expr(child.iter, optional, narrowed)
                for cond in child.ifs:
                    self._scan_expr(cond, optional, narrowed)


# -- entry points ------------------------------------------------------------------


def lint_source(source: str, path: str = "<string>",
                suppress: bool = True) -> List[Finding]:
    """Lint one python source; returns findings (post-suppression)."""
    tree = ast.parse(source, filename=path)
    findings = _DetLinter(source, path).run(tree)
    if suppress:
        known = set(RULES) | {"NOQ001", "NOQ002"}
        findings = apply_suppressions(findings, source, path, known=known)
    return findings


def lint_file(path, suppress: bool = True) -> List[Finding]:
    path = Path(path)
    return lint_source(path.read_text(), path.as_posix(), suppress=suppress)


def iter_python_files(paths: Sequence) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            out.extend(sorted(entry.rglob("*.py")))
        elif entry.suffix == ".py":
            out.append(entry)
    return out


def lint_paths(paths: Sequence, suppress: bool = True) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(lint_file(file, suppress=suppress))
    return findings

"""Event-ordering contract checker for the replay loops.

DESIGN.md sections 10-12 promise one tie-breaking contract at equal
timestamps, in both the single-cluster online loop and the cross-shard
merged pump:

    departures -> fault events -> grid sample -> QoS tick -> evacuation
    retries

Differential tests pin the *outputs* of that ordering, but the ordering
itself lives in two hand-scheduled loops (``simulator._run_array_online``'s
``advance_to`` and ``pool_topology._replay_crossshard_events``'s ``pump``)
that are exactly the code perf PRs keep rewriting.  This checker reads the
loops' ASTs and verifies the documented dispatch order directly, so the
docs cannot silently rot:

========  ==========================================================
``ORD001``  contract anchor missing (function/loop/dispatch not found) --
            the checker fails loudly rather than vacuously passing
``ORD002``  departures must win ties against samples *and* faults
            (``<=`` comparisons, departure branch first)
``ORD003``  fault events must win ties against samples
``ORD004``  sample arm must run take_sample -> QoS tick -> retry tick,
            in that order
``ORD005``  heap kind priorities must order departure < fault < sample <
            horizon < arrival
``ORD006``  pump dispatch must test departure, then fault, then sample
``ORD007``  pump sample arm must run take_sample -> reschedule -> QoS
            tick -> retry tick
========  ==========================================================
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding

__all__ = ["ORDER_RULES", "check_contracts", "check_simulator", "check_pump"]

ORDER_RULES: Dict[str, Tuple[str, str]] = {
    "ORD001": (
        "contract anchor missing",
        "the loop this contract pins was renamed or restructured; update "
        "repro.analysis.contracts (and DESIGN.md sections 10-12) together "
        "with the loop",
    ),
    "ORD002": (
        "departure events must win ties",
        "at equal timestamps departures release capacity before faults "
        "fire and samples read state: keep 'departure_time <= "
        "next_sample_time and departure_time <= fault_time' as the first "
        "branch",
    ),
    "ORD003": (
        "fault events must precede the sample at equal timestamps",
        "samples must observe post-fault state: keep 'fault_time <= "
        "next_sample_time' ahead of the sample arm",
    ),
    "ORD004": (
        "sample arm order take_sample -> qos_tick -> retry_tick",
        "samples always show the pre-mitigation state and evacuation "
        "retries run after mitigation frees headroom (DESIGN.md sections "
        "10-11)",
    ),
    "ORD005": (
        "heap kind priorities out of order",
        "the merged heap's total order encodes the tie contract: "
        "_KIND_DEPARTURE < _KIND_FAULT < _KIND_SAMPLE < _KIND_HORIZON < "
        "_KIND_ARRIVAL",
    ),
    "ORD006": (
        "pump dispatch order departure -> fault -> sample",
        "keep the kind dispatch chain aligned with the heap priorities so "
        "readers can audit the contract in one place",
    ),
    "ORD007": (
        "pump sample arm order take_sample -> reschedule -> qos_tick -> "
        "retry_tick",
        "the next grid sample must be rescheduled from the sampled time "
        "before mitigation mutates state; QoS tick precedes the "
        "evacuation-retry tick",
    ),
}

_KIND_ORDER = ("_KIND_DEPARTURE", "_KIND_FAULT", "_KIND_SAMPLE",
               "_KIND_HORIZON", "_KIND_ARRIVAL")


def _find_function(node: ast.AST, name: str) -> Optional[ast.AST]:
    for sub in ast.walk(node):
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and sub.name == name:
            return sub
    return None


def _find_while(node: ast.AST) -> Optional[ast.While]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.While):
            return sub
    return None


def _ordered_calls(nodes: Sequence[ast.AST]) -> List[Tuple[str, int]]:
    """``(callee, lineno)`` for every call, in source (pre-)order."""
    out: List[Tuple[str, int]] = []

    def visit(node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                out.append((func.id, node.lineno))
            elif isinstance(func, ast.Attribute):
                out.append((func.attr, node.lineno))
        for child in ast.iter_child_nodes(node):
            visit(child)

    for node in nodes:
        visit(node)
    return out


def _calls_in_order(calls: List[Tuple[str, int]],
                    expected: Sequence[str]) -> bool:
    """True when ``expected`` appears as a subsequence of the call names."""
    position = 0
    for name, _line in calls:
        if position < len(expected) and name == expected[position]:
            position += 1
    return position == len(expected)


def _compare_names(test: ast.expr) -> List[Tuple[str, str, str]]:
    """Flatten ``a <= b``-style comparisons to ``(left, op, right)``."""
    out: List[Tuple[str, str, str]] = []
    for sub in ast.walk(test):
        if (isinstance(sub, ast.Compare) and len(sub.ops) == 1
                and isinstance(sub.left, ast.Name)
                and isinstance(sub.comparators[0], ast.Name)):
            out.append((sub.left.id, type(sub.ops[0]).__name__,
                        sub.comparators[0].id))
    return out


def _anchor_missing(path: str, line: int, what: str) -> Finding:
    return Finding(
        rule="ORD001", path=path, line=line,
        message=f"contract anchor missing: {what}",
        hint=ORDER_RULES["ORD001"][1], snippet=what,
    )


# -- single-cluster online loop ----------------------------------------------------


def check_simulator(path) -> List[Finding]:
    """Verify ``advance_to``'s tie-breaking in ``_run_array_online``."""
    path = Path(path)
    posix = path.as_posix()
    tree = ast.parse(path.read_text(), filename=str(path))
    findings: List[Finding] = []

    outer = _find_function(tree, "_run_array_online")
    if outer is None:
        return [_anchor_missing(posix, 1, "function _run_array_online")]
    advance = _find_function(outer, "advance_to")
    if advance is None:
        return [_anchor_missing(posix, outer.lineno,
                                "inner function advance_to")]
    loop = _find_while(advance)
    if loop is None:
        return [_anchor_missing(posix, advance.lineno,
                                "while loop in advance_to")]
    dispatch = next((s for s in loop.body if isinstance(s, ast.If)), None)
    if dispatch is None:
        return [_anchor_missing(posix, loop.lineno,
                                "if/elif/else dispatch in advance_to")]

    # Arm 1: departures win ties against both samples and faults (ORD002).
    compares = _compare_names(dispatch.test)
    departure_first = (
        ("departure_time", "LtE", "next_sample_time") in compares
        and ("departure_time", "LtE", "fault_time") in compares
        and _calls_in_order(_ordered_calls(dispatch.body),
                            ["process_one_departure"])
    )
    if not departure_first:
        findings.append(Finding(
            rule="ORD002", path=posix, line=dispatch.lineno,
            message="first advance_to branch does not give departures the "
                    "tie against samples and faults",
            hint=ORDER_RULES["ORD002"][1],
            snippet=ast.unparse(dispatch.test),
        ))

    # Arm 2: faults beat the sample at equal timestamps (ORD003).
    arm2 = dispatch.orelse
    sample_arm: Sequence[ast.stmt] = []
    if len(arm2) == 1 and isinstance(arm2[0], ast.If):
        inner = arm2[0]
        fault_ok = (
            ("fault_time", "LtE", "next_sample_time")
            in _compare_names(inner.test)
            and _calls_in_order(_ordered_calls(inner.body), ["fire_next"])
        )
        if not fault_ok:
            findings.append(Finding(
                rule="ORD003", path=posix, line=inner.lineno,
                message="fault branch does not win the tie against the "
                        "sample arm",
                hint=ORDER_RULES["ORD003"][1],
                snippet=ast.unparse(inner.test),
            ))
        sample_arm = inner.orelse
    else:
        findings.append(Finding(
            rule="ORD003", path=posix, line=dispatch.lineno,
            message="advance_to has no fault branch between departures "
                    "and the sample arm",
            hint=ORDER_RULES["ORD003"][1], snippet="",
        ))

    # Sample arm: take_sample -> qos_tick -> retry_tick (ORD004).
    calls = _ordered_calls(sample_arm)
    if not _calls_in_order(calls, ["take_sample", "qos_tick", "retry_tick"]):
        findings.append(Finding(
            rule="ORD004", path=posix,
            line=sample_arm[0].lineno if sample_arm else dispatch.lineno,
            message="sample arm does not run take_sample, qos_tick, "
                    "retry_tick in contract order",
            hint=ORDER_RULES["ORD004"][1],
            snippet=" -> ".join(name for name, _ in calls),
        ))
    return findings


# -- cross-shard merged pump -------------------------------------------------------


def check_pump(path) -> List[Finding]:
    """Verify heap priorities and dispatch order in the cross-shard pump."""
    path = Path(path)
    posix = path.as_posix()
    tree = ast.parse(path.read_text(), filename=str(path))
    findings: List[Finding] = []

    # ORD005: module-level kind priorities encode the contract.
    kinds: Dict[str, int] = {}
    kind_lines: Dict[str, int] = {}
    for node in tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id in _KIND_ORDER
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, int)):
            kinds[node.targets[0].id] = node.value.value
            kind_lines[node.targets[0].id] = node.lineno
    missing = [name for name in _KIND_ORDER if name not in kinds]
    if missing:
        findings.append(_anchor_missing(
            posix, 1, f"heap kind constants {', '.join(missing)}"))
    else:
        values = [kinds[name] for name in _KIND_ORDER]
        if values != sorted(values) or len(set(values)) != len(values):
            findings.append(Finding(
                rule="ORD005", path=posix,
                line=kind_lines[_KIND_ORDER[0]],
                message="heap kind priorities do not strictly order "
                        "departure < fault < sample < horizon < arrival",
                hint=ORDER_RULES["ORD005"][1],
                snippet=", ".join(f"{k}={kinds[k]}" for k in _KIND_ORDER),
            ))

    outer = _find_function(tree, "_replay_crossshard_events")
    if outer is None:
        findings.append(_anchor_missing(
            posix, 1, "function _replay_crossshard_events"))
        return findings
    pump = _find_function(outer, "pump")
    if pump is None:
        findings.append(_anchor_missing(posix, outer.lineno,
                                        "inner function pump"))
        return findings
    loop = _find_while(pump)
    dispatch = None
    if loop is not None:
        dispatch = next((s for s in loop.body if isinstance(s, ast.If)), None)
    if dispatch is None:
        findings.append(_anchor_missing(
            posix, pump.lineno, "kind dispatch chain in pump"))
        return findings

    # Flatten the elif chain to (kind-constant, body) arms.
    arms: List[Tuple[Optional[str], Sequence[ast.stmt], int]] = []
    node: Optional[ast.stmt] = dispatch
    while isinstance(node, ast.If):
        kind_name = None
        for left, op, right in _compare_names(node.test):
            if op == "Eq" and left == "kind" and right in _KIND_ORDER:
                kind_name = right
        arms.append((kind_name, node.body, node.lineno))
        orelse = node.orelse
        if len(orelse) == 1 and isinstance(orelse[0], ast.If):
            node = orelse[0]
        else:
            arms.append((None, orelse, node.lineno))
            node = None

    tested = [kind for kind, _body, _line in arms if kind is not None]
    if tested != ["_KIND_DEPARTURE", "_KIND_FAULT", "_KIND_SAMPLE"]:
        findings.append(Finding(
            rule="ORD006", path=posix, line=dispatch.lineno,
            message="pump dispatch does not test departure, fault, sample "
                    "in contract order",
            hint=ORDER_RULES["ORD006"][1],
            snippet=" -> ".join(tested) or "(no kind tests found)",
        ))
        return findings

    by_kind = {kind: body for kind, body, _line in arms if kind is not None}
    if not _calls_in_order(_ordered_calls(by_kind["_KIND_FAULT"]),
                           ["fire_next"]):
        findings.append(Finding(
            rule="ORD006", path=posix, line=dispatch.lineno,
            message="pump fault arm does not fire the scheduled event",
            hint=ORDER_RULES["ORD006"][1], snippet="",
        ))
    sample_calls = _ordered_calls(by_kind["_KIND_SAMPLE"])
    if not _calls_in_order(sample_calls,
                           ["take_sample", "heappush", "qos_tick",
                            "retry_tick"]):
        findings.append(Finding(
            rule="ORD007", path=posix, line=dispatch.lineno,
            message="pump sample arm does not run take_sample, reschedule, "
                    "qos_tick, retry_tick in contract order",
            hint=ORDER_RULES["ORD007"][1],
            snippet=" -> ".join(name for name, _ in sample_calls),
        ))
    return findings


def check_contracts(simulator_path=None, pool_topology_path=None
                    ) -> List[Finding]:
    """Check both replay loops; default paths resolve inside the package."""
    cluster = Path(__file__).resolve().parents[1] / "cluster"
    if simulator_path is None:
        simulator_path = cluster / "simulator.py"
    if pool_topology_path is None:
        pool_topology_path = cluster / "pool_topology.py"
    return check_simulator(simulator_path) + check_pump(pool_topology_path)

"""Pickle/process-pool safety pass over pool-boundary classes.

Shard replays and capacity probes ship objects into ``ProcessPoolExecutor``
workers (``fleet._ShardSpec`` and everything hanging off it), and probe
memoisation fingerprints are built from *pickled model state*.  Two ways
that goes wrong:

* the pickle fails outright (weakrefs, locks, executors, open handles,
  generators), typically only at fleet scale when the pool path first runs;
* the pickle succeeds but is *unstable* -- fit/predict scratch such as RNG
  state rides along, so two pickles of the same trained model differ and
  value-based fingerprints churn (PR 8's ``_flat``/``_rng`` incident,
  fixed by ``DecisionTree.__getstate__``).

This pass is static: it walks the attribute closure of a set of root
classes (the ones named in ``_ShardSpec`` and the policy factories) across
the source tree and flags hazardous attribute assignments on classes that
do **not** define ``__getstate__``/``__reduce__``.  Classes that do are
trusted to scrub their own state and are not traversed further.

Rules:

========  ==========================================================
``PCK001``  weakref attribute (cannot pickle; dies silently on the far side)
``PCK002``  lock / event / thread / executor attribute (cannot pickle)
``PCK003``  open handle, ``iter(...)`` or generator attribute (cannot pickle)
``PCK004``  RNG attribute without ``__getstate__`` (pickles, but makes the
            pickled state fingerprint-unstable)
``PCK005``  root class not found under the scanned source tree
========  ==========================================================

Findings honour the same ``# repro: noqa PCK00x -- reason`` inline
suppressions as the determinism lint.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, apply_suppressions

__all__ = [
    "PICKLE_RULES",
    "DEFAULT_ROOTS",
    "build_registry",
    "check_pickle_safety",
]

PICKLE_RULES: Dict[str, Tuple[str, str]] = {
    "PCK001": (
        "weakref attribute on a pool-boundary class",
        "weakrefs cannot pickle; rebuild the ref on the worker side or "
        "drop it in __getstate__",
    ),
    "PCK002": (
        "lock/thread/executor attribute on a pool-boundary class",
        "synchronisation primitives and executors cannot pickle; create "
        "them lazily per-process instead of storing them",
    ),
    "PCK003": (
        "open handle or generator attribute on a pool-boundary class",
        "handles and generators cannot pickle; store the path/spec and "
        "reopen (or re-iterate) on the worker side",
    ),
    "PCK004": (
        "RNG attribute on a pool-boundary class without __getstate__",
        "RNG state pickles but differs run-to-run, destabilising "
        "value-based fingerprints; scrub it in __getstate__ like "
        "repro.ml.tree.DecisionTree",
    ),
    "PCK005": (
        "pool-boundary root class not found",
        "update DEFAULT_ROOTS in repro.analysis.pickle_safety (or the "
        "--root arguments) to match the renamed/moved class",
    ),
}

#: Classes shipped across process-pool boundaries today: the fleet shard
#: spec and every class reachable from its fields, plus the policy factories
#: capacity probes pickle into workers.
DEFAULT_ROOTS: Tuple[str, ...] = (
    "repro.cluster.fleet._ShardSpec",
    "repro.cluster.faults.FaultSchedule",
    "repro.cluster.pool_topology.PoolTopology",
    "repro.cluster.trace.ClusterTrace",
    "repro.cluster.tracegen.TraceGenConfig",
    "repro.cluster.server.ServerConfig",
    "repro.core.control_plane.online.OnlineControlConfig",
    "repro.core.policies.AllLocalPolicy",
    "repro.core.policies.StaticFractionPolicy",
    "repro.core.policies.PondTracePolicy",
    "repro.core.policies.PredictionPolicy",
)

_WEAKREF_NAMES = {"ref", "proxy", "WeakValueDictionary", "WeakKeyDictionary",
                  "WeakSet", "WeakMethod"}
_SYNC_NAMES = {"Lock", "RLock", "Condition", "Event", "Semaphore",
               "BoundedSemaphore", "Barrier", "Thread",
               "ProcessPoolExecutor", "ThreadPoolExecutor"}
_RNG_NAMES = {"default_rng", "Random", "RandomState", "Generator"}


@dataclass
class _ClassInfo:
    name: str
    module: str  #: dotted module name
    path: str  #: posix source path
    node: ast.ClassDef
    controls_state: bool = False  #: defines __getstate__ or __reduce__
    #: (attr name, lineno, value expr or None, annotation expr or None)
    attrs: List[Tuple[str, int, Optional[ast.expr], Optional[ast.expr]]] = \
        field(default_factory=list)
    bases: List[str] = field(default_factory=list)


def _call_name(node: ast.AST) -> Optional[str]:
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _collect_attrs(info: _ClassInfo) -> None:
    """Record dataclass fields and ``self.x = ...`` assignments."""
    for stmt in info.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            info.attrs.append(
                (stmt.target.id, stmt.lineno, stmt.value, stmt.annotation)
            )
    for stmt in ast.walk(info.node):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                info.attrs.append((target.attr, stmt.lineno, value, None))


def build_registry(src_root) -> Dict[str, List[_ClassInfo]]:
    """Scan ``src_root`` and index every class by bare name."""
    src_root = Path(src_root)
    registry: Dict[str, List[_ClassInfo]] = {}
    for file in sorted(src_root.rglob("*.py")):
        rel = file.relative_to(src_root)
        parts = list(rel.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        module = ".".join(parts)
        tree = ast.parse(file.read_text(), filename=str(file))
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = _ClassInfo(name=node.name, module=module,
                              path=file.as_posix(), node=node)
            info.controls_state = any(
                isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
                and s.name in ("__getstate__", "__reduce__")
                for s in node.body
            )
            info.bases = [
                b.id if isinstance(b, ast.Name) else b.attr
                for b in node.bases
                if isinstance(b, (ast.Name, ast.Attribute))
            ]
            _collect_attrs(info)
            registry.setdefault(node.name, []).append(info)
    return registry


def _resolve(registry: Dict[str, List[_ClassInfo]], name: str,
             from_module: Optional[str] = None) -> Optional[_ClassInfo]:
    """Resolve a bare class name, preferring the referrer's own module."""
    candidates = registry.get(name)
    if not candidates:
        return None
    if from_module is not None:
        for info in candidates:
            if info.module == from_module:
                return info
    if len(candidates) == 1:
        return candidates[0]
    return None  # ambiguous cross-module bare name: do not guess


def _annotation_names(node: Optional[ast.expr]) -> Set[str]:
    """Class names referenced by an annotation (handles string annotations)."""
    if node is None:
        return set()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return set()
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
    return names


def _hazard(value: Optional[ast.expr]) -> Optional[Tuple[str, str]]:
    """Classify an assigned expression; returns ``(rule, what)`` or None."""
    if value is None:
        return None
    for sub in ast.walk(value):
        name = _call_name(sub)
        if name in _WEAKREF_NAMES:
            return "PCK001", f"weakref ({name})"
        if name in _SYNC_NAMES:
            return "PCK002", f"unpicklable primitive ({name})"
        if name in _RNG_NAMES:
            return "PCK004", f"RNG ({name})"
    # Open handles and generators are hazards only when *stored*; one fed
    # straight into tuple(...)/list(...)/"".join(...) etc. is consumed
    # before the attribute exists, so only the top-level expression counts.
    top = _call_name(value)
    if top in ("open", "iter"):
        return "PCK003", f"{top}() result"
    if isinstance(value, ast.GeneratorExp):
        return "PCK003", "generator expression"
    return None


def check_pickle_safety(
    src_root, roots: Sequence[str] = DEFAULT_ROOTS, suppress: bool = True
) -> List[Finding]:
    """Walk the closure of ``roots`` and return hazard findings."""
    src_root = Path(src_root)
    registry = build_registry(src_root)
    findings: List[Finding] = []

    queue: List[_ClassInfo] = []
    seen: Set[Tuple[str, str]] = set()
    for dotted in roots:
        module, _, name = dotted.rpartition(".")
        info = _resolve(registry, name, from_module=module)
        if info is None or info.module != module:
            findings.append(Finding(
                rule="PCK005", path=src_root.as_posix(), line=1,
                message=f"root class {dotted!r} not found under "
                        f"{src_root.as_posix()}",
                hint=PICKLE_RULES["PCK005"][1], snippet=dotted,
            ))
            continue
        queue.append(info)

    closure: List[_ClassInfo] = []
    while queue:
        info = queue.pop()
        key = (info.module, info.name)
        if key in seen:
            continue
        seen.add(key)
        closure.append(info)
        # Traverse edges: base classes, attribute constructor calls, and
        # annotated field types that name classes of ours.
        edge_names: Set[str] = set(info.bases)
        for _attr, _line, value, annotation in info.attrs:
            edge_names |= _annotation_names(annotation)
            if value is not None:
                call = _call_name(value)
                if call is not None:
                    edge_names.add(call)
        for name in edge_names:
            target = _resolve(registry, name, from_module=info.module)
            if target is None:
                for candidates in (registry.get(name) or [],):
                    if len(candidates) == 1:
                        target = candidates[0]
            if target is not None:
                queue.append(target)

    per_file: Dict[str, List[Finding]] = {}
    for info in closure:
        if info.controls_state:
            continue  # __getstate__/__reduce__ owns its pickled state
        for attr, lineno, value, annotation in info.attrs:
            hazard = _hazard(value)
            if hazard is None:
                continue
            rule, what = hazard
            per_file.setdefault(info.path, []).append(Finding(
                rule=rule, path=info.path, line=lineno,
                message=f"{info.name}.{attr} holds a {what}; {info.name} "
                        "crosses a process-pool boundary and has no "
                        "__getstate__",
                hint=PICKLE_RULES[rule][1],
                snippet="",  # filled below from source
            ))

    for path, file_findings in sorted(per_file.items()):
        source = Path(path).read_text()
        lines = source.splitlines()
        filled = [
            Finding(rule=f.rule, path=f.path, line=f.line, message=f.message,
                    hint=f.hint,
                    snippet=lines[f.line - 1].strip()
                    if 1 <= f.line <= len(lines) else "")
            for f in file_findings
        ]
        if suppress:
            filled = apply_suppressions(filled, source, path,
                                        known=set(PICKLE_RULES))
        findings.extend(filled)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings

"""Project-specific static analysis: determinism lint, pickle safety, contracts.

Every correctness incident in this repo's history was a determinism or
invariant bug found *after* it shipped: ``id()``-keyed dimensioner caches
(PR 1), ``PYTHONHASHSEED``-dependent ``hash()`` policy draws (PR 2), stale
pickle fingerprints from RNG scratch (PR 8), ledger drift clamps (PR 9).
This package catches that bug class at lint time instead of at differential-
test time.  Four layers:

* :mod:`repro.analysis.det_rules` -- the determinism lint: an AST pass over
  library code flagging ``hash()``/``id()`` used as keys or fingerprints,
  unseeded (or silently optional-seeded) RNG construction, iteration over
  unordered collections feeding ordered output, and wall-clock reads in
  simulation logic.  Rules carry codes (``DET001``...), fix-it hints, inline
  ``# repro: noqa DET00x -- reason`` suppressions, and a checked-in baseline
  so CI fails only on *new* findings.
* :mod:`repro.analysis.pickle_safety` -- the process-pool safety pass: walks
  the static closure of every class shipped across pool boundaries (policy
  factories, probe tasks, fault schedules, fleet shard specs) and flags
  unpicklable or fingerprint-unstable attribute hazards (weakrefs, locks,
  open handles, RNG scratch) on classes lacking ``__getstate__``.
* :mod:`repro.analysis.contracts` -- the event-ordering contract checker:
  verifies the documented replay ordering (departures -> faults -> sample ->
  QoS tick -> evacuation retries; DESIGN.md sections 10-12) against the
  actual call sequences in ``simulator.py`` and ``pool_topology.py``.
* :mod:`repro.analysis.sanitizer` -- the opt-in runtime sanitizer
  (``REPRO_SANITIZE=1``): invariant-asserting wrappers on
  ``PoolGroupLedger`` / ``ArrayPlacementEngine`` mutators (no negative pool
  usage, free+used conservation per group, live-handle consistency, no
  silent kills).

The CLI front door is ``python -m repro.analysis`` (also installed as
``repro-lint``); it additionally hosts the fault-determinism differential
check (:mod:`repro.analysis.determinism`) and the benchmark-report floor
validation (:mod:`repro.analysis.perf_floors`) that CI previously ran as
ad-hoc scripts.
"""

from repro.analysis.findings import Finding, load_baseline, write_baseline

__all__ = ["Finding", "load_baseline", "write_baseline"]

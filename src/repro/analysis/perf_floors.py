"""Benchmark-report schema and perf-floor validation.

Every scale benchmark emits a ``BENCH_<name>.json`` report (see
``benchmarks/_bench_report.py``) carrying standard metadata plus
``<metric>`` / ``<metric>_floor`` pairs for each perf floor it asserts.
This module owns the validation side -- the report schema check and the
floor re-check -- so the CI bench-smoke job, the ``repro.analysis
perf-floors`` subcommand, and the benchmarks themselves share one
definition.  ``benchmarks/_bench_report.py`` re-exports these for the
benchmark scripts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Sequence, Tuple

__all__ = ["REQUIRED_REPORT_FIELDS", "validate_report", "check_perf_floors",
           "check_reports"]

#: Metadata fields ``emit_report`` promises in every ``BENCH_*.json``;
#: the CI bench-smoke job schema-checks every emitted report against this
#: list (plus ``benchmark`` matching the file name).
REQUIRED_REPORT_FIELDS = (
    "benchmark",
    "smoke",
    "unix_time",
    "python",
    "platform",
    "cpu_count",
)


def validate_report(path) -> dict:
    """Load one ``BENCH_*.json`` and check the emit_report schema.

    Returns the parsed report; raises ``ValueError`` naming the file and the
    missing/mismatched field otherwise.  Used by the CI schema check so the
    promise stays enforced, not aspirational.
    """
    path = Path(path)
    report = json.loads(path.read_text())
    missing = [f for f in REQUIRED_REPORT_FIELDS if f not in report]
    if missing:
        raise ValueError(f"{path.name}: missing required fields {missing}")
    expected_name = path.stem[len("BENCH_"):]
    if report["benchmark"] != expected_name:
        raise ValueError(
            f"{path.name}: benchmark field {report['benchmark']!r} does not "
            f"match file name ({expected_name!r})"
        )
    return report


def check_perf_floors(report: dict, name: str = "report") -> list:
    """Check every ``<metric>_floor`` pair a ``BENCH_*.json`` report carries.

    The benchmarks record each perf floor they assert right next to the
    measured value (``events_per_s`` / ``events_per_s_floor``, ``speedup``
    / ``speedup_floor``, ...).  Floors are uniformly *minimums*: the
    metric must be ``>=`` its floor.  This re-checks the recorded pairs so
    the CI bench-smoke job catches a report that was emitted before its
    benchmark's floor assertion fired, or one edited out of step with its
    measurement.

    Returns the list of ``(metric, value, floor)`` tuples checked (may be
    empty: not every report asserts a floor); raises ``ValueError`` naming
    the report and the offending field on a missing metric, a
    non-numeric pair, or a floor violation.
    """
    checked = []
    for key in sorted(report):
        if not key.endswith("_floor"):
            continue
        metric = key[: -len("_floor")]
        if metric not in report:
            raise ValueError(
                f"{name}: {key} present but metric {metric!r} missing"
            )
        value, floor = report[metric], report[key]
        if not isinstance(value, (int, float)) or not isinstance(
                floor, (int, float)):
            raise ValueError(
                f"{name}: {metric}/{key} must be numeric, got "
                f"{value!r} / {floor!r}"
            )
        if value < floor:
            raise ValueError(
                f"{name}: {metric}={value:g} below recorded floor "
                f"{key}={floor:g}"
            )
        checked.append((metric, value, floor))
    return checked


def check_reports(paths: Iterable, require: Sequence[str] = (),
                  emit=print) -> int:
    """Validate reports and their floors; returns a process exit code.

    ``paths`` may mix files and directories (directories are scanned for
    ``BENCH_*.json``).  ``require`` names benchmarks that must be present
    (e.g. ``fault_injection``), so a report silently not emitted fails the
    check instead of vacuously passing.
    """
    files: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.glob("BENCH_*.json")))
        else:
            files.append(entry)

    status = 0
    seen: List[str] = []
    for file in files:
        try:
            report = validate_report(file)
            checked: List[Tuple[str, float, float]] = \
                check_perf_floors(report, name=file.name)
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            emit(f"FAIL {file.name}: {exc}")
            status = 1
            continue
        seen.append(report["benchmark"])
        floors = ", ".join(
            f"{metric}={value:g}>={floor:g}" for metric, value, floor
            in checked
        ) or "no floors"
        emit(f"ok {file.name}: {floors}")
    for name in require:
        if name not in seen:
            emit(f"FAIL: required benchmark report {name!r} not found")
            status = 1
    return status
